//! The campaign flight recorder end to end: arm it on a sweep, inspect
//! what it flagged (the paper's Fig. 3 divergence tail, impossible spin
//! edges, classification flips across redirects, handshake failures,
//! stage outliers), calibrate the stage-outlier thresholds from the
//! first run's virtual histograms, and write the artifacts that
//! `spinctl` reads back.
//!
//! Usage: `cargo run --release --example flight_recorder [domains]`
//! (default 2000; artifacts land in `target/flight-example/`).

use quicspin::scanner::{
    write_flight_recording, write_run_manifest, CampaignConfig, FlightConfig, Scanner,
};
use quicspin::webpop::{Population, PopulationConfig};
use std::path::Path;
use std::time::Duration;

fn main() {
    let domains: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(2_000);
    let population = Population::generate(PopulationConfig {
        seed: 0xf11e,
        toplist_domains: domains / 8,
        zone_domains: domains - domains / 8,
    });
    let scanner = Scanner::new(&population);

    // First pass: default thresholds, plus a healthy baseline sample of
    // every 64th domain so the store is not only pathologies.
    let mut flight = FlightConfig::armed(0x5eed_2023);
    flight.baseline_sample_every = 64;
    let config = CampaignConfig {
        flight,
        ..CampaignConfig::default()
    };
    let (campaign, recording, manifest) =
        scanner.run_campaign_flight_with_progress(&config, Duration::from_secs(2), |line| {
            eprintln!("{line}")
        });

    println!(
        "campaign {}: {} records, {} anomalies on {} probes",
        recording.campaign_id(),
        campaign.records.len(),
        recording.anomalies().len(),
        recording.flagged_traces()
    );
    let index = recording.index();
    for (kind, count) in index.counts_by_kind() {
        println!("  {:<20} {count}", kind.name());
    }
    println!(
        "retained {} traces ({} B), evicted {}",
        index.retained_traces, index.retained_bytes, index.evicted_traces
    );

    // Second pass, the operator loop: derive stage-outlier thresholds
    // from the observed virtual-time distributions (3x the p99) instead
    // of the static defaults, and sweep again.
    let mut calibrated = config.flight.clone();
    calibrated.calibrate_outliers(recording.handshake_us(), recording.total_us(), 0.99, 3.0);
    println!(
        "calibrated stage outliers: handshake > {} µs, total > {} µs",
        calibrated.handshake_outlier_us, calibrated.total_outlier_us
    );
    let (_campaign2, recording2) = scanner.run_campaign_flight(&CampaignConfig {
        flight: calibrated,
        ..CampaignConfig::default()
    });
    println!(
        "calibrated run: {} anomalies on {} probes",
        recording2.anomalies().len(),
        recording2.flagged_traces()
    );

    let dir = Path::new("target/flight-example");
    match write_run_manifest(dir, &manifest) {
        Ok(path) => println!("wrote {}", path.display()),
        Err(e) => eprintln!("could not write manifest: {e}"),
    }
    match write_flight_recording(dir, &recording) {
        Ok((index_path, store_path)) => {
            println!("wrote {}", index_path.display());
            println!("wrote {}", store_path.display());
            println!(
                "inspect with: cargo run -p quicspin-spinctl --bin spinctl -- summary --dir {}",
                dir.display()
            );
        }
        Err(e) => eprintln!("could not write recording: {e}"),
    }
}
