//! Quickstart: simulate one QUIC connection, watch its spin bit from the
//! middle of the network, and compare the passive RTT estimate to the
//! stack's own.
//!
//! Run with: `cargo run --release --example quickstart`

use quicspin::netsim::Side;
use quicspin::prelude::*;
use quicspin::quic::ServerProfile;

fn main() {
    // A 40 ms path to a server that takes 120 ms to produce its response
    // and pauses between output chunks — a typical loaded shared-hosting
    // box, the population the paper finds most spin-bit support in.
    let mut lab = ConnectionLab::new(LabConfig {
        path_rtt_ms: 40.0,
        server_profile: ServerProfile {
            initial_delay: quicspin::netsim::SimDuration::from_millis(120),
            chunks: vec![
                (quicspin::netsim::SimDuration::ZERO, 12_000),
                (quicspin::netsim::SimDuration::from_millis(60), 12_000),
                (quicspin::netsim::SimDuration::from_millis(60), 12_000),
            ],
        },
        ..LabConfig::default()
    });
    let outcome = lab.run();

    println!("handshake completed : {}", outcome.handshake_completed);
    println!("response bytes      : {}", outcome.response_bytes);
    println!(
        "finished at         : {:.1} ms (virtual time)",
        outcome.finished_at.as_millis_f64()
    );

    // What the client's own qlog recorded (the paper's §3.3 extraction).
    println!("\nreceived 1-RTT packets (time, pn, spin):");
    for (t, pn, spin) in outcome.client_qlog.spin_observations() {
        println!(
            "  {:>8.1} ms  pn={:<3} spin={}",
            t as f64 / 1000.0,
            pn,
            u8::from(spin)
        );
    }

    // The passive observer's verdict.
    let report = outcome.observer_report();
    println!("\nclassification      : {}", report.classification);
    println!(
        "spin RTT mean       : {:.1} ms ({} samples)",
        report.spin_rtt_mean_ms().unwrap_or(0.0),
        report.spin_samples_received_us.len()
    );
    println!(
        "stack RTT mean      : {:.1} ms ({} samples)",
        report.stack_rtt_mean_ms().unwrap_or(0.0),
        report.stack_samples_us.len()
    );
    if let Some(acc) = report.accuracy_received() {
        println!(
            "abs diff / ratio    : {:+.1} ms / {:+.2}x  (end-host delays inflate the spin signal)",
            acc.abs_diff_ms(),
            acc.mapped_ratio()
        );
    }

    // An on-path tap sees the same square wave without packet numbers.
    let tap = outcome.tap_observations(Side::Server);
    println!("\ntap saw {} server→client 1-RTT packets", tap.len());
    let mut observer = SpinObserver::new();
    for obs in &tap {
        observer.observe(obs);
    }
    println!(
        "tap spin RTT mean   : {:.1} ms ({} edges)",
        observer.mean_rtt_ms().unwrap_or(0.0),
        observer.edges().len()
    );
}
