//! Appendix B: build the released artifacts — per-connection qlog traces
//! with the spin-bit extension, stripped to limit file size, in both JSON
//! and the compact binary format.
//!
//! Run with: `cargo run --release --example artifact_release`

use quicspin::scanner::{
    export_binary_stripped, export_qlogs, strip_for_release, CampaignConfig, Scanner,
};
use quicspin::webpop::{Population, PopulationConfig};

fn main() {
    let population = Population::generate(PopulationConfig {
        seed: 0x5eed_2023,
        toplist_domains: 200,
        zone_domains: 3_000,
    });
    eprintln!(
        "scanning {} domains with qlog capture ...",
        population.len()
    );
    let campaign = Scanner::new(&population).run_campaign(&CampaignConfig {
        keep_qlogs: true,
        ..CampaignConfig::default()
    });

    let qlogs = export_qlogs(&campaign);
    let full_json = qlogs.to_json().expect("serializable");

    let stripped_json =
        quicspin::qlog::QlogFile::new(qlogs.traces.iter().map(strip_for_release).collect())
            .to_json()
            .expect("serializable");

    let binary = export_binary_stripped(&campaign);
    let binary_bytes: usize = binary.iter().map(Vec::len).sum();

    println!("connections with retained qlogs : {}", qlogs.traces.len());
    println!(
        "full JSON release               : {:>9} bytes",
        full_json.len()
    );
    println!(
        "stripped JSON release           : {:>9} bytes",
        stripped_json.len()
    );
    println!(
        "stripped compact binary release : {:>9} bytes",
        binary_bytes
    );
    println!(
        "compression vs full JSON        : {:.1}x",
        full_json.len() as f64 / binary_bytes.max(1) as f64
    );

    // Show one stripped trace to make the released schema concrete.
    if let Some(trace) = qlogs.traces.first() {
        let stripped = strip_for_release(trace);
        println!("\nexample stripped trace for {}:", stripped.title);
        for event in stripped.events.iter().take(8) {
            println!("  {:?}", event);
        }
        if stripped.len() > 8 {
            println!("  ... {} more events", stripped.len() - 8);
        }
    }
}
