//! Network tomography with the spin bit (the §6 outlook: "assessing the
//! usefulness of the spin bit for practical applications, such as network
//! tomography").
//!
//! An in-network observer that sees both directions of a flow can split
//! the RTT into a client-side and a server-side component at its own
//! position. This example places taps at several points along the same
//! path, demultiplexes flows by connection ID, and shows the component
//! split moving with the tap — plus a pcap round-trip, since a real
//! observer would work from captures.
//!
//! Run with: `cargo run --release --example network_tomography`

use quicspin::core::{Direction, DualDirectionObserver, FlowMap, ObserverConfig};
use quicspin::netsim::{read_pcap, write_pcap, Side};
use quicspin::prelude::*;
use quicspin::wire::Header;

fn main() {
    println!("tap position | client-side | server-side | reconstructed RTT");
    for tap_position in [0.1, 0.5, 0.9] {
        let mut lab = ConnectionLab::new(LabConfig {
            path_rtt_ms: 80.0,
            tap_position: Some(tap_position),
            seed: 11,
            ..LabConfig::default()
        });
        let out = lab.run();

        // A real observer works from a capture: write + re-read pcap.
        let pcap = write_pcap(&out.tap_records);
        let records = read_pcap(&pcap).expect("own capture parses");

        let mut observer = DualDirectionObserver::new();
        let mut flows: FlowMap<Vec<u8>> = FlowMap::new(ObserverConfig::default());
        for record in &records {
            let Some(header) = Header::peek_observable(&record.datagram, 8) else {
                continue;
            };
            let obs = quicspin::core::PacketObservation::wire(record.time.as_micros(), header.spin);
            let direction = match record.from {
                Side::Client => Direction::Upstream,
                Side::Server => Direction::Downstream,
            };
            observer.observe(direction, &obs);
            // Per-flow single-direction observation keyed by DCID.
            if record.from == Side::Server {
                flows.observe(header.dcid.as_slice().to_vec(), &obs);
            }
        }

        println!(
            "        {:.1}  | {:>8.1} ms | {:>8.1} ms | {:>8.1} ms  ({} flow(s), {} measurable)",
            tap_position,
            observer.client_side_mean_ms().unwrap_or(f64::NAN),
            observer.server_side_mean_ms().unwrap_or(f64::NAN),
            observer.full_rtt_mean_ms().unwrap_or(f64::NAN),
            flows.len(),
            flows.measurable_flows(),
        );
    }
    println!("\npath RTT is 80 ms; the component split follows the tap position");
    println!("while the reconstructed full RTT stays put — §6's tomography use case.");
}
