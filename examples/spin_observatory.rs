//! The on-path spin observatory: observer RTT vs client spin RTT vs
//! stack ground truth as a function of tap position and loss rate.
//!
//! The spin bit exists so a *passive on-path* observer can estimate RTT
//! from encrypted traffic (RFC 9000 §17.4, RFC 9312 §4.2.1). This
//! example sweeps a grid of vantage positions × loss rates, runs one
//! tapped campaign per condition, and renders the accuracy figure twice:
//! once over every observed flow (greasing traffic pollutes both the
//! observer's and the client's aggregate means — the paper's argument
//! for a grease filter) and once restricted to spinning flows.
//!
//! Two effects to look for: the observer's means agree to within
//! microseconds across every vantage position (per-flow parity with the
//! client holds from anywhere on a clean path — the repo's property
//! tests pin it exactly), and on flows with second-scale shared-hosting delay spikes
//! the RFC 9312 validity heuristics drop >4×median spin periods as
//! suspected loss gaps, pulling the observer's mean *below* the
//! client's raw spin estimate and toward the stack ground truth — the
//! paper's §5 overestimation, partially corrected at the tap.
//!
//! Usage: `cargo run --release --example spin_observatory [zone_domains]`

use quicspin::analysis::VantageFigure;
use quicspin::core::FlowClassification;
use quicspin::scanner::CampaignConfig;
use quicspin::webpop::{Population, PopulationConfig};

fn main() {
    let zone_domains: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(800);

    eprintln!("generating population ({zone_domains} zone domains) ...");
    let population = Population::generate(PopulationConfig {
        seed: 11,
        toplist_domains: 40,
        zone_domains,
    });

    let vantages = [0.1, 0.25, 0.5, 0.75, 0.9];
    let losses = [0.0, 0.01, 0.05];
    // Small zone counts produce populations under the default flow count;
    // probing past the end of the domain table is out of bounds.
    let flows = 800u32.min(population.len() as u32);
    eprintln!(
        "sweeping {} vantages x {} loss rates, {} flows each ...",
        vantages.len(),
        losses.len(),
        flows
    );
    let all = VantageFigure::sweep(
        &population,
        &CampaignConfig::default(),
        0..flows,
        &vantages,
        &losses,
    );
    let spinning = VantageFigure::sweep_where(
        &population,
        &CampaignConfig::default(),
        0..flows,
        &vantages,
        &losses,
        |r| {
            r.report
                .as_ref()
                .is_some_and(|rep| rep.classification == FlowClassification::Spinning)
        },
    );

    println!("All observed flows (greasing traffic included — aggregate means are noise):");
    println!("{}", all.render());
    println!("Spinning flows only (the paper's grease filter applied):");
    println!("{}", spinning.render());

    // The per-cell observer-vs-client agreement over the paired flow
    // set (both sides produced a mean), one line each. A negative delta
    // with nonzero gap-dropped counts is the heuristics trimming
    // end-host delay spikes the client's raw estimate keeps.
    println!("Agreement and measurability (spinning flows, paired means):");
    for cell in &spinning.cells {
        let vantage = f64::from(cell.vantage_millionths) / 1_000_000.0;
        let loss = f64::from(cell.loss_millionths) / 1_000_000.0;
        let delta = match cell.paired_delta_ms() {
            Some(d) => format!("{d:+.3} ms"),
            None => "-".to_string(),
        };
        println!(
            "  vantage {vantage:.2} loss {loss:.2}: {:5.1}% of flows measurable, \
             observer-client delta {delta}, {} samples ({} reorder-rejected, {} gap-dropped)",
            cell.measurable_share() * 100.0,
            cell.samples,
            cell.rejected_reorder,
            cell.rejected_gap,
        );
    }
}
