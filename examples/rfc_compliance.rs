//! §4.3 / Figure 2: do deployments follow the RFC 9000 "MUST disable on
//! one in 16 connections" rule?
//!
//! Runs the longitudinal study (n = 12 selected weeks), builds the
//! observed weeks-with-spin histogram and compares it against the
//! binomial RFC 9000 (p = 15/16) and RFC 9312 (p = 7/8) theory.
//!
//! Usage: `cargo run --release --example rfc_compliance [zone_domains]`

use quicspin::analysis::{render, LongitudinalFigure};
use quicspin::scanner::{run_longitudinal, CampaignConfig, LongitudinalConfig};
use quicspin::webpop::{Population, PopulationConfig};

fn main() {
    let zone_domains: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(20_000);

    eprintln!("generating population ({zone_domains} zone domains) ...");
    let population = Population::generate(PopulationConfig {
        seed: 0x5eed_2023,
        toplist_domains: 0,
        zone_domains,
    });

    eprintln!("running 12 weekly campaigns ...");
    let config = LongitudinalConfig::paper_weeks(CampaignConfig::default());
    let result = run_longitudinal(&population, &config);

    let figure = LongitudinalFigure::from_result(&result);
    println!("{}", render::render_fig2(&figure));

    println!(
        "observed all-weeks share: {:.1}% (RFC 9000 theory: {:.1}%, RFC 9312: {:.1}%)",
        figure.observed_all_weeks() * 100.0,
        figure.rfc9000.last().unwrap() * 100.0,
        figure.rfc9312.last().unwrap() * 100.0
    );
    println!(
        "domains spin LESS than RFC 9000 theory allows: {}",
        figure.spins_less_than(&figure.rfc9000)
    );
    println!(
        "domains spin LESS than RFC 9312 theory allows: {}",
        figure.spins_less_than(&figure.rfc9312)
    );
}
