//! Passive on-path observation with robustness heuristics and the VEC.
//!
//! A network operator's view: no qlog, no packet numbers — only the spin
//! bit (and optionally the Valid Edge Counter) on short-header packets
//! crossing a tap. Demonstrates the Fig. 1b reordering failure mode, the
//! RFC 9312 filters that mitigate it, and the VEC alternative that never
//! made it into RFC 9000.
//!
//! Run with: `cargo run --release --example passive_observer`

use quicspin::core::{ObserverConfig, RttFilter, SpinObserver};
use quicspin::netsim::Side;
use quicspin::prelude::*;

fn observe(
    observations: &[quicspin::core::PacketObservation],
    config: ObserverConfig,
) -> (usize, Option<f64>, usize) {
    let mut observer = SpinObserver::with_config(config);
    for obs in observations {
        observer.observe(obs);
    }
    (
        observer.rtt_samples_us().len(),
        observer.mean_rtt_ms(),
        observer.filtered_out(),
    )
}

fn main() {
    // A heavily reordering path: 8 % of packets get held back long enough
    // to be overtaken — far worse than anything the paper saw, to make
    // the heuristics visible.
    let mut lab = ConnectionLab::new(LabConfig {
        path_rtt_ms: 50.0,
        reorder: 0.08,
        jitter_ms: 2.0,
        seed: 7,
        client: TransportConfig::default().with_vec(),
        server: TransportConfig::default().with_vec(),
        ..LabConfig::default()
    });
    let outcome = lab.run();
    let tap = outcome.tap_observations(Side::Server);
    println!("tap captured {} server→client 1-RTT packets\n", tap.len());

    let configs: [(&str, ObserverConfig); 4] = [
        ("baseline (no filter)", ObserverConfig::default()),
        (
            "static floor 5 ms",
            ObserverConfig {
                filter: RttFilter::StaticFloor { min_us: 5_000 },
                ..ObserverConfig::default()
            },
        ),
        (
            "dynamic range [0.3x, 3x] of running median",
            ObserverConfig {
                filter: RttFilter::DynamicRange {
                    lower: 0.3,
                    upper: 3.0,
                },
                ..ObserverConfig::default()
            },
        ),
        (
            "VEC: saturated edges only",
            ObserverConfig {
                require_valid_edge: true,
                ..ObserverConfig::default()
            },
        ),
    ];

    println!(
        "{:<44} {:>8} {:>12} {:>9}",
        "observer", "samples", "mean RTT", "rejected"
    );
    for (name, config) in configs {
        let (n, mean, rejected) = observe(&tap, config);
        println!(
            "{:<44} {:>8} {:>9.1} ms {:>9}",
            name,
            n,
            mean.unwrap_or(0.0),
            rejected
        );
    }

    println!(
        "\nground truth: path RTT 50.0 ms; stack measured {:.1} ms",
        outcome
            .client_stack_samples_us
            .iter()
            .min()
            .map(|&v| v as f64 / 1000.0)
            .unwrap_or(0.0)
    );
}
