//! Full measurement campaign against the synthetic Internet — the
//! centrepiece example: regenerates Tables 1–4 and the §4.2 web-server
//! attribution exactly as the paper's CW 20/2023 measurement does.
//!
//! Usage: `cargo run --release --example internet_campaign [scale]`
//! where `scale` is the 1:N population denominator (default 1000 —
//! ≈ 219 k domains; use 100 for a ≈ 2.2 M-domain run if you have time).

use quicspin::analysis::{render, OrgTable, OverviewTable, SpinConfigTable, WebServerShares};
use quicspin::scanner::{write_run_manifest, CampaignConfig, Scanner};
use quicspin::webpop::{IpVersion, Population, PopulationConfig, WebServer};
use std::time::Duration;

fn main() {
    let scale: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(1000);
    eprintln!("generating population at scale 1:{scale} ...");
    let population = Population::generate(PopulationConfig::paper_scale(scale));
    eprintln!("{} domains generated", population.len());

    let scanner = Scanner::new(&population);

    // --- IPv4 sweep (Tables 1, 2, 3, §4.2) --------------------------------
    eprintln!("running IPv4 campaign (CW 20 analogue) ...");
    let (v4, manifest) = scanner.run_campaign_with_progress(
        &CampaignConfig::default(),
        Duration::from_secs(2),
        |line| eprintln!("{line}"),
    );
    eprintln!("{} records", v4.len());
    match write_run_manifest(std::path::Path::new("target/campaign"), &manifest) {
        Ok(path) => eprintln!("run manifest written to {}", path.display()),
        Err(e) => eprintln!("could not write run manifest: {e}"),
    }

    let table1 = OverviewTable::from_campaign(&v4);
    println!(
        "{}",
        render::render_overview("Table 1: IPv4 overview", &table1)
    );

    let table2 = OrgTable::from_campaign(&v4);
    println!("{}", render::render_orgs(&table2));

    let table3 = SpinConfigTable::from_campaign(&v4);
    println!("{}", render::render_spin_config(&table3));

    let servers = WebServerShares::from_campaign(&v4);
    println!("Web servers (share of spinning connections):");
    for ws in [
        WebServer::LiteSpeed,
        WebServer::Imunify360,
        WebServer::NginxQuic,
        WebServer::Caddy,
        WebServer::OtherServer,
    ] {
        println!(
            "  {:<22} {:5.1}%",
            format!("{ws:?}"),
            servers.spin_share(ws) * 100.0
        );
    }
    println!();

    // --- IPv6 sweep (Table 4) ---------------------------------------------
    eprintln!("running IPv6 campaign ...");
    let v6 = scanner.run_campaign(&CampaignConfig {
        version: IpVersion::V6,
        ..CampaignConfig::default()
    });
    let table4 = OverviewTable::from_campaign(&v6);
    println!(
        "{}",
        render::render_overview("Table 4: IPv6 overview", &table4)
    );
}
