//! §5 / Figures 3+4: RTT measurement accuracy of the spin bit at scale.
//!
//! Scans the spinning share of the population, computes the absolute and
//! mapped-ratio accuracy distributions in both received (R) and sorted (S)
//! packet order, and prints the §5.2 reordering statistics.
//!
//! Usage: `cargo run --release --example rtt_accuracy [zone_domains]`

use quicspin::analysis::{render, AccuracyFigures, Summary};
use quicspin::core::FlowClassification;
use quicspin::scanner::{CampaignConfig, Scanner};
use quicspin::webpop::{Population, PopulationConfig};

fn main() {
    let zone_domains: u32 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(120_000);

    eprintln!("generating population ({zone_domains} zone domains) ...");
    let population = Population::generate(PopulationConfig {
        seed: 0x5eed_2023,
        toplist_domains: 0,
        zone_domains,
    });

    eprintln!("scanning ...");
    let campaign = Scanner::new(&population).run_campaign(&CampaignConfig::default());
    eprintln!("{} records", campaign.len());

    let figures = AccuracyFigures::from_records(campaign.established());

    println!("{}", render::render_fig3(&figures.fig3));
    println!("{}", render::render_fig4(&figures.fig4));

    // Distribution summaries of the two estimators over spinning conns.
    let spin_means: Vec<f64> = campaign
        .established()
        .filter_map(|r| r.report.as_ref())
        .filter(|rep| rep.classification == FlowClassification::Spinning)
        .filter_map(|rep| rep.spin_rtt_mean_ms())
        .collect();
    let stack_means: Vec<f64> = campaign
        .established()
        .filter_map(|r| r.report.as_ref())
        .filter(|rep| rep.classification == FlowClassification::Spinning)
        .filter_map(|rep| rep.stack_rtt_mean_ms())
        .collect();
    if let (Some(spin), Some(stack)) = (Summary::of(&spin_means), Summary::of(&stack_means)) {
        println!("Per-connection mean RTT distributions (ms):");
        println!(
            "  spin  : median {:>7.1}  p95 {:>8.1}  max {:>8.1}",
            spin.median, spin.p95, spin.max
        );
        println!(
            "  stack : median {:>7.1}  p95 {:>8.1}  max {:>8.1}",
            stack.median, stack.p95, stack.max
        );
        println!();
    }

    let re = &figures.reordering;
    println!("Reordering impact (§5.2):");
    println!("  connections with spin activity : {}", re.connections);
    println!(
        "  R/S results differ             : {} ({:.2}%)",
        re.differing,
        re.differing_share() * 100.0
    );
    println!(
        "  of those, |Δmean| < 1 ms       : {:.1}%",
        re.small_delta_share() * 100.0
    );
    println!(
        "  of those, sorting improved     : {:.1}%",
        re.improved_share() * 100.0
    );
}
