//! # quicspin-h3 — minimal HTTP/3-style request/response layer
//!
//! The paper issues HTTP/3 requests for landing pages and inspects the
//! `server:` response header to attribute spin-bit support to web-server
//! stacks (§4.2: "by far the most connections reach LiteSpeed
//! webservers"). This crate supplies exactly that surface:
//!
//! * [`Request`] — a GET with host and path, carrying the measurement
//!   study's identification hint (mirroring the paper's ethics appendix:
//!   "embedding our projectname as hint in every HTTP request");
//! * [`Response`] — status code, `server:` software identification,
//!   optional `location:` redirect target, and a body;
//! * redirect-chain helpers (the scanner follows at most
//!   [`MAX_REDIRECTS`], as the paper does).
//!
//! Substitution note (DESIGN.md): real HTTP/3 uses QPACK-compressed binary
//! header frames. Nothing in the study depends on header compression, so
//! this layer uses a line-oriented encoding that keeps traces readable
//! while exercising the same transport path (stream 0, request → chunked
//! response → FIN).

pub mod request;
pub mod response;

pub use request::Request;
pub use response::{Response, StatusCode};

/// The scanner follows at most this many redirects (paper §3.2.1:
/// "to limit the impact of our measurements, we only follow up to 3
/// redirects").
pub const MAX_REDIRECTS: usize = 3;
