//! HTTP/3-style requests.

/// Identification hint embedded in every request (cf. the paper's ethics
/// appendix: measurement traffic should identify itself).
pub const RESEARCH_HINT: &str = "quicspin-measurement-study; see reverse DNS for opt-out";

/// A GET request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Target host (SNI / `host:` header).
    pub host: String,
    /// Request path.
    pub path: String,
}

impl Request {
    /// Creates a GET for the landing page of `host`.
    pub fn landing_page(host: impl Into<String>) -> Self {
        Request {
            host: host.into(),
            path: "/".into(),
        }
    }

    /// Creates a GET for an arbitrary path.
    pub fn get(host: impl Into<String>, path: impl Into<String>) -> Self {
        Request {
            host: host.into(),
            path: path.into(),
        }
    }

    /// Serializes the request for stream 0.
    pub fn encode(&self) -> Vec<u8> {
        format!(
            "GET {} HTTP/3\r\nhost: {}\r\nuser-agent: quicspin/0.1\r\nx-research: {}\r\n\r\n",
            self.path, self.host, RESEARCH_HINT
        )
        .into_bytes()
    }

    /// Parses a request off the wire.
    pub fn parse(bytes: &[u8]) -> Option<Request> {
        let text = std::str::from_utf8(bytes).ok()?;
        let mut lines = text.split("\r\n");
        let request_line = lines.next()?;
        let mut parts = request_line.split(' ');
        if parts.next()? != "GET" {
            return None;
        }
        let path = parts.next()?.to_string();
        if parts.next()? != "HTTP/3" {
            return None;
        }
        let mut host = None;
        for line in lines {
            if let Some(value) = line.strip_prefix("host: ") {
                host = Some(value.to_string());
            }
        }
        Some(Request { host: host?, path })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_landing_page() {
        let req = Request::landing_page("www.example.com");
        let bytes = req.encode();
        assert_eq!(Request::parse(&bytes), Some(req));
    }

    #[test]
    fn roundtrip_custom_path() {
        let req = Request::get("www.example.org", "/index.html");
        assert_eq!(Request::parse(&req.encode()), Some(req));
    }

    #[test]
    fn encodes_research_hint() {
        let bytes = Request::landing_page("a.example").encode();
        let text = String::from_utf8(bytes).unwrap();
        assert!(text.contains("x-research"), "{text}");
        assert!(text.contains("quicspin"), "{text}");
    }

    #[test]
    fn rejects_non_get() {
        assert_eq!(Request::parse(b"POST / HTTP/3\r\nhost: x\r\n\r\n"), None);
    }

    #[test]
    fn rejects_wrong_protocol() {
        assert_eq!(Request::parse(b"GET / HTTP/1.1\r\nhost: x\r\n\r\n"), None);
    }

    #[test]
    fn rejects_missing_host() {
        assert_eq!(Request::parse(b"GET / HTTP/3\r\n\r\n"), None);
    }

    #[test]
    fn rejects_garbage() {
        assert_eq!(Request::parse(&[0xff, 0xfe, 0x00]), None);
        assert_eq!(Request::parse(b""), None);
    }
}
