//! HTTP/3-style responses.

/// Response status codes used by the population model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum StatusCode {
    /// 200 — the landing page.
    Ok,
    /// 301 — permanent redirect.
    MovedPermanently,
    /// 302 — temporary redirect.
    Found,
    /// 404 — no such page (still a QUIC-capable host).
    NotFound,
}

impl StatusCode {
    /// Numeric code.
    pub fn code(self) -> u16 {
        match self {
            StatusCode::Ok => 200,
            StatusCode::MovedPermanently => 301,
            StatusCode::Found => 302,
            StatusCode::NotFound => 404,
        }
    }

    /// Parses a numeric code.
    pub fn from_code(code: u16) -> Option<Self> {
        match code {
            200 => Some(StatusCode::Ok),
            301 => Some(StatusCode::MovedPermanently),
            302 => Some(StatusCode::Found),
            404 => Some(StatusCode::NotFound),
            _ => None,
        }
    }

    /// Whether this status redirects the client.
    pub fn is_redirect(self) -> bool {
        matches!(self, StatusCode::MovedPermanently | StatusCode::Found)
    }
}

/// A response header (body travels separately, possibly chunked).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// Status code.
    pub status: StatusCode,
    /// `server:` header — the web-server software identification the
    /// paper's §4.2 analysis keys on (e.g. "LiteSpeed").
    pub server: String,
    /// `location:` header on redirects.
    pub location: Option<String>,
    /// Declared body length.
    pub content_length: usize,
}

impl Response {
    /// Creates a 200 response.
    pub fn ok(server: impl Into<String>, content_length: usize) -> Self {
        Response {
            status: StatusCode::Ok,
            server: server.into(),
            location: None,
            content_length,
        }
    }

    /// Creates a redirect to `location`.
    pub fn redirect(server: impl Into<String>, location: impl Into<String>) -> Self {
        Response {
            status: StatusCode::MovedPermanently,
            server: server.into(),
            location: Some(location.into()),
            content_length: 0,
        }
    }

    /// Serializes the header block.
    pub fn encode_header(&self) -> Vec<u8> {
        let mut text = format!(
            "HTTP/3 {}\r\nserver: {}\r\ncontent-length: {}\r\n",
            self.status.code(),
            self.server,
            self.content_length
        );
        if let Some(location) = &self.location {
            text.push_str(&format!("location: {location}\r\n"));
        }
        text.push_str("\r\n");
        text.into_bytes()
    }

    /// Parses a header block from the start of `bytes`; returns the
    /// response and the number of bytes consumed (body starts there).
    pub fn parse_header(bytes: &[u8]) -> Option<(Response, usize)> {
        let end = find_header_end(bytes)?;
        let text = std::str::from_utf8(&bytes[..end]).ok()?;
        let mut lines = text.split("\r\n");
        let status_line = lines.next()?;
        let code: u16 = status_line.strip_prefix("HTTP/3 ")?.trim().parse().ok()?;
        let status = StatusCode::from_code(code)?;
        let mut server = String::new();
        let mut location = None;
        let mut content_length = 0usize;
        for line in lines {
            if let Some(v) = line.strip_prefix("server: ") {
                server = v.to_string();
            } else if let Some(v) = line.strip_prefix("location: ") {
                location = Some(v.to_string());
            } else if let Some(v) = line.strip_prefix("content-length: ") {
                content_length = v.trim().parse().ok()?;
            }
        }
        Some((
            Response {
                status,
                server,
                location,
                content_length,
            },
            end + 4,
        ))
    }
}

fn find_header_end(bytes: &[u8]) -> Option<usize> {
    bytes.windows(4).position(|w| w == b"\r\n\r\n")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_roundtrip() {
        let r = Response::ok("LiteSpeed", 34_000);
        let bytes = r.encode_header();
        let (back, consumed) = Response::parse_header(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(consumed, bytes.len());
    }

    #[test]
    fn redirect_roundtrip() {
        let r = Response::redirect("nginx", "https://www.example.com/");
        let (back, _) = Response::parse_header(&r.encode_header()).unwrap();
        assert_eq!(back.location.as_deref(), Some("https://www.example.com/"));
        assert!(back.status.is_redirect());
    }

    #[test]
    fn header_followed_by_body() {
        let r = Response::ok("imunify360-webshield", 4);
        let mut bytes = r.encode_header();
        bytes.extend_from_slice(b"body");
        let (back, consumed) = Response::parse_header(&bytes).unwrap();
        assert_eq!(back, r);
        assert_eq!(&bytes[consumed..], b"body");
    }

    #[test]
    fn incomplete_header_returns_none() {
        let r = Response::ok("LiteSpeed", 10);
        let bytes = r.encode_header();
        assert!(Response::parse_header(&bytes[..bytes.len() - 4]).is_none());
    }

    #[test]
    fn status_codes_roundtrip() {
        for s in [
            StatusCode::Ok,
            StatusCode::MovedPermanently,
            StatusCode::Found,
            StatusCode::NotFound,
        ] {
            assert_eq!(StatusCode::from_code(s.code()), Some(s));
        }
        assert_eq!(StatusCode::from_code(500), None);
    }

    #[test]
    fn redirect_classification() {
        assert!(StatusCode::MovedPermanently.is_redirect());
        assert!(StatusCode::Found.is_redirect());
        assert!(!StatusCode::Ok.is_redirect());
        assert!(!StatusCode::NotFound.is_redirect());
    }

    #[test]
    fn garbage_rejected() {
        assert!(Response::parse_header(b"\xff\xfe\r\n\r\n").is_none());
        assert!(Response::parse_header(b"HTTP/3 abc\r\n\r\n").is_none());
        assert!(Response::parse_header(b"HTTP/1.1 200\r\n\r\n").is_none());
    }
}
