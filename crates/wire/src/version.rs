//! QUIC version codes.
//!
//! The paper's adapted quic-go speaks QUIC v1 (RFC 9000) plus IETF draft
//! versions 27, 29, 32 and 34, so the simulated endpoints support the same
//! set. The spin bit is a *version-dependent* feature: it is defined for v1
//! and the late drafts used here.

use crate::error::WireError;

/// A QUIC protocol version supported by this stack.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Version {
    /// QUIC version 1 (RFC 9000), code `0x00000001`.
    V1,
    /// draft-ietf-quic-transport-27, code `0xff00001b`.
    Draft27,
    /// draft-ietf-quic-transport-29, code `0xff00001d`.
    Draft29,
    /// draft-ietf-quic-transport-32, code `0xff000020`.
    Draft32,
    /// draft-ietf-quic-transport-34, code `0xff000022`.
    Draft34,
}

/// All versions this stack can negotiate, in preference order (newest first).
pub const SUPPORTED: &[Version] = &[
    Version::V1,
    Version::Draft34,
    Version::Draft32,
    Version::Draft29,
    Version::Draft27,
];

impl Version {
    /// Wire code of this version.
    pub fn code(self) -> u32 {
        match self {
            Version::V1 => 0x0000_0001,
            Version::Draft27 => 0xff00_001b,
            Version::Draft29 => 0xff00_001d,
            Version::Draft32 => 0xff00_0020,
            Version::Draft34 => 0xff00_0022,
        }
    }

    /// Parses a wire code into a supported version.
    pub fn from_code(code: u32) -> Result<Self, WireError> {
        match code {
            0x0000_0001 => Ok(Version::V1),
            0xff00_001b => Ok(Version::Draft27),
            0xff00_001d => Ok(Version::Draft29),
            0xff00_0020 => Ok(Version::Draft32),
            0xff00_0022 => Ok(Version::Draft34),
            other => Err(WireError::UnknownVersion(other)),
        }
    }

    /// Whether the spin bit is defined for this version.
    ///
    /// The latest-spec spin bit (reserved bit 0x20 of the short header) is
    /// present in all versions this stack supports.
    pub fn supports_spin_bit(self) -> bool {
        true
    }

    /// Short human-readable name.
    pub fn name(self) -> &'static str {
        match self {
            Version::V1 => "v1",
            Version::Draft27 => "draft-27",
            Version::Draft29 => "draft-29",
            Version::Draft32 => "draft-32",
            Version::Draft34 => "draft-34",
        }
    }
}

impl core::fmt::Display for Version {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn codes_roundtrip() {
        for &v in SUPPORTED {
            assert_eq!(Version::from_code(v.code()).unwrap(), v);
        }
    }

    #[test]
    fn v1_code_is_one() {
        assert_eq!(Version::V1.code(), 1);
    }

    #[test]
    fn draft_codes_match_ietf_numbering() {
        // Draft version N is encoded as 0xff000000 + N.
        assert_eq!(Version::Draft27.code(), 0xff00_0000 + 27);
        assert_eq!(Version::Draft29.code(), 0xff00_0000 + 29);
        assert_eq!(Version::Draft32.code(), 0xff00_0000 + 32);
        assert_eq!(Version::Draft34.code(), 0xff00_0000 + 34);
    }

    #[test]
    fn unknown_code_rejected() {
        assert_eq!(
            Version::from_code(0xff00_0001),
            Err(WireError::UnknownVersion(0xff00_0001))
        );
        assert!(Version::from_code(0).is_err());
    }

    #[test]
    fn all_supported_versions_spin() {
        for &v in SUPPORTED {
            assert!(v.supports_spin_bit(), "{v} must support the spin bit");
        }
    }

    #[test]
    fn preference_order_puts_v1_first() {
        assert_eq!(SUPPORTED[0], Version::V1);
        assert_eq!(SUPPORTED.len(), 5);
    }

    #[test]
    fn display_matches_name() {
        assert_eq!(Version::V1.to_string(), "v1");
        assert_eq!(Version::Draft29.to_string(), "draft-29");
    }
}
