//! QUIC connection IDs (RFC 9000 §5.1): 0..=20 opaque bytes.

use crate::coding::{Reader, Writer};
use crate::error::WireError;

/// Maximum connection ID length allowed by QUIC v1.
pub const MAX_CID_LEN: usize = 20;

/// A QUIC connection ID: up to 20 opaque bytes, stored inline.
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ConnectionId {
    len: u8,
    bytes: [u8; MAX_CID_LEN],
}

impl ConnectionId {
    /// The zero-length connection ID.
    pub const EMPTY: ConnectionId = ConnectionId {
        len: 0,
        bytes: [0; MAX_CID_LEN],
    };

    /// Creates a connection ID from a slice; fails for slices longer than 20 bytes.
    pub fn new(data: &[u8]) -> Result<Self, WireError> {
        if data.len() > MAX_CID_LEN {
            return Err(WireError::InvalidCidLength(data.len()));
        }
        let mut bytes = [0u8; MAX_CID_LEN];
        bytes[..data.len()].copy_from_slice(data);
        Ok(ConnectionId {
            len: data.len() as u8,
            bytes,
        })
    }

    /// Derives an 8-byte connection ID deterministically from a u64 (useful
    /// for simulated endpoints; real stacks use random CIDs).
    pub fn from_u64(v: u64) -> Self {
        ConnectionId::new(&v.to_be_bytes()).expect("8 <= 20")
    }

    /// Length in bytes (0..=20).
    pub fn len(&self) -> usize {
        usize::from(self.len)
    }

    /// Whether this is the zero-length CID.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The CID bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.bytes[..self.len()]
    }

    /// Writes the raw CID bytes (no length prefix).
    pub fn encode_raw(&self, w: &mut Writer) {
        w.write_bytes(self.as_slice());
    }

    /// Writes a one-byte length followed by the CID bytes (long-header form).
    pub fn encode_with_len(&self, w: &mut Writer) {
        w.write_u8(self.len);
        w.write_bytes(self.as_slice());
    }

    /// Reads a CID of known length `len` (short-header form).
    pub fn decode_raw(r: &mut Reader<'_>, len: usize) -> Result<Self, WireError> {
        if len > MAX_CID_LEN {
            return Err(WireError::InvalidCidLength(len));
        }
        let data = r.read_bytes(len, "connection id")?;
        ConnectionId::new(data)
    }

    /// Reads a length-prefixed CID (long-header form).
    pub fn decode_with_len(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let len = usize::from(r.read_u8("connection id length")?);
        ConnectionId::decode_raw(r, len)
    }
}

impl core::fmt::Debug for ConnectionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "cid:")?;
        for b in self.as_slice() {
            write!(f, "{b:02x}")?;
        }
        if self.is_empty() {
            write!(f, "<empty>")?;
        }
        Ok(())
    }
}

impl core::fmt::Display for ConnectionId {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        core::fmt::Debug::fmt(self, f)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_cid() {
        let c = ConnectionId::EMPTY;
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.as_slice(), &[] as &[u8]);
    }

    #[test]
    fn rejects_over_long() {
        assert_eq!(
            ConnectionId::new(&[0u8; 21]),
            Err(WireError::InvalidCidLength(21))
        );
        assert!(ConnectionId::new(&[0u8; 20]).is_ok());
    }

    #[test]
    fn from_u64_is_eight_bytes_and_unique() {
        let a = ConnectionId::from_u64(1);
        let b = ConnectionId::from_u64(2);
        assert_eq!(a.len(), 8);
        assert_ne!(a, b);
        assert_eq!(a, ConnectionId::from_u64(1));
    }

    #[test]
    fn raw_roundtrip() {
        let c = ConnectionId::new(&[1, 2, 3, 4, 5]).unwrap();
        let mut w = Writer::new();
        c.encode_raw(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), 5);
        let mut r = Reader::new(&bytes);
        let back = ConnectionId::decode_raw(&mut r, 5).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn len_prefixed_roundtrip() {
        for n in [0usize, 1, 8, 20] {
            let data: Vec<u8> = (0..n as u8).collect();
            let c = ConnectionId::new(&data).unwrap();
            let mut w = Writer::new();
            c.encode_with_len(&mut w);
            let bytes = w.into_bytes();
            assert_eq!(bytes.len(), 1 + n);
            let mut r = Reader::new(&bytes);
            assert_eq!(ConnectionId::decode_with_len(&mut r).unwrap(), c);
        }
    }

    #[test]
    fn decode_raw_rejects_bad_length() {
        let bytes = [0u8; 32];
        let mut r = Reader::new(&bytes);
        assert!(matches!(
            ConnectionId::decode_raw(&mut r, 21),
            Err(WireError::InvalidCidLength(21))
        ));
    }

    #[test]
    fn debug_format_hex() {
        let c = ConnectionId::new(&[0xab, 0xcd]).unwrap();
        assert_eq!(format!("{c:?}"), "cid:abcd");
        assert_eq!(format!("{}", ConnectionId::EMPTY), "cid:<empty>");
    }

    proptest::proptest! {
        #[test]
        fn prop_roundtrip(data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..=20)) {
            let c = ConnectionId::new(&data).unwrap();
            let mut w = Writer::new();
            c.encode_with_len(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            let back = ConnectionId::decode_with_len(&mut r).unwrap();
            proptest::prop_assert_eq!(back.as_slice(), &data[..]);
        }
    }
}
