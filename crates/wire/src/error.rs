//! Wire-level error type.

use core::fmt;

/// Errors produced while encoding or decoding QUIC wire data.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum WireError {
    /// The input ended before a complete value could be read.
    UnexpectedEnd {
        /// What was being decoded when the input ran out.
        context: &'static str,
    },
    /// A varint exceeded the encodable range (2^62 - 1).
    VarIntRange(u64),
    /// A connection ID length outside 0..=20 was requested or decoded.
    InvalidCidLength(usize),
    /// The first byte did not have the fixed bit (0x40) set.
    FixedBitUnset,
    /// An unknown or unsupported QUIC version code.
    UnknownVersion(u32),
    /// An unknown frame type was encountered.
    UnknownFrameType(u64),
    /// A field carried a semantically invalid value.
    Malformed {
        /// What was malformed.
        context: &'static str,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::UnexpectedEnd { context } => {
                write!(f, "unexpected end of input while reading {context}")
            }
            WireError::VarIntRange(v) => write!(f, "value {v} exceeds varint range (2^62-1)"),
            WireError::InvalidCidLength(l) => {
                write!(f, "connection id length {l} outside 0..=20")
            }
            WireError::FixedBitUnset => write!(f, "fixed bit (0x40) not set in first byte"),
            WireError::UnknownVersion(v) => write!(f, "unknown QUIC version {v:#010x}"),
            WireError::UnknownFrameType(t) => write!(f, "unknown frame type {t:#x}"),
            WireError::Malformed { context } => write!(f, "malformed field: {context}"),
        }
    }
}

impl std::error::Error for WireError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = WireError::UnexpectedEnd { context: "varint" };
        assert!(e.to_string().contains("varint"));
        let e = WireError::VarIntRange(u64::MAX);
        assert!(e.to_string().contains("varint range"));
        let e = WireError::InvalidCidLength(33);
        assert!(e.to_string().contains("33"));
        let e = WireError::UnknownVersion(0xdead_beef);
        assert!(e.to_string().contains("0xdeadbeef"));
        let e = WireError::UnknownFrameType(0x99);
        assert!(e.to_string().contains("0x99"));
    }

    #[test]
    fn error_is_std_error() {
        fn takes_err<E: std::error::Error>(_e: E) {}
        takes_err(WireError::FixedBitUnset);
    }
}
