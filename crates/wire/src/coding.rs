//! Byte-level reader/writer primitives shared by all codecs.

use crate::error::WireError;

/// Cursor over an immutable byte slice with checked reads.
#[derive(Debug, Clone)]
pub struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    /// Creates a reader over `buf`, positioned at the start.
    pub fn new(buf: &'a [u8]) -> Self {
        Reader { buf, pos: 0 }
    }

    /// Number of bytes not yet consumed.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether all bytes have been consumed.
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    /// Current offset from the start of the underlying slice.
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Reads one byte.
    pub fn read_u8(&mut self, context: &'static str) -> Result<u8, WireError> {
        if self.remaining() < 1 {
            return Err(WireError::UnexpectedEnd { context });
        }
        let b = self.buf[self.pos];
        self.pos += 1;
        Ok(b)
    }

    /// Reads a big-endian u16.
    pub fn read_u16(&mut self, context: &'static str) -> Result<u16, WireError> {
        let bytes = self.read_bytes(2, context)?;
        Ok(u16::from_be_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a big-endian u32.
    pub fn read_u32(&mut self, context: &'static str) -> Result<u32, WireError> {
        let bytes = self.read_bytes(4, context)?;
        Ok(u32::from_be_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads `n` bytes as a borrowed slice.
    pub fn read_bytes(&mut self, n: usize, context: &'static str) -> Result<&'a [u8], WireError> {
        if self.remaining() < n {
            return Err(WireError::UnexpectedEnd { context });
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Returns the rest of the buffer and consumes it.
    pub fn read_rest(&mut self) -> &'a [u8] {
        let s = &self.buf[self.pos..];
        self.pos = self.buf.len();
        s
    }

    /// Peeks at the next byte without consuming it.
    pub fn peek_u8(&self) -> Option<u8> {
        self.buf.get(self.pos).copied()
    }
}

/// Growable output buffer with big-endian primitive writers.
#[derive(Debug, Default)]
pub struct Writer {
    buf: Vec<u8>,
}

impl Writer {
    /// Creates an empty writer.
    pub fn new() -> Self {
        Writer { buf: Vec::new() }
    }

    /// Creates a writer with `cap` bytes of pre-allocated capacity.
    pub fn with_capacity(cap: usize) -> Self {
        Writer {
            buf: Vec::with_capacity(cap),
        }
    }

    /// Creates a writer that reuses `buf`'s allocation: contents are
    /// cleared and at least `min_capacity` bytes are ensured.
    pub fn from_vec(mut buf: Vec<u8>, min_capacity: usize) -> Self {
        buf.clear();
        buf.reserve(min_capacity);
        Writer { buf }
    }

    /// Bytes written so far.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Appends one byte.
    pub fn write_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a big-endian u16.
    pub fn write_u16(&mut self, v: u16) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a big-endian u32.
    pub fn write_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_be_bytes());
    }

    /// Appends a byte slice verbatim.
    pub fn write_bytes(&mut self, v: &[u8]) {
        self.buf.extend_from_slice(v);
    }

    /// Overwrites a previously written big-endian u16 at byte offset `at`
    /// (for back-patching a length field after the payload is known).
    pub fn patch_u16(&mut self, at: usize, v: u16) {
        self.buf[at..at + 2].copy_from_slice(&v.to_be_bytes());
    }

    /// Consumes the writer, returning the accumulated bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Borrows the accumulated bytes.
    pub fn as_slice(&self) -> &[u8] {
        &self.buf
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_primitives() {
        let mut w = Writer::new();
        w.write_u8(0xab);
        w.write_u16(0x1234);
        w.write_u32(0xdead_beef);
        w.write_bytes(b"xyz");
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        assert_eq!(r.read_u8("t").unwrap(), 0xab);
        assert_eq!(r.read_u16("t").unwrap(), 0x1234);
        assert_eq!(r.read_u32("t").unwrap(), 0xdead_beef);
        assert_eq!(r.read_bytes(3, "t").unwrap(), b"xyz");
        assert!(r.is_empty());
    }

    #[test]
    fn reader_underflow_reports_context() {
        let mut r = Reader::new(&[0x01]);
        assert_eq!(r.read_u8("first").unwrap(), 1);
        let err = r.read_u16("second").unwrap_err();
        assert_eq!(err, WireError::UnexpectedEnd { context: "second" });
    }

    #[test]
    fn read_rest_consumes_everything() {
        let mut r = Reader::new(&[1, 2, 3, 4]);
        r.read_u8("t").unwrap();
        assert_eq!(r.read_rest(), &[2, 3, 4]);
        assert!(r.is_empty());
        assert_eq!(r.read_rest(), &[] as &[u8]);
    }

    #[test]
    fn peek_does_not_advance() {
        let r0 = Reader::new(&[7, 8]);
        let mut r = r0.clone();
        assert_eq!(r.peek_u8(), Some(7));
        assert_eq!(r.position(), 0);
        assert_eq!(r.read_u8("t").unwrap(), 7);
        assert_eq!(r.peek_u8(), Some(8));
    }

    #[test]
    fn writer_capacity_and_len() {
        let mut w = Writer::with_capacity(64);
        assert!(w.is_empty());
        w.write_bytes(&[0; 10]);
        assert_eq!(w.len(), 10);
        assert_eq!(w.as_slice().len(), 10);
    }
}
