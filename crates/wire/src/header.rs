//! QUIC packet headers (RFC 9000 §17).
//!
//! Two header forms exist:
//!
//! * **Long headers** carry the version and both connection IDs and are used
//!   during connection establishment (Initial, 0-RTT, Handshake, Retry).
//!   Long-header packets never carry a spin bit.
//! * **Short headers** (1-RTT) carry only the destination CID. Bit `0x20`
//!   of the first byte is the **latency spin bit** (RFC 9000 §17.3.1 /
//!   §17.4) — the one bit this entire study is about.
//!
//! Short-header first byte layout (RFC 9000 §17.3.1):
//!
//! ```text
//!   0 1 2 3 4 5 6 7
//!  +-+-+-+-+-+-+-+-+
//!  |0|1|S|R R|K|P P|
//!  +-+-+-+-+-+-+-+-+
//!   | |  \    \  \__ packet number length - 1 (2 bits)
//!   | |   \    \____ key phase (not modelled; always 0 here)
//!   | |    \________ reserved bits (0 without header protection)
//!   | \_____________ SPIN BIT
//!   \_______________ header form (0 = short) / fixed bit (1)
//! ```

use crate::cid::ConnectionId;
use crate::coding::{Reader, Writer};
use crate::error::WireError;
use crate::packet::PacketNumber;
use crate::version::Version;

/// Bit 0x80: header form (1 = long header).
pub const FORM_BIT: u8 = 0x80;
/// Bit 0x40: fixed bit, must be 1 in all v1 packets.
pub const FIXED_BIT: u8 = 0x40;
/// Bit 0x20 of a short header: the latency spin bit.
pub const SPIN_BIT: u8 = 0x20;
/// Bits 0x18 of a short header: reserved. Our endpoints can optionally
/// carry the Valid Edge Counter (De Vaere et al.) here — see
/// `quicspin-core`'s `vec_counter` module. Plain RFC 9000 endpoints
/// leave them zero (they are greased on the real wire; the simulator
/// keeps them meaningful so the VEC ablation can run).
pub const VEC_MASK: u8 = 0x18;
/// Shift of the VEC within the first byte.
pub const VEC_SHIFT: u8 = 3;
/// Bit 0x04 of a short header: key phase (unused in the simulation).
pub const KEY_PHASE_BIT: u8 = 0x04;

/// Long header packet types (RFC 9000 Table 5).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum LongType {
    /// Initial packet (carries the first CRYPTO flight).
    Initial,
    /// 0-RTT packet (unused by the scanner but decodable).
    ZeroRtt,
    /// Handshake packet.
    Handshake,
    /// Retry packet.
    Retry,
}

impl LongType {
    fn bits(self) -> u8 {
        match self {
            LongType::Initial => 0b00,
            LongType::ZeroRtt => 0b01,
            LongType::Handshake => 0b10,
            LongType::Retry => 0b11,
        }
    }

    fn from_bits(bits: u8) -> Self {
        match bits & 0b11 {
            0b00 => LongType::Initial,
            0b01 => LongType::ZeroRtt,
            0b10 => LongType::Handshake,
            _ => LongType::Retry,
        }
    }
}

/// A long header (Initial / 0-RTT / Handshake / Retry).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LongHeader {
    /// Packet type.
    pub ty: LongType,
    /// Negotiated (or attempted) QUIC version.
    pub version: Version,
    /// Destination connection ID.
    pub dcid: ConnectionId,
    /// Source connection ID.
    pub scid: ConnectionId,
    /// Full (untruncated) packet number. `None` for Retry.
    pub packet_number: Option<PacketNumber>,
}

/// A short (1-RTT) header. This is where the spin bit lives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ShortHeader {
    /// The latency spin bit.
    pub spin: bool,
    /// The Valid Edge Counter (0..=3) in the reserved bits; 0 when the
    /// endpoint does not participate in the VEC extension.
    pub vec: u8,
    /// Destination connection ID.
    pub dcid: ConnectionId,
    /// Full (untruncated) packet number.
    pub packet_number: PacketNumber,
}

/// Either header form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Header {
    /// Long header (handshake phase).
    Long(LongHeader),
    /// Short header (1-RTT phase; carries the spin bit).
    Short(ShortHeader),
}

impl Header {
    /// The destination connection ID of either form.
    pub fn dcid(&self) -> &ConnectionId {
        match self {
            Header::Long(h) => &h.dcid,
            Header::Short(h) => &h.dcid,
        }
    }

    /// The spin bit if this is a short header.
    pub fn spin(&self) -> Option<bool> {
        match self {
            Header::Long(_) => None,
            Header::Short(h) => Some(h.spin),
        }
    }

    /// The full packet number, if present.
    pub fn packet_number(&self) -> Option<PacketNumber> {
        match self {
            Header::Long(h) => h.packet_number,
            Header::Short(h) => Some(h.packet_number),
        }
    }

    /// Whether this is a short (1-RTT) header.
    pub fn is_short(&self) -> bool {
        matches!(self, Header::Short(_))
    }
}

/// The fields of a short-header packet that a *passive on-path observer*
/// may legally see: the first byte (form/fixed/spin bits) and the
/// destination connection ID. The packet number is encrypted on the real
/// wire; observers in this crate set `ground_truth_pn` only when explicitly
/// granted oracle access (as the paper does via qlog on its own client).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ObservableShortHeader {
    /// The spin bit as visible on the wire.
    pub spin: bool,
    /// The VEC bits as visible on the wire (0 for non-participating
    /// endpoints).
    pub vec: u8,
    /// Destination connection ID (routable by observers).
    pub dcid: ConnectionId,
}

impl ShortHeader {
    /// Projects this header onto the observer-legal view.
    pub fn observable(&self) -> ObservableShortHeader {
        ObservableShortHeader {
            spin: self.spin,
            vec: self.vec,
            dcid: self.dcid,
        }
    }
}

/// Number of bytes used to encode packet numbers on the wire.
///
/// Real stacks choose 1-4 bytes based on the ACK state; the simulator
/// always uses 4 to keep expansion unambiguous even across long reordering
/// windows, which RFC 9000 Appendix A explicitly allows.
pub const PN_WIRE_LEN: usize = 4;

impl LongHeader {
    /// Encodes the long header (including the truncated packet number).
    pub fn encode(&self, w: &mut Writer) {
        let mut first = FORM_BIT | FIXED_BIT | (self.ty.bits() << 4);
        if self.packet_number.is_some() {
            first |= (PN_WIRE_LEN as u8) - 1;
        }
        w.write_u8(first);
        w.write_u32(self.version.code());
        self.dcid.encode_with_len(w);
        self.scid.encode_with_len(w);
        if let Some(pn) = self.packet_number {
            w.write_u32(pn.value() as u32);
        }
    }

    fn decode_after_first_byte(first: u8, r: &mut Reader<'_>) -> Result<Self, WireError> {
        let ty = LongType::from_bits(first >> 4);
        let version = Version::from_code(r.read_u32("long header version")?)?;
        let dcid = ConnectionId::decode_with_len(r)?;
        let scid = ConnectionId::decode_with_len(r)?;
        let packet_number = if ty == LongType::Retry {
            None
        } else {
            Some(PacketNumber::new(u64::from(r.read_u32("long header pn")?)))
        };
        Ok(LongHeader {
            ty,
            version,
            dcid,
            scid,
            packet_number,
        })
    }
}

impl ShortHeader {
    /// Encodes the short header. `cid_len` is implicit on the real wire;
    /// decoding needs it supplied out-of-band (as real demultiplexers do).
    pub fn encode(&self, w: &mut Writer) {
        let mut first = FIXED_BIT | ((PN_WIRE_LEN as u8) - 1);
        if self.spin {
            first |= SPIN_BIT;
        }
        first |= (self.vec.min(3) << VEC_SHIFT) & VEC_MASK;
        w.write_u8(first);
        self.dcid.encode_raw(w);
        w.write_u32(self.packet_number.value() as u32);
    }

    fn decode_after_first_byte(
        first: u8,
        r: &mut Reader<'_>,
        cid_len: usize,
    ) -> Result<Self, WireError> {
        let spin = first & SPIN_BIT != 0;
        let vec = (first & VEC_MASK) >> VEC_SHIFT;
        let dcid = ConnectionId::decode_raw(r, cid_len)?;
        let packet_number = PacketNumber::new(u64::from(r.read_u32("short header pn")?));
        Ok(ShortHeader {
            spin,
            vec,
            dcid,
            packet_number,
        })
    }
}

impl Header {
    /// Encodes either header form.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Header::Long(h) => h.encode(w),
            Header::Short(h) => h.encode(w),
        }
    }

    /// Decodes a header. Short headers need the expected CID length, which a
    /// real load balancer / endpoint knows out-of-band.
    pub fn decode(r: &mut Reader<'_>, cid_len: usize) -> Result<Self, WireError> {
        let first = r.read_u8("header first byte")?;
        if first & FIXED_BIT == 0 {
            return Err(WireError::FixedBitUnset);
        }
        if first & FORM_BIT != 0 {
            Ok(Header::Long(LongHeader::decode_after_first_byte(first, r)?))
        } else {
            Ok(Header::Short(ShortHeader::decode_after_first_byte(
                first, r, cid_len,
            )?))
        }
    }

    /// Peeks only the observer-visible bits of a short-header datagram
    /// without consuming anything else: returns `None` for long headers.
    pub fn peek_observable(buf: &[u8], cid_len: usize) -> Option<ObservableShortHeader> {
        let mut r = Reader::new(buf);
        let first = r.read_u8("first").ok()?;
        if first & FIXED_BIT == 0 || first & FORM_BIT != 0 {
            return None;
        }
        let dcid = ConnectionId::decode_raw(&mut r, cid_len).ok()?;
        Some(ObservableShortHeader {
            spin: first & SPIN_BIT != 0,
            vec: (first & VEC_MASK) >> VEC_SHIFT,
            dcid,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cid(bytes: &[u8]) -> ConnectionId {
        ConnectionId::new(bytes).unwrap()
    }

    #[test]
    fn short_header_spin_bit_position() {
        for spin in [false, true] {
            let h = ShortHeader {
                spin,
                vec: 0,
                dcid: cid(&[1, 2, 3, 4, 5, 6, 7, 8]),
                packet_number: PacketNumber::new(7),
            };
            let mut w = Writer::new();
            h.encode(&mut w);
            let bytes = w.into_bytes();
            // First byte: form=0, fixed=1, spin as set.
            assert_eq!(bytes[0] & FORM_BIT, 0);
            assert_eq!(bytes[0] & FIXED_BIT, FIXED_BIT);
            assert_eq!(bytes[0] & SPIN_BIT != 0, spin);
        }
    }

    #[test]
    fn short_header_roundtrip() {
        let h = ShortHeader {
            spin: true,
            vec: 2,
            dcid: cid(&[9; 8]),
            packet_number: PacketNumber::new(0xabcd),
        };
        let mut w = Writer::new();
        h.encode(&mut w);
        let bytes = w.into_bytes();
        let mut r = Reader::new(&bytes);
        match Header::decode(&mut r, 8).unwrap() {
            Header::Short(back) => assert_eq!(back, h),
            other => panic!("expected short header, got {other:?}"),
        }
    }

    #[test]
    fn long_header_roundtrip_all_types() {
        for (ty, has_pn) in [
            (LongType::Initial, true),
            (LongType::ZeroRtt, true),
            (LongType::Handshake, true),
            (LongType::Retry, false),
        ] {
            let h = LongHeader {
                ty,
                version: Version::V1,
                dcid: cid(&[1; 8]),
                scid: cid(&[2; 8]),
                packet_number: has_pn.then(|| PacketNumber::new(42)),
            };
            let mut w = Writer::new();
            h.encode(&mut w);
            let bytes = w.into_bytes();
            let mut r = Reader::new(&bytes);
            match Header::decode(&mut r, 8).unwrap() {
                Header::Long(back) => assert_eq!(back, h, "type {ty:?}"),
                other => panic!("expected long header, got {other:?}"),
            }
        }
    }

    #[test]
    fn long_headers_have_no_spin() {
        let h = Header::Long(LongHeader {
            ty: LongType::Initial,
            version: Version::V1,
            dcid: ConnectionId::EMPTY,
            scid: ConnectionId::EMPTY,
            packet_number: Some(PacketNumber::new(0)),
        });
        assert_eq!(h.spin(), None);
        assert!(!h.is_short());
    }

    #[test]
    fn fixed_bit_enforced() {
        let mut r = Reader::new(&[0x00, 0x00]);
        assert_eq!(Header::decode(&mut r, 0), Err(WireError::FixedBitUnset));
    }

    #[test]
    fn draft_version_roundtrip() {
        let h = LongHeader {
            ty: LongType::Handshake,
            version: Version::Draft29,
            dcid: cid(&[3; 4]),
            scid: cid(&[4; 4]),
            packet_number: Some(PacketNumber::new(1)),
        };
        let mut w = Writer::new();
        h.encode(&mut w);
        let mut r = Reader::new(w.as_slice());
        match Header::decode(&mut r, 4).unwrap() {
            Header::Long(back) => assert_eq!(back.version, Version::Draft29),
            _ => panic!(),
        }
    }

    #[test]
    fn peek_observable_sees_spin_and_dcid_only() {
        let h = ShortHeader {
            spin: true,
            vec: 3,
            dcid: cid(&[7; 8]),
            packet_number: PacketNumber::new(123),
        };
        let mut w = Writer::new();
        h.encode(&mut w);
        let obs = Header::peek_observable(w.as_slice(), 8).unwrap();
        assert!(obs.spin);
        assert_eq!(obs.vec, 3);
        assert_eq!(obs.dcid, cid(&[7; 8]));
    }

    #[test]
    fn peek_observable_ignores_long_headers() {
        let h = LongHeader {
            ty: LongType::Initial,
            version: Version::V1,
            dcid: cid(&[1; 8]),
            scid: cid(&[2; 8]),
            packet_number: Some(PacketNumber::new(0)),
        };
        let mut w = Writer::new();
        h.encode(&mut w);
        assert!(Header::peek_observable(w.as_slice(), 8).is_none());
        assert!(Header::peek_observable(&[], 8).is_none());
    }

    #[test]
    fn observable_projection_matches_header() {
        let h = ShortHeader {
            spin: false,
            vec: 1,
            dcid: cid(&[5; 8]),
            packet_number: PacketNumber::new(9),
        };
        let obs = h.observable();
        assert!(!obs.spin);
        assert_eq!(obs.vec, 1);
        assert_eq!(obs.dcid, h.dcid);
    }

    proptest::proptest! {
        #[test]
        fn prop_short_roundtrip(
            spin in proptest::prelude::any::<bool>(),
            pn in 0u64..u64::from(u32::MAX),
            cid_bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..=20),
        ) {
            let h = ShortHeader {
                spin,
                vec: (pn % 4) as u8,
                dcid: ConnectionId::new(&cid_bytes).unwrap(),
                packet_number: PacketNumber::new(pn),
            };
            let mut w = Writer::new();
            h.encode(&mut w);
            let mut r = Reader::new(w.as_slice());
            let back = Header::decode(&mut r, cid_bytes.len()).unwrap();
            proptest::prop_assert_eq!(back, Header::Short(h));
        }
    }
}
