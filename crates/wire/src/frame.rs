//! QUIC frames (RFC 9000 §19) — the subset the simulated endpoints use.

use crate::coding::{Reader, Writer};
use crate::error::WireError;
use crate::varint;

/// One contiguous range of acknowledged packet numbers, inclusive.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AckRange {
    /// Smallest packet number in the range.
    pub start: u64,
    /// Largest packet number in the range.
    pub end: u64,
}

impl AckRange {
    /// Creates a range; panics if `start > end` (a programming error).
    pub fn new(start: u64, end: u64) -> Self {
        assert!(start <= end, "AckRange start {start} > end {end}");
        AckRange { start, end }
    }

    /// Number of packets covered.
    pub fn len(&self) -> u64 {
        self.end - self.start + 1
    }

    /// Ranges are never empty.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether `pn` falls inside this range.
    pub fn contains(&self, pn: u64) -> bool {
        pn >= self.start && pn <= self.end
    }
}

/// The QUIC frames modelled by this stack.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Frame {
    /// PADDING (type 0x00). `len` consecutive padding bytes.
    Padding {
        /// Number of padding bytes this entry represents.
        len: usize,
    },
    /// PING (type 0x01): elicits an ACK.
    Ping,
    /// ACK (type 0x02). Ranges are ordered descending by packet number, the
    /// first range containing `largest`.
    Ack {
        /// Largest packet number being acknowledged.
        largest: u64,
        /// ACK delay in microseconds (already scaled by ack_delay_exponent).
        delay_us: u64,
        /// Acknowledged ranges, descending, first contains `largest`.
        ranges: Vec<AckRange>,
    },
    /// CRYPTO (type 0x06): carries the simulated TLS handshake blobs.
    Crypto {
        /// Offset in the crypto stream.
        offset: u64,
        /// Handshake payload bytes.
        data: Vec<u8>,
    },
    /// STREAM (types 0x08..=0x0f, always encoded with offset+len+fin bits).
    Stream {
        /// Stream ID.
        id: u64,
        /// Offset of `data` in the stream.
        offset: u64,
        /// Whether this frame ends the stream.
        fin: bool,
        /// Stream payload bytes.
        data: Vec<u8>,
    },
    /// NEW_CONNECTION_ID (type 0x18), simplified: sequence number + CID bytes.
    NewConnectionId {
        /// Sequence number of the issued CID.
        seq: u64,
        /// The issued connection ID bytes.
        cid: Vec<u8>,
    },
    /// CONNECTION_CLOSE (type 0x1c), transport error class.
    ConnectionClose {
        /// Transport error code.
        error_code: u64,
        /// Human-readable reason.
        reason: String,
    },
    /// HANDSHAKE_DONE (type 0x1e), server → client only.
    HandshakeDone,
}

impl Frame {
    /// Whether this frame is ack-eliciting (RFC 9002 §2).
    pub fn is_ack_eliciting(&self) -> bool {
        !matches!(
            self,
            Frame::Ack { .. } | Frame::Padding { .. } | Frame::ConnectionClose { .. }
        )
    }

    /// Encodes the frame into `w`.
    pub fn encode(&self, w: &mut Writer) {
        match self {
            Frame::Padding { len } => {
                for _ in 0..*len {
                    w.write_u8(0x00);
                }
            }
            Frame::Ping => w.write_u8(0x01),
            Frame::Ack {
                largest,
                delay_us,
                ranges,
            } => {
                assert!(!ranges.is_empty(), "ACK frame must carry >= 1 range");
                assert_eq!(
                    ranges[0].end, *largest,
                    "first ACK range must contain the largest pn"
                );
                w.write_u8(0x02);
                varint::write(w, *largest);
                varint::write(w, *delay_us);
                varint::write(w, (ranges.len() - 1) as u64);
                // First range: number of packets below `largest`, inclusive.
                varint::write(w, ranges[0].end - ranges[0].start);
                let mut smallest = ranges[0].start;
                for range in &ranges[1..] {
                    // Gap: packets between this range and the previous one,
                    // encoded as gap-1 (RFC 9000 §19.3.1).
                    let gap = smallest - range.end - 2;
                    varint::write(w, gap);
                    varint::write(w, range.end - range.start);
                    smallest = range.start;
                }
            }
            Frame::Crypto { offset, data } => {
                w.write_u8(0x06);
                varint::write(w, *offset);
                varint::write(w, data.len() as u64);
                w.write_bytes(data);
            }
            Frame::Stream {
                id,
                offset,
                fin,
                data,
            } => {
                // 0x08 | OFF(0x04) | LEN(0x02) | FIN(0x01)
                let ty = 0x08 | 0x04 | 0x02 | u8::from(*fin);
                w.write_u8(ty);
                varint::write(w, *id);
                varint::write(w, *offset);
                varint::write(w, data.len() as u64);
                w.write_bytes(data);
            }
            Frame::NewConnectionId { seq, cid } => {
                w.write_u8(0x18);
                varint::write(w, *seq);
                w.write_u8(cid.len() as u8);
                w.write_bytes(cid);
            }
            Frame::ConnectionClose { error_code, reason } => {
                w.write_u8(0x1c);
                varint::write(w, *error_code);
                varint::write(w, reason.len() as u64);
                w.write_bytes(reason.as_bytes());
            }
            Frame::HandshakeDone => w.write_u8(0x1e),
        }
    }

    /// Decodes one frame. Consecutive PADDING bytes are coalesced.
    pub fn decode(r: &mut Reader<'_>) -> Result<Self, WireError> {
        let ty = varint::read(r, "frame type")?;
        match ty {
            0x00 => {
                let mut len = 1;
                while r.peek_u8() == Some(0x00) {
                    r.read_u8("padding")?;
                    len += 1;
                }
                Ok(Frame::Padding { len })
            }
            0x01 => Ok(Frame::Ping),
            0x02 | 0x03 => {
                let largest = varint::read(r, "ack largest")?;
                let delay_us = varint::read(r, "ack delay")?;
                let range_count = varint::read(r, "ack range count")?;
                let first_len = varint::read(r, "ack first range")?;
                if first_len > largest {
                    return Err(WireError::Malformed {
                        context: "ack first range exceeds largest",
                    });
                }
                let mut ranges = vec![AckRange::new(largest - first_len, largest)];
                let mut smallest = largest - first_len;
                for _ in 0..range_count {
                    let gap = varint::read(r, "ack gap")?;
                    let len = varint::read(r, "ack range len")?;
                    let end = smallest.checked_sub(gap + 2).ok_or(WireError::Malformed {
                        context: "ack gap underflow",
                    })?;
                    let start = end.checked_sub(len).ok_or(WireError::Malformed {
                        context: "ack range underflow",
                    })?;
                    ranges.push(AckRange::new(start, end));
                    smallest = start;
                }
                // Type 0x03 (ACK_ECN) carries three extra counts; skip them.
                if ty == 0x03 {
                    for _ in 0..3 {
                        varint::read(r, "ack ecn count")?;
                    }
                }
                Ok(Frame::Ack {
                    largest,
                    delay_us,
                    ranges,
                })
            }
            0x06 => {
                let offset = varint::read(r, "crypto offset")?;
                let len = varint::read(r, "crypto len")? as usize;
                let data = r.read_bytes(len, "crypto data")?.to_vec();
                Ok(Frame::Crypto { offset, data })
            }
            0x08..=0x0f => {
                let has_off = ty & 0x04 != 0;
                let has_len = ty & 0x02 != 0;
                let fin = ty & 0x01 != 0;
                let id = varint::read(r, "stream id")?;
                let offset = if has_off {
                    varint::read(r, "stream offset")?
                } else {
                    0
                };
                let data = if has_len {
                    let len = varint::read(r, "stream len")? as usize;
                    r.read_bytes(len, "stream data")?.to_vec()
                } else {
                    r.read_rest().to_vec()
                };
                Ok(Frame::Stream {
                    id,
                    offset,
                    fin,
                    data,
                })
            }
            0x18 => {
                let seq = varint::read(r, "ncid seq")?;
                let len = usize::from(r.read_u8("ncid len")?);
                let cid = r.read_bytes(len, "ncid cid")?.to_vec();
                Ok(Frame::NewConnectionId { seq, cid })
            }
            0x1c | 0x1d => {
                let error_code = varint::read(r, "close code")?;
                let len = varint::read(r, "close reason len")? as usize;
                let reason =
                    String::from_utf8_lossy(r.read_bytes(len, "close reason")?).into_owned();
                Ok(Frame::ConnectionClose { error_code, reason })
            }
            0x1e => Ok(Frame::HandshakeDone),
            other => Err(WireError::UnknownFrameType(other)),
        }
    }

    /// Decodes all frames in a packet payload.
    pub fn decode_all(payload: &[u8]) -> Result<Vec<Frame>, WireError> {
        let mut r = Reader::new(payload);
        // Typical packets carry 1-3 frames; start big enough to avoid the
        // early growth reallocations on the receive hot path.
        let mut frames = Vec::with_capacity(4);
        while !r.is_empty() {
            frames.push(Frame::decode(&mut r)?);
        }
        Ok(frames)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(f: &Frame) -> Frame {
        let mut w = Writer::new();
        f.encode(&mut w);
        let mut r = Reader::new(w.as_slice());
        let back = Frame::decode(&mut r).unwrap();
        assert!(r.is_empty(), "trailing bytes after {f:?}");
        back
    }

    #[test]
    fn ping_and_handshake_done() {
        assert_eq!(roundtrip(&Frame::Ping), Frame::Ping);
        assert_eq!(roundtrip(&Frame::HandshakeDone), Frame::HandshakeDone);
    }

    #[test]
    fn padding_coalesces() {
        let f = Frame::Padding { len: 17 };
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn ack_single_range() {
        let f = Frame::Ack {
            largest: 100,
            delay_us: 25,
            ranges: vec![AckRange::new(90, 100)],
        };
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn ack_multi_range_with_gaps() {
        // Acknowledge 100..=100, 95..=97, 0..=10.
        let f = Frame::Ack {
            largest: 100,
            delay_us: 0,
            ranges: vec![
                AckRange::new(100, 100),
                AckRange::new(95, 97),
                AckRange::new(0, 10),
            ],
        };
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn ack_malformed_first_range_rejected() {
        // largest=5 but first range length 10.
        let mut w = Writer::new();
        w.write_u8(0x02);
        varint::write(&mut w, 5);
        varint::write(&mut w, 0);
        varint::write(&mut w, 0);
        varint::write(&mut w, 10);
        let mut r = Reader::new(w.as_slice());
        assert!(matches!(
            Frame::decode(&mut r),
            Err(WireError::Malformed { .. })
        ));
    }

    #[test]
    fn crypto_roundtrip() {
        let f = Frame::Crypto {
            offset: 123,
            data: b"client hello".to_vec(),
        };
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn stream_roundtrip_with_fin() {
        for fin in [false, true] {
            let f = Frame::Stream {
                id: 0,
                offset: 42,
                fin,
                data: vec![1, 2, 3],
            };
            assert_eq!(roundtrip(&f), f);
        }
    }

    #[test]
    fn connection_close_roundtrip() {
        let f = Frame::ConnectionClose {
            error_code: 0x0a,
            reason: "no error".into(),
        };
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn new_connection_id_roundtrip() {
        let f = Frame::NewConnectionId {
            seq: 3,
            cid: vec![9; 8],
        };
        assert_eq!(roundtrip(&f), f);
    }

    #[test]
    fn unknown_type_rejected() {
        let mut w = Writer::new();
        varint::write(&mut w, 0x42);
        let mut r = Reader::new(w.as_slice());
        assert_eq!(
            Frame::decode(&mut r),
            Err(WireError::UnknownFrameType(0x42))
        );
    }

    #[test]
    fn ack_eliciting_classification() {
        assert!(Frame::Ping.is_ack_eliciting());
        assert!(Frame::Crypto {
            offset: 0,
            data: vec![]
        }
        .is_ack_eliciting());
        assert!(Frame::HandshakeDone.is_ack_eliciting());
        assert!(!Frame::Padding { len: 1 }.is_ack_eliciting());
        assert!(!Frame::Ack {
            largest: 0,
            delay_us: 0,
            ranges: vec![AckRange::new(0, 0)]
        }
        .is_ack_eliciting());
        assert!(!Frame::ConnectionClose {
            error_code: 0,
            reason: String::new()
        }
        .is_ack_eliciting());
    }

    #[test]
    fn decode_all_sequence() {
        let mut w = Writer::new();
        Frame::Ping.encode(&mut w);
        Frame::Padding { len: 3 }.encode(&mut w);
        Frame::HandshakeDone.encode(&mut w);
        let frames = Frame::decode_all(w.as_slice()).unwrap();
        assert_eq!(
            frames,
            vec![Frame::Ping, Frame::Padding { len: 3 }, Frame::HandshakeDone]
        );
    }

    #[test]
    fn ack_range_contains_and_len() {
        let r = AckRange::new(5, 9);
        assert_eq!(r.len(), 5);
        assert!(r.contains(5) && r.contains(9) && r.contains(7));
        assert!(!r.contains(4) && !r.contains(10));
        assert!(!r.is_empty());
    }

    proptest::proptest! {
        #[test]
        fn prop_ack_roundtrip(
            // Build random descending, disjoint ranges.
            seed_ranges in proptest::collection::vec((0u64..1000, 1u64..50), 1..8)
        ) {
            // Construct disjoint descending ranges from random (gap, len) pairs.
            let mut ranges = Vec::new();
            let mut cursor: u64 = 100_000;
            for (gap, len) in seed_ranges {
                let end = cursor.saturating_sub(gap + 2);
                let start = end.saturating_sub(len);
                if end == 0 || start == 0 { break; }
                ranges.push(AckRange::new(start, end));
                cursor = start;
            }
            proptest::prop_assume!(!ranges.is_empty());
            let f = Frame::Ack {
                largest: ranges[0].end,
                delay_us: 17,
                ranges: ranges.clone(),
            };
            proptest::prop_assert_eq!(roundtrip(&f), f);
        }

        #[test]
        fn prop_stream_roundtrip(
            id in 0u64..1000,
            offset in 0u64..1_000_000,
            fin in proptest::prelude::any::<bool>(),
            data in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..512),
        ) {
            let f = Frame::Stream { id, offset, fin, data };
            proptest::prop_assert_eq!(roundtrip(&f), f);
        }
    }
}
