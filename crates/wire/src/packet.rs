//! Full packets (header + frames) and packet-number arithmetic.

use crate::coding::{Reader, Writer};
use crate::error::WireError;
use crate::frame::Frame;
use crate::header::Header;

/// A full, untruncated QUIC packet number (62-bit space).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Default)]
pub struct PacketNumber(u64);

impl PacketNumber {
    /// Creates a packet number.
    pub fn new(v: u64) -> Self {
        PacketNumber(v)
    }

    /// Returns the numeric value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Next packet number.
    pub fn next(self) -> Self {
        PacketNumber(self.0 + 1)
    }
}

impl From<u64> for PacketNumber {
    fn from(v: u64) -> Self {
        PacketNumber(v)
    }
}

impl core::fmt::Display for PacketNumber {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.0.fmt(f)
    }
}

/// Truncates a full packet number to `bytes` wire bytes (RFC 9000 §17.1).
pub fn truncate_packet_number(pn: u64, bytes: usize) -> u64 {
    assert!((1..=4).contains(&bytes), "pn length must be 1..=4");
    pn & ((1u64 << (8 * bytes)) - 1)
}

/// Expands a truncated packet number given the largest acknowledged /
/// received packet number (RFC 9000 Appendix A, reference algorithm).
pub fn expand_packet_number(truncated: u64, bytes: usize, largest: Option<u64>) -> u64 {
    assert!((1..=4).contains(&bytes), "pn length must be 1..=4");
    let pn_nbits = 8 * bytes as u32;
    let expected = largest.map(|l| l + 1).unwrap_or(0);
    let pn_win = 1u64 << pn_nbits;
    let pn_hwin = pn_win / 2;
    let pn_mask = pn_win - 1;
    let candidate = (expected & !pn_mask) | truncated;
    if candidate + pn_hwin <= expected && candidate + pn_win < (1u64 << 62) {
        candidate + pn_win
    } else if candidate > expected + pn_hwin && candidate >= pn_win {
        candidate - pn_win
    } else {
        candidate
    }
}

/// A decoded QUIC packet: header plus its frames.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Packet {
    /// Packet header (long or short).
    pub header: Header,
    /// The frames carried in the payload.
    pub frames: Vec<Frame>,
}

impl Packet {
    /// Encodes the packet into a datagram.
    ///
    /// A 2-byte big-endian payload length is written between header and
    /// frames so that decoding is self-delimiting without real AEAD
    /// framing. Real QUIC carries an explicit Length field in long headers
    /// and uses the UDP datagram boundary for short headers; the simulator
    /// transports exactly one packet per datagram, so this is equivalent.
    pub fn encode(&self) -> Vec<u8> {
        self.encode_into(Vec::new())
    }

    /// Encodes the packet into `buf` (cleared first), reusing its
    /// allocation — senders can recycle delivered datagram buffers
    /// instead of allocating per packet.
    pub fn encode_into(&self, buf: Vec<u8>) -> Vec<u8> {
        // Single pass into one MTU-sized buffer: header, a length
        // placeholder, then the frames, back-patching the length. Avoids
        // the staging buffer (and its growth reallocations) a
        // payload-first encode would need.
        let mut w = Writer::from_vec(buf, 1500);
        self.header.encode(&mut w);
        let len_at = w.len();
        w.write_u16(0);
        let payload_start = w.len();
        for frame in &self.frames {
            frame.encode(&mut w);
        }
        let payload_len = w.len() - payload_start;
        assert!(payload_len <= usize::from(u16::MAX), "payload too large");
        w.patch_u16(len_at, payload_len as u16);
        w.into_bytes()
    }

    /// Decodes a datagram produced by [`Packet::encode`].
    pub fn decode(datagram: &[u8], cid_len: usize) -> Result<Self, WireError> {
        let mut r = Reader::new(datagram);
        let header = Header::decode(&mut r, cid_len)?;
        let len = usize::from(r.read_u16("payload length")?);
        let payload = r.read_bytes(len, "payload")?;
        let frames = Frame::decode_all(payload)?;
        Ok(Packet { header, frames })
    }

    /// Whether any frame is ack-eliciting.
    pub fn is_ack_eliciting(&self) -> bool {
        self.frames.iter().any(Frame::is_ack_eliciting)
    }

    /// Total encoded size in bytes.
    pub fn encoded_len(&self) -> usize {
        self.encode().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cid::ConnectionId;
    use crate::header::{LongHeader, LongType, ShortHeader};
    use crate::version::Version;

    #[test]
    fn truncate_masks_low_bytes() {
        assert_eq!(truncate_packet_number(0x1234_5678, 2), 0x5678);
        assert_eq!(truncate_packet_number(0xff, 1), 0xff);
        assert_eq!(truncate_packet_number(0x1_0000_0001, 4), 1);
    }

    #[test]
    fn expand_rfc9000_appendix_a_example() {
        // RFC 9000 A.3: largest_pn = 0xa82f30ea, truncated 0x9b32 (2 bytes)
        // expands to 0xa82f9b32.
        assert_eq!(
            expand_packet_number(0x9b32, 2, Some(0xa82f_30ea)),
            0xa82f_9b32
        );
    }

    #[test]
    fn expand_first_packet() {
        assert_eq!(expand_packet_number(0, 4, None), 0);
        assert_eq!(expand_packet_number(5, 1, None), 5);
    }

    #[test]
    fn expand_wraps_forward() {
        // largest = 0xff, truncated 0x00 in one byte → next window (0x100).
        assert_eq!(expand_packet_number(0x00, 1, Some(0xff)), 0x100);
    }

    #[test]
    fn expand_wraps_backward() {
        // largest = 0x100, truncated 0xff likely refers to 0xff not 0x1ff.
        assert_eq!(expand_packet_number(0xff, 1, Some(0x100)), 0xff);
    }

    #[test]
    fn packet_roundtrip_short() {
        let p = Packet {
            header: Header::Short(ShortHeader {
                spin: true,
                vec: 0,
                dcid: ConnectionId::from_u64(99),
                packet_number: PacketNumber::new(12),
            }),
            frames: vec![Frame::Ping, Frame::Padding { len: 4 }],
        };
        let bytes = p.encode();
        let back = Packet::decode(&bytes, 8).unwrap();
        assert_eq!(back, p);
        assert_eq!(p.encoded_len(), bytes.len());
    }

    #[test]
    fn packet_roundtrip_long() {
        let p = Packet {
            header: Header::Long(LongHeader {
                ty: LongType::Initial,
                version: Version::V1,
                dcid: ConnectionId::from_u64(1),
                scid: ConnectionId::from_u64(2),
                packet_number: Some(PacketNumber::new(0)),
            }),
            frames: vec![Frame::Crypto {
                offset: 0,
                data: b"hello".to_vec(),
            }],
        };
        let back = Packet::decode(&p.encode(), 8).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn ack_eliciting_propagates_from_frames() {
        let mut p = Packet {
            header: Header::Short(ShortHeader {
                spin: false,
                vec: 0,
                dcid: ConnectionId::EMPTY,
                packet_number: PacketNumber::new(0),
            }),
            frames: vec![Frame::Padding { len: 2 }],
        };
        assert!(!p.is_ack_eliciting());
        p.frames.push(Frame::Ping);
        assert!(p.is_ack_eliciting());
    }

    #[test]
    fn decode_rejects_truncated_datagram() {
        let p = Packet {
            header: Header::Short(ShortHeader {
                spin: false,
                vec: 0,
                dcid: ConnectionId::from_u64(7),
                packet_number: PacketNumber::new(3),
            }),
            frames: vec![Frame::Ping],
        };
        let mut bytes = p.encode();
        bytes.truncate(bytes.len() - 1);
        assert!(Packet::decode(&bytes, 8).is_err());
    }

    #[test]
    fn packet_number_ordering_and_next() {
        let a = PacketNumber::new(1);
        assert_eq!(a.next(), PacketNumber::new(2));
        assert!(a < a.next());
        assert_eq!(PacketNumber::from(9u64).value(), 9);
        assert_eq!(PacketNumber::new(5).to_string(), "5");
    }

    proptest::proptest! {
        #[test]
        fn prop_expand_inverts_truncate_within_window(
            largest in 0u64..1_000_000_000,
            delta in 0u64..100,
            bytes in 1usize..=4,
        ) {
            // A packet within half the window of largest+1 must recover exactly.
            let pn = largest + delta;
            let half_window = 1u64 << (8 * bytes - 1);
            proptest::prop_assume!(delta + 1 < half_window);
            let truncated = truncate_packet_number(pn, bytes);
            proptest::prop_assert_eq!(
                expand_packet_number(truncated, bytes, Some(largest)),
                pn
            );
        }
    }
}
