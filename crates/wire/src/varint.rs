//! QUIC variable-length integers (RFC 9000 §16).
//!
//! A varint occupies 1, 2, 4 or 8 bytes; the two most significant bits of
//! the first byte encode the length (00 → 1, 01 → 2, 10 → 4, 11 → 8),
//! leaving 6, 14, 30 or 62 usable bits.

use crate::coding::{Reader, Writer};
use crate::error::WireError;

/// Largest value representable as a QUIC varint (2^62 - 1).
pub const MAX: u64 = (1 << 62) - 1;

/// A QUIC variable-length integer in the range `0..=2^62-1`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct VarInt(u64);

impl VarInt {
    /// Zero.
    pub const ZERO: VarInt = VarInt(0);

    /// Creates a varint, failing if `v` exceeds 2^62-1.
    pub fn new(v: u64) -> Result<Self, WireError> {
        if v > MAX {
            Err(WireError::VarIntRange(v))
        } else {
            Ok(VarInt(v))
        }
    }

    /// Creates a varint from a value statically known to fit (u32 always fits).
    pub fn from_u32(v: u32) -> Self {
        VarInt(u64::from(v))
    }

    /// Returns the contained value.
    pub fn value(self) -> u64 {
        self.0
    }

    /// Number of bytes the canonical (shortest) encoding occupies.
    pub fn encoded_len(self) -> usize {
        match self.0 {
            0..=0x3f => 1,
            0x40..=0x3fff => 2,
            0x4000..=0x3fff_ffff => 4,
            _ => 8,
        }
    }

    /// Appends the canonical encoding to `w`.
    pub fn encode(self, w: &mut Writer) {
        match self.encoded_len() {
            1 => w.write_u8(self.0 as u8),
            2 => w.write_u16((self.0 as u16) | 0x4000),
            4 => w.write_u32((self.0 as u32) | 0x8000_0000),
            8 => {
                let mut bytes = self.0.to_be_bytes();
                bytes[0] |= 0xc0;
                w.write_bytes(&bytes);
            }
            _ => unreachable!("encoded_len only returns 1/2/4/8"),
        }
    }

    /// Decodes a varint from `r`.
    pub fn decode(r: &mut Reader<'_>, context: &'static str) -> Result<Self, WireError> {
        let first = r.read_u8(context)?;
        let prefix = first >> 6;
        let mut value = u64::from(first & 0x3f);
        let extra = match prefix {
            0 => 0,
            1 => 1,
            2 => 3,
            3 => 7,
            _ => unreachable!(),
        };
        for _ in 0..extra {
            value = (value << 8) | u64::from(r.read_u8(context)?);
        }
        Ok(VarInt(value))
    }
}

impl From<VarInt> for u64 {
    fn from(v: VarInt) -> u64 {
        v.0
    }
}

impl TryFrom<u64> for VarInt {
    type Error = WireError;
    fn try_from(v: u64) -> Result<Self, WireError> {
        VarInt::new(v)
    }
}

impl From<u32> for VarInt {
    fn from(v: u32) -> Self {
        VarInt::from_u32(v)
    }
}

impl core::fmt::Display for VarInt {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        self.0.fmt(f)
    }
}

/// Convenience: encode `v` (must fit) directly into `w`.
pub fn write(w: &mut Writer, v: u64) {
    VarInt::new(v)
        .expect("value must fit in a varint")
        .encode(w);
}

/// Convenience: decode a varint and return its raw value.
pub fn read(r: &mut Reader<'_>, context: &'static str) -> Result<u64, WireError> {
    Ok(VarInt::decode(r, context)?.value())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip(v: u64) -> (usize, u64) {
        let vi = VarInt::new(v).unwrap();
        let mut w = Writer::new();
        vi.encode(&mut w);
        let bytes = w.into_bytes();
        assert_eq!(bytes.len(), vi.encoded_len());
        let mut r = Reader::new(&bytes);
        let out = VarInt::decode(&mut r, "t").unwrap();
        assert!(r.is_empty());
        (bytes.len(), out.value())
    }

    #[test]
    fn rfc9000_appendix_a_examples() {
        // Examples from RFC 9000 §A.1.
        let cases: &[(&[u8], u64)] = &[
            (
                &[0xc2, 0x19, 0x7c, 0x5e, 0xff, 0x14, 0xe8, 0x8c],
                151_288_809_941_952_652,
            ),
            (&[0x9d, 0x7f, 0x3e, 0x7d], 494_878_333),
            (&[0x7b, 0xbd], 15_293),
            (&[0x25], 37),
            (&[0x40, 0x25], 37), // non-canonical two-byte encoding of 37
        ];
        for (bytes, expected) in cases {
            let mut r = Reader::new(bytes);
            assert_eq!(VarInt::decode(&mut r, "t").unwrap().value(), *expected);
        }
    }

    #[test]
    fn boundary_lengths() {
        assert_eq!(roundtrip(0), (1, 0));
        assert_eq!(roundtrip(63), (1, 63));
        assert_eq!(roundtrip(64), (2, 64));
        assert_eq!(roundtrip(16_383), (2, 16_383));
        assert_eq!(roundtrip(16_384), (4, 16_384));
        assert_eq!(roundtrip(1_073_741_823), (4, 1_073_741_823));
        assert_eq!(roundtrip(1_073_741_824), (8, 1_073_741_824));
        assert_eq!(roundtrip(MAX), (8, MAX));
    }

    #[test]
    fn out_of_range_rejected() {
        assert_eq!(VarInt::new(MAX + 1), Err(WireError::VarIntRange(MAX + 1)));
        assert!(VarInt::try_from(u64::MAX).is_err());
    }

    #[test]
    fn truncated_input_is_an_error() {
        // 4-byte prefix but only 2 bytes present.
        let mut r = Reader::new(&[0x80, 0x01]);
        assert!(matches!(
            VarInt::decode(&mut r, "t"),
            Err(WireError::UnexpectedEnd { .. })
        ));
    }

    #[test]
    fn u32_always_fits() {
        let v = VarInt::from(u32::MAX);
        assert_eq!(v.value(), u64::from(u32::MAX));
        assert_eq!(v.encoded_len(), 8);
    }

    #[test]
    fn display_shows_value() {
        assert_eq!(VarInt::new(1234).unwrap().to_string(), "1234");
    }

    proptest::proptest! {
        #[test]
        fn prop_roundtrip(v in 0u64..=MAX) {
            let (_, out) = roundtrip(v);
            proptest::prop_assert_eq!(out, v);
        }

        #[test]
        fn prop_encoding_is_canonical_shortest(v in 0u64..=MAX) {
            let vi = VarInt::new(v).unwrap();
            let len = vi.encoded_len();
            // A value must not fit in the next-shorter class.
            let max_for = |l: usize| -> u64 {
                match l { 1 => 0x3f, 2 => 0x3fff, 4 => 0x3fff_ffff, _ => MAX }
            };
            if len > 1 {
                let shorter = match len { 2 => 1, 4 => 2, 8 => 4, _ => unreachable!() };
                proptest::prop_assert!(v > max_for(shorter));
            }
            proptest::prop_assert!(v <= max_for(len));
        }

        #[test]
        fn prop_ordering_matches_values(a in 0u64..=MAX, b in 0u64..=MAX) {
            let (va, vb) = (VarInt::new(a).unwrap(), VarInt::new(b).unwrap());
            proptest::prop_assert_eq!(va.cmp(&vb), a.cmp(&b));
        }
    }
}
