//! # quicspin-wire — QUIC wire format
//!
//! From-scratch implementation of the QUIC v1 wire image (RFC 9000) as far
//! as it is needed by a spin-bit measurement study:
//!
//! * variable-length integers (RFC 9000 §16),
//! * connection IDs,
//! * version codes for QUIC v1 and the draft versions 27/29/32/34 that the
//!   paper's adapted quic-go speaks,
//! * long headers (Initial / Handshake / 0-RTT / Retry) and short headers
//!   (1-RTT) including the **spin bit** (bit `0x20` of the short-header
//!   first byte),
//! * packet number truncation/expansion (RFC 9000 Appendix A),
//! * the frame subset used by the simulated endpoints (PADDING, PING, ACK,
//!   CRYPTO, STREAM, HANDSHAKE_DONE, CONNECTION_CLOSE, NEW_CONNECTION_ID).
//!
//! The codec is strictly deterministic and allocation-light; encoding writes
//! into a caller-provided `Vec<u8>`, decoding borrows from a byte slice.
//!
//! Header protection / packet encryption is intentionally *not* applied:
//! the simulator transports plaintext packets and the passive observer is
//! only ever allowed to look at the fields a real observer could see
//! (first byte, version, connection IDs, and — for our ground-truth
//! comparisons — the packet number). See
//! [`header::ObservableShortHeader`] for the observer-legal view.

pub mod cid;
pub mod coding;
pub mod error;
pub mod frame;
pub mod header;
pub mod packet;
pub mod varint;
pub mod version;

pub use cid::ConnectionId;
pub use coding::{Reader, Writer};
pub use error::WireError;
pub use frame::{AckRange, Frame};
pub use header::{Header, LongHeader, LongType, ObservableShortHeader, ShortHeader};
pub use packet::{expand_packet_number, truncate_packet_number, Packet, PacketNumber};
pub use varint::VarInt;
pub use version::Version;
