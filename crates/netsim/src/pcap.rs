//! libpcap-format capture of tap records.
//!
//! Real spin-bit observers consume packet captures; this module writes the
//! simulator's tap records as a classic pcap file (the format smoltcp's
//! examples dump and Wireshark reads) and reads them back, so analysis
//! tooling can be exercised against byte-identical artefacts of a run.
//!
//! Encapsulation: `LINKTYPE_USER0` (147) with a one-byte direction
//! prefix (0 = client→server, 1 = server→client) followed by the raw
//! datagram — the simulator has no Ethernet/IP framing, and inventing
//! fake headers would only obscure the payload under test.
//!
//! The tap's vantage position (where on the path the capture was taken)
//! rides in the global header's `sigfigs` field, which every real-world
//! writer leaves at 0: [`write_pcap_at`] stores the position in
//! millionths of the path **plus one**, so 0 still means "unset" and a
//! capture taken at the client edge (position 0.0) stays distinguishable.
//! Standard tools ignore the field; [`read_pcap_with_vantage`] recovers
//! it.

use crate::sim::{Side, TapRecord};
use crate::time::SimTime;

/// pcap magic (microsecond timestamps, native byte order written as LE).
const PCAP_MAGIC: u32 = 0xa1b2_c3d4;
/// DLT_USER0: user-defined link type.
const LINKTYPE_USER0: u32 = 147;

/// Direction prefix byte for client→server packets.
pub const DIR_CLIENT_TO_SERVER: u8 = 0;
/// Direction prefix byte for server→client packets.
pub const DIR_SERVER_TO_CLIENT: u8 = 1;

fn push_u16(out: &mut Vec<u8>, v: u16) {
    out.extend_from_slice(&v.to_le_bytes());
}
fn push_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// Serializes tap records into a pcap byte stream (vantage unset).
pub fn write_pcap(records: &[TapRecord]) -> Vec<u8> {
    write_pcap_at(records, None)
}

/// [`write_pcap`], recording where on the path the tap sat. `Some(p)`
/// stores `p` (clamped to `0.0..=1.0`) in the header's `sigfigs` field as
/// millionths + 1; `None` writes a plain capture with the field at 0.
pub fn write_pcap_at(records: &[TapRecord], vantage: Option<f64>) -> Vec<u8> {
    let sigfigs = match vantage {
        Some(p) => (p.clamp(0.0, 1.0) * 1_000_000.0).round() as u32 + 1,
        None => 0,
    };
    let mut out = Vec::with_capacity(24 + records.len() * 32);
    // Global header.
    push_u32(&mut out, PCAP_MAGIC);
    push_u16(&mut out, 2); // version major
    push_u16(&mut out, 4); // version minor
    push_u32(&mut out, 0); // thiszone
    push_u32(&mut out, sigfigs); // vantage (millionths + 1), 0 = unset
    push_u32(&mut out, 65_535); // snaplen
    push_u32(&mut out, LINKTYPE_USER0);
    for record in records {
        let us = record.time.as_micros();
        push_u32(&mut out, (us / 1_000_000) as u32);
        push_u32(&mut out, (us % 1_000_000) as u32);
        let len = record.datagram.len() as u32 + 1;
        push_u32(&mut out, len); // captured length
        push_u32(&mut out, len); // original length
        out.push(match record.from {
            Side::Client => DIR_CLIENT_TO_SERVER,
            Side::Server => DIR_SERVER_TO_CLIENT,
        });
        out.extend_from_slice(&record.datagram);
    }
    out
}

/// Errors while parsing a pcap stream.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcapError {
    /// Too short / wrong magic.
    BadHeader,
    /// A record header or body was truncated.
    Truncated,
    /// The link type is not the one this module writes.
    WrongLinkType(u32),
    /// A packet had a zero-length body (no direction byte).
    EmptyPacket,
}

impl core::fmt::Display for PcapError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            PcapError::BadHeader => f.write_str("bad pcap global header"),
            PcapError::Truncated => f.write_str("truncated pcap record"),
            PcapError::WrongLinkType(lt) => write!(f, "unexpected link type {lt}"),
            PcapError::EmptyPacket => f.write_str("pcap record without direction byte"),
        }
    }
}

impl std::error::Error for PcapError {}

fn read_u32(buf: &[u8], at: usize) -> Option<u32> {
    buf.get(at..at + 4)
        .map(|b| u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
}

/// Parses a pcap byte stream produced by [`write_pcap`] back into tap
/// records.
pub fn read_pcap(bytes: &[u8]) -> Result<Vec<TapRecord>, PcapError> {
    read_pcap_with_vantage(bytes).map(|(records, _)| records)
}

/// [`read_pcap`], additionally recovering the tap's vantage position from
/// the header (see [`write_pcap_at`]); `None` when the capture carries no
/// position (plain [`write_pcap`] output, or a foreign pcap).
pub fn read_pcap_with_vantage(bytes: &[u8]) -> Result<(Vec<TapRecord>, Option<f64>), PcapError> {
    if bytes.len() < 24 || read_u32(bytes, 0) != Some(PCAP_MAGIC) {
        return Err(PcapError::BadHeader);
    }
    let vantage = match read_u32(bytes, 12).ok_or(PcapError::BadHeader)? {
        0 => None,
        encoded => Some(f64::from(encoded - 1) / 1_000_000.0),
    };
    let linktype = read_u32(bytes, 20).ok_or(PcapError::BadHeader)?;
    if linktype != LINKTYPE_USER0 {
        return Err(PcapError::WrongLinkType(linktype));
    }
    let mut records = Vec::new();
    let mut at = 24;
    while at < bytes.len() {
        let secs = read_u32(bytes, at).ok_or(PcapError::Truncated)?;
        let micros = read_u32(bytes, at + 4).ok_or(PcapError::Truncated)?;
        let caplen = read_u32(bytes, at + 8).ok_or(PcapError::Truncated)? as usize;
        at += 16;
        let body = bytes.get(at..at + caplen).ok_or(PcapError::Truncated)?;
        at += caplen;
        let (&dir, datagram) = body.split_first().ok_or(PcapError::EmptyPacket)?;
        records.push(TapRecord {
            time: SimTime::from_nanos((u64::from(secs) * 1_000_000 + u64::from(micros)) * 1_000),
            from: if dir == DIR_CLIENT_TO_SERVER {
                Side::Client
            } else {
                Side::Server
            },
            datagram: datagram.into(),
        });
    }
    Ok((records, vantage))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn record(ms: u64, from: Side, payload: &[u8]) -> TapRecord {
        TapRecord {
            time: SimTime::ZERO + SimDuration::from_millis(ms),
            from,
            datagram: payload.into(),
        }
    }

    #[test]
    fn roundtrip_preserves_records() {
        let records = vec![
            record(0, Side::Client, &[0x40, 1, 2, 3]),
            record(40, Side::Server, &[0x60, 9]),
            record(2_000, Side::Client, &[]),
        ];
        // Zero-length datagrams still carry the direction byte.
        let bytes = write_pcap(&records);
        let back = read_pcap(&bytes).unwrap();
        assert_eq!(back, records);
    }

    #[test]
    fn header_is_valid_pcap() {
        let bytes = write_pcap(&[]);
        assert_eq!(bytes.len(), 24);
        assert_eq!(&bytes[..4], &0xa1b2_c3d4u32.to_le_bytes());
        assert_eq!(read_pcap(&bytes).unwrap(), vec![]);
    }

    #[test]
    fn vantage_round_trips_through_the_header() {
        let records = vec![record(1, Side::Client, &[0x40, 1])];
        // A plain capture carries no vantage.
        let (back, vantage) = read_pcap_with_vantage(&write_pcap(&records)).unwrap();
        assert_eq!(back, records);
        assert_eq!(vantage, None);
        assert_eq!(
            read_pcap_with_vantage(&write_pcap_at(&records, None))
                .unwrap()
                .1,
            None
        );
        // Position 0.0 (client edge) is distinct from "unset".
        for position in [0.0, 0.25, 0.5, 1.0] {
            let bytes = write_pcap_at(&records, Some(position));
            let (back, vantage) = read_pcap_with_vantage(&bytes).unwrap();
            assert_eq!(back, records);
            assert_eq!(vantage, Some(position), "position {position}");
            // Plain readers still parse the capture and ignore the field.
            assert_eq!(read_pcap(&bytes).unwrap(), records);
        }
        // Out-of-range positions clamp to the path.
        let bytes = write_pcap_at(&records, Some(7.5));
        assert_eq!(read_pcap_with_vantage(&bytes).unwrap().1, Some(1.0));
    }

    #[test]
    fn timestamps_preserve_microseconds() {
        let records = vec![TapRecord {
            time: SimTime::from_nanos(1_234_567_000),
            from: Side::Server,
            datagram: vec![1].into(),
        }];
        let back = read_pcap(&write_pcap(&records)).unwrap();
        assert_eq!(back[0].time.as_micros(), 1_234_567);
    }

    #[test]
    fn bad_magic_rejected() {
        assert_eq!(read_pcap(&[0u8; 24]), Err(PcapError::BadHeader));
        assert_eq!(read_pcap(&[0u8; 3]), Err(PcapError::BadHeader));
    }

    #[test]
    fn wrong_linktype_rejected() {
        let mut bytes = write_pcap(&[]);
        bytes[20..24].copy_from_slice(&1u32.to_le_bytes()); // Ethernet
        assert_eq!(read_pcap(&bytes), Err(PcapError::WrongLinkType(1)));
    }

    #[test]
    fn truncated_record_rejected() {
        let records = vec![record(1, Side::Client, &[1, 2, 3])];
        let bytes = write_pcap(&records);
        assert_eq!(
            read_pcap(&bytes[..bytes.len() - 2]),
            Err(PcapError::Truncated)
        );
    }

    proptest::proptest! {
        #[test]
        fn prop_roundtrip(
            payloads in proptest::collection::vec(
                proptest::collection::vec(proptest::prelude::any::<u8>(), 0..100), 0..20
            ),
        ) {
            let records: Vec<TapRecord> = payloads
                .iter()
                .enumerate()
                .map(|(i, p)| record(i as u64, if i % 2 == 0 { Side::Client } else { Side::Server }, p))
                .collect();
            let back = read_pcap(&write_pcap(&records)).unwrap();
            proptest::prop_assert_eq!(back, records);
        }
    }
}
