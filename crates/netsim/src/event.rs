//! Generic discrete-event queue with stable FIFO tie-breaking.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// An event scheduled for a point in simulated time.
#[derive(Debug)]
struct Scheduled<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Scheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Scheduled<T> {}

impl<T> Ord for Scheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break by insertion order (lower seq first) for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for Scheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// Priority queue of timed events; pops in (time, insertion-order) order.
#[derive(Debug)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Scheduled<T>>,
    seq: u64,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at time `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(Scheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events and resets the insertion counter, keeping
    /// the heap's allocation: a cleared queue schedules exactly like a
    /// fresh one, which is what lets simulator storage be reused across
    /// runs without perturbing determinism.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_fifo_tiebreak() {
        let mut q = EventQueue::new();
        q.push(t(1), 0);
        q.pop();
        q.clear();
        // After clear, insertion order restarts from scratch: same-time
        // events pop in the order they were pushed post-clear.
        q.push(t(5), 10);
        q.push(t(5), 20);
        assert_eq!(q.pop(), Some((t(5), 10)));
        assert_eq!(q.pop(), Some((t(5), 20)));
        assert!(q.is_empty());
    }

    proptest::proptest! {
        #[test]
        fn prop_always_pops_nondecreasing(times in proptest::collection::vec(0u64..1_000, 1..100)) {
            let mut q = EventQueue::new();
            for &ms in &times {
                q.push(t(ms), ms);
            }
            let mut last = None;
            while let Some((at, _)) = q.pop() {
                if let Some(prev) = last {
                    proptest::prop_assert!(at >= prev);
                }
                last = Some(at);
            }
        }
    }
}
