//! Discrete-event scheduling with stable FIFO tie-breaking.
//!
//! Two queues share one contract — events pop in `(time, insertion-order)`
//! order, and `clear()` resets a queue so it schedules exactly like a
//! fresh one:
//!
//! * [`EventQueue`] is a hierarchical timing wheel (calendar queue in the
//!   Varghese–Lauck style): eight levels of 64 slots, each level covering
//!   64× the span of the one below, with per-level occupancy bitmaps so
//!   sparse schedules skip empty slots in O(1). `push` costs one XOR, one
//!   leading-zeros and a `Vec` push; `pop` cascades an event through at
//!   most `LEVELS` slots over its lifetime instead of paying a `log n`
//!   sift per operation. This is the queue the simulator runs on.
//! * [`BinaryHeapEventQueue`] is the original `BinaryHeap` scheduler,
//!   kept as the reference implementation: the property tests below drive
//!   both queues through identical seeded workloads and demand identical
//!   pop sequences, and `benches/event_queue.rs` races them at 10³–10⁷
//!   queued events.
//!
//! Determinism notes for the wheel: every event carries an insertion
//! sequence number. All events in one level-0 slot share the exact same
//! timestamp (the slot pins all 64 low bits relative to the cursor), so
//! draining a slot sorts it by sequence number once and FIFO ties hold
//! even when cascades from different levels interleave arrivals. Events
//! scheduled beyond the wheel horizon (2⁴⁸ ns ≈ 3.3 days of virtual time)
//! park in an unsorted overflow level and re-pour as the cursor
//! approaches; events scheduled before the cursor (the reference heap
//! allows time to run backwards) keep exact heap semantics via a small
//! sorted side list.

use crate::time::SimTime;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Bits per wheel level: 64 slots each.
const SLOT_BITS: u32 = 6;
/// Slots per level.
const SLOTS: usize = 1 << SLOT_BITS;
/// Mask extracting a slot index from a timestamp.
const SLOT_MASK: u64 = SLOTS as u64 - 1;
/// Number of hierarchical levels.
const LEVELS: usize = 8;
/// Deltas at or beyond this horizon go to the overflow level.
const HORIZON: u64 = 1 << (SLOT_BITS * LEVELS as u32);

/// An event scheduled for a point in simulated time.
#[derive(Debug)]
struct Scheduled<T> {
    at: u64,
    seq: u64,
    payload: T,
}

/// One wheel level: 64 slots plus an occupancy bitmap.
#[derive(Debug)]
struct Level<T> {
    occupied: u64,
    slots: Vec<Vec<Scheduled<T>>>,
}

/// Priority queue of timed events; pops in (time, insertion-order) order.
///
/// Implemented as a hierarchical timing wheel — see the module docs. The
/// public API is identical to [`BinaryHeapEventQueue`], which it replaced
/// as the simulator's scheduler.
#[derive(Debug)]
pub struct EventQueue<T> {
    levels: Vec<Level<T>>,
    /// Events due exactly at `elapsed`, sorted by descending sequence
    /// number so FIFO pops come off the end in O(1).
    due: Vec<Scheduled<T>>,
    /// Events pushed at times before `elapsed`, sorted descending by
    /// (time, seq); the minimum sits at the end. Rare in practice — the
    /// simulator clamps timers to `now` — but required for exact
    /// equivalence with the reference heap.
    past: Vec<Scheduled<T>>,
    /// Events beyond the wheel horizon, unsorted.
    overflow: Vec<Scheduled<T>>,
    /// Wheel cursor: the greatest slot time the wheel has advanced to.
    elapsed: u64,
    seq: u64,
    len: usize,
}

impl<T> Default for EventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> EventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        EventQueue {
            levels: (0..LEVELS)
                .map(|_| Level {
                    occupied: 0,
                    slots: (0..SLOTS).map(|_| Vec::new()).collect(),
                })
                .collect(),
            due: Vec::new(),
            past: Vec::new(),
            overflow: Vec::new(),
            elapsed: 0,
            seq: 0,
            len: 0,
        }
    }

    /// Schedules `payload` at time `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.len += 1;
        let at = at.as_nanos();
        let ev = Scheduled { at, seq, payload };
        if at < self.elapsed {
            // Behind the cursor: keep heap semantics (pop by (at, seq))
            // without rewinding the wheel.
            let idx = self.past.partition_point(|e| (e.at, e.seq) > (at, seq));
            self.past.insert(idx, ev);
        } else {
            self.place(ev);
        }
    }

    /// Files an event (with `at >= elapsed`) into its wheel slot.
    fn place(&mut self, ev: Scheduled<T>) {
        debug_assert!(ev.at >= self.elapsed);
        let delta_bits = ev.at ^ self.elapsed;
        if delta_bits >= HORIZON {
            self.overflow.push(ev);
            return;
        }
        // The level is the highest 6-bit block where the timestamp
        // differs from the cursor; within it the block value is the slot.
        let level = if delta_bits == 0 {
            0
        } else {
            (63 - delta_bits.leading_zeros()) as usize / SLOT_BITS as usize
        };
        let slot = ((ev.at >> (SLOT_BITS * level as u32)) & SLOT_MASK) as usize;
        let lvl = &mut self.levels[level];
        lvl.occupied |= 1 << slot;
        lvl.slots[slot].push(ev);
    }

    /// Index of the lowest level with any occupied slot. Events at a
    /// lower level always precede events at a higher one: a level-`l`
    /// event matches the cursor in every block above `l`, while a higher
    /// level's events exceed the cursor in one of those blocks.
    fn lowest_occupied_level(&self) -> Option<usize> {
        self.levels.iter().position(|l| l.occupied != 0)
    }

    /// First occupied slot at `level`, counted from the cursor's slot.
    /// Slots behind the cursor are impossible by construction (events are
    /// re-poured before the cursor passes them), so no wrap-around.
    fn first_occupied_slot(&self, level: usize) -> usize {
        let cur = ((self.elapsed >> (SLOT_BITS * level as u32)) & SLOT_MASK) as u32;
        let masked = self.levels[level].occupied >> cur;
        debug_assert!(masked != 0, "occupied slot behind the wheel cursor");
        (cur + masked.trailing_zeros()) as usize
    }

    /// Moves overflow events that fit the horizon into the wheel; if the
    /// wheel is empty and only overflow remains, jumps the cursor to the
    /// earliest overflow event first. An overflow event earlier than the
    /// wheel's earliest is always already within the horizon (it lies
    /// between the cursor and an in-horizon time), so one pass per pop
    /// preserves global ordering.
    fn refill_overflow(&mut self) {
        if self.overflow.is_empty() {
            return;
        }
        let mut i = 0;
        while i < self.overflow.len() {
            if (self.overflow[i].at ^ self.elapsed) < HORIZON {
                let ev = self.overflow.swap_remove(i);
                self.place(ev);
            } else {
                i += 1;
            }
        }
        if !self.overflow.is_empty() && self.lowest_occupied_level().is_none() {
            self.elapsed = self.overflow.iter().map(|e| e.at).min().unwrap();
            let mut i = 0;
            while i < self.overflow.len() {
                if (self.overflow[i].at ^ self.elapsed) < HORIZON {
                    let ev = self.overflow.swap_remove(i);
                    self.place(ev);
                } else {
                    i += 1;
                }
            }
        }
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        if let Some(ev) = self.past.pop() {
            self.len -= 1;
            return Some((SimTime::from_nanos(ev.at), ev.payload));
        }
        if let Some(ev) = self.due.pop() {
            self.len -= 1;
            return Some((SimTime::from_nanos(ev.at), ev.payload));
        }
        if self.len == 0 {
            return None;
        }
        self.refill_overflow();
        loop {
            let level = self
                .lowest_occupied_level()
                .expect("non-empty queue has an occupied slot");
            let slot = self.first_occupied_slot(level);
            self.levels[level].occupied &= !(1u64 << slot);
            let shift = SLOT_BITS * level as u32;
            if level == 0 {
                // Every event here shares the same timestamp (the slot
                // pins all low bits); sort by seq once so FIFO ties hold
                // even after cascades interleaved arrivals.
                self.elapsed = (self.elapsed & !SLOT_MASK) | slot as u64;
                std::mem::swap(&mut self.due, &mut self.levels[0].slots[slot]);
                if self.due.len() > 1 {
                    self.due.sort_unstable_by_key(|e| std::cmp::Reverse(e.seq));
                }
                let ev = self.due.pop().expect("occupied slot is non-empty");
                debug_assert_eq!(ev.at, self.elapsed);
                self.len -= 1;
                return Some((SimTime::from_nanos(ev.at), ev.payload));
            }
            // Advance the cursor to the slot's start and cascade its
            // events into lower levels; hand the allocation back after.
            let range_mask = (1u64 << (shift + SLOT_BITS)) - 1;
            self.elapsed = (self.elapsed & !range_mask) | ((slot as u64) << shift);
            let mut events = std::mem::take(&mut self.levels[level].slots[slot]);
            for ev in events.drain(..) {
                self.place(ev);
            }
            self.levels[level].slots[slot] = events;
        }
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        if let Some(ev) = self.past.last() {
            return Some(SimTime::from_nanos(ev.at));
        }
        if let Some(ev) = self.due.last() {
            return Some(SimTime::from_nanos(ev.at));
        }
        let mut best: Option<u64> = None;
        if let Some(level) = self.lowest_occupied_level() {
            let slot = self.first_occupied_slot(level);
            best = self.levels[level].slots[slot].iter().map(|e| e.at).min();
        }
        if let Some(omin) = self.overflow.iter().map(|e| e.at).min() {
            best = Some(best.map_or(omin, |b| b.min(omin)));
        }
        best.map(SimTime::from_nanos)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Drops all pending events, rewinds the cursor and resets the
    /// insertion counter, keeping every slot's allocation: a cleared
    /// queue schedules exactly like a fresh one, which is what lets
    /// simulator storage be reused across runs without perturbing
    /// determinism.
    pub fn clear(&mut self) {
        for level in &mut self.levels {
            let mut occ = level.occupied;
            while occ != 0 {
                let slot = occ.trailing_zeros() as usize;
                occ &= occ - 1;
                level.slots[slot].clear();
            }
            level.occupied = 0;
        }
        self.due.clear();
        self.past.clear();
        self.overflow.clear();
        self.elapsed = 0;
        self.seq = 0;
        self.len = 0;
    }
}

/// A heap-scheduled event, ordered for min-popping.
#[derive(Debug)]
struct HeapScheduled<T> {
    at: SimTime,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for HeapScheduled<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for HeapScheduled<T> {}

impl<T> Ord for HeapScheduled<T> {
    fn cmp(&self, other: &Self) -> Ordering {
        // BinaryHeap is a max-heap; invert so the earliest event pops first.
        // Ties break by insertion order (lower seq first) for determinism.
        other
            .at
            .cmp(&self.at)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}
impl<T> PartialOrd for HeapScheduled<T> {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// The original `BinaryHeap` scheduler, kept as the reference
/// implementation the timing wheel is differentially tested and
/// benchmarked against. Pop order and `clear()` semantics are identical
/// to [`EventQueue`]; only the complexity differs (O(log n) per
/// operation versus the wheel's amortized O(1)).
#[derive(Debug)]
pub struct BinaryHeapEventQueue<T> {
    heap: BinaryHeap<HeapScheduled<T>>,
    seq: u64,
}

impl<T> Default for BinaryHeapEventQueue<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> BinaryHeapEventQueue<T> {
    /// Creates an empty queue.
    pub fn new() -> Self {
        BinaryHeapEventQueue {
            heap: BinaryHeap::new(),
            seq: 0,
        }
    }

    /// Schedules `payload` at time `at`.
    pub fn push(&mut self, at: SimTime, payload: T) {
        let seq = self.seq;
        self.seq += 1;
        self.heap.push(HeapScheduled { at, seq, payload });
    }

    /// Removes and returns the earliest event.
    pub fn pop(&mut self) -> Option<(SimTime, T)> {
        self.heap.pop().map(|s| (s.at, s.payload))
    }

    /// Time of the earliest event without removing it.
    pub fn peek_time(&self) -> Option<SimTime> {
        self.heap.peek().map(|s| s.at)
    }

    /// Number of pending events.
    pub fn len(&self) -> usize {
        self.heap.len()
    }

    /// Whether no events are pending.
    pub fn is_empty(&self) -> bool {
        self.heap.is_empty()
    }

    /// Drops all pending events and resets the insertion counter, keeping
    /// the heap's allocation.
    pub fn clear(&mut self) {
        self.heap.clear();
        self.seq = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn t(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    #[test]
    fn pops_in_time_order() {
        let mut q = EventQueue::new();
        q.push(t(30), "c");
        q.push(t(10), "a");
        q.push(t(20), "b");
        assert_eq!(q.pop(), Some((t(10), "a")));
        assert_eq!(q.pop(), Some((t(20), "b")));
        assert_eq!(q.pop(), Some((t(30), "c")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn ties_break_fifo() {
        let mut q = EventQueue::new();
        for i in 0..10 {
            q.push(t(5), i);
        }
        for i in 0..10 {
            assert_eq!(q.pop(), Some((t(5), i)));
        }
    }

    #[test]
    fn peek_does_not_remove() {
        let mut q = EventQueue::new();
        assert_eq!(q.peek_time(), None);
        q.push(t(7), ());
        assert_eq!(q.peek_time(), Some(t(7)));
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
        q.pop();
        assert!(q.is_empty());
    }

    #[test]
    fn clear_resets_fifo_tiebreak() {
        let mut q = EventQueue::new();
        q.push(t(1), 0);
        q.pop();
        q.clear();
        // After clear, insertion order restarts from scratch: same-time
        // events pop in the order they were pushed post-clear.
        q.push(t(5), 10);
        q.push(t(5), 20);
        assert_eq!(q.pop(), Some((t(5), 10)));
        assert_eq!(q.pop(), Some((t(5), 20)));
        assert!(q.is_empty());
    }

    #[test]
    fn push_behind_cursor_pops_first() {
        // The reference heap lets time run backwards; the wheel must too.
        let mut q = EventQueue::new();
        q.push(t(10), "late");
        assert_eq!(q.pop(), Some((t(10), "late")));
        q.push(t(20), "future");
        q.push(t(3), "behind-b");
        q.push(t(2), "behind-a");
        assert_eq!(q.peek_time(), Some(t(2)));
        assert_eq!(q.pop(), Some((t(2), "behind-a")));
        assert_eq!(q.pop(), Some((t(3), "behind-b")));
        assert_eq!(q.pop(), Some((t(20), "future")));
    }

    #[test]
    fn overflow_horizon_round_trips() {
        // Events farther than 2^48 ns apart park in the overflow level
        // and still pop in global order.
        let mut q = EventQueue::new();
        let far = SimTime::from_nanos(HORIZON * 3 + 17);
        let farther = SimTime::from_nanos(HORIZON * 5 + 1);
        q.push(far, "far");
        q.push(t(1), "near");
        q.push(farther, "farther");
        assert_eq!(q.peek_time(), Some(t(1)));
        assert_eq!(q.pop(), Some((t(1), "near")));
        assert_eq!(q.peek_time(), Some(far));
        assert_eq!(q.pop(), Some((far, "far")));
        assert_eq!(q.pop(), Some((farther, "farther")));
        assert_eq!(q.pop(), None);
    }

    #[test]
    fn interleaved_same_tick_pushes_keep_fifo() {
        let mut q = EventQueue::new();
        q.push(t(5), 0);
        q.push(t(5), 1);
        assert_eq!(q.pop(), Some((t(5), 0)));
        // The queue now sits at t=5 with event 1 in the `due` list; a new
        // same-tick push must pop after it.
        q.push(t(5), 2);
        assert_eq!(q.pop(), Some((t(5), 1)));
        assert_eq!(q.pop(), Some((t(5), 2)));
    }

    proptest::proptest! {
        #[test]
        fn prop_always_pops_nondecreasing(times in proptest::collection::vec(0u64..1_000, 1..100)) {
            let mut q = EventQueue::new();
            for &ms in &times {
                q.push(t(ms), ms);
            }
            let mut last = None;
            while let Some((at, _)) = q.pop() {
                if let Some(prev) = last {
                    proptest::prop_assert!(at >= prev);
                }
                last = Some(at);
            }
        }

        /// Differential test: the wheel and the reference heap must emit
        /// identical (time, payload) sequences — including same-tick FIFO
        /// ties — under interleaved pushes and pops. Times collide often
        /// (small range) to hammer the tie-break path, and pushes after
        /// pops may land behind the cursor.
        #[test]
        fn prop_wheel_matches_heap(
            ops in proptest::collection::vec((0u64..2_000, 0u32..10), 1..400)
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = BinaryHeapEventQueue::new();
            let mut payload = 0u64;
            for &(time, roll) in &ops {
                if roll < 4 {
                    proptest::prop_assert_eq!(wheel.peek_time(), heap.peek_time());
                    proptest::prop_assert_eq!(wheel.pop(), heap.pop());
                } else {
                    let at = SimTime::from_nanos(time * 1_000);
                    wheel.push(at, payload);
                    heap.push(at, payload);
                    payload += 1;
                }
                proptest::prop_assert_eq!(wheel.len(), heap.len());
            }
            loop {
                let (w, h) = (wheel.pop(), heap.pop());
                proptest::prop_assert_eq!(&w, &h);
                if w.is_none() {
                    break;
                }
            }
        }

        /// Same differential contract across the full u64 range, so
        /// cascades through every wheel level and the overflow horizon
        /// are exercised.
        #[test]
        fn prop_wheel_matches_heap_full_range(
            times in proptest::collection::vec(proptest::prelude::any::<u64>(), 1..64)
        ) {
            let mut wheel = EventQueue::new();
            let mut heap = BinaryHeapEventQueue::new();
            for (i, &ns) in times.iter().enumerate() {
                wheel.push(SimTime::from_nanos(ns), i);
                heap.push(SimTime::from_nanos(ns), i);
            }
            loop {
                let (w, h) = (wheel.pop(), heap.pop());
                proptest::prop_assert_eq!(&w, &h);
                if w.is_none() {
                    break;
                }
            }
        }

        /// A cleared wheel must behave exactly like a fresh one even
        /// after cascades advanced the cursor.
        #[test]
        fn prop_clear_restores_fresh_behaviour(
            warmup in proptest::collection::vec(proptest::prelude::any::<u64>(), 1..32),
            replay in proptest::collection::vec(0u64..500, 1..64)
        ) {
            let mut reused = EventQueue::new();
            for (i, &ns) in warmup.iter().enumerate() {
                reused.push(SimTime::from_nanos(ns), i);
            }
            while reused.pop().is_some() {}
            reused.clear();

            let mut fresh = EventQueue::new();
            for (i, &ms) in replay.iter().enumerate() {
                reused.push(t(ms), i);
                fresh.push(t(ms), i);
            }
            loop {
                let (a, b) = (reused.pop(), fresh.pop());
                proptest::prop_assert_eq!(&a, &b);
                if a.is_none() {
                    break;
                }
            }
        }
    }
}
