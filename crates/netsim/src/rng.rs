//! Deterministic random number generation.
//!
//! Everything random in the workspace flows through this generator:
//! xoshiro256** seeded via SplitMix64, both implemented here so results are
//! identical across platforms and independent of external crate versions.
//! `Rng::fork` derives statistically independent child streams, which lets
//! campaigns shard work across threads while staying reproducible.

/// Deterministic PRNG (xoshiro256**).
#[derive(Debug, Clone)]
pub struct Rng {
    s: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        Rng { s }
    }

    /// Derives an independent child generator, keyed by `stream`.
    ///
    /// Forking with distinct stream IDs from the same parent yields
    /// non-overlapping sequences (the child is re-seeded through SplitMix64
    /// with the parent's next output mixed with the stream ID).
    pub fn fork(&mut self, stream: u64) -> Rng {
        let mix = self.next_u64() ^ stream.wrapping_mul(0xa076_1d64_78bd_642f);
        Rng::new(mix)
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = self.s[1] << 17;
        self.s[2] ^= self.s[0];
        self.s[3] ^= self.s[1];
        self.s[1] ^= self.s[2];
        self.s[0] ^= self.s[3];
        self.s[2] ^= t;
        self.s[3] = self.s[3].rotate_left(45);
        result
    }

    /// Uniform value in `[0, bound)`; panics if `bound == 0`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "bound must be positive");
        // Lemire's unbiased multiply-shift rejection method.
        loop {
            let x = self.next_u64();
            let m = (x as u128) * (bound as u128);
            let low = m as u64;
            if low >= bound {
                return (m >> 64) as u64;
            }
            let threshold = bound.wrapping_neg() % bound;
            if low >= threshold {
                return (m >> 64) as u64;
            }
        }
    }

    /// Uniform usize index in `[0, len)`.
    pub fn index(&mut self, len: usize) -> usize {
        self.next_below(len as u64) as usize
    }

    /// Uniform float in `[0, 1)` with 53 bits of precision.
    pub fn f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p` (clamped to `[0, 1]`).
    pub fn chance(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            false
        } else if p >= 1.0 {
            true
        } else {
            self.f64() < p
        }
    }

    /// Uniform float in `[lo, hi)`.
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        assert!(hi >= lo, "range_f64 requires hi >= lo");
        lo + self.f64() * (hi - lo)
    }

    /// Standard normal deviate (Box–Muller, one value per call).
    pub fn normal(&mut self) -> f64 {
        // Avoid ln(0) by nudging u1 away from zero.
        let u1 = self.f64().max(1e-300);
        let u2 = self.f64();
        (-2.0 * u1.ln()).sqrt() * (core::f64::consts::TAU * u2).cos()
    }

    /// Normal deviate with the given mean and standard deviation.
    pub fn normal_with(&mut self, mean: f64, std_dev: f64) -> f64 {
        mean + std_dev * self.normal()
    }

    /// Log-normal deviate: `exp(N(mu, sigma))`.
    ///
    /// Heavy-tailed — used for end-host processing delays, the mechanism
    /// the paper holds responsible for spin-bit RTT overestimation.
    pub fn lognormal(&mut self, mu: f64, sigma: f64) -> f64 {
        (mu + sigma * self.normal()).exp()
    }

    /// Exponential deviate with the given mean.
    pub fn exponential(&mut self, mean: f64) -> f64 {
        assert!(mean > 0.0, "exponential mean must be positive");
        -mean * self.f64().max(1e-300).ln()
    }

    /// Samples an index from a slice of non-negative weights.
    /// Panics if the weights are empty or all zero.
    pub fn weighted_index(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            total > 0.0 && total.is_finite(),
            "weights must sum to a positive finite value"
        );
        let mut target = self.f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.index(i + 1);
            items.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_from_seed() {
        let mut a = Rng::new(42);
        let mut b = Rng::new(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fork_streams_are_independent_and_deterministic() {
        let mut parent1 = Rng::new(7);
        let mut parent2 = Rng::new(7);
        let mut c1 = parent1.fork(1);
        let mut c2 = parent2.fork(1);
        assert_eq!(c1.next_u64(), c2.next_u64());

        let mut parent = Rng::new(7);
        let mut x = parent.fork(1);
        let mut parent = Rng::new(7);
        let mut y = parent.fork(2);
        assert_ne!(x.next_u64(), y.next_u64());
    }

    #[test]
    fn next_below_in_bounds_and_covers() {
        let mut rng = Rng::new(3);
        let mut seen = [false; 10];
        for _ in 0..1000 {
            let v = rng.next_below(10);
            assert!(v < 10);
            seen[v as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues should appear");
    }

    #[test]
    fn f64_is_unit_interval_and_roughly_uniform() {
        let mut rng = Rng::new(11);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let v = rng.f64();
            assert!((0.0..1.0).contains(&v));
            sum += v;
        }
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} far from 0.5");
    }

    #[test]
    fn chance_extremes() {
        let mut rng = Rng::new(5);
        assert!(!rng.chance(0.0));
        assert!(rng.chance(1.0));
        assert!(!rng.chance(-1.0));
        assert!(rng.chance(2.0));
    }

    #[test]
    fn chance_rate_matches_probability() {
        let mut rng = Rng::new(9);
        let hits = (0..100_000).filter(|_| rng.chance(0.25)).count();
        let rate = hits as f64 / 100_000.0;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(13);
        let n = 200_000;
        let (mut sum, mut sq) = (0.0, 0.0);
        for _ in 0..n {
            let v = rng.normal();
            sum += v;
            sq += v * v;
        }
        let mean = sum / n as f64;
        let var = sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn lognormal_is_positive_and_heavy_tailed() {
        let mut rng = Rng::new(17);
        let samples: Vec<f64> = (0..50_000).map(|_| rng.lognormal(0.0, 1.0)).collect();
        assert!(samples.iter().all(|&v| v > 0.0));
        // Median should be close to exp(mu) = 1.
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).unwrap());
        let median = sorted[sorted.len() / 2];
        assert!((median - 1.0).abs() < 0.05, "median {median}");
        // Heavy tail: max far above median.
        assert!(sorted[sorted.len() - 1] > 10.0);
    }

    #[test]
    fn exponential_mean() {
        let mut rng = Rng::new(19);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| rng.exponential(5.0)).sum();
        let mean = sum / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn weighted_index_respects_weights() {
        let mut rng = Rng::new(23);
        let weights = [1.0, 0.0, 3.0];
        let mut counts = [0usize; 3];
        for _ in 0..40_000 {
            counts[rng.weighted_index(&weights)] += 1;
        }
        assert_eq!(counts[1], 0);
        let ratio = counts[2] as f64 / counts[0] as f64;
        assert!((ratio - 3.0).abs() < 0.3, "ratio {ratio}");
    }

    #[test]
    #[should_panic(expected = "positive finite")]
    fn weighted_index_rejects_zero_total() {
        Rng::new(1).weighted_index(&[0.0, 0.0]);
    }

    #[test]
    fn shuffle_permutes() {
        let mut rng = Rng::new(29);
        let mut v: Vec<u32> = (0..100).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(v, (0..100).collect::<Vec<_>>(), "unlikely identity shuffle");
    }

    proptest::proptest! {
        #[test]
        fn prop_next_below_bound(seed: u64, bound in 1u64..1_000_000) {
            let mut rng = Rng::new(seed);
            for _ in 0..16 {
                proptest::prop_assert!(rng.next_below(bound) < bound);
            }
        }

        #[test]
        fn prop_range_f64(seed: u64, lo in -100.0f64..100.0, span in 0.0f64..100.0) {
            let mut rng = Rng::new(seed);
            let hi = lo + span;
            let v = rng.range_f64(lo, hi);
            proptest::prop_assert!(v >= lo && (v < hi || span == 0.0));
        }
    }
}
