//! Shared immutable datagram bytes.

use std::fmt;
use std::ops::Deref;
use std::sync::Arc;

/// Immutable datagram bytes behind a reference count.
///
/// A datagram entering the path may be recorded at the tap, duplicated,
/// and delivered to the far end; each consumer holds a cheap handle to the
/// same allocation instead of a deep copy of the bytes. Wrapping the
/// sender's `Vec<u8>` directly means entering the simulator never copies
/// payload bytes at all.
#[derive(Clone)]
pub struct Payload(Arc<Vec<u8>>);

impl Payload {
    /// Number of bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }

    /// Whether two handles share one allocation (i.e. no copy happened).
    pub fn ptr_eq(a: &Payload, b: &Payload) -> bool {
        Arc::ptr_eq(&a.0, &b.0)
    }

    /// Recovers the underlying buffer if this is the last handle, letting
    /// consumers recycle delivered datagram allocations.
    pub fn into_vec(self) -> Option<Vec<u8>> {
        Arc::try_unwrap(self.0).ok()
    }
}

impl Deref for Payload {
    type Target = [u8];

    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl AsRef<[u8]> for Payload {
    fn as_ref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Payload(Arc::new(bytes))
    }
}

impl From<&[u8]> for Payload {
    fn from(bytes: &[u8]) -> Self {
        Payload(Arc::new(bytes.to_vec()))
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        fmt::Debug::fmt(&**self, f)
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        Payload::ptr_eq(self, other) || **self == **other
    }
}

impl Eq for Payload {}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        **self == other[..]
    }
}

impl PartialEq<Payload> for Vec<u8> {
    fn eq(&self, other: &Payload) -> bool {
        self[..] == **other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        **self == **other
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_without_copying_and_clones_share() {
        let p: Payload = vec![1, 2, 3].into();
        let q = p.clone();
        assert!(Payload::ptr_eq(&p, &q));
        assert_eq!(p, q);
        assert_eq!(p.len(), 3);
        assert!(!p.is_empty());
    }

    #[test]
    fn compares_against_plain_bytes() {
        let p: Payload = vec![9, 8].into();
        assert_eq!(p, vec![9, 8]);
        assert_eq!(vec![9, 8], p);
        assert_eq!(p, &[9u8, 8][..]);
        let other: Payload = (&[9u8, 8][..]).into();
        assert_eq!(p, other);
        assert!(!Payload::ptr_eq(&p, &other));
    }

    #[test]
    fn debug_formats_as_bytes() {
        let p: Payload = vec![7].into();
        assert_eq!(format!("{p:?}"), "[7]");
    }
}
