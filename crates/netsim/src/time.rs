//! Simulated time.
//!
//! The whole system runs on virtual time: a monotonically increasing
//! nanosecond counter owned by the simulator. Nothing in the workspace ever
//! reads a wall clock, which makes every experiment bit-reproducible from
//! its seed.

use core::ops::{Add, AddAssign, Div, Mul, Sub};

/// A point in simulated time (nanoseconds since simulation start).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (nanoseconds).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// Simulation start.
    pub const ZERO: SimTime = SimTime(0);

    /// Creates a time from raw nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimTime(ns)
    }

    /// Raw nanoseconds since simulation start.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Microseconds since simulation start.
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Milliseconds since simulation start as a float.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Time elapsed since `earlier`; zero if `earlier` is in the future.
    pub fn saturating_since(self, earlier: SimTime) -> SimDuration {
        SimDuration(self.0.saturating_sub(earlier.0))
    }

    /// Checked difference; `None` if `earlier` is later than `self`.
    pub fn checked_since(self, earlier: SimTime) -> Option<SimDuration> {
        self.0.checked_sub(earlier.0).map(SimDuration)
    }
}

impl SimDuration {
    /// Zero-length span.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Creates a duration from raw nanoseconds.
    pub fn from_nanos(ns: u64) -> Self {
        SimDuration(ns)
    }

    /// Creates a duration from microseconds.
    pub fn from_micros(us: u64) -> Self {
        SimDuration(us * 1_000)
    }

    /// Creates a duration from milliseconds.
    pub fn from_millis(ms: u64) -> Self {
        SimDuration(ms * 1_000_000)
    }

    /// Creates a duration from fractional milliseconds (clamped at >= 0).
    pub fn from_millis_f64(ms: f64) -> Self {
        SimDuration((ms.max(0.0) * 1_000_000.0).round() as u64)
    }

    /// Creates a duration from whole seconds.
    pub fn from_secs(s: u64) -> Self {
        SimDuration(s * 1_000_000_000)
    }

    /// Raw nanoseconds.
    pub fn as_nanos(self) -> u64 {
        self.0
    }

    /// Whole microseconds.
    pub fn as_micros(self) -> u64 {
        self.0 / 1_000
    }

    /// Fractional milliseconds.
    pub fn as_millis_f64(self) -> f64 {
        self.0 as f64 / 1_000_000.0
    }

    /// Fractional seconds.
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / 1_000_000_000.0
    }

    /// Saturating subtraction.
    pub fn saturating_sub(self, other: SimDuration) -> SimDuration {
        SimDuration(self.0.saturating_sub(other.0))
    }

    /// Multiplies by a non-negative float, rounding to nanoseconds.
    pub fn mul_f64(self, factor: f64) -> SimDuration {
        assert!(factor >= 0.0, "duration factor must be >= 0");
        SimDuration((self.0 as f64 * factor).round() as u64)
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimTime subtraction underflow"),
        )
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(
            self.0
                .checked_sub(rhs.0)
                .expect("SimDuration subtraction underflow"),
        )
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl core::fmt::Display for SimTime {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

impl core::fmt::Display for SimDuration {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{:.3}ms", self.as_millis_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conversions() {
        let d = SimDuration::from_millis(25);
        assert_eq!(d.as_nanos(), 25_000_000);
        assert_eq!(d.as_micros(), 25_000);
        assert!((d.as_millis_f64() - 25.0).abs() < 1e-9);
        assert!((SimDuration::from_secs(2).as_secs_f64() - 2.0).abs() < 1e-12);
        assert_eq!(SimDuration::from_micros(3).as_nanos(), 3_000);
    }

    #[test]
    fn from_millis_f64_rounds_and_clamps() {
        assert_eq!(SimDuration::from_millis_f64(1.5).as_micros(), 1_500);
        assert_eq!(SimDuration::from_millis_f64(-4.0), SimDuration::ZERO);
    }

    #[test]
    fn time_arithmetic() {
        let t0 = SimTime::ZERO;
        let t1 = t0 + SimDuration::from_millis(10);
        assert_eq!(t1 - t0, SimDuration::from_millis(10));
        assert_eq!(t1.saturating_since(t0), SimDuration::from_millis(10));
        assert_eq!(t0.saturating_since(t1), SimDuration::ZERO);
        assert_eq!(t0.checked_since(t1), None);
        assert_eq!(t1.checked_since(t0), Some(SimDuration::from_millis(10)));
    }

    #[test]
    #[should_panic(expected = "underflow")]
    fn time_subtraction_panics_on_underflow() {
        let _ = SimTime::ZERO - SimTime::from_nanos(1);
    }

    #[test]
    fn duration_arithmetic() {
        let a = SimDuration::from_millis(10);
        let b = SimDuration::from_millis(4);
        assert_eq!(a + b, SimDuration::from_millis(14));
        assert_eq!(a - b, SimDuration::from_millis(6));
        assert_eq!(a * 3, SimDuration::from_millis(30));
        assert_eq!(a / 2, SimDuration::from_millis(5));
        assert_eq!(b.saturating_sub(a), SimDuration::ZERO);
        assert_eq!(a.mul_f64(0.5), SimDuration::from_millis(5));
    }

    #[test]
    fn add_assign_advances_time() {
        let mut t = SimTime::ZERO;
        t += SimDuration::from_millis(7);
        assert_eq!(t.as_millis_f64(), 7.0);
    }

    #[test]
    fn display_formats_millis() {
        assert_eq!(SimDuration::from_micros(1500).to_string(), "1.500ms");
        assert_eq!(SimTime::from_nanos(2_000_000).to_string(), "2.000ms");
    }

    #[test]
    fn ordering() {
        assert!(SimTime::ZERO < SimTime::from_nanos(1));
        assert!(SimDuration::from_millis(1) < SimDuration::from_millis(2));
    }
}
