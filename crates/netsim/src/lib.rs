//! # quicspin-netsim — deterministic discrete-event network simulation
//!
//! The paper measures real Internet paths; this crate provides the
//! substitute: a deterministic, seedable network simulator in the style of
//! smoltcp's fault-injection examples. It models a single client↔server
//! path with per-direction propagation delay, jitter, loss, reordering
//! (hold-back so later packets overtake), duplication, and token-bucket
//! rate limiting — plus an **on-path tap** at a configurable position that
//! records every crossing datagram, which is where the passive spin-bit
//! observer of `quicspin-core` attaches.
//!
//! Design rules (per the repository's networking guides):
//!
//! * event-driven, no hidden clocks — virtual time only ([`SimTime`]);
//! * all randomness from an explicit seed ([`Rng`], xoshiro256**);
//! * fault injection is a first-class feature ([`LinkConfig`]).

pub mod event;
pub mod link;
pub mod payload;
pub mod pcap;
pub mod rng;
pub mod sim;
pub mod time;

pub use event::{BinaryHeapEventQueue, EventQueue};
pub use link::{Link, LinkConfig, Transit};
pub use payload::Payload;
pub use pcap::{read_pcap, write_pcap, PcapError};
pub use rng::Rng;
pub use sim::{PathStats, Side, SimEvent, SimScratch, Simulator, TapRecord};
pub use time::{SimDuration, SimTime};
