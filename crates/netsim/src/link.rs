//! Unidirectional link model with smoltcp-style fault injection.
//!
//! A [`Link`] applies, in order: serialization (token-bucket rate limit),
//! propagation delay with jitter, random extra "reorder" delay, random
//! loss, and random duplication. All randomness comes from the caller's
//! [`Rng`], so a link is exactly reproducible.

use crate::rng::Rng;
use crate::time::{SimDuration, SimTime};

/// Configuration of one link direction.
#[derive(Debug, Clone)]
pub struct LinkConfig {
    /// One-way propagation delay.
    pub delay: SimDuration,
    /// Uniform jitter added on top of `delay`: `U[0, jitter]`.
    pub jitter: SimDuration,
    /// Probability a packet is dropped.
    pub loss: f64,
    /// Probability a packet is held back by `reorder_hold`, letting packets
    /// sent after it overtake (this is how real reordering manifests).
    pub reorder: f64,
    /// Extra delay applied to held-back packets.
    pub reorder_hold: SimDuration,
    /// Probability a packet is duplicated (second copy after `dup_gap`).
    pub duplicate: f64,
    /// Gap between a packet and its duplicate.
    pub dup_gap: SimDuration,
    /// Link rate in bytes/second; `None` = infinite (no serialization delay).
    pub rate_bytes_per_sec: Option<u64>,
}

impl Default for LinkConfig {
    fn default() -> Self {
        LinkConfig {
            delay: SimDuration::from_millis(10),
            jitter: SimDuration::ZERO,
            loss: 0.0,
            reorder: 0.0,
            reorder_hold: SimDuration::from_millis(2),
            duplicate: 0.0,
            dup_gap: SimDuration::from_micros(200),
            rate_bytes_per_sec: None,
        }
    }
}

impl LinkConfig {
    /// An ideal link with only the given one-way delay.
    pub fn ideal(delay: SimDuration) -> Self {
        LinkConfig {
            delay,
            ..LinkConfig::default()
        }
    }

    /// Builder-style: set the loss probability.
    pub fn with_loss(mut self, loss: f64) -> Self {
        self.loss = loss;
        self
    }

    /// Builder-style: set the reorder probability.
    pub fn with_reorder(mut self, reorder: f64) -> Self {
        self.reorder = reorder;
        self
    }

    /// Builder-style: set the jitter bound.
    pub fn with_jitter(mut self, jitter: SimDuration) -> Self {
        self.jitter = jitter;
        self
    }
}

/// What happened to a packet entering the link.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Transit {
    /// When the packet passes an on-path tap at `position` (set by the
    /// simulator); this is the send time plus serialization plus a fraction
    /// of the propagation delay. Populated for every packet, including
    /// ones dropped later on the path.
    pub tap_time: SimTime,
    /// Delivery times at the far end; empty = lost, two entries = duplicated.
    pub deliveries: Vec<SimTime>,
    /// Whether this packet was held back for reordering.
    pub reordered: bool,
    /// Whether this packet was dropped.
    pub lost: bool,
}

/// One direction of a network path.
#[derive(Debug, Clone)]
pub struct Link {
    config: LinkConfig,
    /// Time at which the serializer becomes free (token-bucket state).
    next_free: SimTime,
}

impl Link {
    /// Creates a link from its configuration.
    pub fn new(config: LinkConfig) -> Self {
        Link {
            config,
            next_free: SimTime::ZERO,
        }
    }

    /// Read access to the configuration.
    pub fn config(&self) -> &LinkConfig {
        &self.config
    }

    /// Sends a packet of `size` bytes at time `now`; `tap_position` in
    /// `[0, 1]` locates the passive observer along the propagation path.
    pub fn send(&mut self, now: SimTime, size: usize, tap_position: f64, rng: &mut Rng) -> Transit {
        // Serialization: packets queue behind each other at finite rates.
        let start = if now > self.next_free {
            now
        } else {
            self.next_free
        };
        let serialization = match self.config.rate_bytes_per_sec {
            Some(rate) => {
                SimDuration::from_nanos((size as u64).saturating_mul(1_000_000_000) / rate.max(1))
            }
            None => SimDuration::ZERO,
        };
        let wire_time = start + serialization;
        self.next_free = wire_time;

        // Propagation with jitter.
        let jitter = if self.config.jitter > SimDuration::ZERO {
            self.config.jitter.mul_f64(rng.f64())
        } else {
            SimDuration::ZERO
        };
        let mut prop = self.config.delay + jitter;

        // Reordering: hold this packet back so later ones overtake it.
        let reordered = rng.chance(self.config.reorder);
        if reordered {
            prop = prop + self.config.reorder_hold;
        }

        let tap_time = wire_time + prop.mul_f64(tap_position.clamp(0.0, 1.0));
        let arrival = wire_time + prop;

        // Loss.
        let lost = rng.chance(self.config.loss);
        let mut deliveries = Vec::new();
        if !lost {
            deliveries.push(arrival);
            if rng.chance(self.config.duplicate) {
                deliveries.push(arrival + self.config.dup_gap);
            }
        }

        Transit {
            tap_time,
            deliveries,
            reordered,
            lost,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn ideal_link_delivers_after_delay() {
        let mut link = Link::new(LinkConfig::ideal(ms(10)));
        let mut rng = Rng::new(1);
        let t = link.send(SimTime::ZERO, 1200, 0.5, &mut rng);
        assert_eq!(t.deliveries, vec![SimTime::ZERO + ms(10)]);
        assert_eq!(t.tap_time, SimTime::ZERO + ms(5));
        assert!(!t.lost && !t.reordered);
    }

    #[test]
    fn loss_drops_all_deliveries_but_tap_still_sees() {
        let cfg = LinkConfig::ideal(ms(10)).with_loss(1.0);
        let mut link = Link::new(cfg);
        let mut rng = Rng::new(2);
        let t = link.send(SimTime::ZERO, 100, 0.0, &mut rng);
        assert!(t.lost);
        assert!(t.deliveries.is_empty());
        assert_eq!(t.tap_time, SimTime::ZERO);
    }

    #[test]
    fn reorder_holds_packet_back() {
        let cfg = LinkConfig {
            reorder: 1.0,
            reorder_hold: ms(5),
            ..LinkConfig::ideal(ms(10))
        };
        let mut link = Link::new(cfg);
        let mut rng = Rng::new(3);
        let t = link.send(SimTime::ZERO, 100, 1.0, &mut rng);
        assert!(t.reordered);
        assert_eq!(t.deliveries, vec![SimTime::ZERO + ms(15)]);
    }

    #[test]
    fn held_packet_is_overtaken_by_follower() {
        let cfg = LinkConfig {
            reorder: 1.0,
            reorder_hold: ms(5),
            ..LinkConfig::ideal(ms(10))
        };
        let mut link = Link::new(cfg.clone());
        let mut rng = Rng::new(4);
        let first = link.send(SimTime::ZERO, 100, 0.0, &mut rng);
        // Second packet through an unimpaired link sent 1 ms later.
        let mut clean = Link::new(LinkConfig::ideal(ms(10)));
        let second = clean.send(SimTime::ZERO + ms(1), 100, 0.0, &mut rng);
        assert!(second.deliveries[0] < first.deliveries[0], "overtake");
    }

    #[test]
    fn duplicate_produces_two_deliveries() {
        let cfg = LinkConfig {
            duplicate: 1.0,
            dup_gap: ms(1),
            ..LinkConfig::ideal(ms(10))
        };
        let mut link = Link::new(cfg);
        let mut rng = Rng::new(5);
        let t = link.send(SimTime::ZERO, 100, 0.0, &mut rng);
        assert_eq!(t.deliveries.len(), 2);
        assert_eq!(t.deliveries[1] - t.deliveries[0], ms(1));
    }

    #[test]
    fn rate_limit_serializes_back_to_back_packets() {
        // 1 MB/s → a 1000-byte packet takes 1 ms to serialize.
        let cfg = LinkConfig {
            rate_bytes_per_sec: Some(1_000_000),
            ..LinkConfig::ideal(ms(10))
        };
        let mut link = Link::new(cfg);
        let mut rng = Rng::new(6);
        let a = link.send(SimTime::ZERO, 1000, 0.0, &mut rng);
        let b = link.send(SimTime::ZERO, 1000, 0.0, &mut rng);
        assert_eq!(a.deliveries[0], SimTime::ZERO + ms(11));
        assert_eq!(b.deliveries[0], SimTime::ZERO + ms(12));
    }

    #[test]
    fn jitter_bounded() {
        let cfg = LinkConfig::ideal(ms(10)).with_jitter(ms(4));
        let mut link = Link::new(cfg);
        let mut rng = Rng::new(7);
        for _ in 0..200 {
            let t = link.send(SimTime::ZERO, 100, 0.0, &mut rng);
            let d = t.deliveries[0] - SimTime::ZERO;
            assert!(d >= ms(10) && d <= ms(14), "delay {d}");
        }
    }

    #[test]
    fn loss_rate_statistical() {
        let cfg = LinkConfig::ideal(ms(1)).with_loss(0.3);
        let mut link = Link::new(cfg);
        let mut rng = Rng::new(8);
        let lost = (0..10_000)
            .filter(|_| link.send(SimTime::ZERO, 100, 0.0, &mut rng).lost)
            .count();
        let rate = lost as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.02, "rate {rate}");
    }

    #[test]
    fn deterministic_given_same_seed() {
        let cfg = LinkConfig::ideal(ms(10))
            .with_loss(0.1)
            .with_jitter(ms(2))
            .with_reorder(0.1);
        let run = |seed| {
            let mut link = Link::new(cfg.clone());
            let mut rng = Rng::new(seed);
            (0..50)
                .map(|i| {
                    link.send(SimTime::ZERO + ms(i), 100, 0.5, &mut rng)
                        .deliveries
                })
                .collect::<Vec<_>>()
        };
        assert_eq!(run(42), run(42));
        assert_ne!(run(42), run(43));
    }
}
