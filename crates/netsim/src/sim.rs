//! The simulator: a duplex path between a client and a server with an
//! optional on-path tap for passive observation.

use crate::event::EventQueue;
use crate::link::{Link, LinkConfig};
use crate::payload::Payload;
use crate::rng::Rng;
use crate::time::SimTime;

/// The two ends of the simulated path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Side {
    /// The scanning client (the paper's vantage point runs here).
    Client,
    /// The web server under measurement.
    Server,
}

impl Side {
    /// The opposite end.
    pub fn other(self) -> Side {
        match self {
            Side::Client => Side::Server,
            Side::Server => Side::Client,
        }
    }
}

impl core::fmt::Display for Side {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            Side::Client => "client",
            Side::Server => "server",
        })
    }
}

/// A datagram crossing the tap position, as seen by a passive observer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TapRecord {
    /// When the packet passed the tap.
    pub time: SimTime,
    /// Which side sent it.
    pub from: Side,
    /// The raw datagram bytes (the observer parses what it legally can);
    /// shared with the in-flight copy, not duplicated.
    pub datagram: Payload,
}

/// Aggregate per-path statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PathStats {
    /// Datagrams entering the path, per direction (client→server, server→client).
    pub sent: [u64; 2],
    /// Datagrams dropped.
    pub lost: [u64; 2],
    /// Datagrams duplicated.
    pub duplicated: [u64; 2],
    /// Datagrams held back for reordering.
    pub reordered: [u64; 2],
    /// Bytes entering the path.
    pub bytes: [u64; 2],
    /// High-water mark of the event-queue depth (pending deliveries and
    /// timers); a proxy for how congested the simulated path ever got.
    pub queue_high_water: u64,
    /// Events pushed onto the timing wheel (deliveries and timers).
    pub queue_pushes: u64,
    /// Events popped off the timing wheel.
    pub queue_pops: u64,
    /// Datagrams the path actually delivered to an endpoint.
    pub delivered: u64,
}

impl PathStats {
    fn dir(side: Side) -> usize {
        match side {
            Side::Client => 0,
            Side::Server => 1,
        }
    }

    /// Total datagrams sent in both directions.
    pub fn total_sent(&self) -> u64 {
        self.sent[0] + self.sent[1]
    }

    /// Total datagrams lost in both directions.
    pub fn total_lost(&self) -> u64 {
        self.lost[0] + self.lost[1]
    }
}

/// An event the driving code must handle.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SimEvent {
    /// A datagram arrived at `to`.
    Datagram {
        /// Receiving side.
        to: Side,
        /// The datagram bytes.
        datagram: Payload,
    },
    /// A timer set via [`Simulator::set_timer`] fired for `side`.
    Timer {
        /// The side that armed the timer.
        side: Side,
        /// Caller-chosen token identifying the timer.
        token: u64,
    },
}

#[derive(Debug)]
enum Pending {
    Deliver { to: Side, datagram: Payload },
    Timer { side: Side, token: u64 },
}

/// Reusable simulator storage: the event-queue heap and the tap buffer.
///
/// A scan loop runs millions of short simulations; recycling this between
/// runs keeps their allocations alive instead of rebuilding them per
/// connection. Obtain one from [`Simulator::into_scratch`] and feed it to
/// [`Simulator::from_scratch`]; a simulator built from scratch storage
/// behaves identically to a fresh one.
#[derive(Debug, Default)]
pub struct SimScratch {
    queue: EventQueue<Pending>,
    tap_records: Vec<TapRecord>,
}

impl SimScratch {
    /// Returns a tap-record buffer that was taken *out* of a finished run
    /// (via [`Simulator::take_tap_records`]) so the next run reuses its
    /// allocation. The records themselves are discarded.
    pub fn restock_tap_records(&mut self, mut records: Vec<TapRecord>) {
        records.clear();
        if records.capacity() > self.tap_records.capacity() {
            self.tap_records = records;
        }
    }
}

/// Discrete-event simulator for one client↔server path.
///
/// The driving code (e.g. `quicspin-quic`'s `ConnectionLab` or the
/// scanner) injects datagrams with [`send`](Simulator::send), arms timers,
/// and pumps [`step`](Simulator::step) until the exchange completes. An
/// optional tap records every datagram crossing a configurable point on
/// the path, which is exactly what the paper's passive observer sees.
#[derive(Debug)]
pub struct Simulator {
    now: SimTime,
    queue: EventQueue<Pending>,
    c2s: Link,
    s2c: Link,
    tap_position: Option<f64>,
    tap_records: Vec<TapRecord>,
    stats: PathStats,
    rng: Rng,
}

impl Simulator {
    /// Creates a simulator with the given per-direction link configs.
    pub fn new(c2s: LinkConfig, s2c: LinkConfig, seed: u64) -> Self {
        Simulator::from_scratch(c2s, s2c, seed, SimScratch::default())
    }

    /// Creates a symmetric simulator (same config both directions).
    pub fn symmetric(config: LinkConfig, seed: u64) -> Self {
        Simulator::new(config.clone(), config, seed)
    }

    /// Like [`new`](Simulator::new), but reusing the allocations held in
    /// `scratch` (recovered from a previous run via
    /// [`into_scratch`](Simulator::into_scratch)).
    pub fn from_scratch(
        c2s: LinkConfig,
        s2c: LinkConfig,
        seed: u64,
        mut scratch: SimScratch,
    ) -> Self {
        scratch.queue.clear();
        scratch.tap_records.clear();
        Simulator {
            now: SimTime::ZERO,
            queue: scratch.queue,
            c2s: Link::new(c2s),
            s2c: Link::new(s2c),
            tap_position: None,
            tap_records: scratch.tap_records,
            stats: PathStats::default(),
            rng: Rng::new(seed),
        }
    }

    /// Symmetric variant of [`from_scratch`](Simulator::from_scratch).
    pub fn symmetric_from_scratch(config: LinkConfig, seed: u64, scratch: SimScratch) -> Self {
        Simulator::from_scratch(config.clone(), config, seed, scratch)
    }

    /// Tears the simulator down, recovering its reusable storage for the
    /// next run.
    pub fn into_scratch(self) -> SimScratch {
        SimScratch {
            queue: self.queue,
            tap_records: self.tap_records,
        }
    }

    /// Places a passive tap at `position` along the path (0 = next to the
    /// client, 1 = next to the server).
    pub fn with_tap(mut self, position: f64) -> Self {
        self.tap_position = Some(position.clamp(0.0, 1.0));
        self
    }

    /// Current simulated time.
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of pending events.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Path statistics so far.
    pub fn stats(&self) -> &PathStats {
        &self.stats
    }

    /// Records captured by the tap so far.
    pub fn tap_records(&self) -> &[TapRecord] {
        &self.tap_records
    }

    /// Takes ownership of the tap records collected so far.
    pub fn take_tap_records(&mut self) -> Vec<TapRecord> {
        std::mem::take(&mut self.tap_records)
    }

    /// Injects a datagram sent by `from` at the current time.
    pub fn send(&mut self, from: Side, datagram: impl Into<Payload>) {
        self.send_after(from, crate::time::SimDuration::ZERO, datagram);
    }

    /// Injects a datagram that leaves `from` after `delay` (endpoint
    /// processing latency: the time between the triggering event and the
    /// packet hitting the wire — the end-host delay the paper holds
    /// responsible for spin-bit overestimation).
    pub fn send_after(
        &mut self,
        from: Side,
        delay: crate::time::SimDuration,
        datagram: impl Into<Payload>,
    ) {
        let datagram: Payload = datagram.into();
        let dir = PathStats::dir(from);
        self.stats.sent[dir] += 1;
        self.stats.bytes[dir] += datagram.len() as u64;

        let tap_pos = self.tap_position.unwrap_or(0.5);
        let link = match from {
            Side::Client => &mut self.c2s,
            Side::Server => &mut self.s2c,
        };
        // The tap position is measured from the client side, so for
        // server→client traffic the packet passes the tap at (1 - pos)
        // of its own propagation path.
        let pos_along = match from {
            Side::Client => tap_pos,
            Side::Server => 1.0 - tap_pos,
        };
        let transit = link.send(self.now + delay, datagram.len(), pos_along, &mut self.rng);

        if transit.lost {
            self.stats.lost[dir] += 1;
        }
        if transit.reordered {
            self.stats.reordered[dir] += 1;
        }
        if transit.deliveries.len() > 1 {
            self.stats.duplicated[dir] += 1;
        }

        // Tap capture and each delivery only clone the shared handle; the
        // bytes themselves are never copied, and with no tap installed the
        // capture costs nothing at all.
        if self.tap_position.is_some() {
            self.tap_records.push(TapRecord {
                time: transit.tap_time,
                from,
                datagram: datagram.clone(),
            });
        }

        let to = from.other();
        self.stats.queue_pushes += transit.deliveries.len() as u64;
        for at in transit.deliveries {
            self.queue.push(
                at,
                Pending::Deliver {
                    to,
                    datagram: datagram.clone(),
                },
            );
        }
        self.note_queue_depth();
    }

    /// Arms a timer for `side` at absolute time `at`.
    pub fn set_timer(&mut self, side: Side, at: SimTime, token: u64) {
        let at = if at < self.now { self.now } else { at };
        self.stats.queue_pushes += 1;
        self.queue.push(at, Pending::Timer { side, token });
        self.note_queue_depth();
    }

    #[inline]
    fn note_queue_depth(&mut self) {
        let depth = self.queue.len() as u64;
        if depth > self.stats.queue_high_water {
            self.stats.queue_high_water = depth;
        }
    }

    /// Advances to the next event and returns it, or `None` when idle.
    pub fn step(&mut self) -> Option<(SimTime, SimEvent)> {
        let (at, pending) = self.queue.pop()?;
        debug_assert!(at >= self.now, "time went backwards");
        self.now = at;
        self.stats.queue_pops += 1;
        let event = match pending {
            Pending::Deliver { to, datagram } => {
                self.stats.delivered += 1;
                SimEvent::Datagram { to, datagram }
            }
            Pending::Timer { side, token } => SimEvent::Timer { side, token },
        };
        Some((at, event))
    }

    /// Sorts the tap records by time. Deliveries are naturally time-ordered
    /// but tap crossings of *reordered* packets are recorded at send time
    /// order; a real tap sees them in crossing order, so analysis code
    /// should call this before consuming the records.
    pub fn sort_tap_records(&mut self) {
        self.tap_records.sort_by_key(|r| r.time);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimDuration;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn datagram_travels_one_way_delay() {
        let mut sim = Simulator::symmetric(LinkConfig::ideal(ms(15)), 1);
        sim.send(Side::Client, vec![1, 2, 3]);
        let (at, ev) = sim.step().unwrap();
        assert_eq!(at, SimTime::ZERO + ms(15));
        assert_eq!(
            ev,
            SimEvent::Datagram {
                to: Side::Server,
                datagram: vec![1, 2, 3].into()
            }
        );
        assert_eq!(sim.now(), at);
        assert!(sim.step().is_none());
    }

    #[test]
    fn round_trip_is_sum_of_directions() {
        let mut sim = Simulator::new(LinkConfig::ideal(ms(10)), LinkConfig::ideal(ms(30)), 1);
        sim.send(Side::Client, vec![0]);
        let (t1, _) = sim.step().unwrap();
        sim.send(Side::Server, vec![1]);
        let (t2, ev) = sim.step().unwrap();
        assert_eq!(t1, SimTime::ZERO + ms(10));
        assert_eq!(t2, SimTime::ZERO + ms(40));
        assert!(matches!(
            ev,
            SimEvent::Datagram {
                to: Side::Client,
                ..
            }
        ));
    }

    #[test]
    fn timers_interleave_with_datagrams() {
        let mut sim = Simulator::symmetric(LinkConfig::ideal(ms(10)), 1);
        sim.send(Side::Client, vec![0]);
        sim.set_timer(Side::Client, SimTime::ZERO + ms(5), 99);
        let (t1, ev1) = sim.step().unwrap();
        assert_eq!(t1, SimTime::ZERO + ms(5));
        assert_eq!(
            ev1,
            SimEvent::Timer {
                side: Side::Client,
                token: 99
            }
        );
        let (t2, _) = sim.step().unwrap();
        assert_eq!(t2, SimTime::ZERO + ms(10));
    }

    #[test]
    fn past_timers_fire_immediately_not_backwards() {
        let mut sim = Simulator::symmetric(LinkConfig::ideal(ms(10)), 1);
        sim.send(Side::Client, vec![0]);
        sim.step().unwrap(); // now = 10ms
        sim.set_timer(Side::Server, SimTime::ZERO, 1);
        let (at, _) = sim.step().unwrap();
        assert_eq!(at, SimTime::ZERO + ms(10));
    }

    #[test]
    fn tap_sees_both_directions_at_position() {
        let mut sim = Simulator::symmetric(LinkConfig::ideal(ms(10)), 1).with_tap(0.2);
        sim.send(Side::Client, vec![1]);
        sim.send(Side::Server, vec![2]);
        let records = sim.tap_records();
        assert_eq!(records.len(), 2);
        // Client→server: 20% of 10ms = 2ms from client side.
        assert_eq!(records[0].time, SimTime::ZERO + ms(2));
        assert_eq!(records[0].from, Side::Client);
        // Server→client: tap is at 0.2 from client = 0.8 of the server's path.
        assert_eq!(records[1].time, SimTime::ZERO + ms(8));
        assert_eq!(records[1].from, Side::Server);
    }

    #[test]
    fn tap_disabled_records_nothing() {
        let mut sim = Simulator::symmetric(LinkConfig::ideal(ms(10)), 1);
        sim.send(Side::Client, vec![1]);
        assert!(sim.tap_records().is_empty());
    }

    #[test]
    fn stats_count_loss_and_sends() {
        let cfg = LinkConfig::ideal(ms(5)).with_loss(1.0);
        let mut sim = Simulator::new(cfg, LinkConfig::ideal(ms(5)), 1);
        sim.send(Side::Client, vec![0; 100]);
        sim.send(Side::Server, vec![0; 50]);
        let stats = sim.stats();
        assert_eq!(stats.sent, [1, 1]);
        assert_eq!(stats.lost, [1, 0]);
        assert_eq!(stats.bytes, [100, 50]);
        assert_eq!(stats.total_sent(), 2);
        assert_eq!(stats.total_lost(), 1);
        // Lost client packet never arrives; server one does.
        let (_, ev) = sim.step().unwrap();
        assert!(matches!(
            ev,
            SimEvent::Datagram {
                to: Side::Client,
                ..
            }
        ));
        assert!(sim.step().is_none());
    }

    #[test]
    fn queue_high_water_tracks_peak_depth() {
        let mut sim = Simulator::symmetric(LinkConfig::ideal(ms(10)), 1);
        assert_eq!(sim.stats().queue_high_water, 0);
        sim.send(Side::Client, vec![0]);
        sim.send(Side::Client, vec![1]);
        sim.set_timer(Side::Client, SimTime::ZERO + ms(1), 7);
        assert_eq!(sim.stats().queue_high_water, 3);
        // Draining the queue must not lower the recorded peak.
        while sim.step().is_some() {}
        assert_eq!(sim.pending(), 0);
        assert_eq!(sim.stats().queue_high_water, 3);
    }

    #[test]
    fn queue_op_counters_track_pushes_pops_and_deliveries() {
        let mut sim = Simulator::symmetric(LinkConfig::ideal(ms(10)), 1);
        sim.send(Side::Client, vec![0]);
        sim.send(Side::Client, vec![1]);
        sim.set_timer(Side::Client, SimTime::ZERO + ms(1), 7);
        assert_eq!(sim.stats().queue_pushes, 3);
        assert_eq!(sim.stats().queue_pops, 0);
        while sim.step().is_some() {}
        let stats = *sim.stats();
        assert_eq!(stats.queue_pops, 3);
        // The timer pops but is not a delivery.
        assert_eq!(stats.delivered, 2);

        // A lossy send pushes nothing, so pushes stay op-exact.
        let mut lossy = Simulator::new(
            LinkConfig::ideal(ms(5)).with_loss(1.0),
            LinkConfig::ideal(ms(5)),
            1,
        );
        lossy.send(Side::Client, vec![0]);
        assert_eq!(lossy.stats().queue_pushes, 0);
        assert_eq!(lossy.stats().delivered, 0);
    }

    #[test]
    fn take_tap_records_drains() {
        let mut sim = Simulator::symmetric(LinkConfig::ideal(ms(1)), 1).with_tap(0.5);
        sim.send(Side::Client, vec![1]);
        assert_eq!(sim.take_tap_records().len(), 1);
        assert!(sim.tap_records().is_empty());
    }

    #[test]
    fn sort_tap_records_orders_by_crossing_time() {
        let cfg = LinkConfig {
            reorder: 0.5,
            reorder_hold: ms(50),
            ..LinkConfig::ideal(ms(10))
        };
        // Find a seed where the first packet is held back and the second is
        // not: the second then overtakes the first on the wire.
        for seed in 0..64 {
            let mut sim =
                Simulator::new(cfg.clone(), LinkConfig::ideal(ms(10)), seed).with_tap(1.0);
            sim.send(Side::Client, vec![1]);
            sim.send(Side::Client, vec![2]);
            if sim.stats().reordered[0] != 1
                || sim.tap_records()[1].time >= sim.tap_records()[0].time
            {
                continue;
            }
            sim.sort_tap_records();
            let records = sim.tap_records();
            assert_eq!(records[0].datagram, vec![2], "overtaker crosses tap first");
            assert!(records[0].time <= records[1].time);
            return;
        }
        panic!("no seed in 0..64 produced the reordering pattern");
    }

    #[test]
    fn tap_record_shares_delivered_allocation() {
        let mut sim = Simulator::symmetric(LinkConfig::ideal(ms(10)), 1).with_tap(0.5);
        sim.send(Side::Client, vec![1, 2, 3]);
        let tapped = sim.tap_records()[0].datagram.clone();
        let Some((_, SimEvent::Datagram { datagram, .. })) = sim.step() else {
            panic!("expected delivery");
        };
        assert!(
            crate::payload::Payload::ptr_eq(&tapped, &datagram),
            "tap and delivery must share one allocation"
        );
    }

    #[test]
    fn scratch_reuse_replays_identical_sequence() {
        let cfg = LinkConfig::ideal(ms(10)).with_loss(0.2).with_jitter(ms(3));
        let run = |scratch: SimScratch| {
            let mut sim = Simulator::symmetric_from_scratch(cfg.clone(), 9, scratch).with_tap(0.5);
            for i in 0..20u8 {
                sim.send(Side::Client, vec![i]);
            }
            let mut out = Vec::new();
            while let Some(step) = sim.step() {
                out.push(step);
            }
            sim.sort_tap_records();
            let taps = sim.tap_records().len();
            (out, taps, sim.into_scratch())
        };
        let (fresh_events, fresh_taps, scratch) = run(SimScratch::default());
        // A simulator recycling the previous run's storage must replay the
        // exact same event sequence, and start with no stale tap records.
        let (reused_events, reused_taps, _) = run(scratch);
        assert_eq!(fresh_events, reused_events);
        assert_eq!(fresh_taps, reused_taps);
    }

    #[test]
    fn side_other_flips() {
        assert_eq!(Side::Client.other(), Side::Server);
        assert_eq!(Side::Server.other(), Side::Client);
        assert_eq!(Side::Client.to_string(), "client");
    }

    #[test]
    fn deterministic_event_sequence() {
        let run = |seed| {
            let cfg = LinkConfig::ideal(ms(10)).with_loss(0.2).with_jitter(ms(3));
            let mut sim = Simulator::symmetric(cfg, seed);
            for i in 0..20u8 {
                sim.send(Side::Client, vec![i]);
            }
            let mut out = Vec::new();
            while let Some((at, ev)) = sim.step() {
                out.push((at, ev));
            }
            out
        };
        assert_eq!(run(5), run(5));
    }
}
