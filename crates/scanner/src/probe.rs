//! Probing one target: run the full QUIC+HTTP/3 exchange for one
//! connection plan and distill a [`ConnectionRecord`].

use crate::record::{ConnectionRecord, ScanOutcome};
use quicspin_core::{GreaseFilter, ObserverConfig, ObserverReport};
use quicspin_h3::{Request, Response};
use quicspin_netsim::{Rng, SimDuration};
use quicspin_quic::{
    ConnectionLab, LabConfig, LabScratch, LabStats, ServerProfile, TransportConfig,
};
use quicspin_telemetry::{GaugeId, Metric, ProfilerShard, ScopeId, Stage, WorkerShard};
use quicspin_webpop::{ConnectionPlan, DomainRecord, IpVersion, WebServer};

/// Reusable per-worker probe state.
///
/// A campaign worker thread keeps one of these alive across every probe it
/// runs; the connection lab's event queue, qlog buffers and byte buffers
/// are then recycled instead of reallocated per connection. A fresh
/// scratch and a reused one produce identical records.
///
/// The scratch also carries the worker's private telemetry shard, so
/// per-packet counters and stage timings accumulate contention-free and
/// ride the existing per-worker state through the hot path. The campaign
/// engine enables the shard to match its registry and absorbs it when the
/// worker finishes; outside a campaign the shard stays disabled and costs
/// nothing.
#[derive(Debug, Default)]
pub struct ProbeScratch {
    lab: LabScratch,
    /// Worker-private telemetry buffer (see [`quicspin_telemetry`]).
    pub telemetry: WorkerShard,
    /// Worker-private hierarchical profiler buffer. Enabled by profiled
    /// campaigns alongside [`ProbeScratch::telemetry`]; when disabled the
    /// scope points cost a branch and never read the clock.
    pub profiler: ProfilerShard,
    /// When set (by a flight-recorder campaign), probes capture the client
    /// qlog trace on the record even if `keep_qlog` is off, so the
    /// recorder can inspect it. The campaign engine strips and recycles
    /// the trace again after inspection via [`ProbeScratch::restock_qlog`].
    pub flight_inspect: bool,
    /// Worker-private flight-recorder state (anomalies + retained traces),
    /// merged at fold time like [`ProbeScratch::telemetry`].
    pub flight: crate::flight::FlightShard,
    /// When set (by an observer campaign), probes arm the simulator's
    /// passive tap at this path position and fold the capture through the
    /// `quicspin-observer` privacy boundary into an
    /// [`crate::observe::ObserverView`] on the record.
    pub tap_position: Option<f64>,
    /// One-entry name cache: the `www.` query target of the domain
    /// currently being probed. A probe resolves the same name at several
    /// call sites (request host, redirect location, qlog titles) across
    /// up to two hops; the cache formats it once per domain instead of
    /// once per call. The worker-side counterpart of render-time
    /// interning via [`quicspin_webpop::SymbolTable`] — deliberately one
    /// entry, so memory stays flat over million-domain sweeps.
    www_name: String,
    www_name_for: Option<u32>,
}

impl ProbeScratch {
    /// Returns a qlog trace captured only for flight-recorder inspection,
    /// recycling its event buffer for the next probe.
    pub fn restock_qlog(&mut self, trace: quicspin_qlog::TraceLog) {
        self.lab.restock_client_events(trace.events);
    }

    /// The cached `www.` query target for `domain` (equal to
    /// [`DomainRecord::www_name`]), formatted on the first call per
    /// domain and borrowed on every later one.
    fn www_target(&mut self, domain: &DomainRecord) -> &str {
        if self.www_name_for != Some(domain.id) {
            use std::fmt::Write as _;
            self.www_name.clear();
            let _ = write!(self.www_name, "www.{}", domain.name());
            self.www_name_for = Some(domain.id);
        }
        &self.www_name
    }
}

/// Maps one lab run's plain stats into the worker's telemetry shard.
fn note_lab_stats(shard: &mut WorkerShard, stats: &LabStats) {
    // Transport counters, both endpoints.
    for conn in [&stats.client, &stats.server] {
        shard.add(Metric::PacketsSent, conn.packets_sent);
        shard.add(Metric::PacketsReceived, conn.packets_received);
        shard.add(Metric::PacketsUndecodable, conn.packets_undecodable);
        shard.add(Metric::PacketsDuplicate, conn.packets_duplicate);
        shard.add(Metric::PacketsLost, conn.packets_lost);
        shard.add(Metric::FramesRetransmitted, conn.frames_retransmitted);
        shard.add(Metric::PtosFired, conn.ptos_fired);
        shard.add(Metric::DatagramPoolHits, conn.datagram_pool_hits);
        shard.add(Metric::DatagramPoolMisses, conn.datagram_pool_misses);
    }
    // Spin edges as seen by the scanning client (the measurement side).
    shard.add(Metric::SpinTransitionsObserved, stats.client.spin_edges);
    // Simulated-path behaviour.
    let path = &stats.path;
    shard.add(Metric::NetsimDrops, path.total_lost());
    shard.add(
        Metric::NetsimReorders,
        path.reordered[0] + path.reordered[1],
    );
    shard.add(
        Metric::NetsimDuplicates,
        path.duplicated[0] + path.duplicated[1],
    );
    shard.gauge_max(GaugeId::NetsimQueueHighWater, path.queue_high_water);
    // Payload-pool hit rate.
    shard.add(Metric::PayloadReclaimed, stats.payload_reclaimed);
    shard.add(Metric::PayloadShared, stats.payload_shared);
    // Stage wall times measured inside the lab's event loop.
    if stats.handshake_wall_ns > 0 {
        shard.record_ns(Stage::Handshake, stats.handshake_wall_ns);
    }
    if stats.transfer_wall_ns > 0 {
        shard.record_ns(Stage::Transfer, stats.transfer_wall_ns);
    }
}

/// Maps one lab run's plain stats into the worker's profiler shard: the
/// inner netsim/quic scopes are count-only (enters, allocation deltas,
/// event-queue-op deltas), fed post hoc from counters the transport and
/// path simulator already maintain — the hot path itself reads no clock
/// for them. The lab's own handshake/transfer stopwatches supply the
/// wall split inside the `probe/lab` scope.
fn note_lab_profile(prof: &mut ProfilerShard, stats: &LabStats, established: bool) {
    let path = &stats.path;
    prof.enter_n(ScopeId::WheelPush, path.queue_pushes);
    prof.add_queue_ops(ScopeId::WheelPush, path.queue_pushes);
    prof.enter_n(ScopeId::WheelPop, path.queue_pops);
    prof.add_queue_ops(ScopeId::WheelPop, path.queue_pops);
    prof.enter_n(ScopeId::LinkDelivery, path.delivered);
    for conn in [&stats.client, &stats.server] {
        prof.enter_n(ScopeId::PacketEncode, conn.packets_sent);
        prof.enter_n(
            ScopeId::PacketDecode,
            conn.packets_received + conn.packets_undecodable,
        );
        prof.enter_n(ScopeId::Reassembly, conn.frames_reassembled);
        prof.enter_n(
            ScopeId::DatagramPool,
            conn.datagram_pool_hits + conn.datagram_pool_misses,
        );
        prof.add_allocs(ScopeId::DatagramPool, conn.datagram_pool_misses);
    }
    // Every lab run attempts a handshake; only established connections
    // reach the transfer phase. Both facts are worker-count invariant.
    prof.enter(ScopeId::LabHandshake);
    if established {
        prof.enter(ScopeId::LabTransfer);
    }
    prof.add_wall_ns(ScopeId::LabHandshake, stats.handshake_wall_ns);
    prof.add_wall_ns(ScopeId::LabTransfer, stats.transfer_wall_ns);
}

/// Network conditions of the scan path (the part of the path shared by
/// all measurements from the vantage point).
#[derive(Debug, Clone, Copy)]
pub struct NetworkConditions {
    /// Per-direction loss probability.
    pub loss: f64,
    /// Per-direction probability that a packet is held back and overtaken
    /// (reordering; the paper finds its impact nearly negligible, §5.2).
    pub reorder: f64,
    /// Jitter as a fraction of the path RTT.
    pub jitter_frac: f64,
}

impl Default for NetworkConditions {
    fn default() -> Self {
        NetworkConditions {
            loss: 0.001,
            reorder: 0.00006,
            jitter_frac: 0.0003,
        }
    }
}

impl NetworkConditions {
    /// Perfectly clean paths (for tests and ablations).
    pub fn clean() -> Self {
        NetworkConditions {
            loss: 0.0,
            reorder: 0.0,
            jitter_frac: 0.0,
        }
    }
}

/// Runs one planned connection; returns the record plus the parsed
/// response (for redirect following).
#[allow(clippy::too_many_arguments)]
pub fn probe_connection(
    domain: &DomainRecord,
    plan: &ConnectionPlan,
    week: u32,
    version: IpVersion,
    redirect_depth: u32,
    conditions: &NetworkConditions,
    observer: ObserverConfig,
    grease: GreaseFilter,
) -> (ConnectionRecord, Option<Response>) {
    probe_connection_with_qlog(
        domain,
        plan,
        week,
        version,
        redirect_depth,
        conditions,
        observer,
        grease,
        false,
    )
}

/// [`probe_connection`] with optional retention of the full client qlog
/// trace on the record (Appendix B-style artifact capture).
#[allow(clippy::too_many_arguments)]
pub fn probe_connection_with_qlog(
    domain: &DomainRecord,
    plan: &ConnectionPlan,
    week: u32,
    version: IpVersion,
    redirect_depth: u32,
    conditions: &NetworkConditions,
    observer: ObserverConfig,
    grease: GreaseFilter,
    keep_qlog: bool,
) -> (ConnectionRecord, Option<Response>) {
    probe_connection_scratch(
        domain,
        plan,
        week,
        version,
        redirect_depth,
        conditions,
        observer,
        grease,
        keep_qlog,
        &mut ProbeScratch::default(),
    )
}

/// [`probe_connection_with_qlog`] reusing per-worker scratch storage
/// across probes (the campaign engine's hot path).
#[allow(clippy::too_many_arguments)]
pub fn probe_connection_scratch(
    domain: &DomainRecord,
    plan: &ConnectionPlan,
    week: u32,
    version: IpVersion,
    redirect_depth: u32,
    conditions: &NetworkConditions,
    observer: ObserverConfig,
    grease: GreaseFilter,
    keep_qlog: bool,
    scratch: &mut ProbeScratch,
) -> (ConnectionRecord, Option<Response>) {
    // Profiler lap chain: one clock read per scope boundary, and none at
    // all when profiling is off (begin/lap return None on a disabled
    // shard). The inner netsim/quic scopes never read the clock — they
    // are fed post hoc by `note_lab_profile`.
    let p0 = scratch.profiler.begin();
    // Build the HTTP exchange for this hop.
    let request = Request::get(
        scratch.www_target(domain),
        if redirect_depth == 0 {
            "/"
        } else {
            "/canonical"
        },
    );
    let is_redirect_hop = plan.redirects && redirect_depth == 0;
    let response = if is_redirect_hop {
        Response::redirect(
            plan.webserver.header_value(),
            format!("https://{}/canonical", scratch.www_target(domain)),
        )
    } else {
        Response::ok(
            plan.webserver.header_value(),
            plan.server_profile.total_bytes(),
        )
    };
    // Redirect hops answer with a header-only page (one small chunk),
    // still after the host's processing delay.
    let server_profile = if is_redirect_hop {
        ServerProfile {
            initial_delay: plan.server_profile.initial_delay,
            chunks: vec![(SimDuration::ZERO, 600)],
        }
    } else {
        plan.server_profile.clone()
    };

    // Endpoint processing latencies. Pure ACKs take the transport fast
    // path (tens of µs); data packets go through application write
    // scheduling (hundreds of µs to ms on loaded servers). The spin-edge
    // reply is a data packet, so spin periods systematically sit above
    // the stack's handshake-anchored minimum — the §6 end-host-delay
    // mechanism behind Fig. 3/4's overestimation.
    let mut latency_rng = Rng::new(plan.seed ^ 0x9e37_79b9_7f4a_7c15);
    let client_data = SimDuration::from_micros(60 + latency_rng.next_below(90));
    let client_ack = SimDuration::from_micros(30 + latency_rng.next_below(50));
    let server_data = SimDuration::from_micros(500 + latency_rng.next_below(1000));
    let server_ack = SimDuration::from_micros(30 + latency_rng.next_below(60));
    let server_cfg = TransportConfig::default()
        .with_spin_policy(plan.spin_policy)
        .with_processing_latency(server_data, server_ack);
    let lab_cfg = LabConfig {
        path_rtt_ms: plan.rtt_ms,
        jitter_ms: plan.rtt_ms * conditions.jitter_frac,
        loss: conditions.loss,
        reorder: conditions.reorder,
        reorder_hold_ms: 2.0,
        seed: plan.seed,
        client: TransportConfig::default().with_processing_latency(client_data, client_ack),
        server: server_cfg,
        server_profile,
        link_rate_bytes_per_sec: Some(12_500_000),
        // Off by default: the probe then only reads the client's own
        // qlog. An observer campaign arms the (purely passive) tap and
        // folds its capture below.
        tap_position: scratch.tap_position,
        request: request.encode(),
        response_prefix: response.encode_header(),
        max_duration: SimDuration::from_secs(60),
        // Only pay for phase wall-clocks when telemetry or the profiler
        // is live (the profiler splits probe/lab into handshake/transfer
        // from the same stopwatches).
        time_stages: scratch.telemetry.is_enabled() || scratch.profiler.is_enabled(),
    };
    let p = scratch.profiler.lap(ScopeId::Plan, p0);
    let mut outcome = ConnectionLab::new(lab_cfg).run_with_scratch(&mut scratch.lab);
    scratch.profiler.lap(ScopeId::Lab, p);
    note_lab_stats(&mut scratch.telemetry, &outcome.stats);
    if scratch.profiler.is_enabled() {
        note_lab_profile(
            &mut scratch.profiler,
            &outcome.stats,
            outcome.handshake_completed,
        );
    }

    // Virtual-clock timings for the time-series layer, read off the client
    // qlog before it is (maybe) stripped below. These are simulated
    // microseconds, so they are identical for any worker-thread count.
    let virtual_handshake_us = outcome.client_qlog.handshake_time_us();
    let virtual_total_us = outcome.client_qlog.duration_us();
    let queue_high_water = outcome.stats.path.queue_high_water;

    if !outcome.handshake_completed {
        scratch.telemetry.incr(Metric::HandshakesFailed);
        let qlog = (keep_qlog || scratch.flight_inspect).then(|| {
            let mut trace = std::mem::take(&mut outcome.client_qlog);
            trace.title = scratch.www_target(domain).to_owned();
            if scratch.flight_inspect {
                scratch.telemetry.incr(Metric::FlightTracesInspected);
            }
            trace
        });
        let record = ConnectionRecord {
            domain_id: domain.id,
            list: domain.list,
            org: domain.org,
            week,
            version,
            redirect_depth,
            outcome: ScanOutcome::HandshakeFailed,
            host: Some(plan.host),
            webserver: None,
            report: None,
            observer: None,
            virtual_handshake_us,
            virtual_total_us,
            queue_high_water,
            qlog,
        };
        scratch.profiler.end(ScopeId::Probe, p0);
        scratch.lab.reclaim(outcome);
        return (record, None);
    }

    scratch.telemetry.incr(Metric::HandshakesCompleted);
    let parsed = Response::parse_header(&outcome.response_data).map(|(r, _)| r);
    let webserver = parsed.as_ref().map(|r| WebServer::from_header(&r.server));

    // Back-to-back stages share clock reads: each lap's end timestamp is
    // the next stage's start.
    let t = scratch.telemetry.timer();
    let p = scratch.profiler.begin();
    let observations = outcome.client_observations();
    let t = scratch.telemetry.record_lap(Stage::SpinExtraction, t);
    let p = scratch.profiler.lap(ScopeId::SpinExtraction, p);

    let report = ObserverReport::build(
        &observations,
        std::mem::take(&mut outcome.client_stack_samples_us),
        observer,
        grease,
    );
    let t = scratch.telemetry.record_lap(Stage::Classify, t);
    let p = scratch.profiler.lap(ScopeId::Classify, p);

    // On-path observation: narrow the tap capture through the observer's
    // privacy boundary (short-header bytes only) and keep the flow view
    // next to the client's own report.
    let observer_view = scratch.tap_position.map(|position| {
        let mut flow = quicspin_observer::FlowObserver::default();
        flow.ingest_tap_records(&outcome.tap_records, outcome.cid_len);
        let stats = flow.stats();
        scratch
            .telemetry
            .add(Metric::ObserverPacketsObserved, stats.packets);
        scratch
            .telemetry
            .add(Metric::ObserverUnobservable, stats.unobservable);
        scratch.telemetry.add(
            Metric::ObserverEdgesObserved,
            stats.edges_upstream + stats.edges_downstream,
        );
        scratch.telemetry.add(
            Metric::ObserverSamplesAccepted,
            stats.samples + stats.samples_upstream,
        );
        scratch.telemetry.add(
            Metric::ObserverSamplesRejected,
            stats.rejected_reorder + stats.rejected_gap,
        );
        scratch.telemetry.incr(if stats.measurable {
            Metric::ObserverFlowsMeasurable
        } else {
            Metric::ObserverFlowsUnmeasurable
        });
        scratch
            .profiler
            .enter_n(ScopeId::ObserverSamples, stats.packets);
        crate::observe::ObserverView::new(position, stats, &report)
    });
    let (t, p) = if scratch.tap_position.is_some() {
        (
            scratch.telemetry.record_lap(Stage::ObserverFold, t),
            scratch.profiler.lap(ScopeId::ObserverFold, p),
        )
    } else {
        (t, p)
    };

    let qlog = (keep_qlog || scratch.flight_inspect).then(|| {
        let mut trace = std::mem::take(&mut outcome.client_qlog);
        trace.title = scratch.www_target(domain).to_owned();
        if keep_qlog {
            scratch.telemetry.incr(Metric::QlogTracesRetained);
        }
        if scratch.flight_inspect {
            scratch.telemetry.incr(Metric::FlightTracesInspected);
        }
        trace
    });
    if keep_qlog {
        scratch.telemetry.record_since(Stage::QlogEncode, t);
        scratch.profiler.lap(ScopeId::QlogEncode, p);
    }

    let record = ConnectionRecord {
        domain_id: domain.id,
        list: domain.list,
        org: domain.org,
        week,
        version,
        redirect_depth,
        outcome: ScanOutcome::Ok,
        host: Some(plan.host),
        webserver,
        report: Some(report),
        observer: observer_view,
        virtual_handshake_us,
        virtual_total_us,
        queue_high_water,
        qlog,
    };
    scratch.profiler.end(ScopeId::Probe, p0);
    scratch.lab.reclaim(outcome);
    (record, parsed)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_core::FlowClassification;
    use quicspin_webpop::{Population, PopulationConfig};

    fn population() -> Population {
        Population::generate(PopulationConfig::tiny(99))
    }

    fn first_quic(pop: &Population) -> &quicspin_webpop::DomainRecord {
        pop.domains().iter().find(|d| d.quic).expect("quic domain")
    }

    #[test]
    fn probe_establishes_and_reports() {
        let pop = population();
        let d = first_quic(&pop);
        let plan = pop.plan_connection(d.id, 0, IpVersion::V4, 0).unwrap();
        let (record, response) = probe_connection(
            d,
            &plan,
            0,
            IpVersion::V4,
            0,
            &NetworkConditions::clean(),
            ObserverConfig::default(),
            GreaseFilter::paper(),
        );
        assert_eq!(record.outcome, ScanOutcome::Ok);
        assert!(record.report.is_some());
        assert!(record.webserver.is_some());
        if !plan.redirects {
            let r = response.expect("response parsed");
            assert_eq!(r.server, plan.webserver.header_value());
        }
    }

    #[test]
    fn redirect_hop_parses_location() {
        let pop = population();
        let d = pop
            .domains()
            .iter()
            .find(|d| d.quic && d.redirects)
            .expect("redirecting quic domain");
        let plan = pop.plan_connection(d.id, 0, IpVersion::V4, 0).unwrap();
        let (record, response) = probe_connection(
            d,
            &plan,
            0,
            IpVersion::V4,
            0,
            &NetworkConditions::clean(),
            ObserverConfig::default(),
            GreaseFilter::paper(),
        );
        assert_eq!(record.outcome, ScanOutcome::Ok);
        let r = response.expect("redirect response");
        assert!(r.status.is_redirect());
        assert!(r.location.as_deref().unwrap().contains("canonical"));
    }

    #[test]
    fn spinning_host_yields_spin_activity() {
        let pop = Population::generate(PopulationConfig {
            seed: 5,
            toplist_domains: 0,
            zone_domains: 20_000,
        });
        // Over many participating connections, the clear majority must
        // show spin activity. (A fast host answering a small page within
        // one congestion window can legitimately complete before any flip
        // becomes observable — the paper's "Spin" column also only counts
        // *observable* activity.)
        let mut checked = 0;
        let mut active = 0;
        for d in pop.domains().iter().filter(|d| d.quic && d.host_spin) {
            let plan = pop.plan_connection(d.id, 0, IpVersion::V4, 0).unwrap();
            if plan.spin_policy != quicspin_quic::SpinPolicy::Participate {
                continue;
            }
            let (record, _) = probe_connection(
                d,
                &plan,
                0,
                IpVersion::V4,
                0,
                &NetworkConditions::clean(),
                ObserverConfig::default(),
                GreaseFilter::paper(),
            );
            let report = record.report.unwrap();
            if matches!(
                report.classification,
                FlowClassification::Spinning | FlowClassification::Greased
            ) {
                active += 1;
            }
            checked += 1;
            if checked >= 40 {
                break;
            }
        }
        assert!(checked >= 20, "found only {checked} participating hosts");
        let rate = f64::from(active) / f64::from(checked);
        assert!(rate > 0.6, "spin activity rate {rate} ({active}/{checked})");
    }

    #[test]
    fn fixed_zero_host_yields_all_zero() {
        let pop = Population::generate(PopulationConfig {
            seed: 6,
            toplist_domains: 0,
            zone_domains: 5_000,
        });
        for d in pop.domains().iter().filter(|d| d.quic && !d.host_spin) {
            let plan = pop.plan_connection(d.id, 0, IpVersion::V4, 0).unwrap();
            if plan.spin_policy != quicspin_quic::SpinPolicy::FixedZero {
                continue;
            }
            let (record, _) = probe_connection(
                d,
                &plan,
                0,
                IpVersion::V4,
                0,
                &NetworkConditions::clean(),
                ObserverConfig::default(),
                GreaseFilter::paper(),
            );
            assert_eq!(
                record.report.unwrap().classification,
                FlowClassification::AllZero
            );
            return;
        }
        panic!("no FixedZero host found");
    }

    #[test]
    fn scratch_reuse_matches_fresh_probe() {
        let pop = population();
        let mut scratch = ProbeScratch::default();
        for d in pop.domains().iter().filter(|d| d.quic).take(5) {
            let plan = pop.plan_connection(d.id, 0, IpVersion::V4, 0).unwrap();
            let args = |scratch: &mut ProbeScratch| {
                probe_connection_scratch(
                    d,
                    &plan,
                    0,
                    IpVersion::V4,
                    0,
                    &NetworkConditions::default(),
                    ObserverConfig::default(),
                    GreaseFilter::paper(),
                    true,
                    scratch,
                )
                .0
            };
            let fresh = args(&mut ProbeScratch::default());
            // The scratch carries state over from all previous iterations.
            let reused = args(&mut scratch);
            assert_eq!(fresh.outcome, reused.outcome);
            assert_eq!(fresh.report, reused.report);
            assert_eq!(fresh.qlog, reused.qlog);
        }
    }

    #[test]
    fn tapped_probe_attaches_observer_view_without_changing_the_report() {
        let pop = population();
        let d = first_quic(&pop);
        let plan = pop.plan_connection(d.id, 0, IpVersion::V4, 0).unwrap();
        let run = |tap: Option<f64>| {
            let mut scratch = ProbeScratch {
                tap_position: tap,
                ..ProbeScratch::default()
            };
            probe_connection_scratch(
                d,
                &plan,
                0,
                IpVersion::V4,
                0,
                &NetworkConditions::clean(),
                ObserverConfig::default(),
                GreaseFilter::paper(),
                false,
                &mut scratch,
            )
            .0
        };
        let untapped = run(None);
        let tapped = run(Some(0.5));
        assert!(untapped.observer.is_none());
        let view = tapped.observer.expect("tap attaches a view");
        assert_eq!(view.vantage_millionths, 500_000);
        // The passive tap must not perturb the measurement itself.
        assert_eq!(tapped.report, untapped.report);
        // Clean path: the observer's sample stream matches the client's.
        let report = tapped.report.unwrap();
        assert_eq!(
            view.stats.samples,
            report.spin_samples_received_us.len() as u64
        );
        assert_eq!(view.stats.mean_us, view.client_spin_mean_us);
        assert_eq!(view.extra_edges(), 0);
    }

    #[test]
    fn profiled_probe_populates_deterministic_scope_counts() {
        let pop = population();
        let d = first_quic(&pop);
        let plan = pop.plan_connection(d.id, 0, IpVersion::V4, 0).unwrap();
        let run = || {
            let mut scratch = ProbeScratch {
                tap_position: Some(0.5),
                ..ProbeScratch::default()
            };
            scratch.profiler.set_enabled(true);
            probe_connection_scratch(
                d,
                &plan,
                0,
                IpVersion::V4,
                0,
                &NetworkConditions::clean(),
                ObserverConfig::default(),
                GreaseFilter::paper(),
                true,
                &mut scratch,
            );
            scratch.profiler
        };
        let a = run();
        let b = run();
        for &s in ScopeId::ALL {
            if s.deterministic() {
                assert_eq!(a.enters(s), b.enters(s), "{} enters must repeat", s.path());
            }
        }
        assert_eq!(a.enters(ScopeId::Probe), 1);
        assert_eq!(a.enters(ScopeId::LabHandshake), 1);
        assert_eq!(a.enters(ScopeId::LabTransfer), 1);
        assert!(a.enters(ScopeId::WheelPush) > 0, "wheel pushes must count");
        assert!(a.enters(ScopeId::PacketEncode) > 0);
        assert!(a.enters(ScopeId::PacketDecode) > 0);
        assert!(a.enters(ScopeId::Reassembly) > 0);
        assert!(a.enters(ScopeId::DatagramPool) > 0);
        assert!(a.enters(ScopeId::ObserverSamples) > 0);
        assert!(a.wall_ns(ScopeId::Probe) > 0, "probe wall must be timed");
        assert!(a.wall_ns(ScopeId::Lab) > 0, "lab wall must be timed");

        // An unprofiled probe leaves the shard untouched.
        let mut off = ProbeScratch::default();
        probe_connection_scratch(
            d,
            &plan,
            0,
            IpVersion::V4,
            0,
            &NetworkConditions::clean(),
            ObserverConfig::default(),
            GreaseFilter::paper(),
            false,
            &mut off,
        );
        assert!(off.profiler.is_empty());
    }

    #[test]
    fn probe_is_deterministic() {
        let pop = population();
        let d = first_quic(&pop);
        let plan = pop.plan_connection(d.id, 0, IpVersion::V4, 0).unwrap();
        let run = || {
            probe_connection(
                d,
                &plan,
                0,
                IpVersion::V4,
                0,
                &NetworkConditions::default(),
                ObserverConfig::default(),
                GreaseFilter::paper(),
            )
            .0
        };
        let a = run();
        let b = run();
        assert_eq!(a.report, b.report);
        assert_eq!(a.webserver, b.webserver);
    }
}
