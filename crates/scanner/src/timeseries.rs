//! Deterministic campaign time series and Chrome trace export.
//!
//! The persisted `timeseries.json` must be byte-identical for any
//! worker-thread count, so it cannot be built from wall-clock monitor
//! ticks. Instead [`build_timeseries`] replays the merged record stream —
//! which the batch scheduler already guarantees is bit-identical — and
//! samples cumulative *virtual-clock* state one point per probed domain:
//! error rate, redirect and queue behaviour, virtual handshake/total
//! latency quantiles (from a [`HistogramShard`] over the records'
//! `virtual_*_us` fields), and the classification mix. The bounded
//! [`TimeSeries`] ring then downsamples deterministically (see
//! `quicspin_telemetry::timeseries`).
//!
//! [`chrome_trace_export`] renders a flight recording's retained traces —
//! stage spans, spin edges, RTT counters (via `qlog::chrome`) plus one
//! instant mark per detected anomaly — into the Chrome trace-event array
//! form (`trace.json`), loadable in Perfetto or `chrome://tracing`.

use crate::batch::{RecordBatch, RecordRow};
use crate::campaign::{Campaign, CampaignConfig};
use crate::flight::FlightRecording;
use crate::record::ScanOutcome;
use quicspin_core::FlowClassification;
use quicspin_qlog::{chrome_trace_events, ChromeArgs, ChromeEvent};
use quicspin_telemetry::{
    CounterSnapshot, HistogramShard, SeriesClock, TimePoint, TimeSeries, TimeSeriesDoc,
};

/// The classification mix tracked per sample, in stable order.
const MIX_CLASSES: [FlowClassification; 5] = [
    FlowClassification::NoShortPackets,
    FlowClassification::AllZero,
    FlowClassification::AllOne,
    FlowClassification::Spinning,
    FlowClassification::Greased,
];

/// Cumulative virtual-clock state folded over the record stream.
#[derive(Default)]
struct CumulativeState {
    probes: u64,
    records: u64,
    errors: u64,
    redirects: u64,
    virtual_us: u64,
    queue_high_water: u64,
    handshake_us: HistogramShard,
    total_us: HistogramShard,
    mix: [u64; MIX_CLASSES.len()],
}

impl CumulativeState {
    /// Folds one domain's rows (all its redirect hops) in. Shared by the
    /// record-slice path and the columnar [`RecordBatch`] path.
    fn absorb_group(&mut self, rows: impl Iterator<Item = RecordRow>) {
        self.probes += 1;
        let mut errored = false;
        for row in rows {
            self.records += 1;
            if row.redirect_depth > 0 {
                self.redirects += 1;
            }
            errored |= matches!(
                row.outcome,
                ScanOutcome::HandshakeFailed | ScanOutcome::Unreachable
            );
            self.virtual_us += row.virtual_total_us;
            self.queue_high_water = self.queue_high_water.max(row.queue_high_water);
            if let Some(hs) = row.virtual_handshake_us {
                self.handshake_us.record(hs);
            }
            if row.virtual_total_us > 0 {
                self.total_us.record(row.virtual_total_us);
            }
            if let Some(classification) = row.classification {
                if let Some(slot) = MIX_CLASSES.iter().position(|&c| c == classification) {
                    self.mix[slot] += 1;
                }
            }
        }
        if errored {
            self.errors += 1;
        }
    }

    /// Snapshots the state as one sample point.
    fn point(&self) -> TimePoint {
        TimePoint {
            seq: 0, // assigned by TimeSeries on admission
            probes: self.probes,
            records: self.records,
            errors: self.errors,
            redirects: self.redirects,
            elapsed_us: self.virtual_us,
            queue_high_water: self.queue_high_water,
            handshake_p50_us: self.handshake_us.quantile(0.50),
            handshake_p99_us: self.handshake_us.quantile(0.99),
            total_p50_us: self.total_us.quantile(0.50),
            total_p99_us: self.total_us.quantile(0.99),
            mix: MIX_CLASSES
                .iter()
                .zip(self.mix)
                .map(|(class, value)| CounterSnapshot {
                    name: class.to_string(),
                    value,
                })
                .collect(),
        }
    }
}

/// Incrementally builds the deterministic virtual-clock time series from
/// a stream of domain groups — the streamed campaign path's counterpart
/// of [`build_timeseries`], producing byte-identical output.
///
/// The offer protocol must match the batch builder exactly: every group
/// but the last is a lazy [`TimeSeries::push_with`] offer, and the final
/// group lands unconditionally via [`TimeSeries::push_final`] so the
/// series ends on the campaign's complete cumulative state. Since a
/// stream does not know which group is last, the builder holds each
/// absorbed group's sample back by one: a group's offer happens when the
/// *next* group arrives, and [`TimeSeriesBuilder::finish`] turns the
/// still-held sample into the final point.
pub struct TimeSeriesBuilder {
    series: TimeSeries,
    state: CumulativeState,
    held: bool,
}

impl TimeSeriesBuilder {
    /// A builder downsampling into a ring of `capacity` points.
    pub fn new(capacity: usize) -> Self {
        TimeSeriesBuilder {
            series: TimeSeries::new(capacity),
            state: CumulativeState::default(),
            held: false,
        }
    }

    /// Absorbs one domain's rows (all its redirect hops).
    pub fn push_group(&mut self, rows: impl Iterator<Item = RecordRow>) {
        if self.held {
            let (series, state) = (&mut self.series, &self.state);
            series.push_with(|| state.point());
        }
        self.state.absorb_group(rows);
        self.held = true;
    }

    /// Absorbs every domain group of a columnar batch, in order.
    pub fn push_batch(&mut self, batch: &RecordBatch) {
        for group in batch.groups() {
            self.push_group(group);
        }
    }

    /// Lands the held final sample and assembles the document.
    pub fn finish(mut self, campaign_id: String) -> TimeSeriesDoc {
        if self.held {
            self.series.push_final(self.state.point());
        }
        self.series.into_doc(campaign_id, SeriesClock::Virtual)
    }
}

/// Builds the deterministic virtual-clock time series of a campaign: one
/// sample offered per probed domain (in record order), downsampled into a
/// ring of `capacity` points. The result depends only on the records, so
/// it is byte-identical for any worker-thread count; the campaign id ties
/// it to its run, and the `threads` entry is deliberately absent from the
/// identity (mirroring the flight recorder's index-config rule).
pub fn build_timeseries(
    campaign: &Campaign,
    config: &CampaignConfig,
    capacity: usize,
) -> TimeSeriesDoc {
    let mut builder = TimeSeriesBuilder::new(capacity);
    let records = &campaign.records;
    let mut start = 0usize;
    while start < records.len() {
        let domain_id = records[start].domain_id;
        let mut end = start + 1;
        while end < records.len() && records[end].domain_id == domain_id {
            end += 1;
        }
        builder.push_group(records[start..end].iter().map(RecordRow::of));
        start = end;
    }
    builder.finish(config.campaign_id())
}

/// Renders a flight recording as Chrome trace events: every retained
/// trace contributes its stage spans, spin-edge/loss instants and RTT
/// counter series on a `(domain, hop)` process/thread row, and every
/// anomaly of a retained probe becomes an instant mark named after its
/// kind. The output is deterministic (priority order, virtual time).
pub fn chrome_trace_export(recording: &FlightRecording) -> Vec<ChromeEvent> {
    let mut events = Vec::new();
    for retained in recording.retained() {
        let probe = retained.probe;
        let Some(trace) = recording.trace(probe) else {
            continue;
        };
        events.extend(chrome_trace_events(&trace, probe.domain_id, probe.hop));
        for anomaly in recording.anomalies().iter().filter(|a| a.probe == probe) {
            events.push(
                ChromeEvent::instant(
                    anomaly.kind.name(),
                    trace.duration_us(),
                    probe.domain_id,
                    probe.hop,
                    "anomaly",
                )
                .with_args(ChromeArgs {
                    severity: Some(u64::from(anomaly.severity)),
                    detail: Some(anomaly.detail.clone()),
                    ..ChromeArgs::default()
                }),
            );
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::Scanner;
    use crate::flight::FlightConfig;
    use crate::probe::NetworkConditions;
    use quicspin_webpop::{Population, PopulationConfig};

    fn pop() -> Population {
        Population::generate(PopulationConfig {
            seed: 0x51,
            toplist_domains: 60,
            zone_domains: 540,
        })
    }

    fn config() -> CampaignConfig {
        CampaignConfig {
            conditions: NetworkConditions::clean(),
            threads: 2,
            flight: FlightConfig::armed(9),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn series_tracks_cumulative_campaign_state() {
        let pop = pop();
        let cfg = config();
        let campaign = Scanner::new(&pop).run_campaign(&cfg);
        let doc = build_timeseries(&campaign, &cfg, 128);
        assert_eq!(doc.campaign_id, cfg.campaign_id());
        assert_eq!(doc.clock, "virtual-us");
        assert!(!doc.points.is_empty());
        assert_eq!(doc.offered, pop.len() as u64);

        let last = doc.last_point().unwrap();
        assert_eq!(last.probes, pop.len() as u64);
        assert_eq!(last.records, campaign.len() as u64);
        let mix_total: u64 = last.mix.iter().map(|c| c.value).sum();
        assert_eq!(
            mix_total,
            campaign.established().count() as u64,
            "every established record classifies into the mix"
        );
        assert!(last.total_p50_us > 0, "virtual stage quantiles populated");
        assert!(last.handshake_p99_us >= last.handshake_p50_us);

        // Cumulative fields are monotone along the series.
        for pair in doc.points.windows(2) {
            assert!(pair[0].probes <= pair[1].probes);
            assert!(pair[0].elapsed_us <= pair[1].elapsed_us);
            assert!(pair[0].errors <= pair[1].errors);
        }
    }

    #[test]
    fn series_is_identical_across_thread_counts() {
        let pop = pop();
        let docs: Vec<String> = [1usize, 4, 8]
            .iter()
            .map(|&threads| {
                let cfg = CampaignConfig {
                    threads,
                    ..config()
                };
                let campaign = Scanner::new(&pop).run_campaign(&cfg);
                serde_json::to_string_pretty(&build_timeseries(&campaign, &cfg, 64)).unwrap()
            })
            .collect();
        assert_eq!(docs[0], docs[1]);
        assert_eq!(docs[1], docs[2]);
    }

    #[test]
    fn streamed_builder_is_byte_identical_to_batch_build() {
        let pop = pop();
        let reference = {
            let cfg = config();
            let campaign = Scanner::new(&pop).run_campaign(&cfg);
            serde_json::to_string_pretty(&build_timeseries(&campaign, &cfg, 64)).unwrap()
        };
        for threads in [1usize, 4] {
            let cfg = CampaignConfig {
                threads,
                ..config()
            };
            let mut builder = TimeSeriesBuilder::new(64);
            Scanner::new(&pop)
                .run_campaign_streamed(&cfg, 24 * 1024, |batch| builder.push_batch(batch));
            let doc = builder.finish(cfg.campaign_id());
            assert_eq!(
                serde_json::to_string_pretty(&doc).unwrap(),
                reference,
                "streamed series diverged at {threads} threads"
            );
        }
    }

    #[test]
    fn chrome_export_covers_retained_probes_and_anomalies() {
        let pop = pop();
        let mut cfg = config();
        cfg.conditions = NetworkConditions::default();
        cfg.flight.baseline_sample_every = 16;
        let (_campaign, recording) = Scanner::new(&pop).run_campaign_flight(&cfg);
        assert!(
            !recording.retained().is_empty(),
            "campaign must retain traces"
        );
        let events = chrome_trace_export(&recording);
        assert!(!events.is_empty());
        // Every retained probe contributes at least one stage span on its
        // own (pid, tid) row.
        for t in recording.retained() {
            assert!(
                events
                    .iter()
                    .any(|e| e.pid == t.probe.domain_id && e.tid == t.probe.hop && e.ph == "X"),
                "no span for probe {}",
                t.probe
            );
        }
        // Anomaly marks carry severity and detail.
        let mark = events
            .iter()
            .find(|e| e.cat == "anomaly")
            .expect("at least one anomaly mark");
        let args = mark.args.as_ref().unwrap();
        assert!(args.severity.is_some());
        assert!(args.detail.is_some());
    }
}
