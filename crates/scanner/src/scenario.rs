//! Declarative campaign scenarios: a TOML grid description compiled
//! into [`CampaignConfig`] cells.
//!
//! Campaign configuration used to be hand-written Rust; every new
//! cross-condition comparison (the paper's core currency — spin-RTT
//! accuracy as a function of stack mix, loss, reordering, vantage) cost
//! a code change. A *scenario* is instead a small TOML document naming
//! the population, the base campaign knobs, and one or more *sweep
//! axes*; the cartesian product of the axes expands into a matrix of
//! [`ScenarioCell`]s, each carrying a ready-to-run [`CampaignConfig`]
//! and a deterministic, filesystem-safe cell id. `spinctl matrix` runs
//! the expanded grid through the streamed campaign path and folds the
//! per-cell artifacts into one cross-scenario report.
//!
//! The build environment vendors no TOML crate, so this module includes
//! a parser for the small TOML subset scenarios need: `[section]`
//! headers, `key = value` pairs, strings, booleans, integers, floats,
//! flat arrays, and `#` comments. Every parse or validation failure is
//! a single-line `scenario error: ...` string with an exact, tested
//! message — the `spinctl matrix` exit-code contract (usage errors exit
//! 1) rides on these.

use crate::campaign::CampaignConfig;
use crate::flight::FlightConfig;
use quicspin_webpop::PopulationConfig;
use std::sync::Arc;

/// Fixed declaration order of sweepable axes; cell ids concatenate the
/// swept axes in this order, so the id layout is stable regardless of
/// the order keys appear in the `[sweep]` section.
pub const SWEEP_AXES: &[&str] = &["loss", "reorder", "jitter_frac", "vantage", "seed", "week"];

/// One expanded grid cell: a deterministic id plus everything needed to
/// run it.
#[derive(Debug, Clone)]
pub struct ScenarioCell {
    /// Deterministic, filesystem-safe cell id, e.g.
    /// `loss50000-vantage250000` (float axes are encoded in millionths).
    pub id: String,
    /// Ready-to-run campaign configuration (flight recorder armed, tap
    /// set when a vantage is configured, `scenario_cell` echoing `id`).
    pub config: CampaignConfig,
    /// Resident record-byte budget for the streamed path (0 = unbounded).
    pub record_budget: usize,
    /// Whether the cell runs with the hierarchical profiler attached.
    pub profile: bool,
}

/// Echo of one sweep axis for reports: the axis name and its values as
/// rendered in cell ids.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScenarioAxis {
    /// Axis name (one of [`SWEEP_AXES`]).
    pub axis: String,
    /// Values in declaration order, rendered as the cell-id tokens.
    pub values: Vec<String>,
}

/// A compiled scenario: population, axes echo, and the expanded cells.
#[derive(Debug, Clone)]
pub struct ScenarioMatrix {
    /// Scenario name (from `[scenario] name`).
    pub name: String,
    /// Free-form description (may be empty).
    pub description: String,
    /// Population the whole grid shares.
    pub population: PopulationConfig,
    /// Sweep axes in [`SWEEP_AXES`] order.
    pub axes: Vec<ScenarioAxis>,
    /// Expanded cells, lexicographic in axis declaration order.
    pub cells: Vec<ScenarioCell>,
}

// ---------------------------------------------------------------------------
// TOML subset parser
// ---------------------------------------------------------------------------

/// One parsed value of the TOML subset.
#[derive(Debug, Clone, PartialEq)]
enum TomlValue {
    String(String),
    Bool(bool),
    Integer(i64),
    Float(f64),
    Array(Vec<TomlValue>),
}

impl TomlValue {
    fn type_name(&self) -> &'static str {
        match self {
            TomlValue::String(_) => "string",
            TomlValue::Bool(_) => "boolean",
            TomlValue::Integer(_) => "integer",
            TomlValue::Float(_) => "float",
            TomlValue::Array(_) => "array",
        }
    }
}

/// `(section, key, value)` triples in file order; keys before any
/// `[section]` header get section `""`.
fn parse_toml(text: &str) -> Result<Vec<(String, String, TomlValue)>, String> {
    let mut section = String::new();
    let mut out = Vec::new();
    for (idx, raw) in text.lines().enumerate() {
        let line_no = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let Some(name) = rest.strip_suffix(']') else {
                return Err(format!(
                    "scenario error: line {line_no}: unterminated section header {line:?}"
                ));
            };
            section = name.trim().to_string();
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!(
                "scenario error: line {line_no}: expected `key = value`, got {line:?}"
            ));
        };
        let key = key.trim();
        if key.is_empty() {
            return Err(format!("scenario error: line {line_no}: empty key"));
        }
        let value = parse_value(value.trim(), line_no)?;
        out.push((section.clone(), key.to_string(), value));
    }
    Ok(out)
}

/// Strips a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_string = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_string = !in_string,
            '#' if !in_string => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_value(raw: &str, line_no: usize) -> Result<TomlValue, String> {
    if raw.is_empty() {
        return Err(format!("scenario error: line {line_no}: missing value"));
    }
    if let Some(rest) = raw.strip_prefix('[') {
        let Some(body) = rest.strip_suffix(']') else {
            return Err(format!(
                "scenario error: line {line_no}: unterminated array {raw:?}"
            ));
        };
        let body = body.trim();
        let mut items = Vec::new();
        if !body.is_empty() {
            for item in body.split(',') {
                let item = item.trim();
                if item.is_empty() {
                    return Err(format!(
                        "scenario error: line {line_no}: empty array element in {raw:?}"
                    ));
                }
                items.push(parse_value(item, line_no)?);
            }
        }
        return Ok(TomlValue::Array(items));
    }
    if let Some(rest) = raw.strip_prefix('"') {
        let Some(body) = rest.strip_suffix('"') else {
            return Err(format!(
                "scenario error: line {line_no}: unterminated string {raw:?}"
            ));
        };
        return Ok(TomlValue::String(body.to_string()));
    }
    match raw {
        "true" => return Ok(TomlValue::Bool(true)),
        "false" => return Ok(TomlValue::Bool(false)),
        _ => {}
    }
    if let Ok(n) = raw.parse::<i64>() {
        return Ok(TomlValue::Integer(n));
    }
    if raw.contains(['.', 'e', 'E']) {
        if let Ok(f) = raw.parse::<f64>() {
            if f.is_finite() {
                return Ok(TomlValue::Float(f));
            }
        }
    }
    Err(format!(
        "scenario error: line {line_no}: cannot parse value {raw:?}"
    ))
}

// ---------------------------------------------------------------------------
// Scenario compilation
// ---------------------------------------------------------------------------

/// One axis value: floats canonicalized to millionths, integers kept.
#[derive(Debug, Clone, Copy, PartialEq)]
enum AxisValue {
    Millionths(u32),
    Integer(u64),
}

impl AxisValue {
    fn token(self) -> String {
        match self {
            AxisValue::Millionths(m) => m.to_string(),
            AxisValue::Integer(n) => n.to_string(),
        }
    }
}

fn expect_u64(section: &str, key: &str, value: &TomlValue) -> Result<u64, String> {
    match value {
        TomlValue::Integer(n) if *n >= 0 => Ok(*n as u64),
        _ => Err(format!(
            "scenario error: key \"{key}\" in [{section}] must be a non-negative integer, \
             got {}",
            value.type_name()
        )),
    }
}

fn expect_fraction(
    section: &str,
    key: &str,
    value: &TomlValue,
    max_inclusive: bool,
) -> Result<f64, String> {
    let f = match value {
        TomlValue::Float(f) => *f,
        TomlValue::Integer(n) => *n as f64,
        _ => {
            return Err(format!(
                "scenario error: key \"{key}\" in [{section}] must be a number, got {}",
                value.type_name()
            ))
        }
    };
    let ok = if max_inclusive {
        (0.0..=1.0).contains(&f)
    } else {
        (0.0..1.0).contains(&f)
    };
    if !ok {
        let range = if max_inclusive { "[0, 1]" } else { "[0, 1)" };
        return Err(format!(
            "scenario error: key \"{key}\" in [{section}] value {f} outside {range}"
        ));
    }
    Ok(f)
}

fn expect_bool(section: &str, key: &str, value: &TomlValue) -> Result<bool, String> {
    match value {
        TomlValue::Bool(b) => Ok(*b),
        _ => Err(format!(
            "scenario error: key \"{key}\" in [{section}] must be a boolean, got {}",
            value.type_name()
        )),
    }
}

fn expect_string(section: &str, key: &str, value: &TomlValue) -> Result<String, String> {
    match value {
        TomlValue::String(s) => Ok(s.clone()),
        _ => Err(format!(
            "scenario error: key \"{key}\" in [{section}] must be a string, got {}",
            value.type_name()
        )),
    }
}

/// Whether an axis carries fractions (millionths tokens) or integers,
/// and the fraction range for validation.
fn axis_is_fraction(axis: &str) -> Option<bool> {
    match axis {
        // (axis, max_inclusive): loss/reorder/jitter_frac live in [0, 1),
        // the tap vantage in [0, 1].
        "loss" | "reorder" | "jitter_frac" => Some(false),
        "vantage" => Some(true),
        "seed" | "week" => None,
        _ => unreachable!("unknown axis {axis} slipped past validation"),
    }
}

fn parse_axis_values(axis: &str, value: &TomlValue) -> Result<Vec<AxisValue>, String> {
    let TomlValue::Array(items) = value else {
        return Err(format!(
            "scenario error: sweep axis \"{axis}\" must be an array, got {}",
            value.type_name()
        ));
    };
    if items.is_empty() {
        return Err(format!("scenario error: sweep axis \"{axis}\" is empty"));
    }
    let mut out = Vec::with_capacity(items.len());
    for item in items {
        let parsed = match axis_is_fraction(axis) {
            Some(max_inclusive) => {
                let f = match item {
                    TomlValue::Float(f) => *f,
                    TomlValue::Integer(n) => *n as f64,
                    _ => {
                        return Err(format!(
                            "scenario error: sweep axis \"{axis}\" element must be a number, \
                             got {}",
                            item.type_name()
                        ))
                    }
                };
                let ok = if max_inclusive {
                    (0.0..=1.0).contains(&f)
                } else {
                    (0.0..1.0).contains(&f)
                };
                if !ok {
                    let range = if max_inclusive { "[0, 1]" } else { "[0, 1)" };
                    return Err(format!(
                        "scenario error: sweep axis \"{axis}\" value {f} outside {range}"
                    ));
                }
                AxisValue::Millionths((f * 1_000_000.0).round() as u32)
            }
            None => match item {
                TomlValue::Integer(n) if *n >= 0 => AxisValue::Integer(*n as u64),
                _ => {
                    return Err(format!(
                        "scenario error: sweep axis \"{axis}\" element must be a \
                         non-negative integer, got {}",
                        item.type_name()
                    ))
                }
            },
        };
        out.push(parsed);
    }
    Ok(out)
}

/// Base (un-swept) cell parameters accumulated from `[campaign]` and
/// `[conditions]`.
struct BaseParams {
    week: u32,
    seed: u64,
    threads: usize,
    loss: f64,
    reorder: f64,
    jitter_frac: f64,
    vantage: Option<f64>,
    record_budget: usize,
    retention_budget_bytes: u64,
    sample_every: u64,
    profile: bool,
}

impl Default for BaseParams {
    fn default() -> Self {
        BaseParams {
            week: 0,
            seed: 23,
            threads: 1,
            loss: 0.001,
            reorder: 0.00006,
            jitter_frac: 0.0003,
            vantage: None,
            record_budget: 1 << 20,
            retention_budget_bytes: 2 << 20,
            sample_every: 64,
            profile: false,
        }
    }
}

/// Parses and compiles a scenario document into its expanded matrix.
///
/// Error contract (all single-line, all prefixed `scenario error: `):
/// syntax errors name the line; unknown sections/keys name the
/// offending identifier; malformed or out-of-range sweep axes name the
/// axis and value; a scenario whose `[sweep]` section is missing or
/// defines no axes is an *empty matrix* error; an axis repeating a
/// value is a *duplicate cell id* error.
pub fn parse_scenario(text: &str) -> Result<ScenarioMatrix, String> {
    let pairs = parse_toml(text)?;

    let mut name = String::new();
    let mut description = String::new();
    let mut population = PopulationConfig {
        seed: 11,
        toplist_domains: 40,
        zone_domains: 360,
    };
    let mut base = BaseParams::default();
    let mut sweep: Vec<(String, Vec<AxisValue>)> = Vec::new();
    let mut saw_sweep_section = false;

    for (section, key, value) in &pairs {
        match section.as_str() {
            "scenario" => match key.as_str() {
                "name" => name = expect_string(section, key, value)?,
                "description" => description = expect_string(section, key, value)?,
                _ => {
                    return Err(format!(
                        "scenario error: unknown key \"{key}\" in [scenario]"
                    ))
                }
            },
            "population" => match key.as_str() {
                "seed" => population.seed = expect_u64(section, key, value)?,
                "toplist_domains" => {
                    population.toplist_domains = expect_u64(section, key, value)? as u32
                }
                "zone_domains" => population.zone_domains = expect_u64(section, key, value)? as u32,
                _ => {
                    return Err(format!(
                        "scenario error: unknown key \"{key}\" in [population]"
                    ))
                }
            },
            "campaign" => match key.as_str() {
                "week" => base.week = expect_u64(section, key, value)? as u32,
                "seed" => base.seed = expect_u64(section, key, value)?,
                "threads" => base.threads = expect_u64(section, key, value)?.max(1) as usize,
                "record_budget_bytes" => {
                    base.record_budget = expect_u64(section, key, value)? as usize
                }
                "retention_budget_bytes" => {
                    base.retention_budget_bytes = expect_u64(section, key, value)?
                }
                "sample_every" => base.sample_every = expect_u64(section, key, value)?,
                "profile" => base.profile = expect_bool(section, key, value)?,
                "tap" => base.vantage = Some(expect_fraction(section, key, value, true)?),
                _ => {
                    return Err(format!(
                        "scenario error: unknown key \"{key}\" in [campaign]"
                    ))
                }
            },
            "conditions" => match key.as_str() {
                "loss" => base.loss = expect_fraction(section, key, value, false)?,
                "reorder" => base.reorder = expect_fraction(section, key, value, false)?,
                "jitter_frac" => base.jitter_frac = expect_fraction(section, key, value, false)?,
                _ => {
                    return Err(format!(
                        "scenario error: unknown key \"{key}\" in [conditions]"
                    ))
                }
            },
            "sweep" => {
                saw_sweep_section = true;
                if !SWEEP_AXES.contains(&key.as_str()) {
                    return Err(format!("scenario error: unknown sweep axis \"{key}\""));
                }
                if sweep.iter().any(|(axis, _)| axis == key) {
                    return Err(format!(
                        "scenario error: sweep axis \"{key}\" defined twice"
                    ));
                }
                sweep.push((key.clone(), parse_axis_values(key, value)?));
            }
            "" => {
                return Err(format!(
                    "scenario error: key \"{key}\" outside any [section]"
                ))
            }
            other => return Err(format!("scenario error: unknown section [{other}]")),
        }
    }

    if name.is_empty() {
        return Err("scenario error: missing [scenario] name".to_string());
    }
    if !saw_sweep_section || sweep.is_empty() {
        return Err("scenario error: empty matrix: [sweep] defines no axes".to_string());
    }
    // Cell ids concatenate axes in SWEEP_AXES order, independent of the
    // order the document declared them in.
    sweep.sort_by_key(|(axis, _)| SWEEP_AXES.iter().position(|a| a == axis));

    let axes: Vec<ScenarioAxis> = sweep
        .iter()
        .map(|(axis, values)| ScenarioAxis {
            axis: axis.clone(),
            values: values.iter().map(|v| v.token()).collect(),
        })
        .collect();

    // Cartesian expansion, lexicographic in axis order: the last axis
    // varies fastest.
    let total: usize = sweep.iter().map(|(_, v)| v.len()).product();
    let mut cells: Vec<ScenarioCell> = Vec::with_capacity(total);
    let mut indices = vec![0usize; sweep.len()];
    loop {
        let picks: Vec<(&str, AxisValue)> = sweep
            .iter()
            .zip(&indices)
            .map(|((axis, values), &i)| (axis.as_str(), values[i]))
            .collect();
        let id: String = picks
            .iter()
            .map(|(axis, v)| format!("{axis}{}", v.token()))
            .collect::<Vec<_>>()
            .join("-");
        if cells.iter().any(|c| c.id == id) {
            return Err(format!("scenario error: duplicate cell id \"{id}\""));
        }
        cells.push(build_cell(&base, &picks, id));

        // Odometer increment over the axis indices.
        let mut pos = sweep.len();
        loop {
            if pos == 0 {
                break;
            }
            pos -= 1;
            indices[pos] += 1;
            if indices[pos] < sweep[pos].1.len() {
                break;
            }
            indices[pos] = 0;
            if pos == 0 {
                return Ok(ScenarioMatrix {
                    name,
                    description,
                    population,
                    axes,
                    cells,
                });
            }
        }
    }
}

fn build_cell(base: &BaseParams, picks: &[(&str, AxisValue)], id: String) -> ScenarioCell {
    let mut week = base.week;
    let mut seed = base.seed;
    let mut loss = base.loss;
    let mut reorder = base.reorder;
    let mut jitter_frac = base.jitter_frac;
    let mut vantage = base.vantage;
    for &(axis, value) in picks {
        match (axis, value) {
            ("loss", AxisValue::Millionths(m)) => loss = f64::from(m) / 1_000_000.0,
            ("reorder", AxisValue::Millionths(m)) => reorder = f64::from(m) / 1_000_000.0,
            ("jitter_frac", AxisValue::Millionths(m)) => jitter_frac = f64::from(m) / 1_000_000.0,
            ("vantage", AxisValue::Millionths(m)) => vantage = Some(f64::from(m) / 1_000_000.0),
            ("seed", AxisValue::Integer(n)) => seed = n,
            ("week", AxisValue::Integer(n)) => week = n as u32,
            _ => unreachable!("axis/value mismatch for {axis}"),
        }
    }
    let mut flight = FlightConfig::armed(seed);
    flight.retention_budget_bytes = base.retention_budget_bytes;
    flight.baseline_sample_every = base.sample_every;
    let mut config = CampaignConfig {
        week,
        threads: base.threads,
        flight,
        tap: vantage,
        scenario_cell: Some(id.clone()),
        ..CampaignConfig::default()
    };
    config.conditions.loss = loss;
    config.conditions.reorder = reorder;
    config.conditions.jitter_frac = jitter_frac;
    // Fresh (disabled) registries; the runner swaps in live ones per cell.
    config.telemetry = Arc::new(quicspin_telemetry::Registry::disabled());
    ScenarioCell {
        id,
        config,
        record_budget: base.record_budget,
        profile: base.profile,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SCENARIO: &str = r#"
# A loss x vantage grid.
[scenario]
name = "loss-vantage"
description = "loss x vantage grid"

[population]
seed = 11
toplist_domains = 20
zone_domains = 60

[campaign]
week = 0
seed = 23
threads = 2
record_budget_bytes = 65536
retention_budget_bytes = 131072
sample_every = 16
profile = true

[conditions]
loss = 0.001
reorder = 0.0

[sweep]
vantage = [0.25, 0.75]   # declared before loss: ids still order loss first
loss = [0.0, 0.05]
"#;

    #[test]
    fn scenario_expands_to_a_deterministic_grid() {
        let matrix = parse_scenario(SCENARIO).unwrap();
        assert_eq!(matrix.name, "loss-vantage");
        assert_eq!(matrix.description, "loss x vantage grid");
        assert_eq!(matrix.population.seed, 11);
        assert_eq!(matrix.population.toplist_domains, 20);
        assert_eq!(matrix.population.zone_domains, 60);
        assert_eq!(matrix.axes.len(), 2);
        assert_eq!(matrix.axes[0].axis, "loss");
        assert_eq!(matrix.axes[0].values, vec!["0", "50000"]);
        assert_eq!(matrix.axes[1].axis, "vantage");
        assert_eq!(matrix.axes[1].values, vec!["250000", "750000"]);
        let ids: Vec<&str> = matrix.cells.iter().map(|c| c.id.as_str()).collect();
        assert_eq!(
            ids,
            vec![
                "loss0-vantage250000",
                "loss0-vantage750000",
                "loss50000-vantage250000",
                "loss50000-vantage750000",
            ]
        );
        let cell = &matrix.cells[2];
        assert!((cell.config.conditions.loss - 0.05).abs() < 1e-12);
        assert_eq!(cell.config.tap, Some(0.25));
        assert_eq!(cell.config.week, 0);
        assert_eq!(cell.config.threads, 2);
        assert_eq!(cell.config.flight.seed, 23);
        assert!(cell.config.flight.enabled);
        assert_eq!(cell.config.flight.retention_budget_bytes, 131072);
        assert_eq!(cell.config.flight.baseline_sample_every, 16);
        assert_eq!(cell.config.scenario_cell.as_deref(), Some(cell.id.as_str()));
        assert_eq!(cell.record_budget, 65536);
        assert!(cell.profile);
        // Un-swept conditions inherit the base.
        assert!((cell.config.conditions.reorder - 0.0).abs() < 1e-12);
        assert!((cell.config.conditions.jitter_frac - 0.0003).abs() < 1e-12);
    }

    #[test]
    fn repeated_parse_is_identical() {
        let a = parse_scenario(SCENARIO).unwrap();
        let b = parse_scenario(SCENARIO).unwrap();
        let ids = |m: &ScenarioMatrix| m.cells.iter().map(|c| c.id.clone()).collect::<Vec<_>>();
        assert_eq!(ids(&a), ids(&b));
    }

    #[test]
    fn unknown_key_is_an_exact_error() {
        let text = SCENARIO.replace("sample_every = 16", "frobnicate = 16");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: unknown key \"frobnicate\" in [campaign]"
        );
        let text = SCENARIO.replace("[conditions]\nloss = 0.001", "[conditions]\nloses = 0.001");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: unknown key \"loses\" in [conditions]"
        );
        let text = format!("{SCENARIO}\n[bogus]\nx = 1\n");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: unknown section [bogus]"
        );
    }

    #[test]
    fn bad_sweep_range_is_an_exact_error() {
        let text = SCENARIO.replace("loss = [0.0, 0.05]", "loss = [0.0, 1.5]");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: sweep axis \"loss\" value 1.5 outside [0, 1)"
        );
        let text = SCENARIO.replace("vantage = [0.25, 0.75]", "vantage = [0.25, 1.25]");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: sweep axis \"vantage\" value 1.25 outside [0, 1]"
        );
        let text = SCENARIO.replace("loss = [0.0, 0.05]", "loss = [\"lots\"]");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: sweep axis \"loss\" element must be a number, got string"
        );
        let text = SCENARIO.replace("loss = [0.0, 0.05]", "loss = 0.05");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: sweep axis \"loss\" must be an array, got float"
        );
        let text = SCENARIO.replace("loss = [0.0, 0.05]", "loss = []");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: sweep axis \"loss\" is empty"
        );
        let text = SCENARIO.replace("loss = [0.0, 0.05]", "speed = [0.0, 0.05]");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: unknown sweep axis \"speed\""
        );
    }

    #[test]
    fn empty_matrix_is_an_exact_error() {
        let text = SCENARIO
            .replace(
                "vantage = [0.25, 0.75]   # declared before loss: ids still order loss first",
                "",
            )
            .replace("loss = [0.0, 0.05]", "");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: empty matrix: [sweep] defines no axes"
        );
        let no_sweep: String = SCENARIO
            .lines()
            .take_while(|l| l.trim() != "[sweep]")
            .collect::<Vec<_>>()
            .join("\n");
        assert_eq!(
            parse_scenario(&no_sweep).unwrap_err(),
            "scenario error: empty matrix: [sweep] defines no axes"
        );
    }

    #[test]
    fn duplicate_cell_ids_are_an_exact_error() {
        let text = SCENARIO.replace("loss = [0.0, 0.05]", "loss = [0.05, 0.05]");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: duplicate cell id \"loss50000-vantage250000\""
        );
        let text = format!("{SCENARIO}loss = [0.1]\n");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: sweep axis \"loss\" defined twice"
        );
    }

    #[test]
    fn syntax_errors_name_the_line() {
        let err = parse_scenario("[scenario\nname = \"x\"\n").unwrap_err();
        assert_eq!(
            err,
            "scenario error: line 1: unterminated section header \"[scenario\""
        );
        let err = parse_scenario("[scenario]\nname\n").unwrap_err();
        assert_eq!(
            err,
            "scenario error: line 2: expected `key = value`, got \"name\""
        );
        let err = parse_scenario("[scenario]\nname = \n").unwrap_err();
        assert_eq!(err, "scenario error: line 2: missing value");
        let err = parse_scenario("[scenario]\nname = what\n").unwrap_err();
        assert_eq!(err, "scenario error: line 2: cannot parse value \"what\"");
        let err = parse_scenario("name = \"x\"\n").unwrap_err();
        assert_eq!(err, "scenario error: key \"name\" outside any [section]");
    }

    #[test]
    fn missing_name_and_typed_keys_are_errors() {
        let text = SCENARIO.replace("name = \"loss-vantage\"", "");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: missing [scenario] name"
        );
        let text = SCENARIO.replace("seed = 23", "seed = \"twenty\"");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: key \"seed\" in [campaign] must be a non-negative integer, \
             got string"
        );
        let text = SCENARIO.replace("profile = true", "profile = 1");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: key \"profile\" in [campaign] must be a boolean, got integer"
        );
        let text = SCENARIO.replace("loss = 0.001", "loss = 2.5");
        assert_eq!(
            parse_scenario(&text).unwrap_err(),
            "scenario error: key \"loss\" in [conditions] value 2.5 outside [0, 1)"
        );
    }

    #[test]
    fn comments_and_strings_coexist() {
        let (section, key, value) = &parse_toml("[s]\nk = \"a # b\" # trailing\n").unwrap()[0];
        assert_eq!(section, "s");
        assert_eq!(key, "k");
        assert_eq!(value, &TomlValue::String("a # b".to_string()));
    }

    #[test]
    fn integer_axes_sweep_seed_and_week() {
        let text = SCENARIO.replace(
            "loss = [0.0, 0.05]",
            "loss = [0.0, 0.05]\nseed = [23, 29]\nweek = [0, 3]",
        );
        let matrix = parse_scenario(&text).unwrap();
        assert_eq!(matrix.cells.len(), 16);
        assert!(matrix
            .cells
            .iter()
            .any(|c| c.id == "loss50000-vantage750000-seed29-week3"));
        let cell = matrix
            .cells
            .iter()
            .find(|c| c.id == "loss0-vantage250000-seed29-week3")
            .unwrap();
        assert_eq!(cell.config.flight.seed, 29);
        assert_eq!(cell.config.week, 3);
    }
}
