//! The campaign flight recorder: online anomaly detection with bounded
//! trace retention.
//!
//! While a campaign runs, every probed connection is inspected for
//! suspicious signals — spin-derived vs ACK-based RTT divergence past the
//! Fig. 3 tail threshold, impossible spin edges after packet-number
//! sorting (§3.3/§5.2), classification flips across redirect hops,
//! handshake failures, and virtual stage-latency outliers — and the full
//! qlog trace of every flagged probe is retained in the compact binary
//! codec under a byte budget. Aggregates answer "how often"; the flight
//! recorder answers "which connections, and show me the packets".
//!
//! Detection is content-based and therefore deterministic: the same
//! campaign config flags the same probes and retains the same traces for
//! any thread count. Each worker keeps a private [`FlightShard`] (like a
//! telemetry `WorkerShard`) whose trace buffer is evicted to the budget
//! with a *priority-prefix rule*: traces sort by (severity desc,
//! domain, hop) and only the longest prefix whose cumulative size fits
//! the budget survives. Because a probe's cumulative-priority size in any
//! worker's subset never exceeds its size in the full flagged set, a
//! worker can only ever evict traces the final global pass would evict
//! too — so the merged, finalized retained set is independent of how
//! domains were distributed across workers. Metadata for every flagged
//! probe (a few dozen bytes) is kept unconditionally, which lets the
//! final pass compute the global keep-set exactly.

use crate::record::{ConnectionRecord, ScanOutcome};
use quicspin_core::FlowClassification;
use quicspin_qlog::{decode_trace, encode_trace, TraceLog};
use quicspin_telemetry::{ConfigEntry, HistogramShard};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::HashSet;
use std::fmt;
use std::str::FromStr;

/// Schema version of [`AnomalyIndex`] (`anomalies.json`).
pub const ANOMALY_SCHEMA_VERSION: u32 = 1;

/// Magic prefix of the binary trace store (`traces.bin`).
pub const TRACE_STORE_MAGIC: &[u8; 4] = b"QSFS";
/// Format version byte following the magic.
pub const TRACE_STORE_VERSION: u8 = 1;
/// Header length; [`TraceSlot`] offsets are absolute, so the first slot
/// starts here.
pub const TRACE_STORE_HEADER_LEN: usize = 5;

/// Flight-recorder configuration (all thresholds are campaign-constant,
/// so detection stays deterministic).
#[derive(Debug, Clone)]
pub struct FlightConfig {
    /// Master switch. Disabled (the default) costs one branch per domain.
    pub enabled: bool,
    /// Campaign seed: drives deterministic baseline sampling and is
    /// echoed into the campaign id.
    pub seed: u64,
    /// Relative spin-vs-stack mean-RTT divergence past which a probe is
    /// flagged (the paper's Fig. 3 tail sits past 10%).
    pub rtt_divergence_threshold: f64,
    /// A spin period shorter than this fraction of the connection's
    /// minimum stack RTT is an impossible edge.
    pub min_edge_interval_frac: f64,
    /// Virtual handshake time (µs, from the trace) past which a probe is
    /// a stage outlier. Calibrate from a previous run with
    /// [`FlightConfig::calibrate_outliers`].
    pub handshake_outlier_us: u64,
    /// Virtual total connection time (µs) past which a probe is a stage
    /// outlier.
    pub total_outlier_us: u64,
    /// Byte budget for retained binary traces (per worker during the run
    /// and globally after the merge).
    pub retention_budget_bytes: u64,
    /// Retain every N-th domain (chosen by seeded hash) as a healthy
    /// baseline sample; 0 disables sampling.
    pub baseline_sample_every: u64,
}

impl Default for FlightConfig {
    fn default() -> Self {
        FlightConfig {
            enabled: false,
            seed: 0,
            rtt_divergence_threshold: 0.10,
            min_edge_interval_frac: 0.5,
            handshake_outlier_us: 1_500_000,
            total_outlier_us: 10_000_000,
            retention_budget_bytes: 2 * 1024 * 1024,
            baseline_sample_every: 0,
        }
    }
}

impl FlightConfig {
    /// An enabled recorder with default thresholds and the given seed.
    pub fn armed(seed: u64) -> Self {
        FlightConfig {
            enabled: true,
            seed,
            ..FlightConfig::default()
        }
    }

    /// Derives the stage-outlier thresholds from a previous run's virtual
    /// stage histograms: anything past `multiplier` × the `q`-quantile is
    /// an outlier.
    ///
    /// A histogram only yields a usable band when it has *shape*: an empty
    /// histogram has no baseline at all, and one whose every sample landed
    /// in a single bucket collapses p50 and p99 to the same value — worst
    /// case (all samples in bucket 0) the derived threshold is 0 and every
    /// future probe would be flagged. Such degenerate inputs leave the
    /// corresponding threshold untouched.
    pub fn calibrate_outliers(
        &mut self,
        handshake_us: &HistogramShard,
        total_us: &HistogramShard,
        q: f64,
        multiplier: f64,
    ) {
        if let Some(threshold) = usable_outlier_threshold(handshake_us, q, multiplier) {
            self.handshake_outlier_us = threshold;
        }
        if let Some(threshold) = usable_outlier_threshold(total_us, q, multiplier) {
            self.total_outlier_us = threshold;
        }
    }
}

/// The calibration band from `histogram` if it has enough shape to trust:
/// at least two occupied buckets and a strictly positive scaled quantile.
fn usable_outlier_threshold(histogram: &HistogramShard, q: f64, multiplier: f64) -> Option<u64> {
    if histogram.occupied_buckets() < 2 {
        return None;
    }
    let threshold = histogram.outlier_threshold(q, multiplier);
    (threshold > 0).then_some(threshold)
}

/// Identifies one probe: a domain plus the redirect hop within it.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize, Default,
)]
pub struct ProbeId {
    /// Domain id within the population.
    pub domain_id: u32,
    /// Redirect hop (0 = the initial connection).
    pub hop: u32,
}

impl ProbeId {
    /// Builds a probe id.
    pub fn new(domain_id: u32, hop: u32) -> Self {
        ProbeId { domain_id, hop }
    }
}

impl fmt::Display for ProbeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}", self.domain_id, self.hop)
    }
}

impl FromStr for ProbeId {
    type Err = String;

    /// Parses `"1234:1"`; a bare `"1234"` means hop 0.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let (domain, hop) = s.split_once(':').unwrap_or((s, "0"));
        let domain_id = domain
            .parse::<u32>()
            .map_err(|_| format!("bad probe id {s:?}: expected <domain>[:<hop>]"))?;
        let hop = hop
            .parse::<u32>()
            .map_err(|_| format!("bad probe id {s:?}: hop must be a number"))?;
        Ok(ProbeId { domain_id, hop })
    }
}

/// What tripped the flight recorder.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
#[serde(rename_all = "kebab-case")]
pub enum AnomalyKind {
    /// Spin-derived mean RTT diverges from the stack's ACK-based mean
    /// beyond the configured threshold (Fig. 3 tail).
    RttDivergence,
    /// Spin edges that remain impossible after packet-number sorting
    /// (flip faster than a fraction of the minimum stack RTT, or time
    /// running backwards across an edge).
    InvalidSpinEdge,
    /// Flow classification changed across redirect hops of one domain.
    ClassificationFlip,
    /// The QUIC handshake failed.
    HandshakeFailure,
    /// Virtual handshake/total time exceeded the outlier threshold.
    StageOutlier,
    /// Healthy probe retained by deterministic baseline sampling.
    BaselineSample,
    /// The on-path observer's mean RTT diverges from the measuring
    /// client's spin-derived mean beyond the configured threshold (only
    /// detectable on tapped campaigns).
    ObserverDivergence,
    /// The observer counted more downstream spin edges than the client's
    /// sample stream implies — edges the client missed or artifacts the
    /// tap position manufactured.
    ObserverExtraEdges,
    /// A tap was attached but the flow yielded no valid observer RTT
    /// sample (grease/disable policies, too-short exchanges).
    ObserverUnmeasurable,
}

impl AnomalyKind {
    /// Every kind, in severity-unrelated declaration order.
    pub const ALL: &'static [AnomalyKind] = &[
        AnomalyKind::RttDivergence,
        AnomalyKind::InvalidSpinEdge,
        AnomalyKind::ClassificationFlip,
        AnomalyKind::HandshakeFailure,
        AnomalyKind::StageOutlier,
        AnomalyKind::BaselineSample,
        AnomalyKind::ObserverDivergence,
        AnomalyKind::ObserverExtraEdges,
        AnomalyKind::ObserverUnmeasurable,
    ];

    /// Stable kebab-case name (matches the serde form and the
    /// `spinctl anomalies --kind` argument).
    pub fn name(self) -> &'static str {
        match self {
            AnomalyKind::RttDivergence => "rtt-divergence",
            AnomalyKind::InvalidSpinEdge => "invalid-spin-edge",
            AnomalyKind::ClassificationFlip => "classification-flip",
            AnomalyKind::HandshakeFailure => "handshake-failure",
            AnomalyKind::StageOutlier => "stage-outlier",
            AnomalyKind::BaselineSample => "baseline-sample",
            AnomalyKind::ObserverDivergence => "observer-divergence",
            AnomalyKind::ObserverExtraEdges => "observer-extra-edges",
            AnomalyKind::ObserverUnmeasurable => "observer-unmeasurable",
        }
    }

    /// Parses the kebab-case name.
    pub fn parse(s: &str) -> Option<AnomalyKind> {
        AnomalyKind::ALL.iter().copied().find(|k| k.name() == s)
    }
}

/// One flagged observation on one probe (at most one per probe × kind;
/// repeated events aggregate into `value`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Anomaly {
    /// The probe this anomaly belongs to.
    pub probe: ProbeId,
    /// What was detected.
    pub kind: AnomalyKind,
    /// Retention priority; higher evicts later.
    pub severity: u32,
    /// Kind-specific magnitude (divergence ratio, edge count, excess µs…).
    pub value: f64,
    /// Human-readable one-liner for `spinctl anomalies`.
    pub detail: String,
}

/// A flagged probe's binary-encoded qlog trace.
#[derive(Debug, Clone, PartialEq)]
pub struct RetainedTrace {
    /// The flagged probe.
    pub probe: ProbeId,
    /// Sum of the probe's anomaly severities (the retention priority).
    pub severity: u64,
    /// `encode_trace` bytes of the full client qlog.
    pub bytes: Vec<u8>,
}

/// Metadata kept for *every* flagged trace, evicted or not (a few dozen
/// bytes each). The final pass computes the global keep-set from this
/// full list, which is what makes eviction partition-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct TraceMeta {
    probe: ProbeId,
    severity: u64,
    len: u64,
}

/// Retention priority: highest severity first, then domain/hop order.
fn priority_key(severity: u64, probe: ProbeId) -> (Reverse<u64>, u32, u32) {
    (Reverse(severity), probe.domain_id, probe.hop)
}

/// splitmix64 — the deterministic baseline-sampling hash.
fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Counts spin edges that stay impossible after packet-number sorting:
/// time running backwards across an edge, or a spin period shorter than
/// `min_edge_interval_frac` of the connection's minimum stack RTT.
fn invalid_spin_edges(
    trace: &TraceLog,
    min_stack_rtt_us: Option<u64>,
    min_edge_interval_frac: f64,
) -> u64 {
    let mut obs = trace.spin_observations();
    if obs.len() < 2 {
        return 0;
    }
    obs.sort_by_key(|&(_, pn, _)| pn);
    let mut invalid = 0u64;
    let mut prev_time = obs[0].0;
    let mut prev_spin = obs[0].2;
    let mut prev_edge_time: Option<u64> = None;
    for &(time, _, spin) in &obs[1..] {
        if spin != prev_spin {
            if time < prev_time {
                // An edge whose timestamp precedes the previous packet's
                // even in packet-number order cannot be a real spin flip.
                invalid += 1;
            } else if let (Some(edge_at), Some(min_rtt)) = (prev_edge_time, min_stack_rtt_us) {
                let period = time.saturating_sub(edge_at);
                if (period as f64) < min_rtt as f64 * min_edge_interval_frac {
                    invalid += 1;
                }
            }
            prev_edge_time = Some(time);
        }
        prev_time = time;
        prev_spin = spin;
    }
    invalid
}

/// One worker's private flight-recorder state (merged at fold time, like
/// a telemetry `WorkerShard`).
#[derive(Debug, Default)]
pub struct FlightShard {
    anomalies: Vec<Anomaly>,
    flagged: Vec<TraceMeta>,
    traces: Vec<RetainedTrace>,
    retained_bytes: u64,
    handshake_us: HistogramShard,
    total_us: HistogramShard,
}

impl FlightShard {
    /// Inspects one scanned domain's records (all redirect hops, in hop
    /// order, with qlog traces attached). Returns the number of anomalies
    /// flagged. Traces of flagged probes are encoded and retained,
    /// evicting lowest-priority traces whenever the local buffer exceeds
    /// the budget.
    pub fn inspect_domain(&mut self, cfg: &FlightConfig, records: &[ConnectionRecord]) -> u64 {
        let Some(first) = records.first() else {
            return 0;
        };
        let before = self.anomalies.len();
        let baseline_hit = cfg.baseline_sample_every > 0
            && splitmix64(cfg.seed ^ u64::from(first.domain_id))
                .is_multiple_of(cfg.baseline_sample_every);
        let mut prev_class: Option<FlowClassification> = None;
        for rec in records {
            let probe = ProbeId::new(rec.domain_id, rec.redirect_depth);
            let mut found: Vec<Anomaly> = Vec::new();

            if rec.outcome == ScanOutcome::HandshakeFailed {
                found.push(Anomaly {
                    probe,
                    kind: AnomalyKind::HandshakeFailure,
                    severity: 300,
                    value: f64::from(rec.redirect_depth),
                    detail: "QUIC handshake failed".to_string(),
                });
            }

            if let Some(report) = &rec.report {
                if let Some(acc) = report.accuracy_sorted() {
                    if acc.stack_mean_ms > 0.0 {
                        let div = (acc.spin_mean_ms - acc.stack_mean_ms).abs() / acc.stack_mean_ms;
                        if div > cfg.rtt_divergence_threshold {
                            found.push(Anomaly {
                                probe,
                                kind: AnomalyKind::RttDivergence,
                                severity: 100 + (div * 100.0).min(900.0) as u32,
                                value: div,
                                detail: format!(
                                    "spin mean {:.3} ms vs stack mean {:.3} ms",
                                    acc.spin_mean_ms, acc.stack_mean_ms
                                ),
                            });
                        }
                    }
                }
                if rec.outcome == ScanOutcome::Ok {
                    let class = report.classification;
                    if let Some(prev) = prev_class {
                        if prev != class {
                            found.push(Anomaly {
                                probe,
                                kind: AnomalyKind::ClassificationFlip,
                                severity: 250,
                                value: f64::from(rec.redirect_depth),
                                detail: format!("{prev:?} -> {class:?} across redirect hop"),
                            });
                        }
                    }
                    prev_class = Some(class);
                }
            }

            if let Some(view) = &rec.observer {
                if let Some(div) = view.divergence() {
                    if div > cfg.rtt_divergence_threshold {
                        found.push(Anomaly {
                            probe,
                            kind: AnomalyKind::ObserverDivergence,
                            severity: 120 + (div * 100.0).min(880.0) as u32,
                            value: div,
                            detail: format!(
                                "tap at {} mean {:?} µs vs client spin mean {:?} µs",
                                view.vantage(),
                                view.stats.mean_us,
                                view.client_spin_mean_us
                            ),
                        });
                    }
                }
                let spinning = rec
                    .report
                    .as_ref()
                    .is_some_and(|r| r.classification == FlowClassification::Spinning);
                let extra = view.extra_edges();
                if spinning && extra > 0 {
                    found.push(Anomaly {
                        probe,
                        kind: AnomalyKind::ObserverExtraEdges,
                        severity: 140 + 10 * extra.min(30) as u32,
                        value: extra as f64,
                        detail: format!(
                            "observer saw {extra} downstream edge(s) beyond the client's stream"
                        ),
                    });
                }
                if rec.outcome == ScanOutcome::Ok && !view.stats.measurable {
                    found.push(Anomaly {
                        probe,
                        kind: AnomalyKind::ObserverUnmeasurable,
                        severity: 80,
                        value: view.stats.packets as f64,
                        detail: format!(
                            "tap at {} saw {} short-header packet(s) but no valid RTT sample",
                            view.vantage(),
                            view.stats.packets
                        ),
                    });
                }
            }

            if let Some(trace) = &rec.qlog {
                let min_stack_rtt = rec
                    .report
                    .as_ref()
                    .and_then(|r| r.stack_samples_us.iter().copied().min());
                let invalid = invalid_spin_edges(trace, min_stack_rtt, cfg.min_edge_interval_frac);
                if invalid > 0 {
                    found.push(Anomaly {
                        probe,
                        kind: AnomalyKind::InvalidSpinEdge,
                        severity: 150 + 10 * invalid.min(25) as u32,
                        value: invalid as f64,
                        detail: format!(
                            "{invalid} impossible spin edge(s) after packet-number sort"
                        ),
                    });
                }

                let handshake = trace.handshake_time_us();
                let total = trace.duration_us();
                if let Some(hs) = handshake {
                    self.handshake_us.record(hs);
                }
                if total > 0 {
                    self.total_us.record(total);
                }
                let excess = handshake
                    .map_or(0, |hs| hs.saturating_sub(cfg.handshake_outlier_us))
                    .max(total.saturating_sub(cfg.total_outlier_us));
                if excess > 0 {
                    found.push(Anomaly {
                        probe,
                        kind: AnomalyKind::StageOutlier,
                        severity: 50 + ((excess / 10_000).min(200)) as u32,
                        value: excess as f64,
                        detail: format!("virtual stage time {excess} µs past threshold"),
                    });
                }

                if baseline_hit && rec.redirect_depth == 0 {
                    found.push(Anomaly {
                        probe,
                        kind: AnomalyKind::BaselineSample,
                        severity: 1,
                        value: 0.0,
                        detail: "deterministic baseline sample".to_string(),
                    });
                }
            }

            if found.is_empty() {
                continue;
            }
            if let Some(trace) = &rec.qlog {
                let severity: u64 = found.iter().map(|a| u64::from(a.severity)).sum();
                let bytes = encode_trace(trace);
                self.flagged.push(TraceMeta {
                    probe,
                    severity,
                    len: bytes.len() as u64,
                });
                self.retained_bytes += bytes.len() as u64;
                self.traces.push(RetainedTrace {
                    probe,
                    severity,
                    bytes,
                });
                if self.retained_bytes > cfg.retention_budget_bytes {
                    self.evict_to_budget(cfg.retention_budget_bytes);
                }
            }
            self.anomalies.extend(found);
        }
        (self.anomalies.len() - before) as u64
    }

    /// Priority-prefix eviction: keep the longest (severity desc, domain,
    /// hop)-ordered prefix of the local trace buffer that fits `budget`.
    fn evict_to_budget(&mut self, budget: u64) {
        self.traces
            .sort_by_key(|t| priority_key(t.severity, t.probe));
        let mut cum = 0u64;
        let mut keep = self.traces.len();
        for (i, t) in self.traces.iter().enumerate() {
            cum += t.bytes.len() as u64;
            if cum > budget {
                keep = i;
                break;
            }
        }
        self.traces.truncate(keep);
        self.retained_bytes = self.traces.iter().map(|t| t.bytes.len() as u64).sum();
    }

    /// Absorbs another worker's shard (order-insensitive; finalization
    /// canonicalizes everything).
    pub fn merge(&mut self, mut other: FlightShard) {
        self.anomalies.append(&mut other.anomalies);
        self.flagged.append(&mut other.flagged);
        self.traces.append(&mut other.traces);
        self.retained_bytes += other.retained_bytes;
        self.handshake_us.merge(&other.handshake_us);
        self.total_us.merge(&other.total_us);
    }

    /// Anomalies flagged so far (worker-local order until finalization).
    pub fn anomalies(&self) -> &[Anomaly] {
        &self.anomalies
    }

    /// Bytes of trace data currently held.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }
}

/// Per-trace entry of the [`AnomalyIndex`]: where the probe's binary
/// trace lives inside `traces.bin`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TraceSlot {
    /// The flagged probe.
    pub probe: ProbeId,
    /// Retention priority the trace was kept with.
    pub severity: u64,
    /// Absolute byte offset into `traces.bin`.
    pub offset: u64,
    /// Encoded length in bytes.
    pub len: u64,
}

/// Quantiles of a virtual (simulated-time) stage distribution over every
/// inspected probe — the baseline `spinctl summary` shows outliers
/// against.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct VirtualStageSummary {
    /// Stage name (`virtual_handshake`, `virtual_total`).
    pub stage: String,
    /// Probes measured.
    pub count: u64,
    /// Median, µs.
    pub p50_us: u64,
    /// 90th percentile, µs.
    pub p90_us: u64,
    /// 99th percentile, µs.
    pub p99_us: u64,
    /// Maximum, µs.
    pub max_us: u64,
}

fn virtual_summary(stage: &str, hist: &HistogramShard) -> VirtualStageSummary {
    VirtualStageSummary {
        stage: stage.to_string(),
        count: hist.count(),
        p50_us: hist.quantile(0.50),
        p90_us: hist.quantile(0.90),
        p99_us: hist.quantile(0.99),
        max_us: hist.max(),
    }
}

/// The serde artifact written next to `metrics.json`: every anomaly, the
/// retained-trace directory, and the virtual stage baselines.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AnomalyIndex {
    /// Schema version ([`ANOMALY_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Deterministic campaign identifier (week, IP version, flight seed).
    pub campaign_id: String,
    /// Campaign configuration echo.
    pub config: Vec<ConfigEntry>,
    /// The configured retention budget.
    pub retention_budget_bytes: u64,
    /// Probes whose trace was flagged for retention.
    pub flagged_traces: u64,
    /// Traces that survived eviction.
    pub retained_traces: u64,
    /// Traces evicted to honour the budget.
    pub evicted_traces: u64,
    /// Total bytes of retained binary traces.
    pub retained_bytes: u64,
    /// Every anomaly, sorted by (domain, hop, kind).
    pub anomalies: Vec<Anomaly>,
    /// Retained traces in priority order, with `traces.bin` offsets.
    pub traces: Vec<TraceSlot>,
    /// Virtual stage distributions over all inspected probes.
    pub stages: Vec<VirtualStageSummary>,
}

impl AnomalyIndex {
    /// Anomalies of one kind, in index order.
    pub fn of_kind(&self, kind: AnomalyKind) -> impl Iterator<Item = &Anomaly> {
        self.anomalies.iter().filter(move |a| a.kind == kind)
    }

    /// `(kind, count)` for every kind with at least one anomaly.
    pub fn counts_by_kind(&self) -> Vec<(AnomalyKind, usize)> {
        AnomalyKind::ALL
            .iter()
            .map(|&k| (k, self.of_kind(k).count()))
            .filter(|&(_, n)| n > 0)
            .collect()
    }

    /// The trace slot for a probe, if its trace was retained.
    pub fn slot(&self, probe: ProbeId) -> Option<&TraceSlot> {
        self.traces.iter().find(|s| s.probe == probe)
    }
}

/// The finalized flight-recorder output of one campaign.
#[derive(Debug)]
pub struct FlightRecording {
    campaign_id: String,
    config: Vec<ConfigEntry>,
    retention_budget_bytes: u64,
    flagged_traces: u64,
    evicted_traces: u64,
    retained_bytes: u64,
    anomalies: Vec<Anomaly>,
    traces: Vec<RetainedTrace>,
    handshake_us: HistogramShard,
    total_us: HistogramShard,
}

impl FlightRecording {
    /// Finalizes merged worker shards into the canonical recording:
    /// anomalies sort by (domain, hop, kind); the keep-set is the
    /// priority prefix of the *full* flagged list that fits the budget
    /// (identical for any worker partition — see the module docs).
    pub fn new(
        mut shard: FlightShard,
        cfg: &FlightConfig,
        campaign_id: String,
        config: Vec<ConfigEntry>,
    ) -> Self {
        shard
            .anomalies
            .sort_by_key(|a| (a.probe.domain_id, a.probe.hop, a.kind as u32));
        shard
            .flagged
            .sort_by_key(|m| priority_key(m.severity, m.probe));
        let budget = cfg.retention_budget_bytes;
        let mut cum = 0u64;
        let mut keep = shard.flagged.len();
        for (i, m) in shard.flagged.iter().enumerate() {
            cum += m.len;
            if cum > budget {
                keep = i;
                break;
            }
        }
        let kept: HashSet<ProbeId> = shard.flagged[..keep].iter().map(|m| m.probe).collect();
        let mut traces: Vec<RetainedTrace> = shard
            .traces
            .into_iter()
            .filter(|t| kept.contains(&t.probe))
            .collect();
        traces.sort_by_key(|t| priority_key(t.severity, t.probe));
        debug_assert_eq!(
            traces.len(),
            keep,
            "worker eviction dropped a trace the global prefix rule keeps"
        );
        let retained_bytes = traces.iter().map(|t| t.bytes.len() as u64).sum();
        FlightRecording {
            campaign_id,
            config,
            retention_budget_bytes: budget,
            flagged_traces: shard.flagged.len() as u64,
            evicted_traces: (shard.flagged.len() - traces.len()) as u64,
            retained_bytes,
            anomalies: shard.anomalies,
            traces,
            handshake_us: shard.handshake_us,
            total_us: shard.total_us,
        }
    }

    /// The deterministic campaign identifier.
    pub fn campaign_id(&self) -> &str {
        &self.campaign_id
    }

    /// Every anomaly, sorted by (domain, hop, kind).
    pub fn anomalies(&self) -> &[Anomaly] {
        &self.anomalies
    }

    /// Retained traces in priority order.
    pub fn retained(&self) -> &[RetainedTrace] {
        &self.traces
    }

    /// Probes whose trace was flagged (retained or evicted).
    pub fn flagged_traces(&self) -> u64 {
        self.flagged_traces
    }

    /// Traces evicted to honour the budget.
    pub fn evicted_traces(&self) -> u64 {
        self.evicted_traces
    }

    /// Total bytes of retained binary traces.
    pub fn retained_bytes(&self) -> u64 {
        self.retained_bytes
    }

    /// Virtual handshake-time distribution over all inspected probes.
    pub fn handshake_us(&self) -> &HistogramShard {
        &self.handshake_us
    }

    /// Virtual total-time distribution over all inspected probes.
    pub fn total_us(&self) -> &HistogramShard {
        &self.total_us
    }

    /// Decodes the retained trace of one probe.
    pub fn trace(&self, probe: ProbeId) -> Option<TraceLog> {
        self.traces
            .iter()
            .find(|t| t.probe == probe)
            .and_then(|t| decode_trace(&t.bytes).ok())
    }

    /// Builds the serde index (the `anomalies.json` artifact).
    pub fn index(&self) -> AnomalyIndex {
        let mut offset = TRACE_STORE_HEADER_LEN as u64;
        let traces = self
            .traces
            .iter()
            .map(|t| {
                let slot = TraceSlot {
                    probe: t.probe,
                    severity: t.severity,
                    offset,
                    len: t.bytes.len() as u64,
                };
                offset += t.bytes.len() as u64;
                slot
            })
            .collect();
        AnomalyIndex {
            schema_version: ANOMALY_SCHEMA_VERSION,
            campaign_id: self.campaign_id.clone(),
            config: self.config.clone(),
            retention_budget_bytes: self.retention_budget_bytes,
            flagged_traces: self.flagged_traces,
            retained_traces: self.traces.len() as u64,
            evicted_traces: self.evicted_traces,
            retained_bytes: self.retained_bytes,
            anomalies: self.anomalies.clone(),
            traces,
            stages: vec![
                virtual_summary("virtual_handshake", &self.handshake_us),
                virtual_summary("virtual_total", &self.total_us),
            ],
        }
    }

    /// Builds the binary trace store (`traces.bin`): a 5-byte header
    /// followed by the retained traces back to back, at exactly the
    /// offsets the index's [`TraceSlot`]s record.
    pub fn trace_store(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(TRACE_STORE_HEADER_LEN + self.retained_bytes as usize);
        out.extend_from_slice(TRACE_STORE_MAGIC);
        out.push(TRACE_STORE_VERSION);
        for t in &self.traces {
            out.extend_from_slice(&t.bytes);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probe_id_display_and_parse() {
        let p = ProbeId::new(1234, 2);
        assert_eq!(p.to_string(), "1234:2");
        assert_eq!("1234:2".parse::<ProbeId>().unwrap(), p);
        assert_eq!("1234".parse::<ProbeId>().unwrap(), ProbeId::new(1234, 0));
        assert!("x:1".parse::<ProbeId>().is_err());
        assert!("1:x".parse::<ProbeId>().is_err());
    }

    #[test]
    fn anomaly_kind_names_round_trip() {
        for &k in AnomalyKind::ALL {
            assert_eq!(AnomalyKind::parse(k.name()), Some(k));
            // The serde form must match name() (spinctl relies on it).
            let json = serde_json::to_string(&k).unwrap();
            assert_eq!(json, format!("\"{}\"", k.name()));
        }
        assert_eq!(AnomalyKind::parse("nope"), None);
    }

    #[test]
    fn splitmix_is_stable() {
        // The sampling hash is part of the campaign-id contract: a probe
        // flagged as baseline this week must be flagged next week too.
        assert_eq!(splitmix64(0) % 97, splitmix64(0) % 97);
        assert_ne!(splitmix64(1), splitmix64(2));
    }

    #[test]
    fn calibrate_outliers_ignores_empty_histograms() {
        let mut cfg = FlightConfig::default();
        let (hs_default, total_default) = (cfg.handshake_outlier_us, cfg.total_outlier_us);
        cfg.calibrate_outliers(
            &HistogramShard::default(),
            &HistogramShard::default(),
            0.99,
            3.0,
        );
        assert_eq!(cfg.handshake_outlier_us, hs_default);
        assert_eq!(cfg.total_outlier_us, total_default);
    }

    #[test]
    fn calibrate_outliers_rejects_single_bucket_histograms() {
        // Regression: a prior run whose virtual handshake times all landed
        // in bucket 0 (e.g. a loopback-fast sweep) used to calibrate the
        // threshold to 0, flagging every subsequent probe as an outlier.
        let mut degenerate = HistogramShard::default();
        for _ in 0..1_000 {
            degenerate.record(0);
        }
        assert_eq!(degenerate.outlier_threshold(0.99, 3.0), 0);

        let mut spike = HistogramShard::default();
        for _ in 0..1_000 {
            spike.record(40_000); // one bucket, nonzero value
        }

        let mut cfg = FlightConfig::default();
        let (hs_default, total_default) = (cfg.handshake_outlier_us, cfg.total_outlier_us);
        cfg.calibrate_outliers(&degenerate, &spike, 0.99, 3.0);
        assert_eq!(
            cfg.handshake_outlier_us, hs_default,
            "all-zero histogram must not zero the threshold"
        );
        assert_eq!(
            cfg.total_outlier_us, total_default,
            "single-bucket spike has no spread to calibrate from"
        );
    }

    #[test]
    fn calibrate_outliers_applies_healthy_histograms() {
        let mut hs = HistogramShard::default();
        let mut total = HistogramShard::default();
        for v in 1..=1_000u64 {
            hs.record(v * 40); // ~40µs spread
            total.record(v * 100);
        }
        let mut cfg = FlightConfig::default();
        cfg.calibrate_outliers(&hs, &total, 0.99, 3.0);
        assert_eq!(cfg.handshake_outlier_us, hs.outlier_threshold(0.99, 3.0));
        assert_eq!(cfg.total_outlier_us, total.outlier_threshold(0.99, 3.0));
        assert!(cfg.handshake_outlier_us > 0);

        // A zero multiplier scales any quantile to 0 — degenerate again,
        // so the previous (calibrated) thresholds survive.
        let before = (cfg.handshake_outlier_us, cfg.total_outlier_us);
        cfg.calibrate_outliers(&hs, &total, 0.99, 0.0);
        assert_eq!((cfg.handshake_outlier_us, cfg.total_outlier_us), before);
    }

    fn meta_trace(probe: ProbeId, severity: u64, len: usize) -> (TraceMeta, RetainedTrace) {
        (
            TraceMeta {
                probe,
                severity,
                len: len as u64,
            },
            RetainedTrace {
                probe,
                severity,
                bytes: vec![0u8; len],
            },
        )
    }

    fn shard_with(items: &[(ProbeId, u64, usize)], budget: u64) -> FlightShard {
        let cfg = FlightConfig {
            retention_budget_bytes: budget,
            ..FlightConfig::default()
        };
        let mut shard = FlightShard::default();
        for &(probe, sev, len) in items {
            let (meta, trace) = meta_trace(probe, sev, len);
            shard.flagged.push(meta);
            shard.retained_bytes += meta.len;
            shard.traces.push(trace);
            if shard.retained_bytes > cfg.retention_budget_bytes {
                shard.evict_to_budget(cfg.retention_budget_bytes);
            }
        }
        shard
    }

    #[test]
    fn eviction_is_partition_and_order_independent() {
        // 5 traces, budget fits only the top-severity prefix. Any arrival
        // order and any split across "workers" must finalize identically.
        let items = [
            (ProbeId::new(1, 0), 500u64, 300usize),
            (ProbeId::new(2, 0), 400, 300),
            (ProbeId::new(3, 0), 300, 300),
            (ProbeId::new(4, 0), 200, 300),
            (ProbeId::new(5, 0), 100, 300),
        ];
        let budget = 700; // fits exactly the two highest-severity traces
        let cfg = FlightConfig {
            retention_budget_bytes: budget,
            ..FlightConfig::default()
        };
        let finalize = |shard: FlightShard| {
            let rec = FlightRecording::new(shard, &cfg, "t".into(), Vec::new());
            (
                rec.retained()
                    .iter()
                    .map(|t| t.probe)
                    .collect::<Vec<ProbeId>>(),
                rec.evicted_traces(),
                rec.retained_bytes(),
            )
        };
        let expected = finalize(shard_with(&items, budget));
        assert_eq!(
            expected.0,
            vec![ProbeId::new(1, 0), ProbeId::new(2, 0)],
            "highest severity survives"
        );
        assert_eq!(expected.1, 3);
        assert!(expected.2 <= budget);

        // Reversed arrival order.
        let mut rev = items;
        rev.reverse();
        assert_eq!(finalize(shard_with(&rev, budget)), expected);

        // Every contiguous 2-way partition, each worker evicting locally.
        for split in 0..=items.len() {
            let mut a = shard_with(&items[..split], budget);
            let b = shard_with(&items[split..], budget);
            a.merge(b);
            assert_eq!(finalize(a), expected, "split at {split}");
        }
    }

    #[test]
    fn eviction_keeps_highest_severity_prefix() {
        // Budget smaller than any single trace: nothing survives.
        let items = [(ProbeId::new(1, 0), 10u64, 100usize)];
        let rec = FlightRecording::new(
            shard_with(&items, 50),
            &FlightConfig {
                retention_budget_bytes: 50,
                ..FlightConfig::default()
            },
            "t".into(),
            Vec::new(),
        );
        assert!(rec.retained().is_empty());
        assert_eq!(rec.evicted_traces(), 1);
        assert_eq!(rec.flagged_traces(), 1);
    }

    #[test]
    fn invalid_edge_detection_flags_fast_flips() {
        use quicspin_qlog::{EventData, PacketSpace};
        let mut t = TraceLog::new("client");
        let mut push = |time, pn, spin| {
            t.push(
                time,
                EventData::PacketReceived {
                    space: PacketSpace::Application,
                    packet_number: pn,
                    spin: Some(spin),
                    size: 64,
                },
            )
        };
        // min stack RTT 40 ms. Edges fall at 12_000, 14_000, and 60_000;
        // the 2 ms period between the first two is far below the 20 ms
        // floor (frac 0.5) and therefore impossible, while the first edge
        // (no prior period) and the 46 ms one are fine.
        push(10_000, 1, false);
        push(12_000, 2, true);
        push(14_000, 3, false);
        push(60_000, 4, true);
        assert_eq!(invalid_spin_edges(&t, Some(40_000), 0.5), 1);
        // Without a stack-RTT baseline only time inversions count.
        assert_eq!(invalid_spin_edges(&t, None, 0.5), 0);
    }

    #[test]
    fn invalid_edge_detection_flags_time_inversion() {
        use quicspin_qlog::{EventData, PacketSpace};
        let mut t = TraceLog::new("client");
        // The later packet number carries the earlier timestamp, so in
        // packet-number order time runs backwards across the flip.
        t.push(
            20_000,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 1,
                spin: Some(false),
                size: 64,
            },
        );
        t.push(
            19_000,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 2,
                spin: Some(true),
                size: 64,
            },
        );
        assert_eq!(invalid_spin_edges(&t, None, 0.5), 1);
    }

    #[test]
    fn observer_views_trip_the_new_anomaly_kinds() {
        use crate::observe::ObserverView;
        use quicspin_core::ObserverReport;
        use quicspin_observer::FlowStats;
        use quicspin_webpop::{IpVersion, ListKind, Org};

        let stats = |samples: u64, mean: Option<u64>, edges_down: u64| FlowStats {
            packets: 30,
            unobservable: 2,
            edges_upstream: edges_down,
            edges_downstream: edges_down,
            samples,
            samples_upstream: samples,
            mean_us: mean,
            min_us: mean,
            max_us: mean,
            server_side_mean_us: None,
            client_side_mean_us: None,
            rejected_reorder: 0,
            rejected_gap: 0,
            suppressed_warmup: 0,
            measurable: samples > 0,
        };
        let report = |spin: &[u64]| ObserverReport {
            classification: FlowClassification::Spinning,
            packets: 30,
            spin_samples_received_us: spin.to_vec(),
            spin_samples_sorted_us: spin.to_vec(),
            stack_samples_us: spin.to_vec(),
        };
        let record = |domain_id: u32, view: ObserverView, rep: ObserverReport| {
            let mut r = ConnectionRecord::failed(
                domain_id,
                ListKind::Toplist,
                Org::Other,
                0,
                IpVersion::V4,
                ScanOutcome::Ok,
            );
            r.report = Some(rep);
            r.observer = Some(view);
            r
        };

        let cfg = FlightConfig::armed(7);
        let mut shard = FlightShard::default();

        // Diverging: observer mean 52 ms vs client 40 ms (30% > 10%), and
        // 4 extra downstream edges beyond the client's 3-edge stream.
        let rep = report(&[40_000, 40_000]);
        let diverging = record(
            1,
            ObserverView::new(0.5, stats(4, Some(52_000), 7), &rep),
            rep,
        );
        // Unmeasurable: a tap that never produced a sample on an Ok flow.
        let rep = report(&[]);
        let unmeasurable = record(2, ObserverView::new(0.5, stats(0, None, 0), &rep), rep);
        // Clean: observer agrees with the client exactly.
        let rep = report(&[40_000, 40_000]);
        let clean = record(
            3,
            ObserverView::new(0.5, stats(2, Some(40_000), 3), &rep),
            rep,
        );

        shard.inspect_domain(&cfg, &[diverging]);
        shard.inspect_domain(&cfg, &[unmeasurable]);
        shard.inspect_domain(&cfg, &[clean]);

        let kinds: Vec<AnomalyKind> = shard.anomalies().iter().map(|a| a.kind).collect();
        assert!(kinds.contains(&AnomalyKind::ObserverDivergence));
        assert!(kinds.contains(&AnomalyKind::ObserverExtraEdges));
        assert!(kinds.contains(&AnomalyKind::ObserverUnmeasurable));
        assert!(
            shard.anomalies().iter().all(|a| a.probe.domain_id != 3),
            "clean flow must not be flagged"
        );
    }

    #[test]
    fn index_offsets_match_store_layout() {
        let items = [
            (ProbeId::new(7, 0), 90u64, 40usize),
            (ProbeId::new(8, 0), 80, 60),
        ];
        let cfg = FlightConfig::default();
        let rec = FlightRecording::new(shard_with(&items, 1 << 20), &cfg, "t".into(), Vec::new());
        let index = rec.index();
        let store = rec.trace_store();
        assert_eq!(&store[..4], TRACE_STORE_MAGIC);
        assert_eq!(store[4], TRACE_STORE_VERSION);
        assert_eq!(index.traces.len(), 2);
        let mut expect_off = TRACE_STORE_HEADER_LEN as u64;
        for slot in &index.traces {
            assert_eq!(slot.offset, expect_off);
            expect_off += slot.len;
        }
        assert_eq!(store.len() as u64, expect_off);
    }
}
