//! Columnar (structure-of-arrays) record batches for the campaign merge
//! path.
//!
//! A [`crate::record::ConnectionRecord`] is built for fidelity, not for
//! aggregation: it drags an optional observer report (spin samples,
//! rejection counters) and an optional qlog trace behind every row. The
//! aggregation consumers — `streaming::aggregate_campaign` in the
//! analysis crate and [`crate::timeseries`]'s cumulative fold — touch a
//! dozen scalar fields per record. A [`RecordBatch`] stores exactly those
//! fields in parallel columns, one batch per scheduler work unit, so the
//! merge path walks dense arrays instead of pointer-laden structs and the
//! streamed campaign mode can account its resident bytes precisely.
//!
//! Rows are appended per domain ([`RecordBatch::push_group`]) and read
//! back per domain ([`RecordBatch::groups`]): the group structure mirrors
//! the `fold(acc, domain_records)` contract of the campaign engine, where
//! each domain's records (all redirect hops) arrive as one contiguous
//! run.

use crate::observe::ObserverView;
use crate::record::{ConnectionRecord, ScanOutcome};
use quicspin_core::FlowClassification;
use quicspin_webpop::{HostAddr, ListKind, Org, WebServer};

/// One record's aggregation-relevant fields, copied out of a column set
/// (or a [`ConnectionRecord`]). Plain `Copy` data — cheap to hand around
/// by value.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecordRow {
    /// Scanned domain id.
    pub domain_id: u32,
    /// Target list of the domain.
    pub list: ListKind,
    /// Hosting organization.
    pub org: Org,
    /// Outcome of this connection.
    pub outcome: ScanOutcome,
    /// Redirect hop depth (0 = first connection).
    pub redirect_depth: u32,
    /// Answering host, if one was reached.
    pub host: Option<HostAddr>,
    /// Web server from the response header, if parsed.
    pub webserver: Option<WebServer>,
    /// Flow classification of the observer report, if established.
    pub classification: Option<FlowClassification>,
    /// Virtual-clock handshake time (µs), if established.
    pub virtual_handshake_us: Option<u64>,
    /// Virtual-clock total connection time (µs).
    pub virtual_total_us: u64,
    /// Netsim queue high-water mark of this connection.
    pub queue_high_water: u64,
    /// The on-path observer's view, when a tap was attached.
    pub observer: Option<ObserverView>,
}

impl RecordRow {
    /// Extracts the row view of a full record.
    pub fn of(r: &ConnectionRecord) -> RecordRow {
        RecordRow {
            domain_id: r.domain_id,
            list: r.list,
            org: r.org,
            outcome: r.outcome,
            redirect_depth: r.redirect_depth,
            host: r.host,
            webserver: r.webserver,
            classification: r.report.as_ref().map(|rep| rep.classification),
            virtual_handshake_us: r.virtual_handshake_us,
            virtual_total_us: r.virtual_total_us,
            queue_high_water: r.queue_high_water,
            observer: r.observer,
        }
    }
}

/// A structure-of-arrays batch of record rows, grouped by domain.
#[derive(Debug, Clone, Default)]
pub struct RecordBatch {
    domain_ids: Vec<u32>,
    lists: Vec<ListKind>,
    orgs: Vec<Org>,
    outcomes: Vec<ScanOutcome>,
    redirect_depths: Vec<u32>,
    hosts: Vec<Option<HostAddr>>,
    webservers: Vec<Option<WebServer>>,
    classifications: Vec<Option<FlowClassification>>,
    virtual_handshake_us: Vec<Option<u64>>,
    virtual_total_us: Vec<u64>,
    queue_high_waters: Vec<u64>,
    observers: Vec<Option<ObserverView>>,
    /// Row offset where each domain group starts; rows of one domain are
    /// contiguous. `group_starts[i]..group_starts[i+1]` (or `len`) is
    /// group `i`.
    group_starts: Vec<u32>,
}

impl RecordBatch {
    /// An empty batch.
    pub fn new() -> Self {
        RecordBatch::default()
    }

    /// Appends one domain's records (all its redirect hops) as the next
    /// group. Empty groups are ignored — the scanner always produces at
    /// least one record per domain.
    pub fn push_group(&mut self, records: &[ConnectionRecord]) {
        if records.is_empty() {
            return;
        }
        self.group_starts.push(self.domain_ids.len() as u32);
        for r in records {
            self.domain_ids.push(r.domain_id);
            self.lists.push(r.list);
            self.orgs.push(r.org);
            self.outcomes.push(r.outcome);
            self.redirect_depths.push(r.redirect_depth);
            self.hosts.push(r.host);
            self.webservers.push(r.webserver);
            self.classifications
                .push(r.report.as_ref().map(|rep| rep.classification));
            self.virtual_handshake_us.push(r.virtual_handshake_us);
            self.virtual_total_us.push(r.virtual_total_us);
            self.queue_high_waters.push(r.queue_high_water);
            self.observers.push(r.observer);
        }
    }

    /// Number of rows (records).
    pub fn len(&self) -> usize {
        self.domain_ids.len()
    }

    /// Whether the batch holds no rows.
    pub fn is_empty(&self) -> bool {
        self.domain_ids.is_empty()
    }

    /// Number of domain groups.
    pub fn group_count(&self) -> usize {
        self.group_starts.len()
    }

    /// The row at `index`, reassembled from the columns.
    pub fn row(&self, index: usize) -> RecordRow {
        RecordRow {
            domain_id: self.domain_ids[index],
            list: self.lists[index],
            org: self.orgs[index],
            outcome: self.outcomes[index],
            redirect_depth: self.redirect_depths[index],
            host: self.hosts[index],
            webserver: self.webservers[index],
            classification: self.classifications[index],
            virtual_handshake_us: self.virtual_handshake_us[index],
            virtual_total_us: self.virtual_total_us[index],
            queue_high_water: self.queue_high_waters[index],
            observer: self.observers[index],
        }
    }

    /// Iterates the rows of group `g`.
    pub fn group(&self, g: usize) -> impl Iterator<Item = RecordRow> + '_ {
        let start = self.group_starts[g] as usize;
        let end = self
            .group_starts
            .get(g + 1)
            .map_or(self.len(), |&s| s as usize);
        (start..end).map(move |i| self.row(i))
    }

    /// Iterates all groups, each as its row iterator, in append order.
    pub fn groups(&self) -> impl Iterator<Item = impl Iterator<Item = RecordRow> + '_> + '_ {
        (0..self.group_count()).map(move |g| self.group(g))
    }

    /// Approximate resident bytes of the column storage (capacities, not
    /// lengths — this is what the streamed path's byte budget accounts).
    pub fn approx_bytes(&self) -> usize {
        fn col<T>(v: &Vec<T>) -> usize {
            v.capacity() * std::mem::size_of::<T>()
        }
        col(&self.domain_ids)
            + col(&self.lists)
            + col(&self.orgs)
            + col(&self.outcomes)
            + col(&self.redirect_depths)
            + col(&self.hosts)
            + col(&self.webservers)
            + col(&self.classifications)
            + col(&self.virtual_handshake_us)
            + col(&self.virtual_total_us)
            + col(&self.queue_high_waters)
            + col(&self.observers)
            + col(&self.group_starts)
    }

    /// Clears all rows and groups, keeping the column allocations.
    pub fn clear(&mut self) {
        self.domain_ids.clear();
        self.lists.clear();
        self.orgs.clear();
        self.outcomes.clear();
        self.redirect_depths.clear();
        self.hosts.clear();
        self.webservers.clear();
        self.classifications.clear();
        self.virtual_handshake_us.clear();
        self.virtual_total_us.clear();
        self.queue_high_waters.clear();
        self.observers.clear();
        self.group_starts.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::record::ConnectionRecord;
    use quicspin_webpop::IpVersion;

    fn failed(domain_id: u32, outcome: ScanOutcome) -> ConnectionRecord {
        ConnectionRecord::failed(
            domain_id,
            ListKind::Toplist,
            Org::Other,
            0,
            IpVersion::V4,
            outcome,
        )
    }

    #[test]
    fn groups_round_trip_rows() {
        let mut batch = RecordBatch::new();
        let a = vec![failed(3, ScanOutcome::NotResolved)];
        let b = vec![
            failed(4, ScanOutcome::Unreachable),
            failed(4, ScanOutcome::Unreachable),
        ];
        batch.push_group(&a);
        batch.push_group(&[]);
        batch.push_group(&b);

        assert_eq!(batch.len(), 3);
        assert_eq!(batch.group_count(), 2);
        let g0: Vec<RecordRow> = batch.group(0).collect();
        assert_eq!(g0, a.iter().map(RecordRow::of).collect::<Vec<_>>());
        let g1: Vec<RecordRow> = batch.group(1).collect();
        assert_eq!(g1, b.iter().map(RecordRow::of).collect::<Vec<_>>());
        assert_eq!(batch.groups().count(), 2);
    }

    #[test]
    fn clear_keeps_capacity_and_resets_groups() {
        let mut batch = RecordBatch::new();
        batch.push_group(&[failed(1, ScanOutcome::NoQuic)]);
        let bytes = batch.approx_bytes();
        assert!(bytes > 0);
        batch.clear();
        assert!(batch.is_empty());
        assert_eq!(batch.group_count(), 0);
        // Capacity (and thus the byte estimate) survives the clear.
        assert_eq!(batch.approx_bytes(), bytes);
    }

    #[test]
    fn row_view_matches_record_fields() {
        let r = failed(9, ScanOutcome::HandshakeFailed);
        let row = RecordRow::of(&r);
        assert_eq!(row.domain_id, 9);
        assert_eq!(row.outcome, ScanOutcome::HandshakeFailed);
        assert_eq!(row.classification, None);
        assert_eq!(row.host, r.host);
    }
}
