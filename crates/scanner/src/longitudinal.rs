//! Longitudinal measurements (§4.3 / Fig. 2): the same domains, scanned
//! across many weeks, to check RFC 9000/9312 compliance.

use crate::campaign::{CampaignConfig, Scanner};
use crate::record::ScanOutcome;
use quicspin_webpop::{IpVersion, Population};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Longitudinal study parameters.
#[derive(Debug, Clone)]
pub struct LongitudinalConfig {
    /// The selected measurement weeks (the paper picks n = 12 across
    /// CW 15/2022 – CW 20/2023).
    pub weeks: Vec<u32>,
    /// Base campaign configuration (week is overridden per sweep).
    pub base: CampaignConfig,
}

impl LongitudinalConfig {
    /// The paper's n = 12 selection, spread across the campaign.
    pub fn paper_weeks(base: CampaignConfig) -> Self {
        LongitudinalConfig {
            weeks: vec![0, 5, 10, 15, 20, 25, 30, 35, 40, 45, 50, 55],
            base,
        }
    }
}

/// Per-domain weekly behaviour.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainWeeks {
    /// Domain id.
    pub domain_id: u32,
    /// Weeks in which a connection was established.
    pub reachable_weeks: u32,
    /// Weeks in which spin activity was observed.
    pub spin_weeks: u32,
}

/// Outcome of the longitudinal study.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct LongitudinalResult {
    /// Number of selected weeks (n).
    pub n_weeks: u32,
    /// Per-domain aggregation over all domains that spun at least once.
    pub ever_spun: Vec<DomainWeeks>,
}

impl LongitudinalResult {
    /// Domains that spun at least once AND were reachable in every week —
    /// the Fig. 2 denominator.
    pub fn always_reachable(&self) -> impl Iterator<Item = &DomainWeeks> {
        self.ever_spun
            .iter()
            .filter(move |d| d.reachable_weeks == self.n_weeks)
    }

    /// Fig. 2 histogram: share of always-reachable, ever-spinning domains
    /// with spin activity in exactly `k` weeks, for k = 1..=n.
    pub fn histogram(&self) -> Vec<f64> {
        let denom = self.always_reachable().count() as f64;
        let mut counts = vec![0usize; self.n_weeks as usize];
        for d in self.always_reachable() {
            if d.spin_weeks >= 1 {
                counts[(d.spin_weeks - 1) as usize] += 1;
            }
        }
        counts
            .into_iter()
            .map(|c| if denom > 0.0 { c as f64 / denom } else { 0.0 })
            .collect()
    }
}

/// Runs the longitudinal study. Scans all domains every selected week and
/// aggregates spin activity per domain, mirroring §4.3's methodology.
pub fn run_longitudinal(
    population: &Population,
    config: &LongitudinalConfig,
) -> LongitudinalResult {
    let scanner = Scanner::new(population);
    let n_weeks = config.weeks.len() as u32;
    let mut per_domain: BTreeMap<u32, (u32, u32)> = BTreeMap::new(); // id -> (reachable, spun)

    for &week in &config.weeks {
        let cfg = CampaignConfig {
            week,
            version: IpVersion::V4,
            ..config.base.clone()
        };
        let campaign = scanner.run_campaign(&cfg);
        // Per domain: reachable this week? spun this week?
        let mut week_state: BTreeMap<u32, (bool, bool)> = BTreeMap::new();
        for r in &campaign.records {
            let entry = week_state.entry(r.domain_id).or_insert((false, false));
            entry.0 |= r.outcome == ScanOutcome::Ok;
            entry.1 |= r.has_spin_activity();
        }
        for (id, (reachable, spun)) in week_state {
            let entry = per_domain.entry(id).or_insert((0, 0));
            if reachable {
                entry.0 += 1;
            }
            if spun {
                entry.1 += 1;
            }
        }
    }

    let ever_spun = per_domain
        .into_iter()
        .filter(|&(_, (_, spun))| spun > 0)
        .map(|(domain_id, (reachable_weeks, spin_weeks))| DomainWeeks {
            domain_id,
            reachable_weeks,
            spin_weeks,
        })
        .collect();

    LongitudinalResult { n_weeks, ever_spun }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::probe::NetworkConditions;
    use quicspin_webpop::PopulationConfig;

    fn small_longitudinal(weeks: Vec<u32>) -> LongitudinalResult {
        let pop = Population::generate(PopulationConfig {
            seed: 77,
            toplist_domains: 0,
            zone_domains: 1_500,
        });
        let cfg = LongitudinalConfig {
            weeks,
            base: CampaignConfig {
                conditions: NetworkConditions::clean(),
                threads: 2,
                ..CampaignConfig::default()
            },
        };
        run_longitudinal(&pop, &cfg)
    }

    #[test]
    fn ever_spun_domains_have_spin_weeks() {
        let result = small_longitudinal(vec![0, 3, 6]);
        assert!(!result.ever_spun.is_empty(), "some domain must spin");
        for d in &result.ever_spun {
            assert!(d.spin_weeks >= 1);
            assert!(d.spin_weeks <= 3);
            assert!(d.reachable_weeks <= 3);
            assert!(
                d.spin_weeks <= d.reachable_weeks,
                "spin implies reachable: {d:?}"
            );
        }
    }

    #[test]
    fn histogram_sums_to_one_over_always_reachable() {
        let result = small_longitudinal(vec![0, 2, 4, 8]);
        let hist = result.histogram();
        assert_eq!(hist.len(), 4);
        let denom = result.always_reachable().count();
        if denom > 0 {
            let total: f64 = hist.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "histogram sums to {total}");
        }
    }

    #[test]
    fn churn_spreads_domains_below_full_weeks() {
        let result = small_longitudinal(vec![0, 5, 10, 15, 20, 25]);
        let always: Vec<_> = result.always_reachable().collect();
        if always.len() >= 10 {
            let full = always
                .iter()
                .filter(|d| d.spin_weeks == result.n_weeks)
                .count();
            assert!(
                full < always.len(),
                "churn must keep some domains from spinning every week"
            );
        }
    }

    #[test]
    fn paper_weeks_selection() {
        let cfg = LongitudinalConfig::paper_weeks(CampaignConfig::default());
        assert_eq!(cfg.weeks.len(), 12);
        let mut sorted = cfg.weeks.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), 12, "weeks are distinct");
    }
}
