//! Full-population campaigns: one measurement sweep over every target,
//! distributed across worker threads by a work-stealing batch scheduler.
//!
//! Workers claim fixed-size batches of domain ids from a shared atomic
//! cursor, so a cluster of expensive targets (e.g. the QUIC-dense toplist
//! prefix) spreads over all threads instead of serialising one static
//! shard. Per-batch results are merged in batch-index order, which makes
//! the output bit-identical for any thread count.

use crate::probe::{probe_connection_scratch, NetworkConditions, ProbeScratch};
use crate::record::{ConnectionRecord, ScanOutcome};
use quicspin_core::{GreaseFilter, ObserverConfig};
use quicspin_h3::MAX_REDIRECTS;
use quicspin_webpop::{IpVersion, Population};
use std::sync::atomic::{AtomicU32, Ordering};

/// Number of domain ids a worker claims per cursor fetch. Small enough to
/// balance a few expensive targets across threads, large enough that the
/// cursor is uncontended.
const BATCH_SIZE: u32 = 64;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Measurement week index (0 = CW 15, 2022 in the paper's calendar).
    pub week: u32,
    /// IP version of this sweep.
    pub version: IpVersion,
    /// Worker threads (sharded by domain id; results are identical for
    /// any thread count).
    pub threads: usize,
    /// Path conditions.
    pub conditions: NetworkConditions,
    /// Observer configuration used for the per-connection reports.
    pub observer: ObserverConfig,
    /// Grease filter applied during classification.
    pub grease: GreaseFilter,
    /// Retain the full client qlog trace on every established record
    /// (the paper's Appendix B artifact capture; memory-heavy).
    pub keep_qlogs: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            week: 0,
            version: IpVersion::V4,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            conditions: NetworkConditions::default(),
            observer: ObserverConfig::default(),
            grease: GreaseFilter::paper(),
            keep_qlogs: false,
        }
    }
}

/// The result of one sweep: every connection record, ordered by domain.
#[derive(Debug)]
pub struct Campaign {
    /// Week the campaign ran in.
    pub week: u32,
    /// IP version used.
    pub version: IpVersion,
    /// All records (≥ 1 per domain attempted; redirects add more).
    pub records: Vec<ConnectionRecord>,
}

impl Campaign {
    /// Records of established connections only.
    pub fn established(&self) -> impl Iterator<Item = &ConnectionRecord> + Clone {
        self.records.iter().filter(|r| r.outcome == ScanOutcome::Ok)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the campaign produced no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The scanner: a population plus the machinery to sweep it.
#[derive(Debug)]
pub struct Scanner<'p> {
    population: &'p Population,
}

impl<'p> Scanner<'p> {
    /// Creates a scanner over a population.
    pub fn new(population: &'p Population) -> Self {
        Scanner { population }
    }

    /// Scans a single domain (following redirects); returns all records.
    pub fn scan_domain(&self, domain_id: u32, config: &CampaignConfig) -> Vec<ConnectionRecord> {
        let mut records = Vec::new();
        self.scan_domain_into(
            domain_id,
            config,
            &mut ProbeScratch::default(),
            &mut records,
        );
        records
    }

    /// [`scan_domain`](Scanner::scan_domain), appending the records to
    /// `out` and reusing per-worker `scratch` across probes — the form the
    /// campaign engine drives in its hot loop.
    pub fn scan_domain_into(
        &self,
        domain_id: u32,
        config: &CampaignConfig,
        scratch: &mut ProbeScratch,
        out: &mut Vec<ConnectionRecord>,
    ) {
        let d = self.population.domain(domain_id);
        let resolved = match config.version {
            IpVersion::V4 => d.resolved_v4,
            IpVersion::V6 => d.resolved_v6,
        };
        if !resolved {
            out.push(ConnectionRecord::failed(
                d.id,
                d.list,
                d.org,
                config.week,
                config.version,
                ScanOutcome::NotResolved,
            ));
            return;
        }
        let Some(first_plan) =
            self.population
                .plan_connection(domain_id, config.week, config.version, 0)
        else {
            out.push(ConnectionRecord::failed(
                d.id,
                d.list,
                d.org,
                config.week,
                config.version,
                ScanOutcome::NoQuic,
            ));
            return;
        };
        if !self.population.is_reachable(domain_id, config.week) {
            out.push(ConnectionRecord::failed(
                d.id,
                d.list,
                d.org,
                config.week,
                config.version,
                ScanOutcome::Unreachable,
            ));
            return;
        }

        let mut plan = first_plan;
        for depth in 0..=(MAX_REDIRECTS as u32) {
            let (record, response) = probe_connection_scratch(
                d,
                &plan,
                config.week,
                config.version,
                depth,
                &config.conditions,
                config.observer,
                config.grease,
                config.keep_qlogs,
                scratch,
            );
            let follow = record.outcome == ScanOutcome::Ok
                && response.as_ref().is_some_and(|r| r.status.is_redirect())
                && depth < MAX_REDIRECTS as u32;
            out.push(record);
            if !follow {
                break;
            }
            // The redirect target is the canonical page on the same host
            // (a fresh connection, as the paper counts it).
            match self
                .population
                .plan_connection(domain_id, config.week, config.version, depth + 1)
            {
                Some(next) => plan = next,
                None => break,
            }
        }
    }

    /// Runs a full sweep over every domain.
    pub fn run_campaign(&self, config: &CampaignConfig) -> Campaign {
        let n = self.population.len() as u32;
        self.run_campaign_over(config, 0..n)
    }

    /// Runs a sweep over a subrange of domain ids (sharding building
    /// block; also used to scan only QUIC candidates in longitudinal
    /// mode).
    pub fn run_campaign_over(
        &self,
        config: &CampaignConfig,
        ids: std::ops::Range<u32>,
    ) -> Campaign {
        let records = self.run_campaign_fold(
            config,
            ids,
            Vec::new,
            |acc: &mut Vec<ConnectionRecord>, domain: &mut Vec<ConnectionRecord>| {
                acc.append(domain);
            },
            |acc, mut batch| acc.append(&mut batch),
        );
        Campaign {
            week: config.week,
            version: config.version,
            records,
        }
    }

    /// The campaign engine's generic core: sweeps `ids`, folding each
    /// domain's records into an accumulator instead of retaining them.
    ///
    /// Domain ids are claimed in fixed-size batches from a shared atomic
    /// cursor by `config.threads` workers (work stealing, so expensive
    /// targets cannot pile up on one static shard). Each batch folds into
    /// its own accumulator — `fold` is called once per domain, in id
    /// order within the batch, with that domain's records (the callee may
    /// drain the `Vec`; it is cleared before reuse either way) — and the
    /// batch accumulators are `merge`d into `init()` in batch-index
    /// order. The accumulation tree therefore depends only on `ids`,
    /// never on the thread count or claim timing: results are
    /// bit-identical for any `config.threads`, including float folds.
    pub fn run_campaign_fold<A, I, F, M>(
        &self,
        config: &CampaignConfig,
        ids: std::ops::Range<u32>,
        init: I,
        fold: F,
        merge: M,
    ) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, &mut Vec<ConnectionRecord>) + Sync,
        M: Fn(&mut A, A),
    {
        let threads = config.threads.max(1);
        let batches = (ids.end.saturating_sub(ids.start)).div_ceil(BATCH_SIZE);
        let cursor = AtomicU32::new(0);
        // One worker loop, shared by the sequential and threaded paths so
        // both build the exact same per-batch accumulation tree.
        let worker = |out: &mut Vec<(u32, A)>| {
            let mut scratch = ProbeScratch::default();
            let mut domain_records: Vec<ConnectionRecord> = Vec::new();
            loop {
                let batch = cursor.fetch_add(1, Ordering::Relaxed);
                if batch >= batches {
                    break;
                }
                let lo = ids.start + batch * BATCH_SIZE;
                let hi = lo.saturating_add(BATCH_SIZE).min(ids.end);
                let mut acc = init();
                for id in lo..hi {
                    domain_records.clear();
                    self.scan_domain_into(id, config, &mut scratch, &mut domain_records);
                    fold(&mut acc, &mut domain_records);
                }
                out.push((batch, acc));
            }
        };

        let mut tagged: Vec<(u32, A)> = if threads == 1 || batches <= 1 {
            let mut out = Vec::new();
            worker(&mut out);
            out
        } else {
            let workers = threads.min(batches as usize);
            let mut parts: Vec<Vec<(u32, A)>> = Vec::new();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            worker(&mut out);
                            out
                        })
                    })
                    .collect();
                for handle in handles {
                    parts.push(handle.join().expect("scan worker panicked"));
                }
            });
            parts.into_iter().flatten().collect()
        };

        tagged.sort_by_key(|&(batch, _)| batch);
        let mut acc = init();
        for (_, batch_acc) in tagged {
            merge(&mut acc, batch_acc);
        }
        acc
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_webpop::PopulationConfig;

    fn tiny_pop() -> Population {
        Population::generate(PopulationConfig {
            seed: 42,
            toplist_domains: 100,
            zone_domains: 900,
        })
    }

    fn clean_config() -> CampaignConfig {
        CampaignConfig {
            conditions: NetworkConditions::clean(),
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_covers_every_domain() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        use std::collections::HashSet;
        let ids: HashSet<u32> = campaign.records.iter().map(|r| r.domain_id).collect();
        assert_eq!(ids.len(), pop.len());
        assert!(!campaign.is_empty());
        assert!(campaign.len() >= pop.len());
    }

    #[test]
    fn outcomes_match_population_flags() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        for r in &campaign.records {
            let d = pop.domain(r.domain_id);
            match r.outcome {
                ScanOutcome::NotResolved => assert!(!d.resolved_v4),
                ScanOutcome::NoQuic => assert!(d.resolved_v4 && !d.quic),
                ScanOutcome::Ok | ScanOutcome::HandshakeFailed => assert!(d.quic),
                ScanOutcome::Unreachable => assert!(d.quic),
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let mut one = clean_config();
        one.threads = 1;
        let mut four = clean_config();
        four.threads = 4;
        let a = scanner.run_campaign(&one);
        let b = scanner.run_campaign(&four);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.domain_id, y.domain_id);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn thread_count_is_bit_identical() {
        // Stronger than record-field spot checks: the serialized form of
        // every record — report, qlog, host, everything — must match
        // byte-for-byte between 1 and 8 workers.
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let config = |threads| CampaignConfig {
            threads,
            keep_qlogs: true,
            ..clean_config()
        };
        let one = scanner.run_campaign(&config(1));
        let eight = scanner.run_campaign(&config(8));
        assert_eq!(one.len(), eight.len());
        for (x, y) in one.records.iter().zip(&eight.records) {
            assert_eq!(
                serde_json::to_string(x).unwrap(),
                serde_json::to_string(y).unwrap()
            );
        }
    }

    #[test]
    fn work_stealing_visits_every_id_exactly_once_in_order() {
        // Drive the fold engine directly: each fold call is one domain, so
        // accumulating ids proves exactly-once coverage, and the merged
        // order must be ascending regardless of which worker stole what.
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let cfg = CampaignConfig {
            threads: 8,
            ..clean_config()
        };
        // An offset, non-multiple-of-BATCH_SIZE range exercises the edge
        // batches too.
        let ids = 3..pop.len() as u32 - 7;
        let visited = scanner.run_campaign_fold(
            &cfg,
            ids.clone(),
            Vec::new,
            |acc: &mut Vec<u32>, records: &mut Vec<ConnectionRecord>| {
                assert!(!records.is_empty(), "every domain yields >= 1 record");
                acc.push(records[0].domain_id);
            },
            |acc, mut batch| acc.append(&mut batch),
        );
        assert_eq!(visited, ids.collect::<Vec<u32>>());
    }

    #[test]
    fn fold_engine_handles_empty_and_tiny_ranges() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let count = |ids: std::ops::Range<u32>| {
            scanner.run_campaign_fold(
                &clean_config(),
                ids,
                || 0usize,
                |acc: &mut usize, _records: &mut Vec<ConnectionRecord>| *acc += 1,
                |acc, batch| *acc += batch,
            )
        };
        assert_eq!(count(5..5), 0);
        assert_eq!(count(5..6), 1);
        assert_eq!(count(0..65), 65);
    }

    #[test]
    fn redirects_produce_extra_connections() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        let with_redirect: Vec<_> = campaign
            .records
            .iter()
            .filter(|r| r.redirect_depth > 0)
            .collect();
        assert!(
            !with_redirect.is_empty(),
            "some redirect chains must occur at REDIRECT_RATE"
        );
        for r in &with_redirect {
            assert!(pop.domain(r.domain_id).redirects);
        }
    }

    #[test]
    fn established_iterator_filters() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        assert!(campaign
            .established()
            .all(|r| r.outcome == ScanOutcome::Ok && r.report.is_some()));
    }

    #[test]
    fn v6_campaign_scans_fewer_hosts() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let v4 = scanner.run_campaign(&clean_config());
        let mut v6_cfg = clean_config();
        v6_cfg.version = IpVersion::V6;
        let v6 = scanner.run_campaign(&v6_cfg);
        let ok4 = v4.established().count();
        let ok6 = v6.established().count();
        assert!(ok6 < ok4, "v6 ({ok6}) must be rarer than v4 ({ok4})");
    }

    #[test]
    fn weeks_vary_spin_behaviour() {
        let pop = Population::generate(PopulationConfig {
            seed: 7,
            toplist_domains: 0,
            zone_domains: 3_000,
        });
        let scanner = Scanner::new(&pop);
        let spin_count = |week: u32| {
            let cfg = CampaignConfig {
                week,
                ..clean_config()
            };
            scanner
                .run_campaign(&cfg)
                .records
                .iter()
                .filter(|r| r.has_spin_activity())
                .count()
        };
        let a = spin_count(0);
        let b = spin_count(5);
        // Churn and the 1-in-16 rule make weekly counts fluctuate; we only
        // require both weeks to see some spinning (the population has
        // spin-enabled hosts with high probability at this size).
        assert!(a > 0 && b > 0, "weeks 0/5 spin counts: {a}/{b}");
    }
}
