//! Full-population campaigns: one measurement sweep over every target,
//! distributed across worker threads by a work-stealing batch scheduler.
//!
//! Workers claim fixed-size batches of domain ids from a shared atomic
//! cursor, so a cluster of expensive targets (e.g. the QUIC-dense toplist
//! prefix) spreads over all threads instead of serialising one static
//! shard. Per-batch results are merged in batch-index order, which makes
//! the output bit-identical for any thread count.

use crate::batch::RecordBatch;
use crate::flight::{FlightConfig, FlightRecording, FlightShard};
use crate::probe::{probe_connection_scratch, NetworkConditions, ProbeScratch};
use crate::record::{ConnectionRecord, ScanOutcome};
use quicspin_core::{GreaseFilter, ObserverConfig};
use quicspin_h3::MAX_REDIRECTS;
use quicspin_telemetry::{
    ConfigEntry, GaugeId, Metric, ProfilerRegistry, ProgressSnapshot, Registry, RunManifest,
    ScopeId, Stage, TimePoint, TimeSeries, DEFAULT_TIMESERIES_CAPACITY,
};
use quicspin_webpop::{IpVersion, Population};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU32, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::time::{Duration, Instant};

/// Number of domain ids a worker claims per cursor fetch. Small enough to
/// balance a few expensive targets across threads, large enough that the
/// cursor is uncontended.
const BATCH_SIZE: u32 = 64;

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Measurement week index (0 = CW 15, 2022 in the paper's calendar).
    pub week: u32,
    /// IP version of this sweep.
    pub version: IpVersion,
    /// Worker threads (sharded by domain id; results are identical for
    /// any thread count).
    pub threads: usize,
    /// Path conditions.
    pub conditions: NetworkConditions,
    /// Observer configuration used for the per-connection reports.
    pub observer: ObserverConfig,
    /// Grease filter applied during classification.
    pub grease: GreaseFilter,
    /// Retain the full client qlog trace on every established record
    /// (the paper's Appendix B artifact capture; memory-heavy).
    pub keep_qlogs: bool,
    /// Campaign telemetry registry. Defaults to a disabled (no-op)
    /// registry, so un-instrumented campaigns pay only a branch; pass an
    /// enabled one (or use
    /// [`run_campaign_with_progress`](Scanner::run_campaign_with_progress))
    /// to collect metrics. Telemetry never changes the records produced.
    pub telemetry: Arc<Registry>,
    /// Hierarchical cost profiler. Defaults to a disabled (no-op)
    /// registry so unprofiled campaigns pay only a branch per scope
    /// boundary; pass an enabled one to attribute probe cost to the
    /// static scope tree (see [`quicspin_telemetry::ScopeId`]). The
    /// profiler never changes the records produced, and its
    /// deterministic counts are identical for any thread count.
    pub profiler: Arc<ProfilerRegistry>,
    /// Flight-recorder configuration. Disabled by default; the
    /// [`run_campaign_flight`](Scanner::run_campaign_flight) family
    /// force-enables it. Detection never changes the records produced.
    pub flight: FlightConfig,
    /// Position of the passive on-path observer tap, as a fraction of the
    /// client→server path (0.0 = client-side, 1.0 = server-side). `None`
    /// (the default) runs without a tap; `Some` attaches the observer to
    /// every probe and records its view on each connection record (see
    /// [`crate::observe::ObserverView`]). The tap is passive: the records'
    /// measurement fields are identical with and without it.
    pub tap: Option<f64>,
    /// Scenario-matrix cell id this run belongs to, if it was launched
    /// from a declarative scenario (see [`crate::scenario`]). Echoed
    /// into the manifest's config entries as run provenance, so reports
    /// and `spinctl summary` can show where a run came from. Identical
    /// across thread counts, so the echo never breaks determinism.
    pub scenario_cell: Option<String>,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            week: 0,
            version: IpVersion::V4,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            conditions: NetworkConditions::default(),
            observer: ObserverConfig::default(),
            grease: GreaseFilter::paper(),
            keep_qlogs: false,
            telemetry: Arc::new(Registry::disabled()),
            profiler: Arc::new(ProfilerRegistry::disabled()),
            flight: FlightConfig::default(),
            tap: None,
            scenario_cell: None,
        }
    }
}

impl CampaignConfig {
    /// Echoes this configuration as manifest entries.
    pub fn config_entries(&self) -> Vec<ConfigEntry> {
        let entry = |key: &str, value: String| ConfigEntry {
            key: key.to_string(),
            value,
        };
        let mut entries = vec![
            entry("week", self.week.to_string()),
            entry("ip_version", format!("{:?}", self.version)),
            entry("threads", self.threads.to_string()),
            entry("loss", self.conditions.loss.to_string()),
            entry("reorder", self.conditions.reorder.to_string()),
            entry("jitter_frac", self.conditions.jitter_frac.to_string()),
            entry("keep_qlogs", self.keep_qlogs.to_string()),
        ];
        if self.profiler.is_enabled() {
            entries.push(entry("profile", "true".to_string()));
        }
        if let Some(tap) = self.tap {
            entries.push(entry(
                "tap_vantage_millionths",
                crate::observe::vantage_millionths(tap).to_string(),
            ));
        }
        if let Some(cell) = &self.scenario_cell {
            entries.push(entry("scenario_cell", cell.clone()));
        }
        if self.flight.enabled {
            entries.push(entry("flight_seed", format!("{:#018x}", self.flight.seed)));
            entries.push(entry(
                "flight_retention_budget_bytes",
                self.flight.retention_budget_bytes.to_string(),
            ));
            entries.push(entry(
                "flight_rtt_divergence_threshold",
                self.flight.rtt_divergence_threshold.to_string(),
            ));
            entries.push(entry(
                "flight_baseline_sample_every",
                self.flight.baseline_sample_every.to_string(),
            ));
        }
        entries
    }

    /// Deterministic campaign identifier: week, IP version, flight seed.
    pub fn campaign_id(&self) -> String {
        format!(
            "week{}-{:?}-seed{:016x}",
            self.week, self.version, self.flight.seed
        )
    }
}

/// The result of one sweep: every connection record, ordered by domain.
#[derive(Debug)]
pub struct Campaign {
    /// Week the campaign ran in.
    pub week: u32,
    /// IP version used.
    pub version: IpVersion,
    /// All records (≥ 1 per domain attempted; redirects add more).
    pub records: Vec<ConnectionRecord>,
}

impl Campaign {
    /// Records of established connections only.
    pub fn established(&self) -> impl Iterator<Item = &ConnectionRecord> + Clone {
        self.records.iter().filter(|r| r.outcome == ScanOutcome::Ok)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the campaign produced no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The scanner: a population plus the machinery to sweep it.
#[derive(Debug)]
pub struct Scanner<'p> {
    population: &'p Population,
}

impl<'p> Scanner<'p> {
    /// Creates a scanner over a population.
    pub fn new(population: &'p Population) -> Self {
        Scanner { population }
    }

    /// Scans a single domain (following redirects); returns all records.
    pub fn scan_domain(&self, domain_id: u32, config: &CampaignConfig) -> Vec<ConnectionRecord> {
        let mut records = Vec::new();
        self.scan_domain_into(
            domain_id,
            config,
            &mut ProbeScratch::default(),
            &mut records,
        );
        records
    }

    /// [`scan_domain`](Scanner::scan_domain), appending the records to
    /// `out` and reusing per-worker `scratch` across probes — the form the
    /// campaign engine drives in its hot loop.
    pub fn scan_domain_into(
        &self,
        domain_id: u32,
        config: &CampaignConfig,
        scratch: &mut ProbeScratch,
        out: &mut Vec<ConnectionRecord>,
    ) {
        scratch.flight_inspect = config.flight.enabled;
        scratch.tap_position = config.tap;
        if !config.flight.enabled {
            self.scan_domain_hops(domain_id, config, scratch, out);
            return;
        }
        let start = out.len();
        self.scan_domain_hops(domain_id, config, scratch, out);
        let flagged = scratch.flight.inspect_domain(&config.flight, &out[start..]);
        if flagged > 0 {
            scratch.telemetry.add(Metric::AnomaliesFlagged, flagged);
        }
        // Traces were captured only for inspection: strip them again (the
        // records must match a non-flight campaign exactly) and recycle
        // their event buffers into the lab scratch.
        if !config.keep_qlogs {
            for record in &mut out[start..] {
                if let Some(trace) = record.qlog.take() {
                    scratch.restock_qlog(trace);
                }
            }
        }
    }

    /// The redirect-following probe loop shared by flight and plain scans.
    fn scan_domain_hops(
        &self,
        domain_id: u32,
        config: &CampaignConfig,
        scratch: &mut ProbeScratch,
        out: &mut Vec<ConnectionRecord>,
    ) {
        let d = self.population.domain(domain_id);
        let resolved = match config.version {
            IpVersion::V4 => d.resolved_v4,
            IpVersion::V6 => d.resolved_v6,
        };
        if !resolved {
            out.push(ConnectionRecord::failed(
                d.id,
                d.list,
                d.org,
                config.week,
                config.version,
                ScanOutcome::NotResolved,
            ));
            return;
        }
        let Some(first_plan) =
            self.population
                .plan_connection(domain_id, config.week, config.version, 0)
        else {
            out.push(ConnectionRecord::failed(
                d.id,
                d.list,
                d.org,
                config.week,
                config.version,
                ScanOutcome::NoQuic,
            ));
            return;
        };
        if !self.population.is_reachable(domain_id, config.week) {
            out.push(ConnectionRecord::failed(
                d.id,
                d.list,
                d.org,
                config.week,
                config.version,
                ScanOutcome::Unreachable,
            ));
            return;
        }

        let mut plan = first_plan;
        for depth in 0..=(MAX_REDIRECTS as u32) {
            let (record, response) = probe_connection_scratch(
                d,
                &plan,
                config.week,
                config.version,
                depth,
                &config.conditions,
                config.observer,
                config.grease,
                config.keep_qlogs,
                scratch,
            );
            let follow = record.outcome == ScanOutcome::Ok
                && response.as_ref().is_some_and(|r| r.status.is_redirect())
                && depth < MAX_REDIRECTS as u32;
            out.push(record);
            if !follow {
                break;
            }
            // The redirect target is the canonical page on the same host
            // (a fresh connection, as the paper counts it).
            match self
                .population
                .plan_connection(domain_id, config.week, config.version, depth + 1)
            {
                Some(next) => plan = next,
                None => break,
            }
        }
    }

    /// Runs a full sweep over every domain.
    pub fn run_campaign(&self, config: &CampaignConfig) -> Campaign {
        let n = self.population.len() as u32;
        self.run_campaign_over(config, 0..n)
    }

    /// Runs a sweep over a subrange of domain ids (sharding building
    /// block; also used to scan only QUIC candidates in longitudinal
    /// mode).
    pub fn run_campaign_over(
        &self,
        config: &CampaignConfig,
        ids: std::ops::Range<u32>,
    ) -> Campaign {
        let records = self.run_campaign_fold(
            config,
            ids,
            Vec::new,
            |acc: &mut Vec<ConnectionRecord>, domain: &mut Vec<ConnectionRecord>| {
                acc.append(domain);
            },
            |acc, mut batch| acc.append(&mut batch),
        );
        Campaign {
            week: config.week,
            version: config.version,
            records,
        }
    }

    /// The campaign engine's generic core: sweeps `ids`, folding each
    /// domain's records into an accumulator instead of retaining them.
    ///
    /// Domain ids are claimed in fixed-size batches from a shared atomic
    /// cursor by `config.threads` workers (work stealing, so expensive
    /// targets cannot pile up on one static shard). Each batch folds into
    /// its own accumulator — `fold` is called once per domain, in id
    /// order within the batch, with that domain's records (the callee may
    /// drain the `Vec`; it is cleared before reuse either way) — and the
    /// batch accumulators are `merge`d into `init()` in batch-index
    /// order. The accumulation tree therefore depends only on `ids`,
    /// never on the thread count or claim timing: results are
    /// bit-identical for any `config.threads`, including float folds.
    pub fn run_campaign_fold<A, I, F, M>(
        &self,
        config: &CampaignConfig,
        ids: std::ops::Range<u32>,
        init: I,
        fold: F,
        merge: M,
    ) -> A
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, &mut Vec<ConnectionRecord>) + Sync,
        M: Fn(&mut A, A),
    {
        self.run_campaign_fold_flight(config, ids, init, fold, merge)
            .0
    }

    /// [`run_campaign_fold`](Scanner::run_campaign_fold), additionally
    /// returning the merged (not yet finalized) flight-recorder shard.
    /// With `config.flight` disabled the shard is empty.
    fn run_campaign_fold_flight<A, I, F, M>(
        &self,
        config: &CampaignConfig,
        ids: std::ops::Range<u32>,
        init: I,
        fold: F,
        merge: M,
    ) -> (A, FlightShard)
    where
        A: Send,
        I: Fn() -> A + Sync,
        F: Fn(&mut A, &mut Vec<ConnectionRecord>) + Sync,
        M: Fn(&mut A, A),
    {
        let threads = config.threads.max(1);
        let batches = (ids.end.saturating_sub(ids.start)).div_ceil(BATCH_SIZE);
        note_tap_vantage(config);
        let cursor = AtomicU32::new(0);
        // One worker loop, shared by the sequential and threaded paths so
        // both build the exact same per-batch accumulation tree. Each
        // worker hands back its flight shard; shard merge order does not
        // matter because finalization canonicalizes the contents.
        let worker = |out: &mut Vec<(u32, A)>| -> FlightShard {
            let reg = &*config.telemetry;
            let mut scratch = ProbeScratch::default();
            scratch.telemetry.set_enabled(reg.is_enabled());
            scratch.profiler.set_enabled(config.profiler.is_enabled());
            let mut domain_records: Vec<ConnectionRecord> = Vec::new();
            let mut warm = false;
            loop {
                let batch = cursor.fetch_add(1, Ordering::Relaxed);
                if batch >= batches {
                    break;
                }
                reg.incr(Metric::BatchesClaimed);
                let lo = ids.start + batch * BATCH_SIZE;
                let hi = lo.saturating_add(BATCH_SIZE).min(ids.end);
                let mut acc = init();
                for id in lo..hi {
                    domain_records.clear();
                    // Coarse per-domain counters go straight to the shared
                    // registry so a monitor thread sees live progress;
                    // per-packet stats batch through the worker shard.
                    reg.incr(Metric::ProbesStarted);
                    if warm {
                        scratch.telemetry.incr(Metric::ScratchReuseHits);
                    } else {
                        warm = true;
                    }
                    let t = scratch.telemetry.timer();
                    self.scan_domain_into(id, config, &mut scratch, &mut domain_records);
                    scratch.telemetry.record_since(Stage::Probe, t);
                    note_domain_records(reg, &domain_records);
                    let p = scratch.profiler.begin();
                    fold(&mut acc, &mut domain_records);
                    scratch.profiler.end(ScopeId::RecordIntern, p);
                }
                out.push((batch, acc));
            }
            config.profiler.absorb(&scratch.profiler);
            reg.absorb(&scratch.telemetry);
            reg.incr(Metric::WorkersFinished);
            std::mem::take(&mut scratch.flight)
        };

        let (mut tagged, flight): (Vec<(u32, A)>, FlightShard) = if threads == 1 || batches <= 1 {
            let mut out = Vec::new();
            let shard = worker(&mut out);
            (out, shard)
        } else {
            let workers = threads.min(batches as usize);
            let mut parts: Vec<Vec<(u32, A)>> = Vec::new();
            let mut flight = FlightShard::default();
            std::thread::scope(|scope| {
                let handles: Vec<_> = (0..workers)
                    .map(|_| {
                        scope.spawn(|| {
                            let mut out = Vec::new();
                            let shard = worker(&mut out);
                            (out, shard)
                        })
                    })
                    .collect();
                for handle in handles {
                    let (out, shard) = handle.join().expect("scan worker panicked");
                    parts.push(out);
                    flight.merge(shard);
                }
            });
            (parts.into_iter().flatten().collect(), flight)
        };

        tagged.sort_by_key(|&(batch, _)| batch);
        let mut acc = init();
        for (_, batch_acc) in tagged {
            merge(&mut acc, batch_acc);
        }
        (acc, flight)
    }

    /// Runs a full sweep in streamed, bounded-memory mode: every finished
    /// scheduler batch reaches `sink` as a columnar [`RecordBatch`], in
    /// strict batch-index order, and is dropped right after — the full
    /// record vector never exists. Aggregates, time series and flight
    /// artifacts folded from the stream are byte-identical to the
    /// materializing path for any worker-thread count, because the sink
    /// sees exactly the per-batch merge sequence `run_campaign` uses.
    ///
    /// `budget_bytes` is the high-water byte budget for resident columnar
    /// records (finished batches awaiting the in-order merge plus the one
    /// being folded); `0` means unbounded. Workers stop claiming new
    /// batches while the budget is exhausted, so the overshoot is bounded
    /// by one in-flight batch per worker. Peak residency is reported on
    /// the [`GaugeId::PeakRecordBytes`] gauge, the merge-queue depth on
    /// [`GaugeId::EventQueueDepth`], and the configured budget on
    /// [`GaugeId::RecordBudgetBytes`].
    pub fn run_campaign_streamed<S>(&self, config: &CampaignConfig, budget_bytes: usize, sink: S)
    where
        S: FnMut(&RecordBatch),
    {
        let n = self.population.len() as u32;
        self.run_campaign_streamed_over(config, 0..n, budget_bytes, sink);
    }

    /// [`run_campaign_streamed`](Scanner::run_campaign_streamed) with the
    /// flight recorder armed; returns the finalized recording (records
    /// streamed to `sink` match a non-flight run exactly, as in
    /// [`run_campaign_flight`](Scanner::run_campaign_flight)).
    pub fn run_campaign_streamed_flight<S>(
        &self,
        config: &CampaignConfig,
        budget_bytes: usize,
        sink: S,
    ) -> FlightRecording
    where
        S: FnMut(&RecordBatch),
    {
        let mut config = config.clone();
        config.flight.enabled = true;
        let n = self.population.len() as u32;
        let shard = self.run_campaign_streamed_over(&config, 0..n, budget_bytes, sink);
        self.finalize_flight(&config, shard)
    }

    /// The streamed engine's core: sweeps `ids` and hands each finished
    /// batch to `sink` in batch-index order, returning the merged (not
    /// yet finalized) flight shard. See
    /// [`run_campaign_streamed`](Scanner::run_campaign_streamed).
    pub fn run_campaign_streamed_over<S>(
        &self,
        config: &CampaignConfig,
        ids: std::ops::Range<u32>,
        budget_bytes: usize,
        mut sink: S,
    ) -> FlightShard
    where
        S: FnMut(&RecordBatch),
    {
        let threads = config.threads.max(1);
        let batches = (ids.end.saturating_sub(ids.start)).div_ceil(BATCH_SIZE);
        let reg = &*config.telemetry;
        if reg.is_enabled() {
            reg.gauge_set(GaugeId::RecordBudgetBytes, budget_bytes as u64);
        }
        note_tap_vantage(config);
        let cursor = AtomicU32::new(0);

        // Scans one claimed batch into `out`. Mirrors the fold engine's
        // inner loop exactly (same counters, same stage spans), so the
        // streamed and materializing paths produce identical manifests up
        // to machine-shape gauges.
        let produce = |batch: u32,
                       scratch: &mut ProbeScratch,
                       warm: &mut bool,
                       domain_records: &mut Vec<ConnectionRecord>,
                       out: &mut RecordBatch| {
            let reg = &*config.telemetry;
            reg.incr(Metric::BatchesClaimed);
            let lo = ids.start + batch * BATCH_SIZE;
            let hi = lo.saturating_add(BATCH_SIZE).min(ids.end);
            for id in lo..hi {
                domain_records.clear();
                reg.incr(Metric::ProbesStarted);
                if *warm {
                    scratch.telemetry.incr(Metric::ScratchReuseHits);
                } else {
                    *warm = true;
                }
                let t = scratch.telemetry.timer();
                self.scan_domain_into(id, config, scratch, domain_records);
                scratch.telemetry.record_since(Stage::Probe, t);
                note_domain_records(reg, domain_records);
                let p = scratch.profiler.begin();
                out.push_group(domain_records);
                scratch.profiler.end(ScopeId::RecordIntern, p);
            }
        };

        if threads == 1 || batches <= 1 {
            // Sequential: produce and fold each batch in place, reusing
            // one columnar scratch batch across the whole sweep.
            let mut scratch = ProbeScratch::default();
            scratch.telemetry.set_enabled(reg.is_enabled());
            scratch.profiler.set_enabled(config.profiler.is_enabled());
            let mut warm = false;
            let mut domain_records: Vec<ConnectionRecord> = Vec::new();
            let mut out = RecordBatch::new();
            loop {
                let batch = cursor.fetch_add(1, Ordering::Relaxed);
                if batch >= batches {
                    break;
                }
                out.clear();
                produce(
                    batch,
                    &mut scratch,
                    &mut warm,
                    &mut domain_records,
                    &mut out,
                );
                if reg.is_enabled() {
                    reg.gauge_max(GaugeId::PeakRecordBytes, out.approx_bytes() as u64);
                    reg.gauge_max(GaugeId::EventQueueDepth, 1);
                }
                sink(&out);
            }
            config.profiler.absorb(&scratch.profiler);
            reg.absorb(&scratch.telemetry);
            reg.incr(Metric::WorkersFinished);
            return std::mem::take(&mut scratch.flight);
        }

        // Threaded: workers publish finished batches into a shared
        // in-order merge queue; the calling thread is the consumer,
        // draining strictly by batch index. A batch stays accounted
        // against the budget until the sink has folded it. Workers block
        // only *before claiming new work*, never between claim and
        // publish — the batch the consumer waits for next is therefore
        // always either unclaimed (in which case nothing is resident and
        // the gate is open) or already on its way, so the budget cannot
        // deadlock the pipeline.
        struct StreamShared {
            pending: BTreeMap<u32, (RecordBatch, usize)>,
            resident: usize,
        }
        let shared = Mutex::new(StreamShared {
            pending: BTreeMap::new(),
            resident: 0,
        });
        let ready = Condvar::new();
        let space = Condvar::new();

        let worker = || -> FlightShard {
            let reg = &*config.telemetry;
            let mut scratch = ProbeScratch::default();
            scratch.telemetry.set_enabled(reg.is_enabled());
            scratch.profiler.set_enabled(config.profiler.is_enabled());
            let mut warm = false;
            let mut domain_records: Vec<ConnectionRecord> = Vec::new();
            loop {
                if budget_bytes > 0 {
                    let mut s = shared.lock().unwrap();
                    while s.resident >= budget_bytes {
                        s = space.wait(s).unwrap();
                    }
                }
                let batch = cursor.fetch_add(1, Ordering::Relaxed);
                if batch >= batches {
                    break;
                }
                let mut out = RecordBatch::new();
                produce(
                    batch,
                    &mut scratch,
                    &mut warm,
                    &mut domain_records,
                    &mut out,
                );
                let bytes = out.approx_bytes();
                // Mailbox publish cost (lock + in-order queue handoff) is
                // threaded-streamed-only machinery: the scope is marked
                // non-deterministic and never reaches `profile.json`.
                let p = scratch.profiler.begin();
                let mut s = shared.lock().unwrap();
                s.resident += bytes;
                s.pending.insert(batch, (out, bytes));
                if reg.is_enabled() {
                    reg.gauge_max(GaugeId::PeakRecordBytes, s.resident as u64);
                    reg.gauge_max(GaugeId::EventQueueDepth, s.pending.len() as u64);
                }
                drop(s);
                ready.notify_one();
                scratch.profiler.end(ScopeId::BatchMailbox, p);
            }
            config.profiler.absorb(&scratch.profiler);
            reg.absorb(&scratch.telemetry);
            reg.incr(Metric::WorkersFinished);
            std::mem::take(&mut scratch.flight)
        };

        let workers = threads.min(batches as usize);
        let mut flight = FlightShard::default();
        std::thread::scope(|scope| {
            let handles: Vec<_> = (0..workers).map(|_| scope.spawn(worker)).collect();
            for next in 0..batches {
                let (batch, bytes) = {
                    let mut s = shared.lock().unwrap();
                    loop {
                        if let Some(entry) = s.pending.remove(&next) {
                            break entry;
                        }
                        s = ready.wait(s).unwrap();
                    }
                };
                sink(&batch);
                let mut s = shared.lock().unwrap();
                s.resident -= bytes;
                drop(s);
                space.notify_all();
            }
            for handle in handles {
                flight.merge(handle.join().expect("stream worker panicked"));
            }
        });
        flight
    }

    /// Runs a full sweep with the flight recorder armed: every probe is
    /// inspected for anomalies and flagged probes' qlog traces are
    /// retained (bounded by `config.flight.retention_budget_bytes`).
    /// The records are identical to a plain [`run_campaign`]
    /// (inspection-only traces are stripped again unless `keep_qlogs`),
    /// and the recording is deterministic for any thread count.
    ///
    /// [`run_campaign`]: Scanner::run_campaign
    pub fn run_campaign_flight(&self, config: &CampaignConfig) -> (Campaign, FlightRecording) {
        let n = self.population.len() as u32;
        self.run_campaign_flight_over(config, 0..n)
    }

    /// [`run_campaign_flight`](Scanner::run_campaign_flight) over a
    /// subrange of domain ids.
    pub fn run_campaign_flight_over(
        &self,
        config: &CampaignConfig,
        ids: std::ops::Range<u32>,
    ) -> (Campaign, FlightRecording) {
        let mut config = config.clone();
        config.flight.enabled = true;
        let (records, shard) = self.run_campaign_fold_flight(
            &config,
            ids,
            Vec::new,
            |acc: &mut Vec<ConnectionRecord>, domain: &mut Vec<ConnectionRecord>| {
                acc.append(domain);
            },
            |acc, mut batch| acc.append(&mut batch),
        );
        let recording = self.finalize_flight(&config, shard);
        (
            Campaign {
                week: config.week,
                version: config.version,
                records,
            },
            recording,
        )
    }

    /// Finalizes a merged flight shard into a recording and notes the
    /// retention metrics. The index must be byte-identical for any worker
    /// count, so the config echo drops the one execution-environment
    /// entry; the run manifest still records it.
    fn finalize_flight(&self, config: &CampaignConfig, shard: FlightShard) -> FlightRecording {
        let index_config = config
            .config_entries()
            .into_iter()
            .filter(|e| e.key != "threads")
            .collect();
        let recording =
            FlightRecording::new(shard, &config.flight, config.campaign_id(), index_config);
        let reg = &*config.telemetry;
        if reg.is_enabled() {
            reg.add(
                Metric::FlightTracesRetained,
                recording.retained().len() as u64,
            );
            reg.add(Metric::FlightTracesEvicted, recording.evicted_traces());
            reg.add(Metric::FlightTraceBytesRetained, recording.retained_bytes());
        }
        recording
    }

    /// Runs a full sweep with live progress reporting and a run manifest.
    ///
    /// A monitor thread samples the campaign registry every
    /// `progress_every` and hands `sink` one status line per tick
    /// (`probes/sec`, ETA, error rate — see
    /// [`ProgressSnapshot::render`](quicspin_telemetry::ProgressSnapshot::render)),
    /// followed by the final human-readable summary table. If the config's
    /// registry is disabled, an enabled one is substituted for this run so
    /// the manifest is always populated. Returns the campaign plus the
    /// [`RunManifest`] (write it next to the other artifacts with
    /// [`write_run_manifest`](crate::artifacts::write_run_manifest)).
    pub fn run_campaign_with_progress<F>(
        &self,
        config: &CampaignConfig,
        progress_every: Duration,
        sink: F,
    ) -> (Campaign, RunManifest)
    where
        F: FnMut(&str) + Send,
    {
        self.run_with_progress_impl(config, progress_every, sink, |scanner, cfg| {
            scanner.run_campaign(cfg)
        })
    }

    /// [`run_campaign_flight`](Scanner::run_campaign_flight) with the
    /// same live progress reporting and run manifest as
    /// [`run_campaign_with_progress`](Scanner::run_campaign_with_progress).
    /// Write the recording next to `metrics.json` with
    /// [`write_flight_recording`](crate::artifacts::write_flight_recording).
    pub fn run_campaign_flight_with_progress<F>(
        &self,
        config: &CampaignConfig,
        progress_every: Duration,
        sink: F,
    ) -> (Campaign, FlightRecording, RunManifest)
    where
        F: FnMut(&str) + Send,
    {
        let ((campaign, recording), manifest) =
            self.run_with_progress_impl(config, progress_every, sink, |scanner, cfg| {
                scanner.run_campaign_flight(cfg)
            });
        (campaign, recording, manifest)
    }

    /// The streamed, bounded-memory campaign with the flight recorder
    /// armed, live progress reporting, and a run manifest — the full
    /// operator path without ever materializing the record vector.
    /// Columnar batches reach `batch_sink` on the calling thread, in
    /// deterministic batch order; `budget_bytes` caps resident record
    /// bytes as in [`run_campaign_streamed`](Scanner::run_campaign_streamed)
    /// (`0` = unbounded).
    pub fn run_campaign_streamed_flight_with_progress<S, F>(
        &self,
        config: &CampaignConfig,
        budget_bytes: usize,
        progress_every: Duration,
        progress: F,
        batch_sink: S,
    ) -> (FlightRecording, RunManifest)
    where
        S: FnMut(&RecordBatch),
        F: FnMut(&str) + Send,
    {
        let mut config = config.clone();
        config.flight.enabled = true;
        self.run_with_progress_impl(&config, progress_every, progress, move |scanner, cfg| {
            let n = scanner.population.len() as u32;
            let shard = scanner.run_campaign_streamed_over(cfg, 0..n, budget_bytes, batch_sink);
            scanner.finalize_flight(cfg, shard)
        })
    }

    /// Shared monitor-thread scaffolding for the `*_with_progress` family.
    fn run_with_progress_impl<F, T>(
        &self,
        config: &CampaignConfig,
        progress_every: Duration,
        mut sink: F,
        run: impl FnOnce(&Scanner<'p>, &CampaignConfig) -> T,
    ) -> (T, RunManifest)
    where
        F: FnMut(&str) + Send,
    {
        let mut config = config.clone();
        if !config.telemetry.is_enabled() {
            config.telemetry = Arc::new(Registry::new());
        }
        let reg = Arc::clone(&config.telemetry);
        let total = self.population.len() as u64;
        reg.gauge_set(GaugeId::CampaignSize, total);
        reg.gauge_set(GaugeId::WorkerThreads, config.threads.max(1) as u64);
        let progress_every = progress_every.max(Duration::from_millis(1));

        let started = Instant::now();
        let stop = AtomicBool::new(false);
        let (result, live) = std::thread::scope(|scope| {
            let monitor_reg = Arc::clone(&reg);
            let stop_flag = &stop;
            let sink_ref = &mut sink;
            let monitor = scope.spawn(move || {
                // The live series samples the registry on each tick: wall
                // clock, so display-only — the persisted timeseries.json is
                // rebuilt deterministically from the record stream instead
                // (see `crate::timeseries::build_timeseries`).
                let mut live = TimeSeries::new(DEFAULT_TIMESERIES_CAPACITY);
                let poll = Duration::from_millis(10).min(progress_every);
                loop {
                    // Sleep in small slices so shutdown is prompt.
                    let wake = Instant::now() + progress_every;
                    while Instant::now() < wake {
                        if stop_flag.load(Ordering::Relaxed) {
                            return live;
                        }
                        std::thread::sleep(poll);
                    }
                    if stop_flag.load(Ordering::Relaxed) {
                        return live;
                    }
                    let snap = monitor_reg.progress(total, elapsed_ns(started));
                    live.push(live_point(&monitor_reg, &snap));
                    sink_ref(&snap.render());
                }
            });
            let result = run(self, &config);
            stop.store(true, Ordering::Relaxed);
            let live = monitor.join().expect("progress monitor panicked");
            (result, live)
        });

        let manifest = reg.manifest(config.config_entries(), elapsed_ns(started));
        sink(&reg.progress(total, manifest.wall_time_ns).render());
        if let Some(trend) = render_trend(&live) {
            sink(&trend);
        }
        sink(&manifest.summary_table());
        (result, manifest)
    }
}

/// Samples the registry into one live (wall-clock) time-series point.
fn live_point(reg: &Registry, snap: &ProgressSnapshot) -> TimePoint {
    let handshake = reg.stage_histogram(Stage::Handshake).to_shard();
    let probe = reg.stage_histogram(Stage::Probe).to_shard();
    TimePoint {
        seq: 0, // assigned by TimeSeries on admission
        probes: snap.completed,
        records: reg.counter(Metric::RecordsProduced),
        errors: snap.errored,
        redirects: reg.counter(Metric::RedirectsFollowed),
        elapsed_us: snap.elapsed_ns / 1_000,
        queue_high_water: reg.gauge(GaugeId::NetsimQueueHighWater),
        handshake_p50_us: handshake.quantile(0.50) / 1_000,
        handshake_p99_us: handshake.quantile(0.99) / 1_000,
        total_p50_us: probe.quantile(0.50) / 1_000,
        total_p99_us: probe.quantile(0.99) / 1_000,
        mix: Vec::new(),
    }
}

/// One summary line of the live monitor series: how the average
/// throughput and error rate moved across the sweep.
fn render_trend(live: &TimeSeries) -> Option<String> {
    let first = live.points().iter().find(|p| p.probes > 0)?;
    let last = live.points().last()?;
    if last.seq <= first.seq {
        return None;
    }
    Some(format!(
        "throughput trend: {} samples | {:.1} -> {:.1} probes/s | errors {:.1}% -> {:.1}%",
        live.len(),
        first.probes_per_sec(),
        last.probes_per_sec(),
        100.0 * first.error_rate(),
        100.0 * last.error_rate(),
    ))
}

/// Notes the configured tap position on the vantage gauge (once per
/// sweep; untapped campaigns leave the gauge at zero).
fn note_tap_vantage(config: &CampaignConfig) {
    if let Some(tap) = config.tap {
        if config.telemetry.is_enabled() {
            config.telemetry.gauge_set(
                GaugeId::ObserverVantageMillionths,
                crate::observe::vantage_millionths(tap) as u64,
            );
        }
    }
}

/// Folds one scanned domain's outcome into the registry's live counters.
fn note_domain_records(reg: &Registry, records: &[ConnectionRecord]) {
    if !reg.is_enabled() {
        return;
    }
    reg.incr(Metric::ProbesCompleted);
    reg.add(Metric::RecordsProduced, records.len() as u64);
    let mut errored = false;
    for r in records {
        if r.redirect_depth > 0 {
            reg.incr(Metric::RedirectsFollowed);
        }
        errored |= matches!(
            r.outcome,
            ScanOutcome::HandshakeFailed | ScanOutcome::Unreachable
        );
    }
    if errored {
        reg.incr(Metric::ProbesErrored);
    }
}

/// Nanoseconds since `start`, saturated to `u64::MAX`.
fn elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_webpop::PopulationConfig;

    fn tiny_pop() -> Population {
        Population::generate(PopulationConfig {
            seed: 42,
            toplist_domains: 100,
            zone_domains: 900,
        })
    }

    fn clean_config() -> CampaignConfig {
        CampaignConfig {
            conditions: NetworkConditions::clean(),
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_covers_every_domain() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        use std::collections::HashSet;
        let ids: HashSet<u32> = campaign.records.iter().map(|r| r.domain_id).collect();
        assert_eq!(ids.len(), pop.len());
        assert!(!campaign.is_empty());
        assert!(campaign.len() >= pop.len());
    }

    #[test]
    fn outcomes_match_population_flags() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        for r in &campaign.records {
            let d = pop.domain(r.domain_id);
            match r.outcome {
                ScanOutcome::NotResolved => assert!(!d.resolved_v4),
                ScanOutcome::NoQuic => assert!(d.resolved_v4 && !d.quic),
                ScanOutcome::Ok | ScanOutcome::HandshakeFailed => assert!(d.quic),
                ScanOutcome::Unreachable => assert!(d.quic),
            }
        }
    }

    #[test]
    fn progress_campaign_counts_every_probe() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let mut lines: Vec<String> = Vec::new();
        let (campaign, manifest) =
            scanner.run_campaign_with_progress(&clean_config(), Duration::from_millis(1), |line| {
                lines.push(line.to_string())
            });

        // Telemetry must not perturb results: same records as a plain run.
        let plain = scanner.run_campaign(&clean_config());
        assert_eq!(
            serde_json::to_string(&campaign.records).unwrap(),
            serde_json::to_string(&plain.records).unwrap()
        );

        // Every domain probed exactly once, completions match.
        let total = pop.len() as u64;
        assert_eq!(manifest.counter("probes_started"), total);
        assert_eq!(manifest.counter("probes_completed"), total);
        assert_eq!(manifest.counter("campaign_size"), total);
        assert_eq!(manifest.counter("records_produced"), campaign.len() as u64);
        let errored = campaign
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    ScanOutcome::HandshakeFailed | ScanOutcome::Unreachable
                )
            })
            .count() as u64;
        assert_eq!(manifest.counter("probes_errored"), errored);

        // QUIC and netsim counters flowed through the shards.
        assert!(manifest.counter("handshakes_completed") > 0);
        assert!(manifest.counter("packets_sent") > 0);
        assert!(manifest.counter("packets_received") > 0);
        assert!(manifest.counter("spin_transitions_observed") > 0);
        assert!(manifest.counter("netsim_queue_high_water") > 0);
        assert!(manifest.counter("scratch_reuse_hits") > 0);

        // Per-stage histograms are populated.
        let probe_stage = manifest.stage("probe").expect("probe stage");
        assert_eq!(probe_stage.count, total);
        assert!(probe_stage.p50_ns > 0);
        assert!(manifest.stage("handshake").unwrap().count > 0);
        assert!(manifest.stage("spin_extraction").unwrap().count > 0);
        assert!(manifest.stage("classify").unwrap().count > 0);

        // The sink saw the final progress line and the summary table.
        assert!(lines.iter().any(|l| l.contains("probes/s")));
        assert!(lines.iter().any(|l| l.contains("campaign run manifest")));
    }

    #[test]
    fn monitor_ticks_report_monotonic_progress() {
        // Each progress line is a registry snapshot taken by the monitor
        // thread; completions only ever increase, so the reported counts
        // must be non-decreasing and end on the full population (the final
        // snapshot is emitted after the sweep joins).
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let mut lines: Vec<String> = Vec::new();
        scanner.run_campaign_with_progress(&clean_config(), Duration::from_millis(1), |line| {
            lines.push(line.to_string())
        });
        let counts: Vec<u64> = lines
            .iter()
            .filter_map(|l| l.strip_prefix("progress "))
            .filter_map(|rest| rest.split('/').next()?.parse().ok())
            .collect();
        assert!(!counts.is_empty());
        for pair in counts.windows(2) {
            assert!(
                pair[0] <= pair[1],
                "monitor ticks regressed: {} then {}",
                pair[0],
                pair[1]
            );
        }
        assert_eq!(*counts.last().unwrap(), pop.len() as u64);
    }

    #[test]
    fn disabled_registry_records_nothing() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        let config = clean_config();
        assert!(!config.telemetry.is_enabled());
        let manifest = config.telemetry.manifest(config.config_entries(), 0);
        assert_eq!(manifest.counter("probes_started"), 0);
        assert!(!campaign.is_empty());
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let mut one = clean_config();
        one.threads = 1;
        let mut four = clean_config();
        four.threads = 4;
        let a = scanner.run_campaign(&one);
        let b = scanner.run_campaign(&four);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.domain_id, y.domain_id);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn thread_count_is_bit_identical() {
        // Stronger than record-field spot checks: the serialized form of
        // every record — report, qlog, host, everything — must match
        // byte-for-byte between 1 and 8 workers.
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let config = |threads| CampaignConfig {
            threads,
            keep_qlogs: true,
            ..clean_config()
        };
        let one = scanner.run_campaign(&config(1));
        let eight = scanner.run_campaign(&config(8));
        assert_eq!(one.len(), eight.len());
        for (x, y) in one.records.iter().zip(&eight.records) {
            assert_eq!(
                serde_json::to_string(x).unwrap(),
                serde_json::to_string(y).unwrap()
            );
        }
    }

    #[test]
    fn tapped_campaign_is_bit_identical_across_threads_and_passive() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let tapped = |threads| CampaignConfig {
            threads,
            tap: Some(0.25),
            ..clean_config()
        };
        let one = scanner.run_campaign(&tapped(1));
        let four = scanner.run_campaign(&tapped(4));
        assert_eq!(one.len(), four.len());
        for (x, y) in one.records.iter().zip(&four.records) {
            assert_eq!(
                serde_json::to_string(x).unwrap(),
                serde_json::to_string(y).unwrap()
            );
        }
        // Every established record carries the observer's view; the tap
        // itself never perturbs the client-side measurement.
        let untapped = scanner.run_campaign(&clean_config());
        let mut measured = 0usize;
        for (t, u) in one.records.iter().zip(&untapped.records) {
            assert_eq!(t.report, u.report);
            assert_eq!(t.observer.is_some(), t.outcome == ScanOutcome::Ok);
            assert!(u.observer.is_none());
            if let Some(view) = &t.observer {
                assert_eq!(view.vantage_millionths, 250_000);
                measured += usize::from(view.stats.measurable);
            }
        }
        assert!(measured > 0, "some tapped flows must be measurable");
    }

    #[test]
    fn work_stealing_visits_every_id_exactly_once_in_order() {
        // Drive the fold engine directly: each fold call is one domain, so
        // accumulating ids proves exactly-once coverage, and the merged
        // order must be ascending regardless of which worker stole what.
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let cfg = CampaignConfig {
            threads: 8,
            ..clean_config()
        };
        // An offset, non-multiple-of-BATCH_SIZE range exercises the edge
        // batches too.
        let ids = 3..pop.len() as u32 - 7;
        let visited = scanner.run_campaign_fold(
            &cfg,
            ids.clone(),
            Vec::new,
            |acc: &mut Vec<u32>, records: &mut Vec<ConnectionRecord>| {
                assert!(!records.is_empty(), "every domain yields >= 1 record");
                acc.push(records[0].domain_id);
            },
            |acc, mut batch| acc.append(&mut batch),
        );
        assert_eq!(visited, ids.collect::<Vec<u32>>());
    }

    #[test]
    fn fold_engine_handles_empty_and_tiny_ranges() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let count = |ids: std::ops::Range<u32>| {
            scanner.run_campaign_fold(
                &clean_config(),
                ids,
                || 0usize,
                |acc: &mut usize, _records: &mut Vec<ConnectionRecord>| *acc += 1,
                |acc, batch| *acc += batch,
            )
        };
        assert_eq!(count(5..5), 0);
        assert_eq!(count(5..6), 1);
        assert_eq!(count(0..65), 65);
    }

    #[test]
    fn streamed_batches_match_materialized_records_in_order() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let cfg = CampaignConfig {
            threads: 4,
            ..clean_config()
        };
        let materialized = scanner.run_campaign(&cfg);
        let mut rows = Vec::new();
        scanner.run_campaign_streamed(&cfg, 0, |batch| {
            for group in batch.groups() {
                rows.extend(group);
            }
        });
        assert_eq!(rows.len(), materialized.len());
        for (row, record) in rows.iter().zip(&materialized.records) {
            assert_eq!(*row, crate::batch::RecordRow::of(record));
        }
    }

    #[test]
    fn streamed_budget_bounds_resident_bytes() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let reg = Arc::new(Registry::new());
        let cfg = CampaignConfig {
            threads: 4,
            telemetry: Arc::clone(&reg),
            ..clean_config()
        };
        let budget = 16 * 1024usize;
        let mut batches = 0u32;
        let mut max_batch = 0usize;
        scanner.run_campaign_streamed(&cfg, budget, |batch| {
            batches += 1;
            max_batch = max_batch.max(batch.approx_bytes());
        });
        assert_eq!(batches, (pop.len() as u32).div_ceil(BATCH_SIZE));
        assert_eq!(reg.gauge(GaugeId::RecordBudgetBytes), budget as u64);
        assert!(reg.gauge(GaugeId::EventQueueDepth) >= 1);
        let peak = reg.gauge(GaugeId::PeakRecordBytes) as usize;
        assert!(peak > 0);
        // Workers only stop claiming *new* work when the budget is
        // exhausted, so the peak can overshoot by at most one in-flight
        // batch per worker.
        assert!(
            peak <= budget + 4 * max_batch,
            "peak {peak} exceeds budget {budget} plus 4x{max_batch} slack"
        );
    }

    #[test]
    fn streamed_counters_match_materializing_path() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let run = |streamed: bool| {
            let reg = Arc::new(Registry::new());
            let cfg = CampaignConfig {
                threads: 4,
                telemetry: Arc::clone(&reg),
                ..clean_config()
            };
            if streamed {
                scanner.run_campaign_streamed(&cfg, 8 * 1024, |_| {});
            } else {
                scanner.run_campaign(&cfg);
            }
            serde_json::to_string_pretty(
                &reg.manifest(cfg.config_entries(), 0).deterministic_view(),
            )
            .unwrap()
        };
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn profiled_campaign_counts_are_thread_count_invariant() {
        // The deterministic half of the profile (enters / allocs /
        // queue-ops per scope) is a pure function of the record stream,
        // so the exported doc must serialize identically for 1 and 4
        // workers on both the materializing and streamed paths.
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let doc = |threads: usize, streamed: bool| {
            let prof = Arc::new(ProfilerRegistry::new());
            let cfg = CampaignConfig {
                threads,
                tap: Some(0.25),
                profiler: Arc::clone(&prof),
                ..clean_config()
            };
            if streamed {
                scanner.run_campaign_streamed(&cfg, 8 * 1024, |_| {});
            } else {
                scanner.run_campaign(&cfg);
            }
            serde_json::to_string_pretty(&prof.snapshot().doc()).unwrap()
        };
        let one = doc(1, false);
        assert_eq!(one, doc(4, false));
        assert_eq!(one, doc(1, true));
        assert_eq!(one, doc(4, true));
        let parsed: quicspin_telemetry::ProfileDoc = serde_json::from_str(&one).unwrap();
        // Only domains that resolve and speak QUIC reach the probe scope;
        // the record-intern sink fires once per domain regardless.
        let probes = parsed.row("probe").expect("probe scope").enters;
        assert!(probes > 0 && probes < pop.len() as u64);
        assert_eq!(
            parsed.row("record_intern").unwrap().enters,
            pop.len() as u64
        );
        assert!(parsed.row("probe/lab/wheel_push").unwrap().queue_ops > 0);
        assert!(parsed.row("probe/observer_fold/samples").unwrap().enters > 0);
    }

    #[test]
    fn disabled_profiler_stays_empty_and_unechoed() {
        let pop = tiny_pop();
        let cfg = clean_config();
        Scanner::new(&pop).run_campaign(&cfg);
        assert!(!cfg.profiler.is_enabled());
        let snap = cfg.profiler.snapshot();
        assert!(snap.doc().scopes.iter().all(|s| s.enters == 0));
        assert!(!cfg.config_entries().iter().any(|e| e.key == "profile"));
    }

    #[test]
    fn redirects_produce_extra_connections() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        let with_redirect: Vec<_> = campaign
            .records
            .iter()
            .filter(|r| r.redirect_depth > 0)
            .collect();
        assert!(
            !with_redirect.is_empty(),
            "some redirect chains must occur at REDIRECT_RATE"
        );
        for r in &with_redirect {
            assert!(pop.domain(r.domain_id).redirects);
        }
    }

    #[test]
    fn established_iterator_filters() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        assert!(campaign
            .established()
            .all(|r| r.outcome == ScanOutcome::Ok && r.report.is_some()));
    }

    #[test]
    fn v6_campaign_scans_fewer_hosts() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let v4 = scanner.run_campaign(&clean_config());
        let mut v6_cfg = clean_config();
        v6_cfg.version = IpVersion::V6;
        let v6 = scanner.run_campaign(&v6_cfg);
        let ok4 = v4.established().count();
        let ok6 = v6.established().count();
        assert!(ok6 < ok4, "v6 ({ok6}) must be rarer than v4 ({ok4})");
    }

    #[test]
    fn weeks_vary_spin_behaviour() {
        let pop = Population::generate(PopulationConfig {
            seed: 7,
            toplist_domains: 0,
            zone_domains: 3_000,
        });
        let scanner = Scanner::new(&pop);
        let spin_count = |week: u32| {
            let cfg = CampaignConfig {
                week,
                ..clean_config()
            };
            scanner
                .run_campaign(&cfg)
                .records
                .iter()
                .filter(|r| r.has_spin_activity())
                .count()
        };
        let a = spin_count(0);
        let b = spin_count(5);
        // Churn and the 1-in-16 rule make weekly counts fluctuate; we only
        // require both weeks to see some spinning (the population has
        // spin-enabled hosts with high probability at this size).
        assert!(a > 0 && b > 0, "weeks 0/5 spin counts: {a}/{b}");
    }
}
