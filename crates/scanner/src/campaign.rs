//! Full-population campaigns: one measurement sweep over every target,
//! sharded across threads.

use crate::probe::{probe_connection_with_qlog, NetworkConditions};
use crate::record::{ConnectionRecord, ScanOutcome};
use quicspin_core::{GreaseFilter, ObserverConfig};
use quicspin_h3::MAX_REDIRECTS;
use quicspin_webpop::{IpVersion, Population};

/// Campaign parameters.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Measurement week index (0 = CW 15, 2022 in the paper's calendar).
    pub week: u32,
    /// IP version of this sweep.
    pub version: IpVersion,
    /// Worker threads (sharded by domain id; results are identical for
    /// any thread count).
    pub threads: usize,
    /// Path conditions.
    pub conditions: NetworkConditions,
    /// Observer configuration used for the per-connection reports.
    pub observer: ObserverConfig,
    /// Grease filter applied during classification.
    pub grease: GreaseFilter,
    /// Retain the full client qlog trace on every established record
    /// (the paper's Appendix B artifact capture; memory-heavy).
    pub keep_qlogs: bool,
}

impl Default for CampaignConfig {
    fn default() -> Self {
        CampaignConfig {
            week: 0,
            version: IpVersion::V4,
            threads: std::thread::available_parallelism().map_or(4, |n| n.get()),
            conditions: NetworkConditions::default(),
            observer: ObserverConfig::default(),
            grease: GreaseFilter::paper(),
            keep_qlogs: false,
        }
    }
}

/// The result of one sweep: every connection record, ordered by domain.
#[derive(Debug)]
pub struct Campaign {
    /// Week the campaign ran in.
    pub week: u32,
    /// IP version used.
    pub version: IpVersion,
    /// All records (≥ 1 per domain attempted; redirects add more).
    pub records: Vec<ConnectionRecord>,
}

impl Campaign {
    /// Records of established connections only.
    pub fn established(&self) -> impl Iterator<Item = &ConnectionRecord> + Clone {
        self.records
            .iter()
            .filter(|r| r.outcome == ScanOutcome::Ok)
    }

    /// Number of records.
    pub fn len(&self) -> usize {
        self.records.len()
    }

    /// Whether the campaign produced no records.
    pub fn is_empty(&self) -> bool {
        self.records.is_empty()
    }
}

/// The scanner: a population plus the machinery to sweep it.
#[derive(Debug)]
pub struct Scanner<'p> {
    population: &'p Population,
}

impl<'p> Scanner<'p> {
    /// Creates a scanner over a population.
    pub fn new(population: &'p Population) -> Self {
        Scanner { population }
    }

    /// Scans a single domain (following redirects); returns all records.
    pub fn scan_domain(&self, domain_id: u32, config: &CampaignConfig) -> Vec<ConnectionRecord> {
        let d = self.population.domain(domain_id);
        let resolved = match config.version {
            IpVersion::V4 => d.resolved_v4,
            IpVersion::V6 => d.resolved_v6,
        };
        if !resolved {
            return vec![ConnectionRecord::failed(
                d.id,
                d.list,
                d.org,
                config.week,
                config.version,
                ScanOutcome::NotResolved,
            )];
        }
        let Some(first_plan) = self
            .population
            .plan_connection(domain_id, config.week, config.version, 0)
        else {
            return vec![ConnectionRecord::failed(
                d.id,
                d.list,
                d.org,
                config.week,
                config.version,
                ScanOutcome::NoQuic,
            )];
        };
        if !self.population.is_reachable(domain_id, config.week) {
            return vec![ConnectionRecord::failed(
                d.id,
                d.list,
                d.org,
                config.week,
                config.version,
                ScanOutcome::Unreachable,
            )];
        }

        let mut records = Vec::new();
        let mut plan = first_plan;
        for depth in 0..=(MAX_REDIRECTS as u32) {
            let (record, response) = probe_connection_with_qlog(
                d,
                &plan,
                config.week,
                config.version,
                depth,
                &config.conditions,
                config.observer,
                config.grease,
                config.keep_qlogs,
            );
            let follow = record.outcome == ScanOutcome::Ok
                && response.as_ref().is_some_and(|r| r.status.is_redirect())
                && depth < MAX_REDIRECTS as u32;
            records.push(record);
            if !follow {
                break;
            }
            // The redirect target is the canonical page on the same host
            // (a fresh connection, as the paper counts it).
            match self
                .population
                .plan_connection(domain_id, config.week, config.version, depth + 1)
            {
                Some(next) => plan = next,
                None => break,
            }
        }
        records
    }

    /// Runs a full sweep over every domain.
    pub fn run_campaign(&self, config: &CampaignConfig) -> Campaign {
        let n = self.population.len() as u32;
        self.run_campaign_over(config, 0..n)
    }

    /// Runs a sweep over a subrange of domain ids (sharding building
    /// block; also used to scan only QUIC candidates in longitudinal
    /// mode).
    pub fn run_campaign_over(
        &self,
        config: &CampaignConfig,
        ids: std::ops::Range<u32>,
    ) -> Campaign {
        let threads = config.threads.max(1);
        let ids: Vec<u32> = ids.collect();
        let mut records: Vec<ConnectionRecord> = if threads == 1 || ids.len() < 64 {
            ids.iter()
                .flat_map(|&id| self.scan_domain(id, config))
                .collect()
        } else {
            let chunk = ids.len().div_ceil(threads);
            let mut shards: Vec<Vec<ConnectionRecord>> = Vec::new();
            crossbeam::thread::scope(|scope| {
                let handles: Vec<_> = ids
                    .chunks(chunk)
                    .map(|shard| {
                        scope.spawn(move |_| {
                            shard
                                .iter()
                                .flat_map(|&id| self.scan_domain(id, config))
                                .collect::<Vec<_>>()
                        })
                    })
                    .collect();
                for h in handles {
                    shards.push(h.join().expect("scan shard panicked"));
                }
            })
            .expect("crossbeam scope");
            shards.into_iter().flatten().collect()
        };
        records.sort_by_key(|r| (r.domain_id, r.redirect_depth));
        Campaign {
            week: config.week,
            version: config.version,
            records,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_webpop::PopulationConfig;

    fn tiny_pop() -> Population {
        Population::generate(PopulationConfig {
            seed: 42,
            toplist_domains: 100,
            zone_domains: 900,
        })
    }

    fn clean_config() -> CampaignConfig {
        CampaignConfig {
            conditions: NetworkConditions::clean(),
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn campaign_covers_every_domain() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        use std::collections::HashSet;
        let ids: HashSet<u32> = campaign.records.iter().map(|r| r.domain_id).collect();
        assert_eq!(ids.len(), pop.len());
        assert!(!campaign.is_empty());
        assert!(campaign.len() >= pop.len());
    }

    #[test]
    fn outcomes_match_population_flags() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        for r in &campaign.records {
            let d = pop.domain(r.domain_id);
            match r.outcome {
                ScanOutcome::NotResolved => assert!(!d.resolved_v4),
                ScanOutcome::NoQuic => assert!(d.resolved_v4 && !d.quic),
                ScanOutcome::Ok | ScanOutcome::HandshakeFailed => assert!(d.quic),
                ScanOutcome::Unreachable => assert!(d.quic),
            }
        }
    }

    #[test]
    fn thread_count_does_not_change_results() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let mut one = clean_config();
        one.threads = 1;
        let mut four = clean_config();
        four.threads = 4;
        let a = scanner.run_campaign(&one);
        let b = scanner.run_campaign(&four);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.records.iter().zip(&b.records) {
            assert_eq!(x.domain_id, y.domain_id);
            assert_eq!(x.outcome, y.outcome);
            assert_eq!(x.report, y.report);
        }
    }

    #[test]
    fn redirects_produce_extra_connections() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        let with_redirect: Vec<_> = campaign
            .records
            .iter()
            .filter(|r| r.redirect_depth > 0)
            .collect();
        assert!(
            !with_redirect.is_empty(),
            "some redirect chains must occur at REDIRECT_RATE"
        );
        for r in &with_redirect {
            assert!(pop.domain(r.domain_id).redirects);
        }
    }

    #[test]
    fn established_iterator_filters() {
        let pop = tiny_pop();
        let campaign = Scanner::new(&pop).run_campaign(&clean_config());
        assert!(campaign
            .established()
            .all(|r| r.outcome == ScanOutcome::Ok && r.report.is_some()));
    }

    #[test]
    fn v6_campaign_scans_fewer_hosts() {
        let pop = tiny_pop();
        let scanner = Scanner::new(&pop);
        let v4 = scanner.run_campaign(&clean_config());
        let mut v6_cfg = clean_config();
        v6_cfg.version = IpVersion::V6;
        let v6 = scanner.run_campaign(&v6_cfg);
        let ok4 = v4.established().count();
        let ok6 = v6.established().count();
        assert!(ok6 < ok4, "v6 ({ok6}) must be rarer than v4 ({ok4})");
    }

    #[test]
    fn weeks_vary_spin_behaviour() {
        let pop = Population::generate(PopulationConfig {
            seed: 7,
            toplist_domains: 0,
            zone_domains: 3_000,
        });
        let scanner = Scanner::new(&pop);
        let spin_count = |week: u32| {
            let cfg = CampaignConfig {
                week,
                ..clean_config()
            };
            scanner
                .run_campaign(&cfg)
                .records
                .iter()
                .filter(|r| r.has_spin_activity())
                .count()
        };
        let a = spin_count(0);
        let b = spin_count(5);
        // Churn and the 1-in-16 rule make weekly counts fluctuate; we only
        // require both weeks to see some spinning (the population has
        // spin-enabled hosts with high probability at this size).
        assert!(a > 0 && b > 0, "weeks 0/5 spin counts: {a}/{b}");
    }
}
