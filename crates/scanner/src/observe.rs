//! Campaign-level artifacts of the on-path spin observatory.
//!
//! When a campaign runs with a tap attached ([`crate::CampaignConfig`]'s
//! `tap`), every probe narrows its tap capture through the
//! `quicspin-observer` privacy boundary and stores an [`ObserverView`] on
//! the connection record: the tap's [`FlowStats`] next to the measuring
//! client's own spin/stack means, so observer accuracy is assessable per
//! flow. The campaign folds the views into an [`ObserverDoc`]
//! (`observer.json`, written next to `metrics.json`) in record order —
//! batch order is thread-count invariant, so the document is
//! byte-identical for any `--threads`.

use crate::batch::RecordRow;
use crate::record::ConnectionRecord;
use quicspin_core::ObserverReport;
use quicspin_observer::FlowStats;
use serde::{Deserialize, Serialize};

/// Schema version of [`ObserverDoc`].
pub const OBSERVER_SCHEMA_VERSION: u32 = 1;

fn mean_us(samples: &[u64]) -> Option<u64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<u64>() / samples.len() as u64)
    }
}

/// One connection as seen from the tap, stored on the record: the
/// observer's flow statistics plus the endpoint-side baselines they are
/// compared against.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserverView {
    /// Tap position in millionths of the path (0 = at the client,
    /// 1_000_000 = at the server).
    pub vantage_millionths: u32,
    /// The on-path observer's per-flow statistics.
    pub stats: FlowStats,
    /// Number of spin RTT samples the measuring client itself took.
    pub client_spin_samples: u64,
    /// Client spin RTT mean (µs, rounded down).
    pub client_spin_mean_us: Option<u64>,
    /// Client stack ground-truth RTT mean (µs, rounded down).
    pub stack_mean_us: Option<u64>,
}

impl ObserverView {
    /// Builds the view from a finished flow observation and the client's
    /// report of the same connection.
    pub fn new(position: f64, stats: FlowStats, report: &ObserverReport) -> Self {
        ObserverView {
            vantage_millionths: vantage_millionths(position),
            stats,
            client_spin_samples: report.spin_samples_received_us.len() as u64,
            client_spin_mean_us: mean_us(&report.spin_samples_received_us),
            stack_mean_us: mean_us(&report.stack_samples_us),
        }
    }

    /// Tap position as a fraction of the path.
    pub fn vantage(&self) -> f64 {
        f64::from(self.vantage_millionths) / 1_000_000.0
    }

    /// Relative observer-vs-client RTT divergence, when both measured.
    pub fn divergence(&self) -> Option<f64> {
        let observer = self.stats.mean_us? as f64;
        let client = self.client_spin_mean_us? as f64;
        if client == 0.0 {
            return None;
        }
        Some((observer - client).abs() / client)
    }

    /// Spin edges the observer saw beyond what the client's sample count
    /// implies (`samples + 1` edges start the client's stream).
    pub fn extra_edges(&self) -> u64 {
        let client_edges = match self.client_spin_samples {
            0 => 0,
            n => n + 1,
        };
        self.stats.edges_downstream.saturating_sub(client_edges)
    }
}

/// Converts a tap position to its canonical millionths encoding.
pub fn vantage_millionths(position: f64) -> u32 {
    (position.clamp(0.0, 1.0) * 1_000_000.0).round() as u32
}

/// One row of the `observer.json` per-flow table.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObserverFlowRow {
    /// Scanned domain id.
    pub domain_id: u32,
    /// Redirect hop (0 = initial connection).
    pub hop: u32,
    /// The tap's view of the flow.
    pub view: ObserverView,
}

/// Campaign-wide aggregation over every observed flow.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObserverSummary {
    /// Flows the tap saw (established connections under observation).
    pub flows: u64,
    /// Flows that yielded at least one observer RTT sample.
    pub measurable: u64,
    /// Flows the observer could not measure (grease/disable policies,
    /// too-short exchanges).
    pub unmeasurable: u64,
    /// Total accepted observer RTT samples.
    pub samples: u64,
    /// Edges rejected as reordering artifacts, campaign-wide.
    pub rejected_reorder: u64,
    /// Samples rejected as loss gaps, campaign-wide.
    pub rejected_gap: u64,
    /// Mean of per-flow observer RTT means (µs).
    pub observer_mean_us: Option<u64>,
    /// Mean of per-flow client spin RTT means (µs).
    pub client_mean_us: Option<u64>,
    /// Mean of per-flow stack ground-truth means (µs).
    pub stack_mean_us: Option<u64>,
    /// Largest per-flow observer-vs-client divergence (millionths).
    pub max_divergence_millionths: u64,
}

/// The `observer.json` document: per-flow table plus summary.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserverDoc {
    /// Schema version ([`OBSERVER_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Campaign identifier (see `CampaignConfig::campaign_id`).
    pub campaign: String,
    /// Tap position in millionths of the path.
    pub vantage_millionths: u32,
    /// Per-flow rows in record order (domain id, then hop).
    pub flows: Vec<ObserverFlowRow>,
    /// Campaign-wide aggregation.
    pub summary: ObserverSummary,
}

impl ObserverDoc {
    /// Builds the document from materialized records.
    pub fn from_records(campaign: &str, position: f64, records: &[ConnectionRecord]) -> Self {
        let mut builder = ObserverDocBuilder::new(campaign, position);
        for r in records {
            builder.note_record(r);
        }
        builder.finish()
    }

    /// Tap position as a fraction of the path.
    pub fn vantage(&self) -> f64 {
        f64::from(self.vantage_millionths) / 1_000_000.0
    }
}

/// Streaming builder for [`ObserverDoc`] — rows must arrive in record
/// order (which the campaign's in-order batch sink guarantees).
#[derive(Debug, Clone)]
pub struct ObserverDocBuilder {
    campaign: String,
    vantage_millionths: u32,
    flows: Vec<ObserverFlowRow>,
}

impl ObserverDocBuilder {
    /// Creates an empty builder for one campaign at one tap position.
    pub fn new(campaign: &str, position: f64) -> Self {
        ObserverDocBuilder {
            campaign: campaign.to_owned(),
            vantage_millionths: vantage_millionths(position),
            flows: Vec::new(),
        }
    }

    /// Notes one streamed record row (no-op unless it carries a view).
    pub fn note_row(&mut self, row: &RecordRow) {
        if let Some(view) = row.observer {
            self.flows.push(ObserverFlowRow {
                domain_id: row.domain_id,
                hop: row.redirect_depth,
                view,
            });
        }
    }

    /// Notes one materialized record (no-op unless it carries a view).
    pub fn note_record(&mut self, record: &ConnectionRecord) {
        if let Some(view) = record.observer {
            self.flows.push(ObserverFlowRow {
                domain_id: record.domain_id,
                hop: record.redirect_depth,
                view,
            });
        }
    }

    /// Finalizes the document, computing the summary over all rows.
    pub fn finish(self) -> ObserverDoc {
        let mut summary = ObserverSummary {
            flows: self.flows.len() as u64,
            measurable: 0,
            unmeasurable: 0,
            samples: 0,
            rejected_reorder: 0,
            rejected_gap: 0,
            observer_mean_us: None,
            client_mean_us: None,
            stack_mean_us: None,
            max_divergence_millionths: 0,
        };
        let (mut observer_means, mut client_means, mut stack_means) = (vec![], vec![], vec![]);
        for row in &self.flows {
            let stats = &row.view.stats;
            if stats.measurable {
                summary.measurable += 1;
            } else {
                summary.unmeasurable += 1;
            }
            summary.samples += stats.samples;
            summary.rejected_reorder += stats.rejected_reorder;
            summary.rejected_gap += stats.rejected_gap;
            if let Some(m) = stats.mean_us {
                observer_means.push(m);
            }
            if let Some(m) = row.view.client_spin_mean_us {
                client_means.push(m);
            }
            if let Some(m) = row.view.stack_mean_us {
                stack_means.push(m);
            }
            if let Some(d) = row.view.divergence() {
                let millionths = (d * 1_000_000.0).round() as u64;
                summary.max_divergence_millionths =
                    summary.max_divergence_millionths.max(millionths);
            }
        }
        summary.observer_mean_us = mean_us(&observer_means);
        summary.client_mean_us = mean_us(&client_means);
        summary.stack_mean_us = mean_us(&stack_means);
        ObserverDoc {
            schema_version: OBSERVER_SCHEMA_VERSION,
            campaign: self.campaign,
            vantage_millionths: self.vantage_millionths,
            flows: self.flows,
            summary,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_core::FlowClassification;

    fn stats(samples: u64, mean_us: Option<u64>) -> FlowStats {
        FlowStats {
            packets: 20,
            unobservable: 4,
            edges_upstream: samples + 1,
            edges_downstream: samples + 1,
            samples,
            samples_upstream: samples,
            mean_us,
            min_us: mean_us,
            max_us: mean_us,
            server_side_mean_us: None,
            client_side_mean_us: None,
            rejected_reorder: 0,
            rejected_gap: 0,
            suppressed_warmup: 0,
            measurable: samples > 0,
        }
    }

    fn report(spin_us: &[u64], stack_us: &[u64]) -> ObserverReport {
        ObserverReport {
            classification: FlowClassification::Spinning,
            packets: 20,
            spin_samples_received_us: spin_us.to_vec(),
            spin_samples_sorted_us: spin_us.to_vec(),
            stack_samples_us: stack_us.to_vec(),
        }
    }

    #[test]
    fn view_compares_observer_and_client() {
        let view = ObserverView::new(
            0.25,
            stats(4, Some(44_000)),
            &report(&[40_000, 40_000], &[39_000]),
        );
        assert_eq!(view.vantage_millionths, 250_000);
        assert_eq!(view.vantage(), 0.25);
        assert_eq!(view.client_spin_mean_us, Some(40_000));
        assert_eq!(view.stack_mean_us, Some(39_000));
        assert!((view.divergence().unwrap() - 0.1).abs() < 1e-9);
        // Client took 2 samples → 3 edges; the observer saw 5.
        assert_eq!(view.extra_edges(), 2);
    }

    #[test]
    fn divergence_needs_both_means() {
        let view = ObserverView::new(0.5, stats(0, None), &report(&[40_000], &[]));
        assert_eq!(view.divergence(), None);
    }

    #[test]
    fn doc_summary_aggregates_rows() {
        let mut builder = ObserverDocBuilder::new("week0", 0.5);
        let mut record = ConnectionRecord::failed(
            1,
            quicspin_webpop::ListKind::Toplist,
            quicspin_webpop::Org::Other,
            0,
            quicspin_webpop::IpVersion::V4,
            crate::record::ScanOutcome::Ok,
        );
        record.observer = Some(ObserverView::new(
            0.5,
            stats(4, Some(42_000)),
            &report(&[40_000], &[38_000]),
        ));
        builder.note_record(&record);
        record.domain_id = 2;
        record.observer = Some(ObserverView::new(
            0.5,
            stats(0, None),
            &report(&[], &[38_000]),
        ));
        builder.note_record(&record);
        let doc = builder.finish();
        assert_eq!(doc.schema_version, OBSERVER_SCHEMA_VERSION);
        assert_eq!(doc.flows.len(), 2);
        assert_eq!(doc.summary.flows, 2);
        assert_eq!(doc.summary.measurable, 1);
        assert_eq!(doc.summary.unmeasurable, 1);
        assert_eq!(doc.summary.samples, 4);
        assert_eq!(doc.summary.observer_mean_us, Some(42_000));
        assert_eq!(doc.summary.client_mean_us, Some(40_000));
        assert_eq!(doc.summary.stack_mean_us, Some(38_000));
        assert_eq!(doc.summary.max_divergence_millionths, 50_000);
    }

    #[test]
    fn records_without_views_are_skipped() {
        let record = ConnectionRecord::failed(
            9,
            quicspin_webpop::ListKind::Toplist,
            quicspin_webpop::Org::Other,
            0,
            quicspin_webpop::IpVersion::V4,
            crate::record::ScanOutcome::NoQuic,
        );
        let doc = ObserverDoc::from_records("week0", 0.1, &[record]);
        assert!(doc.flows.is_empty());
        assert_eq!(doc.summary.flows, 0);
    }

    #[test]
    fn doc_serde_roundtrip() {
        let mut builder = ObserverDocBuilder::new("week1", 0.75);
        let mut record = ConnectionRecord::failed(
            3,
            quicspin_webpop::ListKind::ZoneComNetOrg,
            quicspin_webpop::Org::Other,
            1,
            quicspin_webpop::IpVersion::V6,
            crate::record::ScanOutcome::Ok,
        );
        record.observer = Some(ObserverView::new(
            0.75,
            stats(2, Some(40_000)),
            &report(&[40_000], &[40_000]),
        ));
        builder.note_record(&record);
        let doc = builder.finish();
        let json = serde_json::to_string(&doc).unwrap();
        let back: ObserverDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
    }
}
