//! Per-connection scan records — the dataset all tables and figures are
//! computed from.

use quicspin_core::ObserverReport;
use quicspin_qlog::TraceLog;
use quicspin_webpop::{HostAddr, IpVersion, ListKind, Org, WebServer};
use serde::{Deserialize, Serialize};

/// What happened when the scanner tried a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ScanOutcome {
    /// DNS did not resolve on the requested IP version.
    NotResolved,
    /// Resolved, but the host never answered QUIC.
    NoQuic,
    /// The host was down this week (no answer at all).
    Unreachable,
    /// QUIC was answered but the handshake did not complete.
    HandshakeFailed,
    /// Connection established and the exchange completed.
    Ok,
}

impl ScanOutcome {
    /// Whether the domain counts into the paper's "QUIC" column
    /// (a connection could be established).
    pub fn is_quic(self) -> bool {
        matches!(self, ScanOutcome::Ok)
    }
}

/// One scanned connection.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ConnectionRecord {
    /// Target domain.
    pub domain_id: u32,
    /// Which list the domain came from.
    pub list: ListKind,
    /// Hosting organization (AS mapping).
    pub org: Org,
    /// Measurement week.
    pub week: u32,
    /// IP version used.
    pub version: IpVersion,
    /// Redirect depth of this connection (0 = initial request).
    pub redirect_depth: u32,
    /// Outcome of the attempt.
    pub outcome: ScanOutcome,
    /// The host contacted, if any.
    pub host: Option<HostAddr>,
    /// Web-server software from the `server:` response header, if an
    /// HTTP response was parsed.
    pub webserver: Option<WebServer>,
    /// The spin-bit assessment (present for established connections).
    pub report: Option<ObserverReport>,
    /// The on-path observer's view of this connection, present when the
    /// campaign ran with a tap attached (see
    /// [`crate::observe::ObserverView`]).
    #[serde(default)]
    pub observer: Option<crate::observe::ObserverView>,
    /// Simulated handshake time in microseconds, when the handshake
    /// completed. Virtual-clock time, so it is identical for any
    /// worker-thread count — the time-series layer samples it.
    #[serde(default)]
    pub virtual_handshake_us: Option<u64>,
    /// Simulated total connection lifetime in microseconds (0 for
    /// attempts that never produced traffic). Virtual-clock time.
    #[serde(default)]
    pub virtual_total_us: u64,
    /// Deepest simulated bottleneck queue this connection saw.
    #[serde(default)]
    pub queue_high_water: u64,
    /// The client-side qlog trace, retained only when the campaign runs
    /// with `keep_qlogs` (the paper's Appendix B artifact release keeps
    /// these for all toplist connections).
    #[serde(skip_serializing_if = "Option::is_none", default)]
    pub qlog: Option<TraceLog>,
}

impl ConnectionRecord {
    /// A record for a failed attempt.
    pub fn failed(
        domain_id: u32,
        list: ListKind,
        org: Org,
        week: u32,
        version: IpVersion,
        outcome: ScanOutcome,
    ) -> Self {
        ConnectionRecord {
            domain_id,
            list,
            org,
            week,
            version,
            redirect_depth: 0,
            outcome,
            host: None,
            webserver: None,
            report: None,
            observer: None,
            virtual_handshake_us: None,
            virtual_total_us: 0,
            queue_high_water: 0,
            qlog: None,
        }
    }

    /// Whether this connection showed spin-bit activity (flips) —
    /// the paper's "Spin" candidate criterion before grease filtering.
    pub fn has_spin_activity(&self) -> bool {
        self.report
            .as_ref()
            .is_some_and(|r| r.classification.has_activity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_core::FlowClassification;

    #[test]
    fn outcome_quic_classification() {
        assert!(ScanOutcome::Ok.is_quic());
        assert!(!ScanOutcome::NotResolved.is_quic());
        assert!(!ScanOutcome::NoQuic.is_quic());
        assert!(!ScanOutcome::Unreachable.is_quic());
        assert!(!ScanOutcome::HandshakeFailed.is_quic());
    }

    #[test]
    fn failed_record_has_no_report() {
        let r = ConnectionRecord::failed(
            1,
            ListKind::Toplist,
            Org::Other,
            0,
            IpVersion::V4,
            ScanOutcome::NotResolved,
        );
        assert!(r.report.is_none());
        assert!(!r.has_spin_activity());
        assert_eq!(r.outcome, ScanOutcome::NotResolved);
    }

    #[test]
    fn spin_activity_follows_classification() {
        let mut r = ConnectionRecord::failed(
            1,
            ListKind::ZoneComNetOrg,
            Org::Hostinger,
            0,
            IpVersion::V4,
            ScanOutcome::Ok,
        );
        r.report = Some(ObserverReport {
            classification: FlowClassification::Spinning,
            packets: 10,
            spin_samples_received_us: vec![40_000],
            spin_samples_sorted_us: vec![40_000],
            stack_samples_us: vec![40_000],
        });
        assert!(r.has_spin_activity());
        r.report.as_mut().unwrap().classification = FlowClassification::AllZero;
        assert!(!r.has_spin_activity());
    }
}
