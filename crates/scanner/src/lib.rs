//! # quicspin-scanner — the zgrab2 analogue
//!
//! The paper's measurement tooling is an adapted zgrab2 with quic-go
//! underneath (§3.2.1). This crate plays the same role against the
//! synthetic population:
//!
//! * targets come from the population's domain lists, queried with a
//!   "www." prefix;
//! * each target gets an HTTP/3-style landing-page request over a fully
//!   simulated QUIC connection, following up to 3 redirects;
//! * every connection produces a [`ConnectionRecord`] holding the §3.3
//!   qlog extraction (spin observations), the stack's RTT samples, the
//!   `server:` identification, and the spin classification;
//! * campaigns run weekly (IPv4) or in selected weeks (IPv6), spread
//!   across scoped worker threads — reproducible regardless of thread
//!   count because every connection is seeded independently.

pub mod artifacts;
pub mod batch;
pub mod campaign;
pub mod flight;
pub mod longitudinal;
pub mod observe;
pub mod probe;
pub mod record;
pub mod scenario;
pub mod timeseries;

pub use artifacts::{
    export_binary_stripped, export_binary_stripped_telemetry, export_qlogs, profile_folded_stacks,
    read_anomaly_index, read_chrome_trace, read_flagged_trace, read_observer, read_profile,
    read_profile_folded, read_run_manifest, read_timeseries, strip_for_release, write_chrome_trace,
    write_flight_recording, write_observer, write_profile, write_profile_folded,
    write_run_manifest, write_timeseries, ANOMALY_INDEX_FILE_NAME, CHROME_TRACE_FILE_NAME,
    MANIFEST_FILE_NAME, OBSERVER_FILE_NAME, PROFILE_FILE_NAME, PROFILE_FOLDED_FILE_NAME,
    TIMESERIES_FILE_NAME, TRACE_STORE_FILE_NAME,
};
pub use batch::{RecordBatch, RecordRow};
pub use campaign::{Campaign, CampaignConfig, Scanner};
pub use flight::{
    Anomaly, AnomalyIndex, AnomalyKind, FlightConfig, FlightRecording, FlightShard, ProbeId,
    RetainedTrace, TraceSlot, VirtualStageSummary, ANOMALY_SCHEMA_VERSION,
};
pub use longitudinal::{run_longitudinal, DomainWeeks, LongitudinalConfig, LongitudinalResult};
pub use observe::{
    vantage_millionths, ObserverDoc, ObserverDocBuilder, ObserverFlowRow, ObserverSummary,
    ObserverView, OBSERVER_SCHEMA_VERSION,
};
pub use probe::{probe_connection, probe_connection_scratch, NetworkConditions, ProbeScratch};
pub use quicspin_telemetry::{ProgressSnapshot, Registry, RunManifest, TimeSeriesDoc};
pub use record::{ConnectionRecord, ScanOutcome};
pub use scenario::{parse_scenario, ScenarioAxis, ScenarioCell, ScenarioMatrix, SWEEP_AXES};
pub use timeseries::{build_timeseries, chrome_trace_export, TimeSeriesBuilder};
