//! Artifact export (the paper's Appendix B): bundle a campaign's
//! retained qlog traces into a qlog file and/or the compact binary form,
//! "stripping unused information to limit the file size" exactly as the
//! paper's release does.

//! None of the exporters here (or anywhere in the library crates) print
//! to stdout: operational events are counted into the campaign telemetry
//! registry instead, and binaries decide what to render.

use crate::campaign::Campaign;
use crate::flight::{
    AnomalyIndex, FlightRecording, TraceSlot, TRACE_STORE_HEADER_LEN, TRACE_STORE_MAGIC,
    TRACE_STORE_VERSION,
};
use crate::record::ScanOutcome;
use quicspin_qlog::{
    decode_trace, encode_trace, parse_folded, render_folded, ChromeEvent, EventData, FoldedStack,
    QlogFile, TraceLog,
};
use quicspin_telemetry::{
    Metric, ProfileDoc, ProfileSnapshot, Registry, RunManifest, Stage, TimeSeriesDoc,
};
use std::io::ErrorKind;
use std::path::{Path, PathBuf};

/// File name of the run manifest written next to campaign artifacts.
pub const MANIFEST_FILE_NAME: &str = "metrics.json";

/// File name of the flight recorder's anomaly index.
pub const ANOMALY_INDEX_FILE_NAME: &str = "anomalies.json";

/// File name of the flight recorder's binary trace store.
pub const TRACE_STORE_FILE_NAME: &str = "traces.bin";

/// File name of the deterministic campaign time series.
pub const TIMESERIES_FILE_NAME: &str = "timeseries.json";

/// File name of the Chrome trace-event export (Perfetto-loadable).
pub const CHROME_TRACE_FILE_NAME: &str = "trace.json";

/// File name of the on-path observer document (tapped campaigns only).
pub const OBSERVER_FILE_NAME: &str = "observer.json";

/// File name of the deterministic profiler document (profiled runs only).
pub const PROFILE_FILE_NAME: &str = "profile.json";

/// File name of the collapsed-stack flamegraph export (profiled runs
/// only; load with `flamegraph.pl` or speedscope).
pub const PROFILE_FOLDED_FILE_NAME: &str = "profile.folded";

/// Collects every retained qlog trace of a campaign into one qlog file.
/// Requires the campaign to have run with `keep_qlogs`.
pub fn export_qlogs(campaign: &Campaign) -> QlogFile {
    let traces: Vec<TraceLog> = campaign
        .records
        .iter()
        .filter(|r| r.outcome == ScanOutcome::Ok)
        .filter_map(|r| r.qlog.clone())
        .collect();
    QlogFile::new(traces)
}

/// Strips a trace down to the fields the spin analysis needs — received
/// 1-RTT packets and RTT updates — mirroring the paper's size-limited
/// release ("stripping unused information to limit the file size").
pub fn strip_for_release(trace: &TraceLog) -> TraceLog {
    let mut stripped = TraceLog::new(trace.vantage_point.clone());
    stripped.title = trace.title.clone();
    stripped.events = trace
        .events
        .iter()
        .filter(|e| {
            matches!(
                e.data,
                EventData::PacketReceived { .. } | EventData::RttUpdated { .. }
            )
        })
        .cloned()
        .collect();
    stripped
}

/// Exports all retained traces in the compact binary format, stripped.
/// Returns one byte blob per connection.
pub fn export_binary_stripped(campaign: &Campaign) -> Vec<Vec<u8>> {
    export_binary_stripped_telemetry(campaign, &Registry::disabled())
}

/// [`export_binary_stripped`], counting encode time and output bytes into
/// `registry` (`qlog_encode` stage, `qlog_bytes_encoded` counter).
pub fn export_binary_stripped_telemetry(campaign: &Campaign, registry: &Registry) -> Vec<Vec<u8>> {
    let span = registry.span(Stage::QlogEncode);
    let blobs: Vec<Vec<u8>> = campaign
        .records
        .iter()
        .filter_map(|r| r.qlog.as_ref())
        .map(|t| encode_trace(&strip_for_release(t)))
        .collect();
    span.finish();
    registry.add(
        Metric::QlogBytesEncoded,
        blobs.iter().map(|b| b.len() as u64).sum(),
    );
    blobs
}

/// Writes a [`RunManifest`] as pretty-printed JSON named
/// [`MANIFEST_FILE_NAME`] inside `dir` (created if missing). Returns the
/// path written.
pub fn write_run_manifest(dir: &Path, manifest: &RunManifest) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(MANIFEST_FILE_NAME);
    let json = serde_json::to_string_pretty(manifest)
        .map_err(|e| std::io::Error::other(format!("manifest serialization failed: {e}")))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Reads a [`RunManifest`] back from `dir`. A missing file or corrupt
/// JSON both yield a descriptive error naming the path.
pub fn read_run_manifest(dir: &Path) -> std::io::Result<RunManifest> {
    let path = dir.join(MANIFEST_FILE_NAME);
    let json = std::fs::read_to_string(&path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot read run manifest {}: {e}", path.display()),
        )
    })?;
    serde_json::from_str(&json).map_err(|e| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!("corrupt run manifest {}: {e}", path.display()),
        )
    })
}

/// Writes a [`TimeSeriesDoc`] as pretty-printed JSON named
/// [`TIMESERIES_FILE_NAME`] inside `dir` (created if missing). The output
/// bytes are a pure function of the document, so a deterministic series
/// produces a byte-identical file. Returns the path written.
pub fn write_timeseries(dir: &Path, doc: &TimeSeriesDoc) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(TIMESERIES_FILE_NAME);
    let json = serde_json::to_string_pretty(doc)
        .map_err(|e| std::io::Error::other(format!("time series serialization failed: {e}")))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Reads a [`TimeSeriesDoc`] back from `dir`, with the same descriptive
/// error contract as [`read_run_manifest`].
pub fn read_timeseries(dir: &Path) -> std::io::Result<TimeSeriesDoc> {
    let path = dir.join(TIMESERIES_FILE_NAME);
    let json = std::fs::read_to_string(&path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot read time series {}: {e}", path.display()),
        )
    })?;
    serde_json::from_str(&json).map_err(|e| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!("corrupt time series {}: {e}", path.display()),
        )
    })
}

/// Writes an [`ObserverDoc`](crate::observe::ObserverDoc) as
/// pretty-printed JSON named [`OBSERVER_FILE_NAME`] inside `dir` (created
/// if missing). The bytes are a pure function of the document, and the
/// document is built from the thread-count-invariant record stream, so
/// the file is byte-identical for any `--threads`. Returns the path
/// written.
pub fn write_observer(dir: &Path, doc: &crate::observe::ObserverDoc) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(OBSERVER_FILE_NAME);
    let json = serde_json::to_string_pretty(doc)
        .map_err(|e| std::io::Error::other(format!("observer doc serialization failed: {e}")))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Reads the [`ObserverDoc`](crate::observe::ObserverDoc) back from
/// `dir`, with the same descriptive error contract as
/// [`read_run_manifest`].
pub fn read_observer(dir: &Path) -> std::io::Result<crate::observe::ObserverDoc> {
    let path = dir.join(OBSERVER_FILE_NAME);
    let json = std::fs::read_to_string(&path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot read observer doc {}: {e}", path.display()),
        )
    })?;
    serde_json::from_str(&json).map_err(|e| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!("corrupt observer doc {}: {e}", path.display()),
        )
    })
}

/// Writes a [`ProfileDoc`] as pretty-printed JSON named
/// [`PROFILE_FILE_NAME`] inside `dir` (created if missing). The doc
/// carries only the deterministic scope counts (enters / allocs /
/// queue-ops — never wall time), so the file is byte-identical for any
/// `--threads` on the streamed path. Returns the path written.
pub fn write_profile(dir: &Path, doc: &ProfileDoc) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(PROFILE_FILE_NAME);
    let json = serde_json::to_string_pretty(doc)
        .map_err(|e| std::io::Error::other(format!("profile serialization failed: {e}")))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Reads the [`ProfileDoc`] back from `dir`, with the same descriptive
/// error contract as [`read_run_manifest`].
pub fn read_profile(dir: &Path) -> std::io::Result<ProfileDoc> {
    let path = dir.join(PROFILE_FILE_NAME);
    let json = std::fs::read_to_string(&path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot read profile {}: {e}", path.display()),
        )
    })?;
    serde_json::from_str(&json).map_err(|e| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!("corrupt profile {}: {e}", path.display()),
        )
    })
}

/// Converts a profiler snapshot into collapsed flamegraph stacks: one
/// stack per scope with nonzero wall-clock self-time, frames split on the
/// scope path's `/` separators, weights in nanoseconds.
pub fn profile_folded_stacks(snapshot: &ProfileSnapshot) -> Vec<FoldedStack> {
    snapshot
        .collapsed()
        .into_iter()
        .map(|(path, self_ns)| FoldedStack {
            frames: path.split('/').map(str::to_string).collect(),
            weight: self_ns,
        })
        .collect()
}

/// Writes collapsed flamegraph stacks named [`PROFILE_FOLDED_FILE_NAME`]
/// inside `dir` (created if missing) — the `frame;frame weight` text
/// format `flamegraph.pl` and speedscope load directly. Weights are wall
/// clock, so (unlike `profile.json`) the bytes vary run to run. Returns
/// the path written.
pub fn write_profile_folded(dir: &Path, stacks: &[FoldedStack]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(PROFILE_FOLDED_FILE_NAME);
    std::fs::write(&path, render_folded(stacks))?;
    Ok(path)
}

/// Reads the collapsed stacks back from `dir`, with the same descriptive
/// error contract as [`read_run_manifest`].
pub fn read_profile_folded(dir: &Path) -> std::io::Result<Vec<FoldedStack>> {
    let path = dir.join(PROFILE_FOLDED_FILE_NAME);
    let text = std::fs::read_to_string(&path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot read folded profile {}: {e}", path.display()),
        )
    })?;
    parse_folded(&text).map_err(|e| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!("corrupt folded profile {}: {e}", path.display()),
        )
    })
}

/// Writes Chrome trace events as a JSON array named
/// [`CHROME_TRACE_FILE_NAME`] inside `dir` (created if missing) — the
/// array-of-events trace-event form Perfetto and `chrome://tracing` load
/// directly. Returns the path written.
pub fn write_chrome_trace(dir: &Path, events: &[ChromeEvent]) -> std::io::Result<PathBuf> {
    std::fs::create_dir_all(dir)?;
    let path = dir.join(CHROME_TRACE_FILE_NAME);
    let json = serde_json::to_string_pretty(&events)
        .map_err(|e| std::io::Error::other(format!("chrome trace serialization failed: {e}")))?;
    std::fs::write(&path, json)?;
    Ok(path)
}

/// Reads the Chrome trace events back from `dir`, with the same
/// descriptive error contract as [`read_run_manifest`].
pub fn read_chrome_trace(dir: &Path) -> std::io::Result<Vec<ChromeEvent>> {
    let path = dir.join(CHROME_TRACE_FILE_NAME);
    let json = std::fs::read_to_string(&path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot read chrome trace {}: {e}", path.display()),
        )
    })?;
    serde_json::from_str(&json).map_err(|e| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!("corrupt chrome trace {}: {e}", path.display()),
        )
    })
}

/// Writes a [`FlightRecording`]'s artifacts into `dir` (created if
/// missing): the [`AnomalyIndex`] as pretty-printed JSON named
/// [`ANOMALY_INDEX_FILE_NAME`], and the binary trace store named
/// [`TRACE_STORE_FILE_NAME`]. Returns `(index_path, store_path)`.
pub fn write_flight_recording(
    dir: &Path,
    recording: &FlightRecording,
) -> std::io::Result<(PathBuf, PathBuf)> {
    std::fs::create_dir_all(dir)?;
    let index_path = dir.join(ANOMALY_INDEX_FILE_NAME);
    let json = serde_json::to_string_pretty(&recording.index())
        .map_err(|e| std::io::Error::other(format!("anomaly index serialization failed: {e}")))?;
    std::fs::write(&index_path, json)?;
    let store_path = dir.join(TRACE_STORE_FILE_NAME);
    std::fs::write(&store_path, recording.trace_store())?;
    Ok((index_path, store_path))
}

/// Reads the [`AnomalyIndex`] back from `dir`, with the same descriptive
/// error contract as [`read_run_manifest`].
pub fn read_anomaly_index(dir: &Path) -> std::io::Result<AnomalyIndex> {
    let path = dir.join(ANOMALY_INDEX_FILE_NAME);
    let json = std::fs::read_to_string(&path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot read anomaly index {}: {e}", path.display()),
        )
    })?;
    serde_json::from_str(&json).map_err(|e| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!("corrupt anomaly index {}: {e}", path.display()),
        )
    })
}

/// Loads and decodes one retained trace from `dir`'s trace store, using
/// the slot's offset/length from the anomaly index.
pub fn read_flagged_trace(dir: &Path, slot: &TraceSlot) -> std::io::Result<TraceLog> {
    let path = dir.join(TRACE_STORE_FILE_NAME);
    let store = std::fs::read(&path).map_err(|e| {
        std::io::Error::new(
            e.kind(),
            format!("cannot read trace store {}: {e}", path.display()),
        )
    })?;
    if store.len() < TRACE_STORE_HEADER_LEN
        || &store[..4] != TRACE_STORE_MAGIC
        || store[4] != TRACE_STORE_VERSION
    {
        return Err(std::io::Error::new(
            ErrorKind::InvalidData,
            format!("corrupt trace store {}: bad header", path.display()),
        ));
    }
    let lo = usize::try_from(slot.offset).unwrap_or(usize::MAX);
    let hi = lo.saturating_add(usize::try_from(slot.len).unwrap_or(usize::MAX));
    let bytes = store.get(lo..hi).ok_or_else(|| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "trace slot for probe {} out of bounds in {}",
                slot.probe,
                path.display()
            ),
        )
    })?;
    decode_trace(bytes).map_err(|e| {
        std::io::Error::new(
            ErrorKind::InvalidData,
            format!(
                "corrupt trace for probe {} in {}: {e:?}",
                slot.probe,
                path.display()
            ),
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::campaign::{CampaignConfig, Scanner};
    use crate::probe::NetworkConditions;
    use quicspin_qlog::decode_trace;
    use quicspin_webpop::{Population, PopulationConfig};

    fn campaign_with_qlogs() -> Campaign {
        let pop = Population::generate(PopulationConfig {
            seed: 31,
            toplist_domains: 50,
            zone_domains: 800,
        });
        Scanner::new(&pop).run_campaign(&CampaignConfig {
            conditions: NetworkConditions::clean(),
            keep_qlogs: true,
            ..CampaignConfig::default()
        })
    }

    #[test]
    fn qlogs_retained_and_exported() {
        let campaign = campaign_with_qlogs();
        let established = campaign.established().count();
        assert!(established > 0);
        let file = export_qlogs(&campaign);
        assert_eq!(file.traces.len(), established);
        for trace in &file.traces {
            assert_eq!(trace.vantage_point, "client");
            assert!(trace.title.starts_with("www."), "title {:?}", trace.title);
            assert!(trace.handshake_completed());
        }
    }

    #[test]
    fn default_campaign_retains_nothing() {
        let pop = Population::generate(PopulationConfig::tiny(32));
        let campaign = Scanner::new(&pop).run_campaign(&CampaignConfig {
            conditions: NetworkConditions::clean(),
            ..CampaignConfig::default()
        });
        assert!(campaign.records.iter().all(|r| r.qlog.is_none()));
        assert!(export_qlogs(&campaign).traces.is_empty());
    }

    #[test]
    fn stripping_preserves_spin_observations() {
        let campaign = campaign_with_qlogs();
        let trace = campaign
            .records
            .iter()
            .find_map(|r| r.qlog.as_ref())
            .expect("a retained trace");
        let stripped = strip_for_release(trace);
        assert_eq!(
            stripped.spin_observations(),
            trace.spin_observations(),
            "the §3.3 extraction survives stripping"
        );
        assert_eq!(stripped.rtt_samples_us(), trace.rtt_samples_us());
        assert!(stripped.len() <= trace.len());
        assert!(!stripped.handshake_completed(), "lifecycle events stripped");
    }

    fn temp_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("quicspin-artifacts-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn profile_roundtrips_and_errors_are_descriptive() {
        use quicspin_telemetry::{ProfilerRegistry, ScopeId};
        let reg = ProfilerRegistry::new();
        let mut shard = reg.shard();
        let p = shard.begin();
        shard.enter_n(ScopeId::PacketEncode, 12);
        shard.add_queue_ops(ScopeId::WheelPush, 7);
        shard.end(ScopeId::Probe, p);
        reg.absorb(&shard);
        let snapshot = reg.snapshot();

        let dir = temp_dir("profile");
        let doc = snapshot.doc();
        write_profile(&dir, &doc).unwrap();
        assert_eq!(read_profile(&dir).unwrap(), doc);

        let stacks = profile_folded_stacks(&snapshot);
        assert!(stacks.iter().any(|s| s.frames == ["probe"]));
        write_profile_folded(&dir, &stacks).unwrap();
        assert_eq!(read_profile_folded(&dir).unwrap(), stacks);

        let missing = temp_dir("profile-missing");
        let err = read_profile(&missing).unwrap_err();
        assert!(err.to_string().contains("cannot read profile"), "{err}");
        std::fs::create_dir_all(&missing).unwrap();
        std::fs::write(missing.join(PROFILE_FILE_NAME), "{not json").unwrap();
        let err = read_profile(&missing).unwrap_err();
        assert!(err.to_string().contains("corrupt profile"), "{err}");
        std::fs::write(missing.join(PROFILE_FOLDED_FILE_NAME), "probe x").unwrap();
        let err = read_profile_folded(&missing).unwrap_err();
        assert!(err.to_string().contains("corrupt folded profile"), "{err}");
        let _ = std::fs::remove_dir_all(&dir);
        let _ = std::fs::remove_dir_all(&missing);
    }

    #[test]
    fn binary_export_roundtrips_and_shrinks() {
        let campaign = campaign_with_qlogs();
        let blobs = export_binary_stripped(&campaign);
        assert_eq!(blobs.len(), campaign.established().count());
        let originals: Vec<&TraceLog> = campaign
            .records
            .iter()
            .filter_map(|r| r.qlog.as_ref())
            .collect();
        for (blob, original) in blobs.iter().zip(originals) {
            let decoded = decode_trace(blob).unwrap();
            assert_eq!(decoded.spin_observations(), original.spin_observations());
            let json_len = serde_json::to_string(original).unwrap().len();
            assert!(
                blob.len() * 3 < json_len,
                "binary {} vs json {json_len}",
                blob.len()
            );
        }
    }
}
