//! The Table 3 flow taxonomy: how does a connection set its spin bit?

use crate::grease::GreaseFilter;
use crate::observation::PacketObservation;
use crate::observer::SpinObserver;
use serde::{Deserialize, Serialize};

/// How a connection used the spin bit, per the paper's Table 3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum FlowClassification {
    /// No 1-RTT packets were observed (nothing to classify).
    NoShortPackets,
    /// Every observed packet carried spin 0 — the dominant way of
    /// disabling the spin bit in the wild (includes per-connection
    /// greasing that happened to pick 0).
    AllZero,
    /// Every observed packet carried spin 1 (rare; includes
    /// per-connection greasing that picked 1).
    AllOne,
    /// The bit flipped and the resulting RTT estimates are consistent
    /// with a genuine spin signal.
    Spinning,
    /// The bit flipped but at least one spin RTT estimate undercuts the
    /// stack minimum — presumed per-packet greasing (§3.3 filter).
    Greased,
}

impl FlowClassification {
    /// Whether the connection showed *any* spin activity (flips),
    /// i.e. it lands in the paper's "Spin" candidate column before
    /// grease filtering.
    pub fn has_activity(self) -> bool {
        matches!(
            self,
            FlowClassification::Spinning | FlowClassification::Greased
        )
    }
}

impl core::fmt::Display for FlowClassification {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(match self {
            FlowClassification::NoShortPackets => "no-short-packets",
            FlowClassification::AllZero => "all-zero",
            FlowClassification::AllOne => "all-one",
            FlowClassification::Spinning => "spinning",
            FlowClassification::Greased => "greased",
        })
    }
}

/// Classifies a connection from its observations and the QUIC stack's
/// minimum RTT estimate (µs), applying the grease filter when available.
pub fn classify_flow(
    observations: &[PacketObservation],
    min_stack_rtt_us: Option<u64>,
    grease_filter: GreaseFilter,
) -> FlowClassification {
    if observations.is_empty() {
        return FlowClassification::NoShortPackets;
    }
    let mut observer = SpinObserver::new();
    observer.observe_all(observations);
    let (zeros, ones) = observer.value_counts();
    if ones == 0 {
        return FlowClassification::AllZero;
    }
    if zeros == 0 {
        return FlowClassification::AllOne;
    }
    if let Some(min_stack) = min_stack_rtt_us {
        if grease_filter.is_greased(observer.rtt_samples_us(), min_stack) {
            return FlowClassification::Greased;
        }
    }
    FlowClassification::Spinning
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t_ms: u64, spin: bool) -> PacketObservation {
        PacketObservation::wire(t_ms * 1000, spin)
    }

    #[test]
    fn empty_is_no_short_packets() {
        assert_eq!(
            classify_flow(&[], Some(40_000), GreaseFilter::paper()),
            FlowClassification::NoShortPackets
        );
    }

    #[test]
    fn all_zero() {
        let seq = vec![obs(0, false), obs(10, false), obs(20, false)];
        assert_eq!(
            classify_flow(&seq, Some(40_000), GreaseFilter::paper()),
            FlowClassification::AllZero
        );
    }

    #[test]
    fn all_one() {
        let seq = vec![obs(0, true), obs(10, true)];
        assert_eq!(
            classify_flow(&seq, Some(40_000), GreaseFilter::paper()),
            FlowClassification::AllOne
        );
    }

    #[test]
    fn genuine_spin() {
        // 40 ms square wave against a 40 ms stack minimum.
        let seq = vec![obs(0, false), obs(40, true), obs(80, false), obs(120, true)];
        assert_eq!(
            classify_flow(&seq, Some(40_000), GreaseFilter::paper()),
            FlowClassification::Spinning
        );
    }

    #[test]
    fn per_packet_grease_detected() {
        // Flips every 1 ms against a 40 ms path.
        let seq: Vec<_> = (0..10).map(|t| obs(t, t % 2 == 0)).collect();
        assert_eq!(
            classify_flow(&seq, Some(40_000), GreaseFilter::paper()),
            FlowClassification::Greased
        );
    }

    #[test]
    fn without_stack_rtt_flips_count_as_spinning() {
        // No baseline available → grease filter cannot run (paper requires
        // the QUIC stack estimate to apply it).
        let seq: Vec<_> = (0..10).map(|t| obs(t, t % 2 == 0)).collect();
        assert_eq!(
            classify_flow(&seq, None, GreaseFilter::paper()),
            FlowClassification::Spinning
        );
    }

    #[test]
    fn single_packet_classifies_by_value() {
        assert_eq!(
            classify_flow(&[obs(0, false)], None, GreaseFilter::paper()),
            FlowClassification::AllZero
        );
        assert_eq!(
            classify_flow(&[obs(0, true)], None, GreaseFilter::paper()),
            FlowClassification::AllOne
        );
    }

    #[test]
    fn activity_flag() {
        assert!(FlowClassification::Spinning.has_activity());
        assert!(FlowClassification::Greased.has_activity());
        assert!(!FlowClassification::AllZero.has_activity());
        assert!(!FlowClassification::AllOne.has_activity());
        assert!(!FlowClassification::NoShortPackets.has_activity());
    }

    #[test]
    fn display_names() {
        assert_eq!(FlowClassification::Spinning.to_string(), "spinning");
        assert_eq!(FlowClassification::AllZero.to_string(), "all-zero");
    }
}
