//! §5.1's R/S methodology: received order vs. packet-number order.
//!
//! The paper runs every RTT computation twice — once over the packets in
//! the order they were received (**R**), potentially including
//! reordering, and once with the packets sorted by packet number (**S**)
//! — and compares the outcomes to quantify how much reordering actually
//! disturbs spin measurements in the wild (§5.2: almost not at all).

use crate::observation::PacketObservation;
use crate::observer::{ObserverConfig, SpinObserver};
use serde::{Deserialize, Serialize};

/// Sorts observations by packet number (stable for equal/missing numbers).
///
/// Observations without packet numbers keep their relative received order
/// (a passive observer without oracle access cannot sort at all — the
/// paper can, because it reads its own client's qlog).
pub fn sort_by_packet_number(observations: &[PacketObservation]) -> Vec<PacketObservation> {
    let mut sorted = observations.to_vec();
    sorted.sort_by_key(|o| o.packet_number.unwrap_or(u64::MAX));
    sorted
}

/// Outcome of running the observer in both R and S modes.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ReorderComparison {
    /// Spin RTT samples in received order (µs).
    pub samples_received_us: Vec<u64>,
    /// Spin RTT samples in sorted order (µs).
    pub samples_sorted_us: Vec<u64>,
}

impl ReorderComparison {
    /// Runs the comparison for one connection.
    pub fn run(observations: &[PacketObservation], config: ObserverConfig) -> Self {
        let mut r = SpinObserver::with_config(config);
        r.observe_all(observations);
        let sorted = sort_by_packet_number(observations);
        let mut s = SpinObserver::with_config(config);
        s.observe_all(&sorted);
        ReorderComparison {
            samples_received_us: r.rtt_samples_us().to_vec(),
            samples_sorted_us: s.rtt_samples_us().to_vec(),
        }
    }

    /// Mean of the received-order samples in ms.
    pub fn mean_received_ms(&self) -> Option<f64> {
        mean_ms(&self.samples_received_us)
    }

    /// Mean of the sorted-order samples in ms.
    pub fn mean_sorted_ms(&self) -> Option<f64> {
        mean_ms(&self.samples_sorted_us)
    }

    /// Whether sorting changed the outcome at all (the paper: only 0.28 %
    /// of connections differ).
    pub fn differs(&self) -> bool {
        self.samples_received_us != self.samples_sorted_us
    }

    /// Absolute difference of the two means in ms (`None` if either side
    /// has no samples).
    pub fn mean_abs_delta_ms(&self) -> Option<f64> {
        Some((self.mean_received_ms()? - self.mean_sorted_ms()?).abs())
    }
}

fn mean_ms(samples: &[u64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t_ms: u64, pn: u64, spin: bool) -> PacketObservation {
        PacketObservation::qlog(t_ms * 1000, pn, spin)
    }

    #[test]
    fn sort_orders_by_pn() {
        let seq = vec![obs(0, 2, false), obs(1, 0, false), obs(2, 1, true)];
        let sorted = sort_by_packet_number(&seq);
        let pns: Vec<u64> = sorted.iter().map(|o| o.packet_number.unwrap()).collect();
        assert_eq!(pns, vec![0, 1, 2]);
    }

    #[test]
    fn observations_without_pn_sink_to_end_stably() {
        let a = PacketObservation::wire(1, true);
        let b = PacketObservation::wire(2, false);
        let seq = vec![a, obs(0, 5, false), b];
        let sorted = sort_by_packet_number(&seq);
        assert_eq!(sorted[0].packet_number, Some(5));
        assert_eq!(sorted[1], a);
        assert_eq!(sorted[2], b);
    }

    #[test]
    fn in_order_flow_shows_no_difference() {
        let seq = vec![
            obs(0, 0, false),
            obs(40, 1, true),
            obs(80, 2, false),
            obs(120, 3, true),
        ];
        let cmp = ReorderComparison::run(&seq, ObserverConfig::default());
        assert!(!cmp.differs());
        assert_eq!(cmp.mean_received_ms(), Some(40.0));
        assert_eq!(cmp.mean_abs_delta_ms(), Some(0.0));
    }

    #[test]
    fn reordered_edge_detected_and_repaired_by_sorting() {
        // Packet 2 (spin=1, the edge) overtakes packet 1 (spin=0):
        // received order sees edges at 39 and 41 → one bogus 2 ms sample.
        let seq = vec![
            obs(0, 0, false),
            obs(39, 2, true),  // overtook
            obs(41, 1, false), // stale
            obs(42, 3, true),
            obs(80, 4, false),
        ];
        let cmp = ReorderComparison::run(&seq, ObserverConfig::default());
        assert!(cmp.differs());
        // Sorted order: 0(f) 1(f) 2(t)@39 3(t) 4(f)@80 → edges at 39, 80.
        assert_eq!(cmp.samples_sorted_us, vec![41_000]);
        // Received order: edges at 39(t), 41(f), 42(t), 80(f).
        assert_eq!(cmp.samples_received_us, vec![2_000, 1_000, 38_000]);
        // Sorting improves accuracy toward the real ~40 ms RTT.
        let real = 40.0;
        assert!(
            (cmp.mean_sorted_ms().unwrap() - real).abs()
                < (cmp.mean_received_ms().unwrap() - real).abs()
        );
    }

    #[test]
    fn mean_delta_none_when_one_side_empty() {
        // A single edge yields no sample in either mode.
        let seq = vec![obs(0, 0, false), obs(40, 1, true)];
        let cmp = ReorderComparison::run(&seq, ObserverConfig::default());
        assert_eq!(cmp.mean_abs_delta_ms(), None);
        assert!(!cmp.differs());
    }

    proptest::proptest! {
        #[test]
        fn prop_in_order_flows_never_differ(
            rtt_ms in 1u64..500,
            periods in 2usize..20,
        ) {
            // A clean square wave delivered in order must be R/S identical.
            let mut seq = Vec::new();
            for i in 0..periods {
                seq.push(obs(i as u64 * rtt_ms, i as u64, i % 2 == 1));
            }
            let cmp = ReorderComparison::run(&seq, ObserverConfig::default());
            proptest::prop_assert!(!cmp.differs());
        }

        #[test]
        fn prop_sorted_mode_is_permutation_invariant(
            perm_seed in 0u64..1000,
        ) {
            // Shuffling the received order must not change the S results.
            let base: Vec<PacketObservation> =
                (0..12u64).map(|i| obs(i * 40, i, i % 2 == 1)).collect();
            let mut shuffled = base.clone();
            // Deterministic Fisher-Yates from the seed.
            let mut state = perm_seed.wrapping_add(1);
            for i in (1..shuffled.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (state >> 33) as usize % (i + 1);
                shuffled.swap(i, j);
            }
            let a = ReorderComparison::run(&base, ObserverConfig::default());
            let b = ReorderComparison::run(&shuffled, ObserverConfig::default());
            proptest::prop_assert_eq!(a.samples_sorted_us, b.samples_sorted_us);
        }
    }
}
