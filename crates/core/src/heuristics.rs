//! RFC 9312 §4.2-style robustness heuristics for spin RTT samples.
//!
//! RFC 9312 notes that spin-bit measurements "can be improved by
//! heuristics" that reject implausible samples, e.g. ultra-short spin
//! periods caused by reordering near a spin edge (the paper's Fig. 1b).
//! Kunze et al. (2021) evaluated such filters on P4 hardware; the paper
//! under reproduction calls for exactly this kind of filtering as future
//! work (§7). This module implements the three filters used throughout
//! the workspace's ablation benches.

use serde::{Deserialize, Serialize};

/// A filter deciding whether a candidate spin RTT sample is plausible.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize, Default)]
pub enum RttFilter {
    /// Accept every sample (the paper's baseline configuration).
    #[default]
    None,
    /// Reject samples below an absolute floor (µs). Catches the
    /// reordering-induced ultra-short spin cycles of Fig. 1b.
    StaticFloor {
        /// Minimum plausible RTT in microseconds.
        min_us: u64,
    },
    /// Reject samples outside `[lower × m, upper × m]` where `m` is the
    /// running median of previously *accepted* samples. The first sample
    /// is always accepted to seed the estimate.
    DynamicRange {
        /// Lower bound factor (e.g. 0.1).
        lower: f64,
        /// Upper bound factor (e.g. 10.0).
        upper: f64,
    },
}

/// Stateful application of an [`RttFilter`] to a sample stream.
#[derive(Debug, Clone)]
pub struct FilterState {
    filter: RttFilter,
    accepted: Vec<u64>,
    rejected: usize,
}

impl FilterState {
    /// Creates filter state for the given filter.
    pub fn new(filter: RttFilter) -> Self {
        FilterState {
            filter,
            accepted: Vec::new(),
            rejected: 0,
        }
    }

    /// Offers a sample; returns `true` (and records it) if accepted.
    pub fn offer(&mut self, sample_us: u64) -> bool {
        let ok = match self.filter {
            RttFilter::None => true,
            RttFilter::StaticFloor { min_us } => sample_us >= min_us,
            RttFilter::DynamicRange { lower, upper } => {
                if self.accepted.is_empty() {
                    true
                } else {
                    let m = self.running_median();
                    let s = sample_us as f64;
                    s >= lower * m && s <= upper * m
                }
            }
        };
        if ok {
            // Insert keeping `accepted` sorted, so the median is O(1).
            let pos = self.accepted.partition_point(|&v| v < sample_us);
            self.accepted.insert(pos, sample_us);
        } else {
            self.rejected += 1;
        }
        ok
    }

    /// Median of accepted samples (0 if none).
    pub fn running_median(&self) -> f64 {
        if self.accepted.is_empty() {
            return 0.0;
        }
        let n = self.accepted.len();
        if n % 2 == 1 {
            self.accepted[n / 2] as f64
        } else {
            (self.accepted[n / 2 - 1] + self.accepted[n / 2]) as f64 / 2.0
        }
    }

    /// Number of samples rejected so far.
    pub fn rejected(&self) -> usize {
        self.rejected
    }

    /// Number of samples accepted so far.
    pub fn accepted_count(&self) -> usize {
        self.accepted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn none_accepts_everything() {
        let mut f = FilterState::new(RttFilter::None);
        assert!(f.offer(0));
        assert!(f.offer(u64::MAX));
        assert_eq!(f.rejected(), 0);
        assert_eq!(f.accepted_count(), 2);
    }

    #[test]
    fn static_floor_rejects_short_samples() {
        let mut f = FilterState::new(RttFilter::StaticFloor { min_us: 1000 });
        assert!(!f.offer(999));
        assert!(f.offer(1000));
        assert!(f.offer(50_000));
        assert_eq!(f.rejected(), 1);
    }

    #[test]
    fn dynamic_range_seeds_with_first_sample() {
        let mut f = FilterState::new(RttFilter::DynamicRange {
            lower: 0.1,
            upper: 10.0,
        });
        assert!(f.offer(40_000), "first sample always accepted");
        // 100 µs is far below 0.1 × 40 ms → reject (a reordering artefact).
        assert!(!f.offer(100));
        // 45 ms is within range.
        assert!(f.offer(45_000));
        // 10 s is far above 10 × median → reject.
        assert!(!f.offer(10_000_000));
        assert_eq!(f.rejected(), 2);
    }

    #[test]
    fn running_median_odd_even() {
        let mut f = FilterState::new(RttFilter::None);
        assert_eq!(f.running_median(), 0.0);
        f.offer(10);
        assert_eq!(f.running_median(), 10.0);
        f.offer(30);
        assert_eq!(f.running_median(), 20.0);
        f.offer(20);
        assert_eq!(f.running_median(), 20.0);
    }

    #[test]
    fn median_is_order_independent() {
        let mut a = FilterState::new(RttFilter::None);
        let mut b = FilterState::new(RttFilter::None);
        for v in [5u64, 1, 9, 3, 7] {
            a.offer(v);
        }
        for v in [9u64, 7, 5, 3, 1] {
            b.offer(v);
        }
        assert_eq!(a.running_median(), b.running_median());
        assert_eq!(a.running_median(), 5.0);
    }

    #[test]
    fn default_filter_is_none() {
        assert_eq!(RttFilter::default(), RttFilter::None);
    }

    proptest::proptest! {
        #[test]
        fn prop_static_floor_partition(samples in proptest::collection::vec(0u64..100_000, 0..50)) {
            let mut f = FilterState::new(RttFilter::StaticFloor { min_us: 500 });
            for &s in &samples {
                let accepted = f.offer(s);
                proptest::prop_assert_eq!(accepted, s >= 500);
            }
            let expected_rejected = samples.iter().filter(|&&s| s < 500).count();
            proptest::prop_assert_eq!(f.rejected(), expected_rejected);
        }
    }
}
