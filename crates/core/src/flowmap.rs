//! Multi-flow demultiplexing for on-path observers.
//!
//! A real tap sees interleaved packets of many connections and must key
//! its spin state per flow — on the wire, the destination connection ID
//! is the only usable key (the paper's qlog approach sidesteps this by
//! having one log per connection; an in-network observer cannot).

use crate::observation::PacketObservation;
use crate::observer::{ObserverConfig, SpinObserver};
use std::collections::BTreeMap;

/// Per-flow spin observation keyed by an opaque flow key (typically the
/// destination connection ID bytes).
#[derive(Debug, Clone)]
pub struct FlowMap<K: Ord + Clone> {
    config: ObserverConfig,
    flows: BTreeMap<K, SpinObserver>,
}

impl<K: Ord + Clone> FlowMap<K> {
    /// Creates an empty map; every new flow observer uses `config`.
    pub fn new(config: ObserverConfig) -> Self {
        FlowMap {
            config,
            flows: BTreeMap::new(),
        }
    }

    /// Feeds one packet of flow `key`; returns an accepted RTT sample if
    /// the packet completed a spin period.
    pub fn observe(&mut self, key: K, obs: &PacketObservation) -> Option<u64> {
        let config = self.config;
        self.flows
            .entry(key)
            .or_insert_with(|| SpinObserver::with_config(config))
            .observe(obs)
    }

    /// Number of flows seen.
    pub fn len(&self) -> usize {
        self.flows.len()
    }

    /// Whether no flow was seen.
    pub fn is_empty(&self) -> bool {
        self.flows.is_empty()
    }

    /// The observer of one flow.
    pub fn flow(&self, key: &K) -> Option<&SpinObserver> {
        self.flows.get(key)
    }

    /// Iterates over `(key, observer)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (&K, &SpinObserver)> {
        self.flows.iter()
    }

    /// Flows with at least one accepted RTT sample.
    pub fn measurable_flows(&self) -> usize {
        self.flows
            .values()
            .filter(|o| !o.rtt_samples_us().is_empty())
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t_ms: u64, spin: bool) -> PacketObservation {
        PacketObservation::wire(t_ms * 1000, spin)
    }

    #[test]
    fn flows_are_tracked_independently() {
        let mut map: FlowMap<u8> = FlowMap::new(ObserverConfig::default());
        // Flow 1: 40 ms square wave. Flow 2: constant zero. Interleaved.
        for k in 0..6u64 {
            map.observe(1, &obs(k * 40, k % 2 == 0));
            map.observe(2, &obs(k * 40 + 1, false));
        }
        assert_eq!(map.len(), 2);
        assert_eq!(map.measurable_flows(), 1);
        let flow1 = map.flow(&1).unwrap();
        assert_eq!(flow1.mean_rtt_ms(), Some(40.0));
        let flow2 = map.flow(&2).unwrap();
        assert!(flow2.rtt_samples_us().is_empty());
        assert_eq!(flow2.value_counts(), (6, 0));
    }

    #[test]
    fn interleaving_does_not_create_cross_flow_edges() {
        let mut map: FlowMap<u8> = FlowMap::new(ObserverConfig::default());
        // Two all-constant flows with opposite values: a naive observer
        // that ignored flow keys would see an edge on every packet.
        for k in 0..10u64 {
            map.observe(1, &obs(k, false));
            map.observe(2, &obs(k, true));
        }
        for (_, flow) in map.iter() {
            assert!(flow.edges().is_empty(), "no intra-flow edges");
        }
    }

    #[test]
    fn empty_map() {
        let map: FlowMap<u64> = FlowMap::new(ObserverConfig::default());
        assert!(map.is_empty());
        assert_eq!(map.len(), 0);
        assert_eq!(map.measurable_flows(), 0);
        assert!(map.flow(&1).is_none());
    }

    #[test]
    fn sample_returned_on_completed_period() {
        let mut map: FlowMap<&'static str> = FlowMap::new(ObserverConfig::default());
        assert_eq!(map.observe("a", &obs(0, false)), None);
        assert_eq!(map.observe("a", &obs(40, true)), None);
        assert_eq!(map.observe("a", &obs(80, false)), Some(40_000));
    }
}
