//! The passive spin-bit observer.
//!
//! The observer watches a single direction of a flow (the paper watches
//! the server→client direction through the client's own qlog) and detects
//! **spin edges**: packets whose spin bit differs from the previous
//! packet's. The time between two consecutive edges is one full
//! round-trip — the square wave's half-period equals the RTT because each
//! flip must travel to the peer and be reflected back before the next
//! flip can appear (RFC 9000 §17.4).

use crate::heuristics::{FilterState, RttFilter};
use crate::observation::PacketObservation;
use serde::{Deserialize, Serialize};

/// Observer configuration.
#[derive(Debug, Clone, Copy, Default, Serialize, Deserialize)]
pub struct ObserverConfig {
    /// Heuristic filter applied to candidate RTT samples.
    pub filter: RttFilter,
    /// If `true`, only edges carried by packets with a saturated Valid
    /// Edge Counter (VEC == 3) produce RTT samples. Requires endpoints
    /// that set the VEC; plain RFC 9000 endpoints send 0, which would
    /// suppress all samples, so this defaults to `false`.
    pub require_valid_edge: bool,
}

/// A detected spin edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpinEdge {
    /// When the edge was observed (µs).
    pub time_us: u64,
    /// The new spin value after the flip.
    pub to: bool,
    /// The packet number of the edge packet, if known.
    pub packet_number: Option<u64>,
}

/// Streaming spin-edge detector and RTT estimator for one flow direction.
#[derive(Debug, Clone)]
pub struct SpinObserver {
    config: ObserverConfig,
    last_spin: Option<bool>,
    last_edge_time: Option<u64>,
    edges: Vec<SpinEdge>,
    samples: Vec<u64>,
    filter: FilterState,
    packets_seen: usize,
    zeros: usize,
    ones: usize,
}

impl Default for SpinObserver {
    fn default() -> Self {
        Self::new()
    }
}

impl SpinObserver {
    /// Creates an observer with default (unfiltered) configuration —
    /// the paper's baseline.
    pub fn new() -> Self {
        Self::with_config(ObserverConfig::default())
    }

    /// Creates an observer with the given configuration.
    pub fn with_config(config: ObserverConfig) -> Self {
        SpinObserver {
            config,
            last_spin: None,
            last_edge_time: None,
            edges: Vec::new(),
            samples: Vec::new(),
            filter: FilterState::new(config.filter),
            packets_seen: 0,
            zeros: 0,
            ones: 0,
        }
    }

    /// Feeds one observed packet. Returns the RTT sample (µs) if this
    /// packet completed an accepted spin period.
    pub fn observe(&mut self, obs: &PacketObservation) -> Option<u64> {
        self.packets_seen += 1;
        if obs.spin {
            self.ones += 1;
        } else {
            self.zeros += 1;
        }

        let is_edge = match self.last_spin {
            None => {
                self.last_spin = Some(obs.spin);
                return None;
            }
            Some(prev) => prev != obs.spin,
        };
        if !is_edge {
            return None;
        }
        self.last_spin = Some(obs.spin);

        if self.config.require_valid_edge && obs.vec != crate::vec_counter::VEC_MAX {
            // Invalid edge per the VEC: note the edge but produce no sample
            // and do not restart the period clock from an invalid edge.
            self.edges.push(SpinEdge {
                time_us: obs.time_us,
                to: obs.spin,
                packet_number: obs.packet_number,
            });
            return None;
        }

        self.edges.push(SpinEdge {
            time_us: obs.time_us,
            to: obs.spin,
            packet_number: obs.packet_number,
        });

        let sample = self
            .last_edge_time
            .map(|prev| obs.time_us.saturating_sub(prev));
        self.last_edge_time = Some(obs.time_us);

        match sample {
            Some(s) if self.filter.offer(s) => {
                self.samples.push(s);
                Some(s)
            }
            _ => None,
        }
    }

    /// Feeds a whole observation sequence; returns the accepted samples.
    pub fn observe_all(&mut self, observations: &[PacketObservation]) -> Vec<u64> {
        observations
            .iter()
            .filter_map(|o| self.observe(o))
            .collect()
    }

    /// Accepted RTT samples in microseconds, in observation order.
    pub fn rtt_samples_us(&self) -> &[u64] {
        &self.samples
    }

    /// Mean of accepted samples in milliseconds, if any.
    pub fn mean_rtt_ms(&self) -> Option<f64> {
        if self.samples.is_empty() {
            None
        } else {
            let sum: u64 = self.samples.iter().sum();
            Some(sum as f64 / self.samples.len() as f64 / 1000.0)
        }
    }

    /// Minimum accepted sample in microseconds, if any.
    pub fn min_rtt_us(&self) -> Option<u64> {
        self.samples.iter().copied().min()
    }

    /// All detected edges (including, under VEC mode, invalid ones).
    pub fn edges(&self) -> &[SpinEdge] {
        &self.edges
    }

    /// Number of packets observed.
    pub fn packets_seen(&self) -> usize {
        self.packets_seen
    }

    /// Count of packets with spin == 0 / spin == 1.
    pub fn value_counts(&self) -> (usize, usize) {
        (self.zeros, self.ones)
    }

    /// Number of samples discarded by the heuristic filter.
    pub fn filtered_out(&self) -> usize {
        self.filter.rejected()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(time_ms: u64, spin: bool) -> PacketObservation {
        PacketObservation::wire(time_ms * 1000, spin)
    }

    #[test]
    fn square_wave_yields_rtt_samples() {
        // Perfect square wave with a 40 ms period (= RTT 40 ms).
        let mut o = SpinObserver::new();
        let seq = [
            obs(0, false),
            obs(10, false),
            obs(40, true), // edge 1
            obs(50, true),
            obs(80, false), // edge 2 → sample 40 ms
            obs(120, true), // edge 3 → sample 40 ms
        ];
        let samples = o.observe_all(&seq);
        assert_eq!(samples, vec![40_000, 40_000]);
        assert_eq!(o.edges().len(), 3);
        assert_eq!(o.mean_rtt_ms(), Some(40.0));
        assert_eq!(o.min_rtt_us(), Some(40_000));
    }

    #[test]
    fn first_edge_produces_no_sample() {
        let mut o = SpinObserver::new();
        assert_eq!(o.observe(&obs(0, false)), None);
        assert_eq!(o.observe(&obs(10, true)), None, "first edge, no period yet");
        assert_eq!(o.observe(&obs(50, false)), Some(40_000));
    }

    #[test]
    fn constant_signal_has_no_edges() {
        let mut o = SpinObserver::new();
        for t in 0..10 {
            o.observe(&obs(t * 10, true));
        }
        assert!(o.edges().is_empty());
        assert!(o.rtt_samples_us().is_empty());
        assert_eq!(o.mean_rtt_ms(), None);
        assert_eq!(o.value_counts(), (0, 10));
    }

    #[test]
    fn reordering_near_edge_creates_ultra_short_sample() {
        // The Fig. 1b failure mode: a stale spin=0 packet arrives just
        // after the 0→1 edge, creating two bogus edges 1 ms apart.
        let mut o = SpinObserver::new();
        let seq = [
            obs(0, false),
            obs(40, true),  // real edge
            obs(41, false), // stale packet → bogus edge, 1 ms sample
            obs(42, true),  // back → bogus edge, 1 ms sample
            obs(80, false), // real edge → 38 ms
        ];
        let samples = o.observe_all(&seq);
        assert_eq!(samples, vec![1000, 1000, 38_000]);
    }

    #[test]
    fn static_floor_filter_drops_reordering_artefacts() {
        let cfg = ObserverConfig {
            filter: RttFilter::StaticFloor { min_us: 5000 },
            ..ObserverConfig::default()
        };
        let mut o = SpinObserver::with_config(cfg);
        let seq = [
            obs(0, false),
            obs(40, true),
            obs(41, false),
            obs(42, true),
            obs(80, false),
        ];
        let samples = o.observe_all(&seq);
        assert_eq!(samples, vec![38_000]);
        assert_eq!(o.filtered_out(), 2);
    }

    #[test]
    fn greased_per_packet_signal_yields_garbage_samples() {
        // Alternating every packet at 1 ms spacing → 1 ms "RTT" samples,
        // which is what the paper's grease filter keys on.
        let mut o = SpinObserver::new();
        for t in 0..20u64 {
            o.observe(&obs(t, t % 2 == 0));
        }
        assert!(o.min_rtt_us().unwrap() <= 1000);
    }

    #[test]
    fn vec_mode_only_accepts_saturated_edges() {
        let cfg = ObserverConfig {
            require_valid_edge: true,
            ..ObserverConfig::default()
        };
        let mut o = SpinObserver::with_config(cfg);
        let seq = [
            PacketObservation::wire(0, false),
            PacketObservation::wire(40_000, true).with_vec(1), // invalid edge
            PacketObservation::wire(80_000, false).with_vec(3), // valid edge
            PacketObservation::wire(120_000, true).with_vec(3), // valid edge → sample
        ];
        let mut samples = Vec::new();
        for s in &seq {
            if let Some(v) = o.observe(s) {
                samples.push(v);
            }
        }
        assert_eq!(samples, vec![40_000]);
        assert_eq!(o.edges().len(), 3, "invalid edges still recorded");
    }

    #[test]
    fn value_counts_track_zeros_and_ones() {
        let mut o = SpinObserver::new();
        o.observe(&obs(0, false));
        o.observe(&obs(1, false));
        o.observe(&obs(2, true));
        assert_eq!(o.value_counts(), (2, 1));
        assert_eq!(o.packets_seen(), 3);
    }

    #[test]
    fn saturating_on_nonmonotonic_time() {
        // Observation times should be monotonic, but a defensive observer
        // must not panic if they are not (e.g. corrupt capture).
        let mut o = SpinObserver::new();
        o.observe(&obs(100, false));
        o.observe(&obs(100, true));
        let s = o.observe(&PacketObservation::wire(50_000, false));
        assert_eq!(s, Some(0), "clamped to zero, no panic");
    }

    proptest::proptest! {
        #[test]
        fn prop_samples_equal_edge_gaps(times in proptest::collection::vec(0u64..1_000_000, 2..64)) {
            // Build a monotone time sequence with alternating spin.
            let mut sorted = times.clone();
            sorted.sort_unstable();
            sorted.dedup();
            proptest::prop_assume!(sorted.len() >= 2);
            let seq: Vec<PacketObservation> = sorted
                .iter()
                .enumerate()
                .map(|(i, &t)| PacketObservation::wire(t, i % 2 == 0))
                .collect();
            let mut o = SpinObserver::new();
            let samples = o.observe_all(&seq);
            // Every packet after the first is an edge; every edge after the
            // second produces a sample equal to the time gap.
            let expected: Vec<u64> = sorted.windows(2).skip(1).map(|w| w[1] - w[0]).collect();
            proptest::prop_assert_eq!(samples, expected);
        }
    }
}
