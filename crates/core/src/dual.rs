//! Dual-direction on-path observation (RFC 9312 §4.2.1).
//!
//! An observer that sees *both* directions of a flow can split the RTT
//! into two components at its own position: when the client's flip
//! crosses the tap (client→server edge) and comes back reflected
//! (server→client edge with the same value), the gap is the
//! **server-side component** (tap → server → tap); the gap from the
//! reflected edge to the client's next inversion crossing the tap is the
//! **client-side component**. Component pairs sum to the full RTT —
//! this is how an in-network device localizes latency to one side of
//! itself, the operational use case the paper's introduction motivates.

use crate::observation::PacketObservation;
use serde::{Deserialize, Serialize};

/// Which direction a packet crossed the tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Direction {
    /// Client → server.
    Upstream,
    /// Server → client.
    Downstream,
}

/// Streaming two-direction spin observer.
#[derive(Debug, Clone, Default)]
pub struct DualDirectionObserver {
    last_spin: [Option<bool>; 2],
    /// Last edge (time, value) per direction.
    last_edge: [Option<(u64, bool)>; 2],
    /// Tap → server → tap component samples (µs).
    server_side_us: Vec<u64>,
    /// Tap → client → tap component samples (µs).
    client_side_us: Vec<u64>,
}

fn dir_index(dir: Direction) -> usize {
    match dir {
        Direction::Upstream => 0,
        Direction::Downstream => 1,
    }
}

impl DualDirectionObserver {
    /// Creates an empty observer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Feeds one packet seen crossing the tap in `dir`.
    pub fn observe(&mut self, dir: Direction, obs: &PacketObservation) {
        let idx = dir_index(dir);
        let is_edge = match self.last_spin[idx] {
            None => {
                self.last_spin[idx] = Some(obs.spin);
                return;
            }
            Some(prev) => prev != obs.spin,
        };
        self.last_spin[idx] = Some(obs.spin);
        if !is_edge {
            return;
        }

        match dir {
            Direction::Downstream => {
                // The server reflected some client edge: if we saw that
                // edge go up with the same value, the gap is the
                // server-side component.
                if let Some((up_time, up_value)) = self.last_edge[0] {
                    if up_value == obs.spin && obs.time_us >= up_time {
                        self.server_side_us.push(obs.time_us - up_time);
                    }
                }
            }
            Direction::Upstream => {
                // The client inverted the value it received: the gap from
                // the reflected edge is the client-side component.
                if let Some((down_time, down_value)) = self.last_edge[1] {
                    if down_value != obs.spin && obs.time_us >= down_time {
                        self.client_side_us.push(obs.time_us - down_time);
                    }
                }
            }
        }
        self.last_edge[idx] = Some((obs.time_us, obs.spin));
    }

    /// Server-side component samples (µs).
    pub fn server_side_us(&self) -> &[u64] {
        &self.server_side_us
    }

    /// Client-side component samples (µs).
    pub fn client_side_us(&self) -> &[u64] {
        &self.client_side_us
    }

    /// Mean of a sample list in ms.
    fn mean_ms(samples: &[u64]) -> Option<f64> {
        if samples.is_empty() {
            None
        } else {
            Some(samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1000.0)
        }
    }

    /// Mean server-side component (ms).
    pub fn server_side_mean_ms(&self) -> Option<f64> {
        Self::mean_ms(&self.server_side_us)
    }

    /// Mean client-side component (ms).
    pub fn client_side_mean_ms(&self) -> Option<f64> {
        Self::mean_ms(&self.client_side_us)
    }

    /// Mean full RTT reconstructed from the two components (ms).
    pub fn full_rtt_mean_ms(&self) -> Option<f64> {
        Some(self.server_side_mean_ms()? + self.client_side_mean_ms()?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t_ms: u64, spin: bool) -> PacketObservation {
        PacketObservation::wire(t_ms * 1000, spin)
    }

    /// A clean loop at a tap 10 ms from the client and 30 ms from the
    /// server (RTT 80 ms): client edge up at t, reflected down at t+60
    /// (tap→server→tap), next client edge up at t+80.
    fn feed_clean_loop(observer: &mut DualDirectionObserver, periods: u64) {
        observer.observe(Direction::Upstream, &obs(0, false));
        observer.observe(Direction::Downstream, &obs(1, false));
        for k in 0..periods {
            let base = 10 + 80 * k;
            let value = k % 2 == 0;
            observer.observe(Direction::Upstream, &obs(base, value));
            observer.observe(Direction::Downstream, &obs(base + 60, value));
        }
    }

    #[test]
    fn components_split_the_rtt_at_the_tap() {
        let mut observer = DualDirectionObserver::new();
        feed_clean_loop(&mut observer, 4);
        assert_eq!(observer.server_side_mean_ms(), Some(60.0));
        assert_eq!(observer.client_side_mean_ms(), Some(20.0));
        assert_eq!(observer.full_rtt_mean_ms(), Some(80.0));
    }

    #[test]
    fn sample_counts() {
        let mut observer = DualDirectionObserver::new();
        feed_clean_loop(&mut observer, 4);
        // 4 upstream edges → 4 reflections; client components need a
        // previous downstream edge → 3.
        assert_eq!(observer.server_side_us().len(), 4);
        assert_eq!(observer.client_side_us().len(), 3);
    }

    #[test]
    fn no_samples_without_edges() {
        let mut observer = DualDirectionObserver::new();
        for t in 0..10 {
            observer.observe(Direction::Upstream, &obs(t, false));
            observer.observe(Direction::Downstream, &obs(t, false));
        }
        assert!(observer.full_rtt_mean_ms().is_none());
        assert!(observer.server_side_us().is_empty());
    }

    #[test]
    fn mismatched_reflection_value_is_ignored() {
        let mut observer = DualDirectionObserver::new();
        observer.observe(Direction::Upstream, &obs(0, false));
        observer.observe(Direction::Downstream, &obs(0, false));
        // Client edge to 1 at t=10.
        observer.observe(Direction::Upstream, &obs(10, true));
        // A bogus downstream edge to 0 (not the reflection of 1).
        // It is a downstream edge only if the value changed — it did not
        // (downstream last was 0) — so feed a 1 then 0 to force an edge
        // with the wrong value relationship.
        observer.observe(Direction::Downstream, &obs(30, true)); // genuine reflection
        observer.observe(Direction::Downstream, &obs(40, false)); // spurious flip back
                                                                  // The spurious 1→0 downstream edge does not match upstream value 1.
        assert_eq!(observer.server_side_us(), &[20_000]);
    }

    #[test]
    fn one_direction_only_yields_nothing() {
        let mut observer = DualDirectionObserver::new();
        for k in 0..6 {
            observer.observe(Direction::Downstream, &obs(k * 40, k % 2 == 0));
        }
        assert!(observer.server_side_us().is_empty());
        assert!(observer.client_side_us().is_empty());
    }
}
