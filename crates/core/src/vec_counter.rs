//! The Valid Edge Counter (VEC) of De Vaere et al. (CoNEXT 2018).
//!
//! The original "three bits suffice" proposal accompanied the spin bit
//! with a two-bit counter that lets observers tell *valid* spin edges
//! (those reflecting a full round trip) from spurious ones (reordering,
//! loss, application-limited flows). The VEC did **not** make it into
//! RFC 9000 — the paper highlights this gap when discussing measurement
//! robustness — but our endpoints can optionally carry it in the short
//! header's reserved bits (0x18), enabling the `ablation_vec` bench.
//!
//! Endpoint logic (following De Vaere et al. §3.2):
//!
//! * packets that do not flip the observable spin value carry VEC 0;
//! * a packet that flips the spin carries VEC `min(v_in + 1, 3)` where
//!   `v_in` is the VEC of the packet that caused the flip — except that a
//!   flip sent under delay/loss suspicion carries VEC 1 (restart);
//! * an observer treats an edge as fully valid once the counter has
//!   saturated at 3 (the signal has completed ≥ 1.5 clean round trips).

use serde::{Deserialize, Serialize};

/// VEC value on non-edge packets.
pub const VEC_INVALID: u8 = 0;
/// Saturated (fully valid) VEC value.
pub const VEC_MAX: u8 = 3;

/// Endpoint-side VEC state machine.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct VecEndpoint {
    /// VEC of the incoming packet that set the current spin value.
    incoming_vec: u8,
    /// Whether the pending outgoing flip is the first ever (client start).
    started: bool,
}

impl VecEndpoint {
    /// Creates fresh state.
    pub fn new() -> Self {
        VecEndpoint::default()
    }

    /// Records the VEC of the incoming packet (with the largest packet
    /// number) that updated the endpoint's spin state.
    pub fn on_spin_update(&mut self, incoming_vec: u8) {
        self.incoming_vec = incoming_vec.min(VEC_MAX);
        self.started = true;
    }

    /// VEC to put on an outgoing packet. `is_edge` = this packet flips
    /// the observable spin value; `suspect` = the flip happens after loss
    /// or retransmission and should restart the validity chain.
    pub fn outgoing_vec(&self, is_edge: bool, suspect: bool) -> u8 {
        if !is_edge {
            VEC_INVALID
        } else if suspect || !self.started {
            1
        } else {
            (self.incoming_vec + 1).min(VEC_MAX)
        }
    }
}

/// Observer-side helper: decides whether an observed edge is valid.
#[derive(Debug, Clone, Copy, Default)]
pub struct VecObserver;

impl VecObserver {
    /// An edge is fully valid once the counter saturates.
    pub fn edge_is_valid(vec: u8) -> bool {
        vec >= VEC_MAX
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn non_edges_carry_zero() {
        let e = VecEndpoint::new();
        assert_eq!(e.outgoing_vec(false, false), VEC_INVALID);
    }

    #[test]
    fn first_edge_starts_at_one() {
        let e = VecEndpoint::new();
        assert_eq!(e.outgoing_vec(true, false), 1);
    }

    #[test]
    fn counter_increments_along_the_loop() {
        // Client edge (1) → server reflects with 2 → client flips with 3.
        let mut server = VecEndpoint::new();
        server.on_spin_update(1);
        assert_eq!(server.outgoing_vec(true, false), 2);

        let mut client = VecEndpoint::new();
        client.on_spin_update(2);
        assert_eq!(client.outgoing_vec(true, false), 3);
    }

    #[test]
    fn counter_saturates_at_three() {
        let mut e = VecEndpoint::new();
        e.on_spin_update(3);
        assert_eq!(e.outgoing_vec(true, false), 3);
        e.on_spin_update(7); // clamped on input too
        assert_eq!(e.outgoing_vec(true, false), 3);
    }

    #[test]
    fn suspect_flip_restarts_chain() {
        let mut e = VecEndpoint::new();
        e.on_spin_update(3);
        assert_eq!(e.outgoing_vec(true, true), 1);
    }

    #[test]
    fn observer_accepts_only_saturated() {
        assert!(!VecObserver::edge_is_valid(0));
        assert!(!VecObserver::edge_is_valid(1));
        assert!(!VecObserver::edge_is_valid(2));
        assert!(VecObserver::edge_is_valid(3));
    }
}
