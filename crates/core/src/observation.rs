//! The raw material of the study: per-packet spin observations.

use serde::{Deserialize, Serialize};

/// One observed 1-RTT packet, as extracted from a qlog trace (§3.3 of the
/// paper) or from an on-path tap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct PacketObservation {
    /// Observation timestamp in microseconds (virtual time).
    pub time_us: u64,
    /// The spin bit value on the wire.
    pub spin: bool,
    /// The QUIC packet number. Available when observing from the endpoint's
    /// own qlog (the paper's setup) or with oracle access in the simulator;
    /// `None` for a strictly passive on-path observer, for whom the packet
    /// number is encrypted.
    pub packet_number: Option<u64>,
    /// The Valid Edge Counter (De Vaere et al.) if the endpoints carry it
    /// in the reserved short-header bits; `0` otherwise.
    pub vec: u8,
}

impl PacketObservation {
    /// Creates an observation without packet number or VEC.
    pub fn wire(time_us: u64, spin: bool) -> Self {
        PacketObservation {
            time_us,
            spin,
            packet_number: None,
            vec: 0,
        }
    }

    /// Creates a qlog-style observation with ground-truth packet number.
    pub fn qlog(time_us: u64, packet_number: u64, spin: bool) -> Self {
        PacketObservation {
            time_us,
            spin,
            packet_number: Some(packet_number),
            vec: 0,
        }
    }

    /// Builder-style: attach a VEC value (clamped to 0..=3).
    pub fn with_vec(mut self, vec: u8) -> Self {
        self.vec = vec.min(3);
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        let w = PacketObservation::wire(10, true);
        assert_eq!(w.time_us, 10);
        assert!(w.spin);
        assert_eq!(w.packet_number, None);
        assert_eq!(w.vec, 0);

        let q = PacketObservation::qlog(20, 5, false);
        assert_eq!(q.packet_number, Some(5));
        assert!(!q.spin);
    }

    #[test]
    fn with_vec_clamps() {
        assert_eq!(PacketObservation::wire(0, false).with_vec(2).vec, 2);
        assert_eq!(PacketObservation::wire(0, false).with_vec(7).vec, 3);
    }

    #[test]
    fn serde_roundtrip() {
        let obs = PacketObservation::qlog(1, 2, true).with_vec(3);
        let json = serde_json::to_string(&obs).unwrap();
        let back: PacketObservation = serde_json::from_str(&json).unwrap();
        assert_eq!(back, obs);
    }
}
