//! Per-connection observer report: everything the analysis pipeline needs
//! about one connection, in one structure.

use crate::accuracy::AccuracySample;
use crate::classify::{classify_flow, FlowClassification};
use crate::grease::GreaseFilter;
use crate::observation::PacketObservation;
use crate::observer::ObserverConfig;
use crate::reorder::ReorderComparison;
use serde::{Deserialize, Serialize};

/// The complete spin-bit assessment of one connection.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ObserverReport {
    /// Table 3 classification.
    pub classification: FlowClassification,
    /// Number of observed 1-RTT packets.
    pub packets: usize,
    /// Spin RTT samples, received order (µs) — the paper's R mode.
    pub spin_samples_received_us: Vec<u64>,
    /// Spin RTT samples, packet-number order (µs) — the paper's S mode.
    pub spin_samples_sorted_us: Vec<u64>,
    /// The QUIC stack's RTT samples (µs), when available.
    pub stack_samples_us: Vec<u64>,
}

impl ObserverReport {
    /// Builds the report for one connection.
    ///
    /// `observations` is the received-order packet sequence (§3.3);
    /// `stack_samples_us` are the endpoint's own RTT estimates used both
    /// as the accuracy baseline and for the grease filter.
    pub fn build(
        observations: &[PacketObservation],
        stack_samples_us: Vec<u64>,
        config: ObserverConfig,
        grease: GreaseFilter,
    ) -> Self {
        let min_stack = stack_samples_us.iter().copied().min();
        let classification = classify_flow(observations, min_stack, grease);
        let cmp = ReorderComparison::run(observations, config);
        ObserverReport {
            classification,
            packets: observations.len(),
            spin_samples_received_us: cmp.samples_received_us,
            spin_samples_sorted_us: cmp.samples_sorted_us,
            stack_samples_us,
        }
    }

    /// Mean spin RTT (received order) in ms.
    pub fn spin_rtt_mean_ms(&self) -> Option<f64> {
        mean_ms(&self.spin_samples_received_us)
    }

    /// Mean spin RTT (sorted order) in ms.
    pub fn spin_rtt_mean_sorted_ms(&self) -> Option<f64> {
        mean_ms(&self.spin_samples_sorted_us)
    }

    /// Mean stack RTT in ms.
    pub fn stack_rtt_mean_ms(&self) -> Option<f64> {
        mean_ms(&self.stack_samples_us)
    }

    /// Fig. 3/4 accuracy sample, received order.
    pub fn accuracy_received(&self) -> Option<AccuracySample> {
        AccuracySample::from_samples_us(&self.spin_samples_received_us, &self.stack_samples_us)
    }

    /// Fig. 3/4 accuracy sample, sorted order.
    pub fn accuracy_sorted(&self) -> Option<AccuracySample> {
        AccuracySample::from_samples_us(&self.spin_samples_sorted_us, &self.stack_samples_us)
    }

    /// Whether R and S orders disagree (§5.2 reordering impact).
    pub fn reordering_changed_result(&self) -> bool {
        self.spin_samples_received_us != self.spin_samples_sorted_us
    }
}

fn mean_ms(samples: &[u64]) -> Option<f64> {
    if samples.is_empty() {
        None
    } else {
        Some(samples.iter().sum::<u64>() as f64 / samples.len() as f64 / 1000.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn obs(t_ms: u64, pn: u64, spin: bool) -> PacketObservation {
        PacketObservation::qlog(t_ms * 1000, pn, spin)
    }

    fn clean_flow() -> Vec<PacketObservation> {
        vec![
            obs(0, 0, false),
            obs(40, 1, true),
            obs(80, 2, false),
            obs(120, 3, true),
        ]
    }

    #[test]
    fn report_for_clean_spinning_flow() {
        let report = ObserverReport::build(
            &clean_flow(),
            vec![40_000, 40_000],
            ObserverConfig::default(),
            GreaseFilter::paper(),
        );
        assert_eq!(report.classification, FlowClassification::Spinning);
        assert_eq!(report.packets, 4);
        assert_eq!(report.spin_rtt_mean_ms(), Some(40.0));
        assert_eq!(report.stack_rtt_mean_ms(), Some(40.0));
        assert!(!report.reordering_changed_result());
        let acc = report.accuracy_received().unwrap();
        assert_eq!(acc.mapped_ratio(), 1.0);
    }

    #[test]
    fn report_for_overestimating_flow() {
        // Spin period inflated by 200 ms server processing.
        let seq = vec![obs(0, 0, false), obs(240, 1, true), obs(480, 2, false)];
        let report = ObserverReport::build(
            &seq,
            vec![40_000],
            ObserverConfig::default(),
            GreaseFilter::paper(),
        );
        let acc = report.accuracy_received().unwrap();
        assert!(acc.overestimates());
        assert_eq!(acc.mapped_ratio(), 6.0);
        assert_eq!(acc.abs_diff_ms(), 200.0);
    }

    #[test]
    fn report_for_all_zero_flow_has_no_accuracy() {
        let seq = vec![obs(0, 0, false), obs(40, 1, false)];
        let report = ObserverReport::build(
            &seq,
            vec![40_000],
            ObserverConfig::default(),
            GreaseFilter::paper(),
        );
        assert_eq!(report.classification, FlowClassification::AllZero);
        assert!(report.accuracy_received().is_none());
    }

    #[test]
    fn greased_flow_flagged() {
        let seq: Vec<_> = (0..10).map(|t| obs(t, t, t % 2 == 0)).collect();
        let report = ObserverReport::build(
            &seq,
            vec![40_000],
            ObserverConfig::default(),
            GreaseFilter::paper(),
        );
        assert_eq!(report.classification, FlowClassification::Greased);
        // Accuracy is still computable for greased flows — the paper's
        // Fig. 3/4 include a Grease series.
        assert!(report.accuracy_received().is_some());
    }

    #[test]
    fn no_stack_samples_no_accuracy() {
        let report = ObserverReport::build(
            &clean_flow(),
            vec![],
            ObserverConfig::default(),
            GreaseFilter::paper(),
        );
        assert!(report.accuracy_received().is_none());
        assert!(report.accuracy_sorted().is_none());
        assert_eq!(report.stack_rtt_mean_ms(), None);
    }

    #[test]
    fn serde_roundtrip() {
        let report = ObserverReport::build(
            &clean_flow(),
            vec![40_000],
            ObserverConfig::default(),
            GreaseFilter::paper(),
        );
        let json = serde_json::to_string(&report).unwrap();
        let back: ObserverReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}
