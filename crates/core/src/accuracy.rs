//! §5.1's two accuracy metrics.
//!
//! For each connection the paper compares the **mean** of the spin-bit
//! RTT estimates against the **mean** of the QUIC stack's estimates:
//!
//! 1. *absolute accuracy*: `abs = spin − QUIC` (Fig. 3), and
//! 2. *relative accuracy*: the ratio of the means, always dividing by the
//!    smaller one and negating when `spin < QUIC`, so `-r`/`+r` mean
//!    r-fold under-/overestimation (Fig. 4).

use serde::{Deserialize, Serialize};

/// Per-connection accuracy comparison of spin vs. stack RTT means.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccuracySample {
    /// Mean of the spin-bit RTT estimates (ms).
    pub spin_mean_ms: f64,
    /// Mean of the QUIC stack RTT estimates (ms).
    pub stack_mean_ms: f64,
}

impl AccuracySample {
    /// Creates a sample; both means must be finite and non-negative.
    pub fn new(spin_mean_ms: f64, stack_mean_ms: f64) -> Self {
        assert!(
            spin_mean_ms.is_finite() && spin_mean_ms >= 0.0,
            "spin mean must be finite and >= 0, got {spin_mean_ms}"
        );
        assert!(
            stack_mean_ms.is_finite() && stack_mean_ms >= 0.0,
            "stack mean must be finite and >= 0, got {stack_mean_ms}"
        );
        AccuracySample {
            spin_mean_ms,
            stack_mean_ms,
        }
    }

    /// From microsecond sample lists; `None` if either list is empty.
    pub fn from_samples_us(spin_us: &[u64], stack_us: &[u64]) -> Option<Self> {
        if spin_us.is_empty() || stack_us.is_empty() {
            return None;
        }
        let mean = |v: &[u64]| v.iter().sum::<u64>() as f64 / v.len() as f64 / 1000.0;
        Some(AccuracySample::new(mean(spin_us), mean(stack_us)))
    }

    /// Fig. 3 metric: `spin − QUIC` in milliseconds. Positive values are
    /// overestimations by the spin bit.
    pub fn abs_diff_ms(&self) -> f64 {
        self.spin_mean_ms - self.stack_mean_ms
    }

    /// Fig. 4 metric: mapped ratio of the means.
    ///
    /// Divides the larger mean by the smaller and negates the result when
    /// the spin bit underestimates (`spin < QUIC`). A value of `+1.0` is a
    /// perfect match; `+3.0` a 3× overestimation; `-2.0` a 2×
    /// underestimation. If both means are zero the ratio is `1.0`; if only
    /// the smaller is zero the ratio saturates to `±f64::INFINITY`.
    pub fn mapped_ratio(&self) -> f64 {
        let (spin, stack) = (self.spin_mean_ms, self.stack_mean_ms);
        if spin == stack {
            return 1.0;
        }
        let (larger, smaller) = if spin > stack {
            (spin, stack)
        } else {
            (stack, spin)
        };
        let magnitude = if smaller == 0.0 {
            f64::INFINITY
        } else {
            larger / smaller
        };
        if spin < stack {
            -magnitude
        } else {
            magnitude
        }
    }

    /// Whether the spin estimate is within `pct` percent of the stack
    /// estimate (the paper's "less than 25 % difference" accuracy bar).
    pub fn within_percent(&self, pct: f64) -> bool {
        let r = self.mapped_ratio();
        r > 0.0 && r <= 1.0 + pct / 100.0
    }

    /// Whether the spin bit overestimates the stack estimate.
    pub fn overestimates(&self) -> bool {
        self.spin_mean_ms > self.stack_mean_ms
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_match() {
        let s = AccuracySample::new(40.0, 40.0);
        assert_eq!(s.abs_diff_ms(), 0.0);
        assert_eq!(s.mapped_ratio(), 1.0);
        assert!(s.within_percent(25.0));
        assert!(!s.overestimates());
    }

    #[test]
    fn overestimation() {
        let s = AccuracySample::new(120.0, 40.0);
        assert_eq!(s.abs_diff_ms(), 80.0);
        assert_eq!(s.mapped_ratio(), 3.0);
        assert!(s.overestimates());
        assert!(!s.within_percent(25.0));
    }

    #[test]
    fn underestimation_is_negative() {
        let s = AccuracySample::new(20.0, 40.0);
        assert_eq!(s.abs_diff_ms(), -20.0);
        assert_eq!(s.mapped_ratio(), -2.0);
        assert!(!s.overestimates());
        assert!(!s.within_percent(25.0), "underestimations never qualify");
    }

    #[test]
    fn within_25_percent_boundary() {
        assert!(AccuracySample::new(50.0, 40.0).within_percent(25.0));
        assert!(!AccuracySample::new(50.1, 40.0).within_percent(25.0));
        assert!(AccuracySample::new(40.0, 40.0).within_percent(0.0));
    }

    #[test]
    fn zero_means() {
        assert_eq!(AccuracySample::new(0.0, 0.0).mapped_ratio(), 1.0);
        assert_eq!(AccuracySample::new(40.0, 0.0).mapped_ratio(), f64::INFINITY);
        assert_eq!(
            AccuracySample::new(0.0, 40.0).mapped_ratio(),
            f64::NEG_INFINITY
        );
    }

    #[test]
    fn from_samples_us_means() {
        let s = AccuracySample::from_samples_us(&[40_000, 60_000], &[40_000]).unwrap();
        assert_eq!(s.spin_mean_ms, 50.0);
        assert_eq!(s.stack_mean_ms, 40.0);
        assert!(AccuracySample::from_samples_us(&[], &[1]).is_none());
        assert!(AccuracySample::from_samples_us(&[1], &[]).is_none());
    }

    #[test]
    #[should_panic(expected = "finite")]
    fn rejects_nan() {
        AccuracySample::new(f64::NAN, 1.0);
    }

    proptest::proptest! {
        #[test]
        fn prop_ratio_magnitude_at_least_one(
            spin in 0.01f64..10_000.0,
            stack in 0.01f64..10_000.0,
        ) {
            let s = AccuracySample::new(spin, stack);
            let r = s.mapped_ratio();
            proptest::prop_assert!(r.abs() >= 1.0);
            proptest::prop_assert_eq!(r > 0.0, spin >= stack);
        }

        #[test]
        fn prop_ratio_antisymmetric(
            a in 0.01f64..10_000.0,
            b in 0.01f64..10_000.0,
        ) {
            proptest::prop_assume!(a != b);
            let fwd = AccuracySample::new(a, b).mapped_ratio();
            let rev = AccuracySample::new(b, a).mapped_ratio();
            proptest::prop_assert!((fwd + rev).abs() < 1e-9);
        }
    }
}
