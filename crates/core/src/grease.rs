//! The paper's grease filter (§3.3).
//!
//! RFCs 9000/9312 recommend disabling the spin bit by *greasing* — setting
//! it randomly per packet or per connection. Per-packet greasing produces
//! spin "edges" at packet rate and therefore absurdly small RTT samples.
//! The paper filters such connections out with a simple rule: *a
//! connection presumably greases as soon as one spin-bit RTT estimate is
//! smaller than the minimum of all QUIC-stack client RTT estimates*.

use serde::{Deserialize, Serialize};

/// The §3.3 grease filter.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GreaseFilter {
    /// Scale applied to the stack minimum before comparison. The paper
    /// uses 1.0 (strict minimum); the `ablation_grease` bench sweeps this.
    pub threshold_factor: f64,
}

impl Default for GreaseFilter {
    fn default() -> Self {
        GreaseFilter {
            threshold_factor: 1.0,
        }
    }
}

impl GreaseFilter {
    /// Creates the paper's filter (factor 1.0).
    pub fn paper() -> Self {
        GreaseFilter::default()
    }

    /// Creates a filter with a custom threshold factor.
    pub fn with_factor(threshold_factor: f64) -> Self {
        GreaseFilter { threshold_factor }
    }

    /// Applies the filter: `true` = the connection is presumed to grease.
    ///
    /// `spin_samples_us` are the spin-derived RTT estimates;
    /// `min_stack_rtt_us` is the minimum of the QUIC stack's own client
    /// RTT estimates (which rely on richer information: ACK timing plus
    /// peer-reported processing delay, so they lower-bound the true RTT
    /// as seen by any honest spin signal).
    pub fn is_greased(&self, spin_samples_us: &[u64], min_stack_rtt_us: u64) -> bool {
        let threshold = (min_stack_rtt_us as f64 * self.threshold_factor) as u64;
        spin_samples_us.iter().any(|&s| s < threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn honest_spin_passes() {
        // Spin samples >= stack minimum: spin always includes extra delay.
        let f = GreaseFilter::paper();
        assert!(!f.is_greased(&[40_000, 45_000, 300_000], 40_000));
    }

    #[test]
    fn per_packet_grease_is_caught() {
        // Greasing produces packet-rate "RTTs" (≈ 1 ms) far below a real
        // 40 ms path.
        let f = GreaseFilter::paper();
        assert!(f.is_greased(&[1_000, 900, 40_000], 40_000));
    }

    #[test]
    fn single_undershoot_suffices() {
        let f = GreaseFilter::paper();
        assert!(f.is_greased(&[100_000, 39_999], 40_000));
    }

    #[test]
    fn empty_samples_are_not_greased() {
        let f = GreaseFilter::paper();
        assert!(!f.is_greased(&[], 40_000));
    }

    #[test]
    fn boundary_equal_is_not_greased() {
        let f = GreaseFilter::paper();
        assert!(!f.is_greased(&[40_000], 40_000), "strictly smaller only");
    }

    #[test]
    fn factor_scales_threshold() {
        let strict = GreaseFilter::with_factor(0.5);
        // Threshold = 20 ms: a 30 ms sample passes even though it is below
        // the raw stack minimum.
        assert!(!strict.is_greased(&[30_000], 40_000));
        let loose = GreaseFilter::with_factor(2.0);
        assert!(loose.is_greased(&[60_000], 40_000));
    }

    proptest::proptest! {
        #[test]
        fn prop_monotone_in_factor(
            samples in proptest::collection::vec(1u64..1_000_000, 1..20),
            min_stack in 1u64..1_000_000,
        ) {
            // A larger factor can only classify more connections as greased.
            let low = GreaseFilter::with_factor(0.5).is_greased(&samples, min_stack);
            let high = GreaseFilter::with_factor(2.0).is_greased(&samples, min_stack);
            if low {
                proptest::prop_assert!(high);
            }
        }
    }
}
