//! # quicspin-core — passive spin-bit observation and analysis
//!
//! This crate is the methodological heart of the reproduction: everything
//! the paper's §3.3 and §5 do with collected packet data happens here.
//!
//! * [`PacketObservation`] — the §3.3 extraction: (timestamp, packet
//!   number, spin bit) per received 1-RTT packet.
//! * [`SpinObserver`] — detects spin edges in a single observed packet
//!   stream and turns the time between consecutive edges into RTT samples,
//!   optionally applying the RFC 9312 robustness heuristics
//!   ([`heuristics::RttFilter`]).
//! * [`VecObserver`] — the Valid Edge Counter of De Vaere et al., carried
//!   in the short header's reserved bits by consenting endpoints.
//! * [`GreaseFilter`] — the paper's filter: a connection presumably
//!   greases the spin bit if any spin-derived RTT estimate undercuts the
//!   minimum of the QUIC stack's own estimates.
//! * [`classify`](classify::classify_flow) — the Table 3 taxonomy:
//!   AllZero / AllOne / Spinning / Greased.
//! * [`AccuracySample`] — §5.1's two metrics: absolute difference of the
//!   means and the mapped ratio (divide by the smaller mean; negative when
//!   the spin bit underestimates).
//! * [`reorder`] — §5.1's R/S comparison: received order vs. packets
//!   sorted by packet number.
//!
//! Nothing in this crate knows about the simulator or the QUIC stack; it
//! consumes plain observation records, so it can equally be fed from a
//! real packet capture.

pub mod accuracy;
pub mod classify;
pub mod dual;
pub mod flowmap;
pub mod grease;
pub mod heuristics;
pub mod observation;
pub mod observer;
pub mod reorder;
pub mod report;
pub mod vec_counter;

pub use accuracy::AccuracySample;
pub use classify::FlowClassification;
pub use dual::{Direction, DualDirectionObserver};
pub use flowmap::FlowMap;
pub use grease::GreaseFilter;
pub use heuristics::RttFilter;
pub use observation::PacketObservation;
pub use observer::{ObserverConfig, SpinEdge, SpinObserver};
pub use report::ObserverReport;
pub use vec_counter::{VecObserver, VEC_INVALID, VEC_MAX};
