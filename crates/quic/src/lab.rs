//! ConnectionLab: one complete client↔server exchange over a simulated
//! path — the unit of work the scanner performs once per target, and the
//! easiest way to experiment with the stack.
//!
//! The lab owns a [`Simulator`], a client and a server [`Connection`], and
//! a tiny server "application" that answers the request after a
//! configurable processing delay, in chunks separated by configurable
//! gaps. Those gaps are *end-host delay* — the very thing the paper
//! identifies as the cause of spin-bit RTT overestimation (§6): the spin
//! signal only advances when the endpoints transmit, so every server-side
//! pause stretches the observed spin period, while the stack's ACK-based
//! estimate stays anchored to the network path.

use crate::config::TransportConfig;
use crate::conn::{AppEvent, ConnCounters, Connection};
use quicspin_core::{GreaseFilter, ObserverConfig, ObserverReport, PacketObservation};
use quicspin_netsim::{
    LinkConfig, PathStats, Side, SimDuration, SimEvent, SimScratch, SimTime, Simulator, TapRecord,
};
use quicspin_qlog::{LoggedEvent, TraceLog};
use quicspin_wire::Header;

/// The server application's response behaviour.
#[derive(Debug, Clone)]
pub struct ServerProfile {
    /// Delay between receiving the full request and the first response
    /// chunk (request processing time).
    pub initial_delay: SimDuration,
    /// Response chunks: (gap after the previous chunk, chunk size in bytes).
    pub chunks: Vec<(SimDuration, usize)>,
}

impl Default for ServerProfile {
    fn default() -> Self {
        ServerProfile {
            initial_delay: SimDuration::from_millis(5),
            chunks: vec![
                (SimDuration::ZERO, 12_000),
                (SimDuration::from_millis(2), 12_000),
                (SimDuration::from_millis(2), 12_000),
            ],
        }
    }
}

impl ServerProfile {
    /// A profile answering instantly with a single chunk of `size` bytes.
    pub fn instant(size: usize) -> Self {
        ServerProfile {
            initial_delay: SimDuration::ZERO,
            chunks: vec![(SimDuration::ZERO, size)],
        }
    }

    /// Total response size.
    pub fn total_bytes(&self) -> usize {
        self.chunks.iter().map(|&(_, size)| size).sum()
    }
}

/// Configuration of one lab run.
#[derive(Debug, Clone)]
pub struct LabConfig {
    /// Full path round-trip time in milliseconds (split evenly).
    pub path_rtt_ms: f64,
    /// Per-direction jitter bound in milliseconds.
    pub jitter_ms: f64,
    /// Per-direction loss probability.
    pub loss: f64,
    /// Per-direction reorder probability.
    pub reorder: f64,
    /// How long a held-back (reordered) packet is delayed. Reordering is
    /// only observable when this exceeds the inter-packet spacing.
    pub reorder_hold_ms: f64,
    /// Seed for all randomness in the run.
    pub seed: u64,
    /// Client transport configuration.
    pub client: TransportConfig,
    /// Server transport configuration.
    pub server: TransportConfig,
    /// Server application behaviour.
    pub server_profile: ServerProfile,
    /// Bottleneck link rate in bytes/second (`None` = infinite). Finite
    /// rates spread flights across the path (ack clocking), which is what
    /// lets sub-RTT reordering cross spin edges at all.
    pub link_rate_bytes_per_sec: Option<u64>,
    /// Tap position along the path (0 = client, 1 = server), or `None`
    /// for no tap at all. Disabling the tap changes nothing about the
    /// exchange — the tap is purely passive — but skips the per-datagram
    /// capture, which a scan loop that never reads the records wants.
    pub tap_position: Option<f64>,
    /// The request bytes sent on stream 0.
    pub request: Vec<u8>,
    /// Bytes prepended to the first response chunk (e.g. an HTTP/3-style
    /// response header, so the `server:` identification travels the wire).
    pub response_prefix: Vec<u8>,
    /// Hard wall on simulated duration.
    pub max_duration: SimDuration,
    /// Measure real (host) wall time of the handshake and transfer phases
    /// into [`LabStats`]. Off by default so un-instrumented runs never
    /// read the monotonic clock.
    pub time_stages: bool,
}

impl Default for LabConfig {
    fn default() -> Self {
        LabConfig {
            path_rtt_ms: 40.0,
            jitter_ms: 0.0,
            loss: 0.0,
            reorder: 0.0,
            reorder_hold_ms: 2.0,
            seed: 1,
            client: TransportConfig::default(),
            server: TransportConfig::default(),
            server_profile: ServerProfile::default(),
            link_rate_bytes_per_sec: None,
            tap_position: Some(0.5),
            request: b"GET / HTTP/3\r\nhost: lab.example\r\n\r\n".to_vec(),
            response_prefix: Vec::new(),
            max_duration: SimDuration::from_secs(60),
            time_stages: false,
        }
    }
}

/// Operational statistics of one lab run: both endpoints' transport
/// counters, the simulated path's stats, payload-pool behaviour, and
/// (when [`LabConfig::time_stages`] is set) real wall time per phase.
///
/// Plain data — the transport stack carries no telemetry dependency; the
/// scanner maps these into its campaign registry.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LabStats {
    /// Client transport counters.
    pub client: ConnCounters,
    /// Server transport counters.
    pub server: ConnCounters,
    /// Simulated-path statistics (drops, reorders, queue high-water).
    pub path: PathStats,
    /// Delivered payload buffers reclaimed for reuse (sole handle).
    pub payload_reclaimed: u64,
    /// Delivered payloads still shared at delivery (a tap held a handle).
    pub payload_shared: u64,
    /// Host wall time from lab start to handshake completion (0 when
    /// stage timing is off or the handshake never completed).
    pub handshake_wall_ns: u64,
    /// Host wall time from handshake completion to lab end (0 when stage
    /// timing is off or the handshake never completed).
    pub transfer_wall_ns: u64,
}

/// Everything a lab run produced.
#[derive(Debug)]
pub struct LabOutcome {
    /// Did the handshake finish on the client?
    pub handshake_completed: bool,
    /// Response bytes the client received on stream 0.
    pub response_bytes: usize,
    /// The raw response data received on stream 0 (prefix + body).
    pub response_data: Vec<u8>,
    /// Whether the response stream finished (FIN seen).
    pub response_complete: bool,
    /// Client qlog trace (the paper's §3.3 data source).
    pub client_qlog: TraceLog,
    /// Server qlog trace.
    pub server_qlog: TraceLog,
    /// Tap records (time-sorted), both directions.
    pub tap_records: Vec<TapRecord>,
    /// Connection-ID length, needed to parse tap records.
    pub cid_len: usize,
    /// Simulated completion time.
    pub finished_at: SimTime,
    /// The client stack's RTT samples in µs.
    pub client_stack_samples_us: Vec<u64>,
    /// Operational statistics of the run.
    pub stats: LabStats,
}

impl LabOutcome {
    /// §3.3 extraction from the client qlog: received 1-RTT packets as
    /// observations (time, packet number, spin).
    pub fn client_observations(&self) -> Vec<PacketObservation> {
        self.client_qlog
            .spin_observations()
            .into_iter()
            .map(|(t, pn, s)| PacketObservation::qlog(t, pn, s))
            .collect()
    }

    /// Observations an on-path tap would make of `from`-originated 1-RTT
    /// packets (no packet numbers — the real wire encrypts them; the VEC
    /// rides in the visible reserved bits).
    pub fn tap_observations(&self, from: Side) -> Vec<PacketObservation> {
        self.tap_records
            .iter()
            .filter(|r| r.from == from)
            .filter_map(|r| {
                Header::peek_observable(&r.datagram, self.cid_len)
                    .map(|h| PacketObservation::wire(r.time.as_micros(), h.spin).with_vec(h.vec))
            })
            .collect()
    }

    /// Full observer report over the client's received packets, using the
    /// paper's baseline configuration.
    pub fn observer_report(&self) -> ObserverReport {
        ObserverReport::build(
            &self.client_observations(),
            self.client_stack_samples_us.clone(),
            ObserverConfig::default(),
            GreaseFilter::paper(),
        )
    }
}

/// Reusable per-lab-run storage.
///
/// One connection lab run allocates a simulator event queue, two qlog
/// event buffers, the response byte buffer and a chunk staging buffer. A
/// scan loop performs millions of runs; keeping one `LabScratch` per
/// worker thread and passing it to
/// [`run_with_scratch`](ConnectionLab::run_with_scratch) (then recovering
/// the outcome's buffers via [`reclaim`](LabScratch::reclaim)) makes the
/// steady state nearly allocation-free. Results are identical to
/// [`run`](ConnectionLab::run).
#[derive(Debug, Default)]
pub struct LabScratch {
    sim: SimScratch,
    client_events: Vec<LoggedEvent>,
    server_events: Vec<LoggedEvent>,
    response_data: Vec<u8>,
    body: Vec<u8>,
    /// Datagram buffers harvested from a finished tapped run's capture.
    /// With a tap armed the capture pins every delivered buffer until the
    /// run ends, so the mid-run sole-handle recycling in the event loop
    /// never fires; these pre-stock the next run's connections instead.
    datagram_pool: Vec<Vec<u8>>,
}

/// Upper bound on [`LabScratch::datagram_pool`]: two connections' worth
/// of pre-stock (the per-connection pool caps at 64).
const SCRATCH_DATAGRAM_POOL_CAP: usize = 128;

impl LabScratch {
    /// Recovers the reusable buffers from a finished outcome. Call once
    /// the outcome's data has been consumed; the next
    /// [`run_with_scratch`](ConnectionLab::run_with_scratch) then reuses
    /// the allocations instead of making fresh ones.
    pub fn reclaim(&mut self, outcome: LabOutcome) {
        self.response_data = outcome.response_data;
        self.client_events = outcome.client_qlog.events;
        self.server_events = outcome.server_qlog.events;
        let mut records = outcome.tap_records;
        for record in records.drain(..) {
            if self.datagram_pool.len() >= SCRATCH_DATAGRAM_POOL_CAP {
                break;
            }
            // Sole handle by now (deliveries dropped theirs mid-run).
            if let Some(buf) = record.datagram.into_vec() {
                self.datagram_pool.push(buf);
            }
        }
        self.sim.restock_tap_records(records);
    }

    /// Returns a client qlog event buffer that was taken *out* of an
    /// outcome (e.g. captured for inspection, then discarded) so the next
    /// run reuses its allocation. Only useful when [`reclaim`] saw an
    /// already-emptied trace.
    ///
    /// [`reclaim`]: LabScratch::reclaim
    pub fn restock_client_events(&mut self, mut events: Vec<LoggedEvent>) {
        events.clear();
        if events.capacity() > self.client_events.capacity() {
            self.client_events = events;
        }
    }
}

/// Timer token for transport timeouts.
const TOKEN_TRANSPORT: u64 = 0;
/// Timer tokens >= this index into the server app's pending chunks.
const TOKEN_APP_BASE: u64 = 1;

/// Drives one client↔server connection through a simulated path.
#[derive(Debug)]
pub struct ConnectionLab {
    config: LabConfig,
}

impl ConnectionLab {
    /// Creates a lab from its configuration.
    pub fn new(config: LabConfig) -> Self {
        ConnectionLab { config }
    }

    /// Runs the exchange to completion (or `max_duration`).
    pub fn run(&mut self) -> LabOutcome {
        self.run_with_scratch(&mut LabScratch::default())
    }

    /// [`run`](ConnectionLab::run), but reusing the allocations held in
    /// `scratch`. The outcome is identical; only the allocation behaviour
    /// differs.
    pub fn run_with_scratch(&mut self, scratch: &mut LabScratch) -> LabOutcome {
        let cfg = &self.config;
        let one_way = SimDuration::from_millis_f64(cfg.path_rtt_ms / 2.0);
        let link = LinkConfig {
            delay: one_way,
            jitter: SimDuration::from_millis_f64(cfg.jitter_ms),
            loss: cfg.loss,
            reorder: cfg.reorder,
            reorder_hold: SimDuration::from_millis_f64(cfg.reorder_hold_ms),
            rate_bytes_per_sec: cfg.link_rate_bytes_per_sec,
            ..LinkConfig::default()
        };
        let mut sim =
            Simulator::symmetric_from_scratch(link, cfg.seed, std::mem::take(&mut scratch.sim));
        if let Some(position) = cfg.tap_position {
            sim = sim.with_tap(position);
        }
        let mut client =
            Connection::new_client(cfg.client.clone(), cfg.seed.wrapping_mul(2) + 1, sim.now());
        let mut server =
            Connection::new_server(cfg.server.clone(), cfg.seed.wrapping_mul(2) + 2, sim.now());
        client.reuse_qlog_events(std::mem::take(&mut scratch.client_events));
        server.reuse_qlog_events(std::mem::take(&mut scratch.server_events));
        // Tapped runs cannot recycle delivered buffers mid-run (the
        // capture holds a handle until the run ends); hand each endpoint
        // the buffers harvested from the previous run's capture instead.
        if cfg.tap_position.is_some() {
            let mut to_client = false;
            for buf in scratch.datagram_pool.drain(..) {
                to_client = !to_client;
                if to_client {
                    client.prestock_datagram(buf);
                } else {
                    server.prestock_datagram(buf);
                }
            }
        }

        // Server app state: request assembly + scheduled response chunks.
        let mut request_done = false;
        let mut response_plan: Vec<usize> = Vec::new(); // chunk sizes by index
        let mut chunks_sent = 0usize;
        let mut response_fin_sent = false;
        let mut response_bytes = 0usize;
        let mut response_data: Vec<u8> = std::mem::take(&mut scratch.response_data);
        response_data.clear();
        let mut client_done = false;
        let deadline = SimTime::ZERO + cfg.max_duration;
        let mut payload_reclaimed = 0u64;
        let mut payload_shared = 0u64;
        // Host wall-time stage split (handshake vs. everything after).
        // Gated so an un-instrumented run never reads the clock.
        let started_at = cfg.time_stages.then(std::time::Instant::now);
        let mut handshake_wall_ns = 0u64;
        let mut established_seen = false;

        // Kick off: client Initial flight.
        // Timer arming is deduplicated: re-arming the same deadline after
        // every event would flood the queue with duplicate wakeups.
        let mut armed: [Option<SimTime>; 2] = [None, None];
        flush(&mut sim, Side::Client, &mut client);
        arm(&mut sim, Side::Client, &client, &mut armed);
        arm(&mut sim, Side::Server, &server, &mut armed);

        while let Some((now, event)) = sim.step() {
            if now > deadline {
                break;
            }
            match event {
                SimEvent::Datagram { to, datagram } => {
                    let conn = match to {
                        Side::Client => &mut client,
                        Side::Server => &mut server,
                    };
                    conn.handle_datagram(now, &datagram);
                    // Recycle the delivered buffer (sole handle unless a
                    // tap kept one) so the receiver's own sends reuse it.
                    match datagram.into_vec() {
                        Some(buf) => {
                            payload_reclaimed += 1;
                            conn.recycle_datagram(buf);
                        }
                        None => payload_shared += 1,
                    }
                }
                SimEvent::Timer { side, token } => {
                    if token >= TOKEN_APP_BASE {
                        // Server app: emit response chunk #(token - base).
                        let idx = (token - TOKEN_APP_BASE) as usize;
                        if side == Side::Server && idx == chunks_sent && idx < response_plan.len() {
                            let size = response_plan[idx];
                            let fin = idx + 1 == response_plan.len();
                            let body = &mut scratch.body;
                            body.clear();
                            if idx == 0 {
                                body.extend_from_slice(&cfg.response_prefix);
                            }
                            body.extend(std::iter::repeat_n(0x42u8, size));
                            server.send_stream(0, body, fin);
                            chunks_sent += 1;
                            if fin {
                                response_fin_sent = true;
                            }
                        }
                    } else {
                        let conn = match side {
                            Side::Client => &mut client,
                            Side::Server => &mut server,
                        };
                        armed[side_index(side)] = None;
                        conn.on_timeout(now);
                    }
                }
            }

            if !established_seen && client.is_established() {
                established_seen = true;
                if let Some(start) = started_at {
                    handshake_wall_ns = elapsed_ns(start);
                }
            }

            // Application logic driven by connection events.
            while let Some(ev) = client.poll_event() {
                match ev {
                    AppEvent::HandshakeCompleted => {
                        client.send_stream(0, &cfg.request, true);
                    }
                    AppEvent::StreamData { id: 0, data, fin } => {
                        response_bytes += data.len();
                        response_data.extend_from_slice(&data);
                        if fin {
                            client_done = true;
                            client.close("request complete");
                        }
                    }
                    _ => {}
                }
            }
            while let Some(ev) = server.poll_event() {
                match ev {
                    AppEvent::StreamData {
                        id: 0, fin: true, ..
                    } if !request_done => {
                        request_done = true;
                        // Schedule the response chunks.
                        let mut t = now + cfg.server_profile.initial_delay;
                        for (i, &(gap, size)) in cfg.server_profile.chunks.iter().enumerate() {
                            t += gap;
                            response_plan.push(size);
                            sim.set_timer(Side::Server, t, TOKEN_APP_BASE + i as u64);
                        }
                    }
                    _ => {}
                }
            }

            flush(&mut sim, Side::Client, &mut client);
            flush(&mut sim, Side::Server, &mut server);
            arm(&mut sim, Side::Client, &client, &mut armed);
            arm(&mut sim, Side::Server, &server, &mut armed);

            if client.is_closed() && server.is_closed() {
                break;
            }
            // Once the exchange logically finished and nothing is pending,
            // stop even if idle timers are still armed.
            if client_done && response_fin_sent && client.is_closed() && sim.pending() == 0 {
                break;
            }
        }

        sim.sort_tap_records();
        let finished_at = sim.now();
        let tap_records = sim.take_tap_records();
        let stats = LabStats {
            client: client.counters(),
            server: server.counters(),
            path: *sim.stats(),
            payload_reclaimed,
            payload_shared,
            handshake_wall_ns,
            transfer_wall_ns: match started_at {
                Some(start) if established_seen => elapsed_ns(start) - handshake_wall_ns,
                _ => 0,
            },
        };
        scratch.sim = sim.into_scratch();
        LabOutcome {
            handshake_completed: client.is_established()
                || client.is_closed() && client.qlog().handshake_completed(),
            response_bytes,
            response_data,
            response_complete: client_done,
            client_stack_samples_us: client.rtt().samples_us().to_vec(),
            client_qlog: client.take_qlog(),
            server_qlog: server.take_qlog(),
            tap_records,
            cid_len: cfg.client.cid_len,
            finished_at,
            stats,
        }
    }
}

/// Nanoseconds since `start`, saturated to `u64::MAX`.
fn elapsed_ns(start: std::time::Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

fn flush(sim: &mut Simulator, side: Side, conn: &mut Connection) {
    while let Some(datagram) = conn.poll_transmit(sim.now()) {
        sim.send_after(side, conn.last_send_latency(), datagram);
    }
}

fn side_index(side: Side) -> usize {
    match side {
        Side::Client => 0,
        Side::Server => 1,
    }
}

fn arm(sim: &mut Simulator, side: Side, conn: &Connection, armed: &mut [Option<SimTime>; 2]) {
    let Some(at) = conn.next_timeout() else {
        return;
    };
    let slot = &mut armed[side_index(side)];
    // Skip if an earlier-or-equal wakeup is already pending; a stale later
    // deadline is handled when that wakeup fires (on_timeout re-checks).
    if slot.is_some_and(|pending| pending <= at) {
        return;
    }
    *slot = Some(at);
    sim.set_timer(side, at, TOKEN_TRANSPORT);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpinPolicy;
    use quicspin_core::FlowClassification;

    #[test]
    fn scratch_reuse_is_outcome_identical() {
        let cfg = LabConfig {
            seed: 77,
            loss: 0.02,
            jitter_ms: 1.5,
            ..LabConfig::default()
        };
        let fresh = ConnectionLab::new(cfg.clone()).run();
        let mut scratch = LabScratch::default();
        // Warm the scratch on an unrelated run, then reclaim its buffers.
        let warmup = ConnectionLab::new(LabConfig::default()).run_with_scratch(&mut scratch);
        scratch.reclaim(warmup);
        let reused = ConnectionLab::new(cfg).run_with_scratch(&mut scratch);
        assert_eq!(fresh.handshake_completed, reused.handshake_completed);
        assert_eq!(fresh.response_data, reused.response_data);
        assert_eq!(fresh.client_qlog, reused.client_qlog);
        assert_eq!(fresh.server_qlog, reused.server_qlog);
        assert_eq!(fresh.tap_records.len(), reused.tap_records.len());
        assert_eq!(
            fresh.client_stack_samples_us,
            reused.client_stack_samples_us
        );
    }

    #[test]
    fn disabling_tap_does_not_change_exchange() {
        let fresh = ConnectionLab::new(LabConfig::default()).run();
        let untapped = ConnectionLab::new(LabConfig {
            tap_position: None,
            ..LabConfig::default()
        })
        .run();
        assert!(untapped.tap_records.is_empty());
        assert_eq!(fresh.client_qlog, untapped.client_qlog);
        assert_eq!(fresh.response_data, untapped.response_data);
        assert_eq!(fresh.finished_at, untapped.finished_at);
    }

    #[test]
    fn lab_stats_reflect_exchange() {
        let out = ConnectionLab::new(LabConfig::default()).run();
        let s = out.stats;
        assert!(s.client.packets_sent > 0 && s.server.packets_sent > 0);
        assert_eq!(
            s.path.total_sent(),
            s.client.packets_sent + s.server.packets_sent,
            "every transport send enters the path"
        );
        assert!(s.client.spin_edges > 0, "spinning exchange has edges");
        assert!(s.path.queue_high_water > 0);
        // Default lab has a tap, so delivered payloads stay shared.
        assert!(s.payload_shared > 0);
        // Stage timing off by default.
        assert_eq!((s.handshake_wall_ns, s.transfer_wall_ns), (0, 0));

        // Untapped + timed run: payloads reclaim, wall times appear.
        let timed = ConnectionLab::new(LabConfig {
            tap_position: None,
            time_stages: true,
            ..LabConfig::default()
        })
        .run();
        assert!(timed.stats.payload_reclaimed > 0);
        assert_eq!(timed.stats.payload_shared, 0);
        assert!(timed.stats.handshake_wall_ns > 0);
        assert!(timed.stats.transfer_wall_ns > 0);
    }

    #[test]
    fn lossy_lab_counts_losses_and_retransmits() {
        let out = ConnectionLab::new(LabConfig {
            loss: 0.05,
            seed: 3,
            ..LabConfig::default()
        })
        .run();
        let s = out.stats;
        assert!(s.path.total_lost() > 0, "5% loss must drop something");
        assert!(
            s.client.packets_lost + s.server.packets_lost > 0,
            "endpoints must detect loss"
        );
        assert!(s.client.frames_retransmitted + s.server.frames_retransmitted > 0);
    }

    #[test]
    fn default_lab_completes_exchange() {
        let mut lab = ConnectionLab::new(LabConfig::default());
        let out = lab.run();
        assert!(out.handshake_completed);
        assert_eq!(out.response_bytes, 12_000 * 3);
        assert!(out.client_qlog.handshake_completed());
        assert!(!out.client_stack_samples_us.is_empty());
    }

    #[test]
    fn stack_rtt_close_to_path_rtt() {
        let mut lab = ConnectionLab::new(LabConfig {
            path_rtt_ms: 60.0,
            ..LabConfig::default()
        });
        let out = lab.run();
        let min = *out.client_stack_samples_us.iter().min().unwrap() as f64 / 1000.0;
        assert!((min - 60.0).abs() < 5.0, "stack min RTT {min} ms");
    }

    #[test]
    fn spin_observed_and_classified_spinning() {
        let mut lab = ConnectionLab::new(LabConfig::default());
        let out = lab.run();
        let report = out.observer_report();
        assert_eq!(report.classification, FlowClassification::Spinning);
        let spin_mean = report.spin_rtt_mean_ms().unwrap();
        assert!(spin_mean >= 39.0, "spin RTT {spin_mean} >= path RTT");
    }

    #[test]
    fn server_processing_delay_inflates_spin_not_stack() {
        let mut lab = ConnectionLab::new(LabConfig {
            path_rtt_ms: 40.0,
            server_profile: ServerProfile {
                initial_delay: SimDuration::from_millis(300),
                chunks: vec![
                    (SimDuration::ZERO, 12_000),
                    (SimDuration::from_millis(150), 12_000),
                    (SimDuration::from_millis(150), 12_000),
                ],
            },
            ..LabConfig::default()
        });
        let out = lab.run();
        let report = out.observer_report();
        let acc = report.accuracy_received().unwrap();
        assert!(acc.overestimates(), "spin must overestimate: {acc:?}");
        assert!(
            acc.mapped_ratio() > 2.0,
            "heavy server delay → big ratio, got {}",
            acc.mapped_ratio()
        );
    }

    #[test]
    fn fixed_zero_server_classified_all_zero() {
        let mut lab = ConnectionLab::new(LabConfig {
            server: TransportConfig::default().with_spin_policy(SpinPolicy::FixedZero),
            ..LabConfig::default()
        });
        let out = lab.run();
        let report = out.observer_report();
        assert_eq!(report.classification, FlowClassification::AllZero);
    }

    #[test]
    fn fixed_one_server_classified_all_one() {
        let mut lab = ConnectionLab::new(LabConfig {
            server: TransportConfig::default().with_spin_policy(SpinPolicy::FixedOne),
            ..LabConfig::default()
        });
        let out = lab.run();
        let report = out.observer_report();
        assert_eq!(report.classification, FlowClassification::AllOne);
    }

    #[test]
    fn per_packet_grease_filtered() {
        let mut lab = ConnectionLab::new(LabConfig {
            server: TransportConfig::default().with_spin_policy(SpinPolicy::GreasePerPacket),
            server_profile: ServerProfile {
                initial_delay: SimDuration::from_millis(5),
                chunks: vec![
                    (SimDuration::ZERO, 12_000),
                    (SimDuration::from_millis(2), 12_000),
                    (SimDuration::from_millis(2), 12_000),
                ],
            },
            ..LabConfig::default()
        });
        let out = lab.run();
        let report = out.observer_report();
        assert_eq!(report.classification, FlowClassification::Greased);
    }

    #[test]
    fn tap_sees_spin_without_packet_numbers() {
        let mut lab = ConnectionLab::new(LabConfig::default());
        let out = lab.run();
        let obs = out.tap_observations(Side::Server);
        assert!(!obs.is_empty());
        assert!(obs.iter().all(|o| o.packet_number.is_none()));
        // Both spin values appear for a spinning connection.
        assert!(obs.iter().any(|o| o.spin) && obs.iter().any(|o| !o.spin));
    }

    #[test]
    fn lossy_path_still_completes() {
        let mut lab = ConnectionLab::new(LabConfig {
            loss: 0.05,
            seed: 3,
            ..LabConfig::default()
        });
        let out = lab.run();
        assert!(out.handshake_completed);
        assert_eq!(out.response_bytes, 12_000 * 3, "retransmission recovers");
    }

    #[test]
    fn deterministic_given_seed() {
        let run = |seed| {
            let mut lab = ConnectionLab::new(LabConfig {
                seed,
                loss: 0.02,
                jitter_ms: 3.0,
                ..LabConfig::default()
            });
            let out = lab.run();
            (
                out.response_bytes,
                out.client_qlog.spin_observations(),
                out.client_stack_samples_us,
            )
        };
        assert_eq!(run(11), run(11));
    }

    #[test]
    fn vec_enabled_endpoints_carry_vec_on_wire() {
        let mut lab = ConnectionLab::new(LabConfig {
            client: TransportConfig::default().with_vec(),
            server: TransportConfig::default().with_vec(),
            ..LabConfig::default()
        });
        let out = lab.run();
        let obs = out.tap_observations(Side::Server);
        assert!(
            obs.iter().any(|o| o.vec > 0),
            "VEC values must appear on the wire"
        );
    }

    #[test]
    fn draft_version_lab_completes() {
        let mut lab = ConnectionLab::new(LabConfig {
            client: TransportConfig::default().with_version(quicspin_wire::Version::Draft34),
            ..LabConfig::default()
        });
        let out = lab.run();
        assert!(out.handshake_completed);
    }
}
