//! The QUIC connection state machine.
//!
//! One [`Connection`] object per endpoint per connection, driven entirely
//! from outside: feed datagrams with [`Connection::handle_datagram`], pump
//! outgoing datagrams with [`Connection::poll_transmit`], arm the clock
//! with [`Connection::next_timeout`] / [`Connection::on_timeout`], and
//! consume [`AppEvent`]s. No sockets, no threads, no wall clock — the
//! driving loop lives in [`crate::lab`] and in the scanner.

use crate::ack::RecvTracker;
use crate::config::TransportConfig;
use crate::recovery::SentLedger;
use crate::rtt::RttEstimator;
use crate::spin::{SpinGenerator, SpinRole};
use crate::streams::StreamSet;
use quicspin_netsim::{Rng, SimDuration, SimTime};
use quicspin_qlog::{EventData, PacketSpace, TraceLog};
use quicspin_wire::{
    ConnectionId, Frame, Header, LongHeader, LongType, Packet, PacketNumber, ShortHeader, Version,
};
use std::collections::VecDeque;

/// Endpoint role.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Role {
    /// Connection initiator (the scanner).
    Client,
    /// Connection acceptor (the web server).
    Server,
}

/// Events surfaced to the application layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AppEvent {
    /// The handshake completed; streams may be used.
    HandshakeCompleted,
    /// Ordered stream data arrived.
    StreamData {
        /// Stream ID.
        id: u64,
        /// Newly assembled bytes.
        data: Vec<u8>,
        /// Whether the stream ended.
        fin: bool,
    },
    /// The connection terminated.
    Closed {
        /// Cause description.
        reason: String,
    },
}

/// Connection-fatal errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ConnectionError {
    /// Too many probe timeouts without progress.
    PtoExhausted,
    /// The idle timeout elapsed.
    IdleTimeout,
}

impl core::fmt::Display for ConnectionError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            ConnectionError::PtoExhausted => f.write_str("probe timeout exhausted"),
            ConnectionError::IdleTimeout => f.write_str("idle timeout"),
        }
    }
}

impl std::error::Error for ConnectionError {}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum State {
    Handshaking,
    Established,
    Closed,
}

/// Handshake progression (simplified TLS over CRYPTO frames).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CryptoState {
    // Client
    SentClientHello,
    // Server
    AwaitClientHello,
    SentServerFlight,
    // Both
    Done,
}

const SPACES: [PacketSpace; 3] = [
    PacketSpace::Initial,
    PacketSpace::Handshake,
    PacketSpace::Application,
];

fn space_index(s: PacketSpace) -> usize {
    match s {
        PacketSpace::Initial => 0,
        PacketSpace::Handshake => 1,
        PacketSpace::Application => 2,
    }
}

#[derive(Debug)]
struct Space {
    pn_next: u64,
    recv: RecvTracker,
    sent: SentLedger,
    /// CRYPTO bytes queued for sending (sequential).
    crypto_out: Vec<u8>,
    crypto_out_offset: u64,
    /// CRYPTO reassembly (offset-keyed, reusing the stream machinery on a
    /// dedicated pseudo-stream).
    crypto_in: StreamSet,
    /// Frames queued for retransmission after loss/PTO.
    retransmit: Vec<Frame>,
}

impl Space {
    fn new() -> Self {
        Space {
            pn_next: 0,
            recv: RecvTracker::new(),
            sent: SentLedger::new(),
            crypto_out: Vec::new(),
            crypto_out_offset: 0,
            crypto_in: StreamSet::new(),
            retransmit: Vec::new(),
        }
    }
}

/// Maximum consecutive PTOs before the connection gives up.
const MAX_PTO_COUNT: u32 = 6;

/// Per-connection operational counters.
///
/// Maintained as plain integers on the connection's own state (no atomics
/// — a connection is single-threaded) and read out once via
/// [`Connection::counters`]. Scan loops map these into the campaign
/// telemetry registry; the transport itself never logs or prints.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ConnCounters {
    /// Packets built and emitted by this endpoint.
    pub packets_sent: u64,
    /// Datagrams received and decoded.
    pub packets_received: u64,
    /// Datagrams dropped because they failed to decode.
    pub packets_undecodable: u64,
    /// Decoded packets ignored as duplicates.
    pub packets_duplicate: u64,
    /// Packets declared lost by ack- or time-threshold detection.
    pub packets_lost: u64,
    /// Frames re-queued for retransmission (loss or PTO probe).
    pub frames_retransmitted: u64,
    /// Probe timeouts fired.
    pub ptos_fired: u64,
    /// Outgoing datagrams built into a recycled pool buffer.
    pub datagram_pool_hits: u64,
    /// Outgoing datagrams that needed a fresh allocation.
    pub datagram_pool_misses: u64,
    /// Crypto and stream frames folded into reassembly buffers.
    pub frames_reassembled: u64,
    /// Spin-bit edges observed on received 1-RTT packets.
    pub spin_edges: u64,
}

/// A QUIC connection endpoint.
#[derive(Debug)]
pub struct Connection {
    role: Role,
    cfg: TransportConfig,
    state: State,
    crypto_state: CryptoState,
    version: Version,
    scid: ConnectionId,
    dcid: ConnectionId,
    spaces: [Space; 3],
    rtt: RttEstimator,
    spin: SpinGenerator,
    streams: StreamSet,
    events: VecDeque<AppEvent>,
    qlog: TraceLog,
    rng: Rng,
    start: SimTime,
    last_activity: SimTime,
    pto_count: u32,
    handshake_done_to_send: bool,
    close_to_send: Option<String>,
    close_sent: bool,
    error: Option<ConnectionError>,
    /// Emission latency of the packet most recently produced.
    last_send_latency: SimDuration,
    /// Recycled datagram buffers for outgoing packets (fed back via
    /// [`Connection::recycle_datagram`]).
    datagram_pool: Vec<Vec<u8>>,
    /// How many buffers at the bottom of `datagram_pool` were seeded by
    /// [`Connection::prestock_datagram`] rather than recycled from this
    /// connection's own deliveries. Pops served from that stock are not
    /// pool *hits* — the hit/miss counters track in-run recycling only,
    /// which keeps them independent of cross-run driver state (and so
    /// byte-identical in thread-count-invariant campaign manifests).
    prestocked: usize,
    /// Congestion window in packets (NewReno-style slow start +
    /// congestion avoidance). Gates fresh 1-RTT stream data.
    cwnd: u64,
    ssthresh: u64,
    ca_credit: u64,
    counters: ConnCounters,
}

impl Connection {
    /// Creates a client connection; the first [`poll_transmit`]
    /// (Connection::poll_transmit) yields the Initial flight.
    pub fn new_client(cfg: TransportConfig, seed: u64, now: SimTime) -> Self {
        let mut rng = Rng::new(seed);
        let scid = ConnectionId::from_u64(rng.next_u64());
        let dcid = ConnectionId::from_u64(rng.next_u64());
        let spin = SpinGenerator::new(SpinRole::Client, cfg.spin_policy, cfg.vec_enabled, &mut rng);
        let mut conn = Connection {
            role: Role::Client,
            version: cfg.version,
            state: State::Handshaking,
            crypto_state: CryptoState::SentClientHello,
            scid,
            dcid,
            spaces: [Space::new(), Space::new(), Space::new()],
            rtt: RttEstimator::new(cfg.initial_rtt),
            spin,
            streams: StreamSet::new(),
            events: VecDeque::new(),
            qlog: TraceLog::new("client"),
            rng,
            start: now,
            last_activity: now,
            pto_count: 0,
            handshake_done_to_send: false,
            close_to_send: None,
            close_sent: false,
            error: None,
            last_send_latency: SimDuration::ZERO,
            datagram_pool: Vec::new(),
            prestocked: 0,
            cwnd: cfg.initial_cwnd_packets,
            ssthresh: u64::MAX,
            ca_credit: 0,
            counters: ConnCounters::default(),
            cfg,
        };
        // ClientHello: tag + offered version code.
        let mut ch = b"CH".to_vec();
        ch.extend_from_slice(&conn.version.code().to_be_bytes());
        conn.queue_crypto(PacketSpace::Initial, &ch);
        conn
    }

    /// Creates a server connection awaiting a client Initial.
    pub fn new_server(cfg: TransportConfig, seed: u64, now: SimTime) -> Self {
        let mut rng = Rng::new(seed);
        let scid = ConnectionId::from_u64(rng.next_u64());
        let spin = SpinGenerator::new(SpinRole::Server, cfg.spin_policy, cfg.vec_enabled, &mut rng);
        Connection {
            role: Role::Server,
            version: cfg.version,
            state: State::Handshaking,
            crypto_state: CryptoState::AwaitClientHello,
            scid,
            dcid: ConnectionId::EMPTY,
            spaces: [Space::new(), Space::new(), Space::new()],
            rtt: RttEstimator::new(cfg.initial_rtt),
            spin,
            streams: StreamSet::new(),
            events: VecDeque::new(),
            qlog: TraceLog::new("server"),
            rng,
            start: now,
            last_activity: now,
            pto_count: 0,
            handshake_done_to_send: false,
            close_to_send: None,
            close_sent: false,
            error: None,
            last_send_latency: SimDuration::ZERO,
            datagram_pool: Vec::new(),
            prestocked: 0,
            cwnd: cfg.initial_cwnd_packets,
            ssthresh: u64::MAX,
            ca_credit: 0,
            counters: ConnCounters::default(),
            cfg,
        }
    }

    fn queue_crypto(&mut self, space: PacketSpace, data: &[u8]) {
        let s = &mut self.spaces[space_index(space)];
        s.crypto_out.extend_from_slice(data);
    }

    /// Microseconds since connection start.
    fn rel_us(&self, now: SimTime) -> u64 {
        now.saturating_since(self.start).as_micros()
    }

    /// Whether the handshake has completed.
    pub fn is_established(&self) -> bool {
        self.state == State::Established
    }

    /// Whether the connection has terminated.
    pub fn is_closed(&self) -> bool {
        self.state == State::Closed
    }

    /// Fatal error, if any.
    pub fn error(&self) -> Option<&ConnectionError> {
        self.error.as_ref()
    }

    /// The RTT estimator (the "QUIC stack estimate" of the paper).
    pub fn rtt(&self) -> &RttEstimator {
        &self.rtt
    }

    /// Processing latency of the most recently built packet (data vs
    /// pure-ACK fast path); the driving loop delays wire emission by this.
    pub fn last_send_latency(&self) -> SimDuration {
        self.last_send_latency
    }

    /// Hands a spent datagram buffer back for reuse by future
    /// [`Connection::poll_transmit`] calls. Drivers that unwrap delivered
    /// payloads can keep the packet path allocation-free in steady state.
    pub fn recycle_datagram(&mut self, buf: Vec<u8>) {
        // Large enough that a tapped lab run's pre-stocked buffers (see
        // `LabScratch`) cover a whole flow's sends; an untapped driver's
        // delivery ping-pong keeps the pool at one or two entries anyway.
        if self.datagram_pool.len() < 64 {
            self.datagram_pool.push(buf);
        }
    }

    /// Seeds the datagram pool with a buffer from *outside* this
    /// connection's own delivery loop (e.g. a previous run's tap
    /// capture). Unlike [`Connection::recycle_datagram`] reuse, sends
    /// served from this stock count as pool misses: the hit counter
    /// tracks in-run recycling only, so campaign manifests stay
    /// independent of which worker ran the previous probe.
    pub fn prestock_datagram(&mut self, buf: Vec<u8>) {
        if self.datagram_pool.len() < 64 {
            self.datagram_pool.push(buf);
            self.prestocked = self.prestocked.max(self.datagram_pool.len());
        }
    }

    /// Negotiated version.
    pub fn version(&self) -> Version {
        self.version
    }

    /// This endpoint's source connection ID.
    pub fn scid(&self) -> ConnectionId {
        self.scid
    }

    /// The peer's connection ID (empty on a server before the first
    /// Initial arrives).
    pub fn dcid(&self) -> ConnectionId {
        self.dcid
    }

    /// The qlog trace accumulated so far.
    pub fn qlog(&self) -> &TraceLog {
        &self.qlog
    }

    /// Takes ownership of the qlog trace.
    pub fn take_qlog(&mut self) -> TraceLog {
        std::mem::take(&mut self.qlog)
    }

    /// Replaces the qlog event storage with `events` (cleared first),
    /// reusing its allocation. Scan loops recycle per-connection buffers
    /// this way; events already logged are discarded, so call it right
    /// after construction.
    pub fn reuse_qlog_events(&mut self, mut events: Vec<quicspin_qlog::LoggedEvent>) {
        events.clear();
        self.qlog.events = events;
    }

    /// Pops the next application event.
    pub fn poll_event(&mut self) -> Option<AppEvent> {
        self.events.pop_front()
    }

    /// Queues stream data (only meaningful once established).
    pub fn send_stream(&mut self, id: u64, data: &[u8], fin: bool) {
        self.streams.write(id, data, fin);
    }

    /// Starts an orderly close.
    pub fn close(&mut self, reason: &str) {
        if self.state != State::Closed && self.close_to_send.is_none() {
            self.close_to_send = Some(reason.to_string());
        }
    }

    // ------------------------------------------------------------------
    // Receive path
    // ------------------------------------------------------------------

    /// Ingests one datagram.
    pub fn handle_datagram(&mut self, now: SimTime, datagram: &[u8]) {
        if self.state == State::Closed {
            return;
        }
        let Ok(packet) = Packet::decode(datagram, self.cfg.cid_len) else {
            self.counters.packets_undecodable += 1;
            return; // undecodable datagrams are dropped (counted, not logged)
        };
        self.counters.packets_received += 1;
        self.last_activity = now;

        let (space, pn, spin) = match &packet.header {
            Header::Long(h) => {
                let space = match h.ty {
                    LongType::Initial => PacketSpace::Initial,
                    LongType::Handshake => PacketSpace::Handshake,
                    _ => return, // 0-RTT / Retry unused in this stack
                };
                // The server learns its peer CID from the client's scid.
                if self.role == Role::Server && self.dcid.is_empty() {
                    self.dcid = h.scid;
                    self.version = h.version;
                }
                let Some(pn) = h.packet_number else { return };
                (space, pn.value(), None)
            }
            Header::Short(h) => {
                // Spin state updates on every received 1-RTT packet,
                // keyed internally to the largest packet number.
                self.spin.on_receive(h.packet_number.value(), h.spin, h.vec);
                (
                    PacketSpace::Application,
                    h.packet_number.value(),
                    Some(h.spin),
                )
            }
        };

        self.qlog.push(
            self.rel_us(now),
            EventData::PacketReceived {
                space,
                packet_number: pn,
                spin,
                size: datagram.len(),
            },
        );

        let ack_eliciting = packet.is_ack_eliciting();
        let threshold = match space {
            PacketSpace::Application => self.cfg.ack_eliciting_threshold,
            _ => 1, // handshake spaces acknowledge immediately
        };
        let fresh = self.spaces[space_index(space)].recv.on_packet(
            pn,
            ack_eliciting,
            now,
            threshold,
            self.cfg.max_ack_delay,
        );
        if !fresh {
            self.counters.packets_duplicate += 1;
            return; // duplicate: already processed
        }

        for frame in packet.frames {
            self.handle_frame(now, space, frame);
        }
    }

    fn handle_frame(&mut self, now: SimTime, space: PacketSpace, frame: Frame) {
        match frame {
            Frame::Ack {
                delay_us, ranges, ..
            } => {
                let outcome = self.spaces[space_index(space)]
                    .sent
                    .on_ack(&ranges, self.cfg.packet_threshold);
                if let Some(sent_time) = outcome.rtt_sample_from {
                    let raw = now.saturating_since(sent_time);
                    // Cap the peer-reported delay at our max_ack_delay for
                    // the application space (RFC 9002 §5.3).
                    let reported = SimDuration::from_micros(delay_us);
                    let capped = match space {
                        PacketSpace::Application if reported > self.cfg.max_ack_delay => {
                            self.cfg.max_ack_delay
                        }
                        _ => reported,
                    };
                    self.rtt.update(raw, capped);
                    self.qlog.push(
                        self.rel_us(now),
                        EventData::RttUpdated {
                            latest_us: self.rtt.latest().as_micros(),
                            smoothed_us: self.rtt.smoothed().as_micros(),
                            min_us: self.rtt.min().as_micros(),
                            ack_delay_us: capped.as_micros(),
                        },
                    );
                    self.pto_count = 0;
                }
                // Time-threshold loss detection (RFC 9002 §6.1.2):
                // 9/8 × max(smoothed, latest) RTT.
                let loss_delay = {
                    let base = self.rtt.smoothed().max(self.rtt.latest());
                    base + base / 8
                };
                let timed_out = self.spaces[space_index(space)]
                    .sent
                    .detect_time_lost(now, loss_delay);
                let mut outcome = outcome;
                outcome.lost_pns.extend(timed_out.lost_pns);
                outcome.lost_frames.extend(timed_out.lost_frames);
                if space == PacketSpace::Application {
                    self.on_congestion_ack(outcome.newly_acked.len() as u64);
                    if !outcome.lost_pns.is_empty() {
                        self.on_congestion_loss();
                    }
                }
                self.counters.packets_lost += outcome.lost_pns.len() as u64;
                for pn in &outcome.lost_pns {
                    self.qlog.push(
                        self.rel_us(now),
                        EventData::PacketLost {
                            space,
                            packet_number: *pn,
                        },
                    );
                }
                self.requeue_lost(space, outcome.lost_frames);
            }
            Frame::Crypto { offset, data } => {
                self.counters.frames_reassembled += 1;
                self.spaces[space_index(space)]
                    .crypto_in
                    .on_frame(0, offset, data, false);
                self.drive_handshake(now, space);
            }
            Frame::Stream {
                id,
                offset,
                fin,
                data,
            } => {
                self.counters.frames_reassembled += 1;
                self.streams.on_frame(id, offset, data, fin);
                for readable in self.streams.readable() {
                    if let Some((data, fin)) = self.streams.read(readable) {
                        self.events.push_back(AppEvent::StreamData {
                            id: readable,
                            data,
                            fin,
                        });
                    }
                }
            }
            Frame::HandshakeDone => {
                // Client-side handshake confirmation; completion already
                // happened when the crypto flight finished.
            }
            Frame::ConnectionClose { reason, .. } => {
                self.state = State::Closed;
                self.events.push_back(AppEvent::Closed {
                    reason: reason.clone(),
                });
                self.qlog
                    .push(self.rel_us(now), EventData::ConnectionClosed { reason });
            }
            Frame::Ping | Frame::Padding { .. } | Frame::NewConnectionId { .. } => {}
        }
    }

    fn requeue_lost(&mut self, space: PacketSpace, frames: Vec<Frame>) {
        self.counters.frames_retransmitted += frames.len() as u64;
        for frame in frames {
            match frame {
                Frame::Stream {
                    id,
                    offset,
                    fin,
                    data,
                } => self.streams.requeue(id, offset, data, fin),
                Frame::Crypto { offset, data } => {
                    // Re-queue crypto bytes at their offset: handled by the
                    // simple sequential model (offsets re-sent verbatim).
                    let s = &mut self.spaces[space_index(space)];
                    s.retransmit.push(Frame::Crypto { offset, data });
                }
                other => self.spaces[space_index(space)].retransmit.push(other),
            }
        }
    }

    fn crypto_received(&mut self, space: PacketSpace) -> Option<Vec<u8>> {
        let s = &mut self.spaces[space_index(space)];
        s.crypto_in.read(0).map(|(data, _)| data)
    }

    fn drive_handshake(&mut self, now: SimTime, space: PacketSpace) {
        let Some(data) = self.crypto_received(space) else {
            return;
        };
        match (self.role, self.crypto_state, space) {
            // Server receives ClientHello.
            (Role::Server, CryptoState::AwaitClientHello, PacketSpace::Initial)
                if data.len() >= 6 && &data[..2] == b"CH" =>
            {
                let code = u32::from_be_bytes([data[2], data[3], data[4], data[5]]);
                if let Ok(v) = Version::from_code(code) {
                    self.version = v;
                }
                let mut sh = b"SH".to_vec();
                sh.extend_from_slice(&self.version.code().to_be_bytes());
                self.queue_crypto(PacketSpace::Initial, &sh);
                // Server flight: certificate-equivalent + finished.
                self.queue_crypto(PacketSpace::Handshake, b"SFIN");
                self.crypto_state = CryptoState::SentServerFlight;
            }
            // Client receives the server handshake flight.
            (Role::Client, CryptoState::SentClientHello, PacketSpace::Handshake)
                if data.starts_with(b"SFIN") =>
            {
                self.queue_crypto(PacketSpace::Handshake, b"CFIN");
                self.crypto_state = CryptoState::Done;
                self.state = State::Established;
                self.events.push_back(AppEvent::HandshakeCompleted);
                self.qlog
                    .push(self.rel_us(now), EventData::HandshakeCompleted);
            }
            // Server receives the client Finished.
            (Role::Server, CryptoState::SentServerFlight, PacketSpace::Handshake)
                if data.starts_with(b"CFIN") =>
            {
                self.crypto_state = CryptoState::Done;
                self.state = State::Established;
                self.handshake_done_to_send = true;
                self.events.push_back(AppEvent::HandshakeCompleted);
                self.qlog
                    .push(self.rel_us(now), EventData::HandshakeCompleted);
            }
            // ServerHello on the client only confirms the version.
            (Role::Client, _, PacketSpace::Initial) if data.len() >= 6 && &data[..2] == b"SH" => {
                let code = u32::from_be_bytes([data[2], data[3], data[4], data[5]]);
                if let Ok(v) = Version::from_code(code) {
                    self.version = v;
                }
            }
            _ => {}
        }
    }

    // ------------------------------------------------------------------
    // Transmit path
    // ------------------------------------------------------------------

    /// Produces the next outgoing datagram, if any. Call repeatedly until
    /// `None`.
    pub fn poll_transmit(&mut self, now: SimTime) -> Option<Vec<u8>> {
        if self.state == State::Closed && self.close_sent {
            return None;
        }

        // Pending CONNECTION_CLOSE goes out in the highest usable space.
        if let Some(reason) = self.close_to_send.clone() {
            if !self.close_sent {
                let frame = Frame::ConnectionClose {
                    error_code: 0,
                    reason: reason.clone(),
                };
                let datagram = self.build_packet(now, PacketSpace::Application, vec![frame]);
                self.close_sent = true;
                self.state = State::Closed;
                self.events.push_back(AppEvent::Closed {
                    reason: reason.clone(),
                });
                self.qlog
                    .push(self.rel_us(now), EventData::ConnectionClosed { reason });
                return Some(datagram);
            }
            return None;
        }

        for &space in &SPACES {
            if let Some(datagram) = self.poll_space(now, space) {
                return Some(datagram);
            }
        }
        None
    }

    fn poll_space(&mut self, now: SimTime, space: PacketSpace) -> Option<Vec<u8>> {
        let idx = space_index(space);
        let mut frames: Vec<Frame> = Vec::new();

        // 1. ACK if due. The reported delay covers both the intentional
        // hold time and the processing latency the packet is about to
        // incur, so the peer can subtract the full end-host share.
        if self.spaces[idx].recv.wants_ack() {
            if let Some(mut ack) = self.spaces[idx].recv.make_ack(now) {
                if let Frame::Ack {
                    ref mut delay_us, ..
                } = ack
                {
                    *delay_us += self.cfg.ack_processing_latency.as_micros();
                }
                frames.push(ack);
            }
        }

        // 2. Retransmissions.
        if !self.spaces[idx].retransmit.is_empty() {
            frames.append(&mut self.spaces[idx].retransmit);
        }

        // 3. Fresh CRYPTO data.
        if !self.spaces[idx].crypto_out.is_empty() {
            let s = &mut self.spaces[idx];
            let take = s.crypto_out.len().min(self.cfg.max_payload);
            let data: Vec<u8> = s.crypto_out.drain(..take).collect();
            let offset = s.crypto_out_offset;
            s.crypto_out_offset += take as u64;
            frames.push(Frame::Crypto { offset, data });
        }

        // 4. Application data (1-RTT only, once established).
        if space == PacketSpace::Application && self.state == State::Established {
            if self.handshake_done_to_send {
                frames.push(Frame::HandshakeDone);
                self.handshake_done_to_send = false;
            }
            let in_flight = self.spaces[idx].sent.eliciting_in_flight();
            if in_flight < self.cwnd {
                if let Some(stream_frame) = self.streams.next_frame(self.cfg.max_payload) {
                    frames.push(stream_frame);
                }
            }
        }

        if frames.is_empty() {
            return None;
        }
        // Opportunistic ACK bundling (RFC 9000 §13.2.2): any outgoing
        // packet carries the current ACK state. This matters for the
        // study: the request's ACK rides the first response packet, so
        // fast servers do not leave a 25 ms delayed-ACK sample in the
        // client's estimator.
        if !frames.iter().any(|f| matches!(f, Frame::Ack { .. })) {
            if let Some(mut ack) = self.spaces[idx].recv.make_ack(now) {
                if let Frame::Ack {
                    ref mut delay_us, ..
                } = ack
                {
                    *delay_us += self.cfg.ack_processing_latency.as_micros();
                }
                frames.insert(0, ack);
            }
        }
        Some(self.build_packet(now, space, frames))
    }

    fn build_packet(&mut self, now: SimTime, space: PacketSpace, frames: Vec<Frame>) -> Vec<u8> {
        let idx = space_index(space);
        let pn = self.spaces[idx].pn_next;
        self.spaces[idx].pn_next += 1;

        let header = match space {
            PacketSpace::Initial | PacketSpace::Handshake => Header::Long(LongHeader {
                ty: if space == PacketSpace::Initial {
                    LongType::Initial
                } else {
                    LongType::Handshake
                },
                version: self.version,
                dcid: self.dcid,
                scid: self.scid,
                packet_number: Some(PacketNumber::new(pn)),
            }),
            PacketSpace::Application => {
                let (spin, vec) = self.spin.next_outgoing(&mut self.rng);
                Header::Short(ShortHeader {
                    spin,
                    vec,
                    dcid: self.dcid,
                    packet_number: PacketNumber::new(pn),
                })
            }
        };

        let mut packet = Packet { header, frames };
        // Client Initials are padded to at least 1200 bytes (RFC 9000
        // §14.1, anti-amplification).
        if self.role == Role::Client && space == PacketSpace::Initial {
            let current = packet.encoded_len();
            if current < 1200 {
                packet.frames.push(Frame::Padding {
                    len: 1200 - current,
                });
            }
        }
        let ack_eliciting = packet.is_ack_eliciting();
        self.last_send_latency = if ack_eliciting {
            self.cfg.processing_latency
        } else {
            self.cfg.ack_processing_latency
        };
        let buf = match self.datagram_pool.pop() {
            Some(buf) => {
                if self.datagram_pool.len() < self.prestocked {
                    // Dipped into the pre-stocked region: reuse, but not
                    // of this run's own recycling — counted as a miss so
                    // the counters stay driver-state independent.
                    self.prestocked = self.datagram_pool.len();
                    self.counters.datagram_pool_misses += 1;
                } else {
                    self.counters.datagram_pool_hits += 1;
                }
                buf
            }
            None => {
                self.counters.datagram_pool_misses += 1;
                Vec::new()
            }
        };
        let datagram = packet.encode_into(buf);
        self.counters.packets_sent += 1;

        self.spaces[idx]
            .sent
            .on_sent(pn, now, ack_eliciting, packet.frames);
        self.qlog.push(
            self.rel_us(now),
            EventData::PacketSent {
                space,
                packet_number: pn,
                spin: packet.header.spin(),
                size: datagram.len(),
                ack_eliciting,
            },
        );
        if ack_eliciting {
            self.last_activity = now;
        }
        datagram
    }

    // ------------------------------------------------------------------
    // Congestion control (NewReno-lite, packet units)
    // ------------------------------------------------------------------

    fn on_congestion_ack(&mut self, newly_acked: u64) {
        if self.cwnd < self.ssthresh {
            // Slow start: one packet of window per acked packet.
            self.cwnd += newly_acked;
            if self.cwnd >= self.ssthresh {
                self.cwnd = self.ssthresh;
            }
        } else {
            // Congestion avoidance: +1 packet per full window acked.
            self.ca_credit += newly_acked;
            if self.ca_credit >= self.cwnd {
                self.ca_credit -= self.cwnd;
                self.cwnd += 1;
            }
        }
    }

    fn on_congestion_loss(&mut self) {
        self.ssthresh = (self.cwnd / 2).max(2);
        self.cwnd = self.ssthresh;
        self.ca_credit = 0;
    }

    /// Current congestion window in packets.
    pub fn cwnd(&self) -> u64 {
        self.cwnd
    }

    /// Operational counters accumulated so far, with the spin-edge count
    /// folded in from the spin generator.
    pub fn counters(&self) -> ConnCounters {
        ConnCounters {
            spin_edges: self.spin.edges(),
            ..self.counters
        }
    }

    // ------------------------------------------------------------------
    // Timers
    // ------------------------------------------------------------------

    fn pto_interval(&self) -> SimDuration {
        let base = self.rtt.pto(self.cfg.max_ack_delay);
        base * (1u64 << self.pto_count.min(10))
    }

    /// The earliest deadline at which [`Connection::on_timeout`] must run.
    pub fn next_timeout(&self) -> Option<SimTime> {
        if self.state == State::Closed {
            return None;
        }
        let mut deadline: Option<SimTime> = None;
        let mut consider = |t: Option<SimTime>| {
            if let Some(t) = t {
                deadline = Some(match deadline {
                    Some(d) if d <= t => d,
                    _ => t,
                });
            }
        };
        for s in &self.spaces {
            consider(s.recv.next_timeout());
            consider(s.sent.pto_deadline(self.pto_interval()));
        }
        consider(Some(self.last_activity + self.cfg.idle_timeout));
        deadline
    }

    /// Fires expired timers; follow with [`Connection::poll_transmit`].
    pub fn on_timeout(&mut self, now: SimTime) {
        if self.state == State::Closed {
            return;
        }

        // Idle timeout.
        if now >= self.last_activity + self.cfg.idle_timeout {
            self.state = State::Closed;
            self.error = Some(ConnectionError::IdleTimeout);
            self.events.push_back(AppEvent::Closed {
                reason: "idle timeout".into(),
            });
            self.qlog.push(
                self.rel_us(now),
                EventData::ConnectionClosed {
                    reason: "idle timeout".into(),
                },
            );
            return;
        }

        // Delayed-ACK timers.
        for s in &mut self.spaces {
            s.recv.on_timeout(now);
        }

        // PTO.
        let pto = self.pto_interval();
        let expired: Vec<usize> = (0..3)
            .filter(|&i| {
                self.spaces[i]
                    .sent
                    .pto_deadline(pto)
                    .is_some_and(|d| now >= d)
            })
            .collect();
        if !expired.is_empty() {
            self.pto_count += 1;
            self.counters.ptos_fired += 1;
            if self.pto_count > MAX_PTO_COUNT {
                self.state = State::Closed;
                self.error = Some(ConnectionError::PtoExhausted);
                self.events.push_back(AppEvent::Closed {
                    reason: "pto exhausted".into(),
                });
                self.qlog.push(
                    self.rel_us(now),
                    EventData::ConnectionClosed {
                        reason: "pto exhausted".into(),
                    },
                );
                return;
            }
            for i in expired {
                let frames = self.spaces[i].sent.drain_for_retransmit();
                if frames.is_empty() {
                    // Nothing retransmittable: probe with a PING.
                    self.spaces[i].retransmit.push(Frame::Ping);
                } else {
                    let space = SPACES[i];
                    self.requeue_lost(space, frames);
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::SpinPolicy;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    /// Drives both connections to quiescence with an ideal, instantaneous
    /// link, alternating directions. Returns the number of datagrams.
    fn pump(client: &mut Connection, server: &mut Connection, now: SimTime) -> usize {
        let mut n = 0;
        loop {
            let mut progressed = false;
            while let Some(d) = client.poll_transmit(now) {
                server.handle_datagram(now, &d);
                n += 1;
                progressed = true;
            }
            while let Some(d) = server.poll_transmit(now) {
                client.handle_datagram(now, &d);
                n += 1;
                progressed = true;
            }
            if !progressed {
                return n;
            }
        }
    }

    fn pair() -> (Connection, Connection) {
        let client = Connection::new_client(TransportConfig::default(), 1, SimTime::ZERO);
        let server = Connection::new_server(TransportConfig::default(), 2, SimTime::ZERO);
        (client, server)
    }

    #[test]
    fn handshake_completes_both_sides() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server, at(0));
        assert!(client.is_established());
        assert!(server.is_established());
        assert!(matches!(
            client.poll_event(),
            Some(AppEvent::HandshakeCompleted)
        ));
        assert!(matches!(
            server.poll_event(),
            Some(AppEvent::HandshakeCompleted)
        ));
        assert!(client.qlog().handshake_completed());
    }

    #[test]
    fn counters_track_sent_received_and_drops() {
        let (mut client, mut server) = pair();
        let n = pump(&mut client, &mut server, at(0));
        let c = client.counters();
        let s = server.counters();
        assert_eq!((c.packets_sent + s.packets_sent) as usize, n);
        assert_eq!(c.packets_received, s.packets_sent);
        assert_eq!(s.packets_received, c.packets_sent);
        assert_eq!(c.packets_undecodable, 0);

        // Garbage is counted as undecodable, not received.
        server.handle_datagram(at(1), &[0xff, 0x00]);
        assert_eq!(server.counters().packets_undecodable, 1);
        assert_eq!(server.counters().packets_received, c.packets_sent);

        // A replayed datagram is received but flagged duplicate.
        client.send_stream(0, b"x", true);
        let d = client.poll_transmit(at(2)).unwrap();
        server.handle_datagram(at(2), &d);
        server.handle_datagram(at(2), &d);
        assert_eq!(server.counters().packets_duplicate, 1);
    }

    #[test]
    fn reassembly_counter_tracks_crypto_and_stream_frames() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server, at(0));
        // The handshake alone moves crypto frames both ways.
        let hs = server.counters().frames_reassembled;
        assert!(hs > 0, "handshake crypto frames must count");
        client.send_stream(0, b"payload", true);
        pump(&mut client, &mut server, at(5));
        assert!(
            server.counters().frames_reassembled > hs,
            "stream frames must count on top of crypto frames"
        );
    }

    #[test]
    fn prestocked_buffers_are_reused_but_never_counted_as_hits() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server, at(0));
        let base = client.counters();
        client.prestock_datagram(Vec::with_capacity(1500));
        client.send_stream(0, b"ping", true);
        pump(&mut client, &mut server, at(5));
        let after = client.counters();
        assert_eq!(
            after.datagram_pool_hits, base.datagram_pool_hits,
            "pre-stock reuse must not count as an in-run recycling hit"
        );
        assert!(after.datagram_pool_misses > base.datagram_pool_misses);
        // Once the pre-stock is consumed, genuine recycling counts again.
        client.recycle_datagram(Vec::with_capacity(1500));
        client.send_stream(4, b"ping again", true);
        pump(&mut client, &mut server, at(10));
        assert_eq!(
            client.counters().datagram_pool_hits,
            base.datagram_pool_hits + 1
        );
    }

    #[test]
    fn counters_track_pool_reuse_and_spin_edges() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server, at(0));
        let before = client.counters();
        assert_eq!(before.datagram_pool_hits, 0, "nothing recycled yet");
        client.recycle_datagram(Vec::with_capacity(1500));
        client.send_stream(0, b"ping", true);
        pump(&mut client, &mut server, at(5));
        server.send_stream(1, b"pong", true);
        pump(&mut client, &mut server, at(10));
        let after = client.counters();
        assert_eq!(after.datagram_pool_hits, 1);
        assert!(
            after.spin_edges > 0,
            "1-RTT ping-pong must observe spin edges"
        );
    }

    #[test]
    fn client_initial_is_padded_to_1200() {
        let mut client = Connection::new_client(TransportConfig::default(), 1, SimTime::ZERO);
        let initial = client.poll_transmit(at(0)).unwrap();
        assert!(initial.len() >= 1200, "initial is {} bytes", initial.len());
    }

    #[test]
    fn version_negotiated_from_client() {
        let cfg = TransportConfig::default().with_version(Version::Draft29);
        let mut client = Connection::new_client(cfg, 1, SimTime::ZERO);
        let mut server = Connection::new_server(TransportConfig::default(), 2, SimTime::ZERO);
        pump(&mut client, &mut server, at(0));
        assert_eq!(server.version(), Version::Draft29);
        assert_eq!(client.version(), Version::Draft29);
    }

    #[test]
    fn stream_data_flows_after_handshake() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server, at(0));
        client.send_stream(0, b"GET /", true);
        pump(&mut client, &mut server, at(1));
        let mut got = None;
        while let Some(ev) = server.poll_event() {
            if let AppEvent::StreamData { id, data, fin } = ev {
                got = Some((id, data, fin));
            }
        }
        assert_eq!(got, Some((0, b"GET /".to_vec(), true)));
    }

    #[test]
    fn rtt_estimator_measures_path() {
        let (mut client, mut server) = pair();
        // Handshake with a 20 ms one-way delay, done by stepping manually.
        let d1 = client.poll_transmit(at(0)).unwrap();
        server.handle_datagram(at(20), &d1);
        let mut t = 20;
        for _ in 0..10 {
            let mut moved = false;
            while let Some(d) = server.poll_transmit(at(t)) {
                client.handle_datagram(at(t + 20), &d);
                moved = true;
            }
            t += 20;
            while let Some(d) = client.poll_transmit(at(t)) {
                server.handle_datagram(at(t + 20), &d);
                moved = true;
            }
            t += 20;
            if !moved {
                break;
            }
        }
        assert!(client.rtt().has_samples());
        let measured = client.rtt().min().as_millis_f64();
        assert!((measured - 40.0).abs() < 5.0, "min rtt {measured} ms");
    }

    #[test]
    fn spin_bit_spins_during_exchange() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server, at(0));
        // Several request/response rounds produce short-header traffic.
        for round in 0..4u64 {
            let id = round * 4;
            client.send_stream(id, b"ping", true);
            pump(&mut client, &mut server, at(10 + round));
            server.send_stream(id + 1, b"pong", true);
            pump(&mut client, &mut server, at(20 + round));
        }
        let spins: Vec<bool> = client
            .qlog()
            .spin_observations()
            .iter()
            .map(|&(_, _, s)| s)
            .collect();
        assert!(spins.iter().any(|&s| s), "some spin=1 observed: {spins:?}");
        assert!(spins.iter().any(|&s| !s), "some spin=0 observed: {spins:?}");
    }

    #[test]
    fn fixed_zero_server_never_sets_spin() {
        let server_cfg = TransportConfig::default().with_spin_policy(SpinPolicy::FixedZero);
        let mut client = Connection::new_client(TransportConfig::default(), 1, SimTime::ZERO);
        let mut server = Connection::new_server(server_cfg, 2, SimTime::ZERO);
        pump(&mut client, &mut server, at(0));
        for round in 0..4u64 {
            let id = round * 4;
            client.send_stream(id, b"ping", true);
            pump(&mut client, &mut server, at(10 + round));
            server.send_stream(id + 1, b"pong", true);
            pump(&mut client, &mut server, at(20 + round));
        }
        let spins: Vec<bool> = client
            .qlog()
            .spin_observations()
            .iter()
            .map(|&(_, _, s)| s)
            .collect();
        assert!(!spins.is_empty());
        assert!(spins.iter().all(|&s| !s), "all zero expected: {spins:?}");
    }

    #[test]
    fn connection_close_propagates() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server, at(0));
        // Drain handshake events.
        while client.poll_event().is_some() {}
        while server.poll_event().is_some() {}
        client.close("done");
        pump(&mut client, &mut server, at(5));
        assert!(client.is_closed());
        assert!(server.is_closed());
        assert!(matches!(server.poll_event(), Some(AppEvent::Closed { .. })));
    }

    #[test]
    fn idle_timeout_fires() {
        let mut client = Connection::new_client(TransportConfig::default(), 1, SimTime::ZERO);
        let _ = client.poll_transmit(at(0));
        let deadline = client.next_timeout().unwrap();
        // No response ever arrives; advance past every PTO to the idle cut.
        let mut now = deadline;
        for _ in 0..50 {
            client.on_timeout(now);
            while client.poll_transmit(now).is_some() {}
            if client.is_closed() {
                break;
            }
            now = client.next_timeout().unwrap_or(now + ms(1000));
        }
        assert!(client.is_closed());
        assert!(client.error().is_some());
    }

    #[test]
    fn pto_retransmits_lost_initial() {
        let mut client = Connection::new_client(TransportConfig::default(), 1, SimTime::ZERO);
        let first = client.poll_transmit(at(0)).unwrap();
        // Initial lost; fire the PTO.
        let deadline = client.next_timeout().unwrap();
        client.on_timeout(deadline);
        let retrans = client.poll_transmit(deadline);
        assert!(retrans.is_some(), "PTO must produce a retransmission");
        // The retransmission still contains the ClientHello crypto data.
        let packet = Packet::decode(&retrans.unwrap(), 8).unwrap();
        assert!(packet
            .frames
            .iter()
            .any(|f| matches!(f, Frame::Crypto { .. } | Frame::Ping)));
        let _ = first;
    }

    #[test]
    fn handshake_completes_under_loss_via_retransmission() {
        // Drop every first transmission, deliver retransmissions.
        let (mut client, mut server) = pair();
        let mut now = SimTime::ZERO;
        let mut drop_next = true;
        for _ in 0..200 {
            let mut progressed = false;
            while let Some(d) = client.poll_transmit(now) {
                if !drop_next {
                    server.handle_datagram(now, &d);
                }
                drop_next = !drop_next;
                progressed = true;
            }
            while let Some(d) = server.poll_transmit(now) {
                if !drop_next {
                    client.handle_datagram(now, &d);
                }
                drop_next = !drop_next;
                progressed = true;
            }
            if client.is_established() && server.is_established() {
                break;
            }
            if !progressed {
                let next = [client.next_timeout(), server.next_timeout()]
                    .into_iter()
                    .flatten()
                    .min();
                let Some(next) = next else { break };
                now = next;
                client.on_timeout(now);
                server.on_timeout(now);
            }
        }
        assert!(client.is_established(), "client established despite loss");
        assert!(server.is_established(), "server established despite loss");
    }

    #[test]
    fn duplicate_datagrams_are_ignored() {
        let (mut client, mut server) = pair();
        let d = client.poll_transmit(at(0)).unwrap();
        server.handle_datagram(at(1), &d);
        let events_before = server.qlog().len();
        server.handle_datagram(at(2), &d);
        // The duplicate is logged as received but not re-processed: no
        // second ServerHello is queued.
        let received_count = server
            .qlog()
            .events
            .iter()
            .filter(|e| matches!(e.data, EventData::PacketReceived { .. }))
            .count();
        assert_eq!(received_count, 2);
        assert!(server.qlog().len() >= events_before);
        let mut hellos = 0;
        let mut c = Connection::new_client(TransportConfig::default(), 9, SimTime::ZERO);
        while let Some(d) = server.poll_transmit(at(3)) {
            let p = Packet::decode(&d, 8).unwrap();
            for f in &p.frames {
                if let Frame::Crypto { data, .. } = f {
                    if data.starts_with(b"SH") {
                        hellos += 1;
                    }
                }
            }
            c.handle_datagram(at(3), &d);
        }
        assert_eq!(hellos, 1, "only one ServerHello despite duplicate CH");
    }

    #[test]
    fn garbage_datagram_is_dropped() {
        let (mut client, _) = pair();
        client.handle_datagram(at(0), &[0xff, 0x00, 0x01]);
        client.handle_datagram(at(0), &[]);
        assert!(!client.is_closed());
    }

    #[test]
    fn qlog_records_sent_and_received_with_spin() {
        let (mut client, mut server) = pair();
        pump(&mut client, &mut server, at(0));
        client.send_stream(0, b"x", true);
        pump(&mut client, &mut server, at(1));
        let has_sent_spin = server.qlog().events.iter().any(|e| {
            matches!(
                e.data,
                EventData::PacketSent {
                    space: PacketSpace::Application,
                    spin: Some(_),
                    ..
                }
            )
        });
        assert!(has_sent_spin);
    }
}
