//! Server endpoint: accepts and demultiplexes many connections by
//! connection ID, the way a real QUIC server (or load balancer) routes
//! datagrams. The scanner's one-connection-per-target flow does not need
//! this, but a web server hosting dozens of pooled domains does — and it
//! is the natural place to exercise CID-based routing end to end.

use crate::config::TransportConfig;
use crate::conn::Connection;
use quicspin_netsim::SimTime;
use quicspin_wire::{ConnectionId, Header, Packet};
use std::collections::BTreeMap;

/// Identifier of an accepted connection within an endpoint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ConnectionHandle(u64);

/// A multi-connection server endpoint.
#[derive(Debug)]
pub struct Endpoint {
    template: TransportConfig,
    seed: u64,
    next_handle: u64,
    connections: BTreeMap<ConnectionHandle, Connection>,
    /// Incoming DCID → connection routing (covers both the client-chosen
    /// initial DCID and the server's own SCID).
    routes: BTreeMap<ConnectionId, ConnectionHandle>,
}

impl Endpoint {
    /// Creates an endpoint; each accepted connection clones `template`.
    pub fn new(template: TransportConfig, seed: u64) -> Self {
        Endpoint {
            template,
            seed,
            next_handle: 0,
            connections: BTreeMap::new(),
            routes: BTreeMap::new(),
        }
    }

    /// Number of connections (any state).
    pub fn len(&self) -> usize {
        self.connections.len()
    }

    /// Whether no connection was accepted yet.
    pub fn is_empty(&self) -> bool {
        self.connections.is_empty()
    }

    /// Access to one connection.
    pub fn connection(&mut self, handle: ConnectionHandle) -> Option<&mut Connection> {
        self.connections.get_mut(&handle)
    }

    /// Iterates over `(handle, connection)` pairs.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (ConnectionHandle, &mut Connection)> {
        self.connections.iter_mut().map(|(&h, c)| (h, c))
    }

    /// Routes one datagram: demultiplexes on the destination CID,
    /// accepting a new connection for unknown Initials. Returns the
    /// handle of the connection that consumed the datagram.
    pub fn handle_datagram(&mut self, now: SimTime, datagram: &[u8]) -> Option<ConnectionHandle> {
        let packet = Packet::decode(datagram, self.template.cid_len).ok()?;
        let dcid = *packet.header.dcid();

        let handle = match self.routes.get(&dcid) {
            Some(&handle) => handle,
            None => {
                // Only a client Initial may open a connection.
                let Header::Long(h) = &packet.header else {
                    return None;
                };
                if h.ty != quicspin_wire::LongType::Initial {
                    return None;
                }
                let handle = ConnectionHandle(self.next_handle);
                self.next_handle += 1;
                let conn = Connection::new_server(
                    self.template.clone(),
                    self.seed.wrapping_add(handle.0).wrapping_mul(0x9e37_79b9),
                    now,
                );
                // Future short headers will carry the server's SCID.
                self.routes.insert(dcid, handle);
                self.routes.insert(conn.scid(), handle);
                self.connections.insert(handle, conn);
                handle
            }
        };
        self.connections
            .get_mut(&handle)
            .expect("routed handle exists")
            .handle_datagram(now, datagram);
        Some(handle)
    }

    /// Collects outgoing datagrams from all connections:
    /// `(handle, datagram, emission latency)`.
    pub fn poll_transmit_all(
        &mut self,
        now: SimTime,
    ) -> Vec<(ConnectionHandle, Vec<u8>, quicspin_netsim::SimDuration)> {
        let mut out = Vec::new();
        for (&handle, conn) in self.connections.iter_mut() {
            while let Some(datagram) = conn.poll_transmit(now) {
                out.push((handle, datagram, conn.last_send_latency()));
            }
        }
        out
    }

    /// Earliest timer deadline across all connections.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.connections
            .values()
            .filter_map(Connection::next_timeout)
            .min()
    }

    /// Fires expired timers on all connections.
    pub fn on_timeout(&mut self, now: SimTime) {
        for conn in self.connections.values_mut() {
            conn.on_timeout(now);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::conn::AppEvent;
    use quicspin_netsim::SimDuration;

    fn at(ms: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(ms)
    }

    /// Pumps N clients against one endpoint over an ideal instantaneous
    /// wire until quiescent.
    fn pump(clients: &mut [Connection], endpoint: &mut Endpoint, now: SimTime) {
        loop {
            let mut progressed = false;
            for client in clients.iter_mut() {
                while let Some(d) = client.poll_transmit(now) {
                    endpoint.handle_datagram(now, &d);
                    progressed = true;
                }
            }
            for (_, d, _) in endpoint.poll_transmit_all(now) {
                // Deliver to whichever client owns the DCID.
                for client in clients.iter_mut() {
                    if quicspin_wire::Packet::decode(&d, 8)
                        .map(|p| *p.header.dcid() == client.scid())
                        .unwrap_or(false)
                    {
                        client.handle_datagram(now, &d);
                        progressed = true;
                    }
                }
            }
            if !progressed {
                return;
            }
        }
    }

    #[test]
    fn endpoint_accepts_multiple_clients() {
        let mut endpoint = Endpoint::new(TransportConfig::default(), 7);
        assert!(endpoint.is_empty());
        let mut clients: Vec<Connection> = (0..3)
            .map(|i| Connection::new_client(TransportConfig::default(), 100 + i, at(0)))
            .collect();
        pump(&mut clients, &mut endpoint, at(0));
        assert_eq!(endpoint.len(), 3);
        for client in &clients {
            assert!(client.is_established());
        }
        for (_, conn) in endpoint.iter_mut() {
            assert!(conn.is_established());
        }
    }

    #[test]
    fn datagrams_route_to_the_right_connection() {
        let mut endpoint = Endpoint::new(TransportConfig::default(), 7);
        let mut clients: Vec<Connection> = (0..2)
            .map(|i| Connection::new_client(TransportConfig::default(), 200 + i, at(0)))
            .collect();
        pump(&mut clients, &mut endpoint, at(0));
        // Each client sends distinct stream data; it must arrive on the
        // matching server connection only.
        clients[0].send_stream(0, b"alpha", true);
        clients[1].send_stream(0, b"beta", true);
        pump(&mut clients, &mut endpoint, at(1));
        let mut payloads = Vec::new();
        for (handle, conn) in endpoint.iter_mut() {
            while let Some(ev) = conn.poll_event() {
                if let AppEvent::StreamData { data, .. } = ev {
                    payloads.push((handle, data));
                }
            }
        }
        payloads.sort_by(|a, b| a.1.cmp(&b.1));
        assert_eq!(payloads.len(), 2);
        assert_eq!(payloads[0].1, b"alpha".to_vec());
        assert_eq!(payloads[1].1, b"beta".to_vec());
        assert_ne!(payloads[0].0, payloads[1].0, "distinct connections");
    }

    #[test]
    fn short_header_to_unknown_cid_is_dropped() {
        let mut endpoint = Endpoint::new(TransportConfig::default(), 7);
        // A 1-RTT packet for a connection that was never opened.
        let stray = quicspin_wire::Packet {
            header: quicspin_wire::Header::Short(quicspin_wire::ShortHeader {
                spin: true,
                vec: 0,
                dcid: ConnectionId::from_u64(0xdead),
                packet_number: quicspin_wire::PacketNumber::new(0),
            }),
            frames: vec![quicspin_wire::Frame::Ping],
        };
        assert_eq!(endpoint.handle_datagram(at(0), &stray.encode()), None);
        assert!(endpoint.is_empty());
    }

    #[test]
    fn garbage_is_dropped_without_state() {
        let mut endpoint = Endpoint::new(TransportConfig::default(), 7);
        assert_eq!(endpoint.handle_datagram(at(0), &[0xff, 0x00]), None);
        assert_eq!(endpoint.handle_datagram(at(0), &[]), None);
        assert!(endpoint.is_empty());
    }

    #[test]
    fn duplicate_initial_reuses_the_connection() {
        let mut endpoint = Endpoint::new(TransportConfig::default(), 7);
        let mut client = Connection::new_client(TransportConfig::default(), 300, at(0));
        let initial = client.poll_transmit(at(0)).unwrap();
        let h1 = endpoint.handle_datagram(at(0), &initial).unwrap();
        let h2 = endpoint.handle_datagram(at(1), &initial).unwrap();
        assert_eq!(h1, h2, "same 5-tuple/CID, same connection");
        assert_eq!(endpoint.len(), 1);
    }

    #[test]
    fn timers_aggregate_across_connections() {
        let mut endpoint = Endpoint::new(TransportConfig::default(), 7);
        assert_eq!(endpoint.next_timeout(), None);
        let mut clients: Vec<Connection> = (0..2)
            .map(|i| Connection::new_client(TransportConfig::default(), 400 + i, at(0)))
            .collect();
        pump(&mut clients, &mut endpoint, at(0));
        assert!(endpoint.next_timeout().is_some());
        endpoint.on_timeout(at(50_000));
        // Firing far in the future idles out every connection.
        let all_closed = {
            let mut all = true;
            for (_, conn) in endpoint.iter_mut() {
                all &= conn.is_closed();
            }
            all
        };
        assert!(all_closed);
    }
}
