//! The endpoint-side spin-bit generator (RFC 9000 §17.4).
//!
//! > "The client starts the signal by transmitting packets with a value of
//! > 0. The server reflects the value it has received, setting the value
//! > on outgoing packets to the value seen on the latest incoming packet
//! > with the highest packet number. In contrast, the client spins the
//! > bit, i.e., it inverts the latest value." (paper §2.1)
//!
//! The generator also implements every disabling behaviour of
//! [`SpinPolicy`](crate::config::SpinPolicy) and, optionally, the Valid
//! Edge Counter carried in the reserved header bits.

use crate::config::SpinPolicy;
use quicspin_core::vec_counter::VecEndpoint;
use quicspin_netsim::Rng;

/// Endpoint role (affects the spin rule: invert vs. reflect).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SpinRole {
    /// Client: inverts the latest received value.
    Client,
    /// Server: reflects the latest received value.
    Server,
}

/// Per-connection spin-bit state of one endpoint.
#[derive(Debug, Clone)]
pub struct SpinGenerator {
    role: SpinRole,
    policy: SpinPolicy,
    /// Largest 1-RTT packet number received so far.
    largest_pn: Option<u64>,
    /// Spin value of that packet.
    spin_seen: bool,
    /// Value fixed at connection start for per-connection greasing.
    per_conn_value: bool,
    /// Spin value on the most recently sent packet (edge detection for VEC).
    last_sent: Option<bool>,
    /// VEC state (only consulted when enabled).
    vec: VecEndpoint,
    vec_enabled: bool,
    /// Incoming spin edges observed (value flips on the largest-pn chain).
    edges: u64,
}

impl SpinGenerator {
    /// Creates the generator; `rng` seeds per-connection grease choices.
    pub fn new(role: SpinRole, policy: SpinPolicy, vec_enabled: bool, rng: &mut Rng) -> Self {
        SpinGenerator {
            role,
            policy,
            largest_pn: None,
            spin_seen: false,
            per_conn_value: rng.chance(0.5),
            last_sent: None,
            vec: VecEndpoint::new(),
            vec_enabled,
            edges: 0,
        }
    }

    /// Records an incoming 1-RTT packet's spin state. Only the packet with
    /// the largest packet number updates the state (RFC 9000 §17.4 —
    /// reordered stale packets are ignored here *by the endpoint*; the
    /// passive observer has no packet numbers and cannot do the same,
    /// which is exactly the Fig. 1b failure mode).
    pub fn on_receive(&mut self, pn: u64, spin: bool, vec: u8) {
        if self.largest_pn.is_none_or(|l| pn > l) {
            let first = self.largest_pn.is_none();
            self.largest_pn = Some(pn);
            // The VEC tracks the packet that *set* the current spin value
            // (the edge packet); later same-value packets carry VEC 0 and
            // must not clobber the chain (De Vaere et al. §3.2).
            if first || spin != self.spin_seen {
                self.vec.on_spin_update(vec);
            }
            if !first && spin != self.spin_seen {
                self.edges += 1;
            }
            self.spin_seen = spin;
        }
    }

    /// Number of spin-bit transitions observed on received packets. Each
    /// edge marks one half-rotation of the signal, so a healthy
    /// spinning connection accrues roughly one edge per RTT per direction.
    pub fn edges(&self) -> u64 {
        self.edges
    }

    /// Computes the spin bit and VEC for the next outgoing 1-RTT packet.
    pub fn next_outgoing(&mut self, rng: &mut Rng) -> (bool, u8) {
        let spin = match self.policy {
            SpinPolicy::Participate => match self.role {
                // Client starts at 0 and inverts once it has seen a packet.
                SpinRole::Client => {
                    if self.largest_pn.is_some() {
                        !self.spin_seen
                    } else {
                        false
                    }
                }
                // Server reflects (0 before anything is received).
                SpinRole::Server => self.spin_seen,
            },
            SpinPolicy::FixedZero => false,
            SpinPolicy::FixedOne => true,
            SpinPolicy::GreasePerPacket => rng.chance(0.5),
            SpinPolicy::GreasePerConnection => self.per_conn_value,
        };

        let is_edge = self.last_sent.map_or(spin, |prev| prev != spin);
        self.last_sent = Some(spin);

        let vec = if self.vec_enabled && self.policy == SpinPolicy::Participate {
            self.vec.outgoing_vec(is_edge, false)
        } else {
            0
        };
        (spin, vec)
    }

    /// The policy in force.
    pub fn policy(&self) -> SpinPolicy {
        self.policy
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> Rng {
        Rng::new(7)
    }

    fn gen(role: SpinRole, policy: SpinPolicy) -> (SpinGenerator, Rng) {
        let mut r = rng();
        (SpinGenerator::new(role, policy, false, &mut r), r)
    }

    #[test]
    fn client_starts_at_zero() {
        let (mut g, mut r) = gen(SpinRole::Client, SpinPolicy::Participate);
        assert!(!g.next_outgoing(&mut r).0);
        assert!(!g.next_outgoing(&mut r).0);
    }

    #[test]
    fn server_reflects() {
        let (mut g, mut r) = gen(SpinRole::Server, SpinPolicy::Participate);
        assert!(!g.next_outgoing(&mut r).0, "reflects 0 initially");
        g.on_receive(0, true, 0);
        assert!(g.next_outgoing(&mut r).0);
        g.on_receive(1, false, 0);
        assert!(!g.next_outgoing(&mut r).0);
    }

    #[test]
    fn client_inverts() {
        let (mut g, mut r) = gen(SpinRole::Client, SpinPolicy::Participate);
        g.on_receive(0, false, 0);
        assert!(g.next_outgoing(&mut r).0);
        g.on_receive(1, true, 0);
        assert!(!g.next_outgoing(&mut r).0);
    }

    #[test]
    fn stale_packets_do_not_regress_state() {
        let (mut g, mut r) = gen(SpinRole::Server, SpinPolicy::Participate);
        g.on_receive(5, true, 0);
        // A reordered packet with a smaller pn must be ignored.
        g.on_receive(3, false, 0);
        assert!(g.next_outgoing(&mut r).0);
    }

    #[test]
    fn full_loop_produces_square_wave() {
        // Simulate the ping-pong of §2.1 Fig. 1a.
        let mut r = rng();
        let mut client =
            SpinGenerator::new(SpinRole::Client, SpinPolicy::Participate, false, &mut r);
        let mut server =
            SpinGenerator::new(SpinRole::Server, SpinPolicy::Participate, false, &mut r);
        let mut pn = 0u64;
        let mut client_values = Vec::new();
        for _ in 0..4 {
            let (cs, _) = client.next_outgoing(&mut r);
            client_values.push(cs);
            server.on_receive(pn, cs, 0);
            pn += 1;
            let (ss, _) = server.next_outgoing(&mut r);
            assert_eq!(ss, cs, "server reflects");
            client.on_receive(pn, ss, 0);
            pn += 1;
        }
        assert_eq!(client_values, vec![false, true, false, true]);
    }

    #[test]
    fn fixed_policies_never_flip() {
        let (mut g0, mut r0) = gen(SpinRole::Client, SpinPolicy::FixedZero);
        let (mut g1, mut r1) = gen(SpinRole::Server, SpinPolicy::FixedOne);
        for pn in 0..20 {
            g0.on_receive(pn, pn % 2 == 0, 0);
            g1.on_receive(pn, pn % 2 == 0, 0);
            assert!(!g0.next_outgoing(&mut r0).0);
            assert!(g1.next_outgoing(&mut r1).0);
        }
    }

    #[test]
    fn per_packet_grease_flips_eventually() {
        let (mut g, mut r) = gen(SpinRole::Client, SpinPolicy::GreasePerPacket);
        let values: Vec<bool> = (0..64).map(|_| g.next_outgoing(&mut r).0).collect();
        assert!(values.iter().any(|&v| v) && values.iter().any(|&v| !v));
    }

    #[test]
    fn per_connection_grease_is_constant() {
        for seed in 0..16 {
            let mut r = Rng::new(seed);
            let mut g = SpinGenerator::new(
                SpinRole::Client,
                SpinPolicy::GreasePerConnection,
                false,
                &mut r,
            );
            let first = g.next_outgoing(&mut r).0;
            for _ in 0..20 {
                assert_eq!(g.next_outgoing(&mut r).0, first);
            }
        }
    }

    #[test]
    fn per_connection_grease_varies_across_connections() {
        let values: Vec<bool> = (0..32)
            .map(|seed| {
                let mut r = Rng::new(seed);
                let mut g = SpinGenerator::new(
                    SpinRole::Client,
                    SpinPolicy::GreasePerConnection,
                    false,
                    &mut r,
                );
                g.next_outgoing(&mut r).0
            })
            .collect();
        assert!(values.iter().any(|&v| v) && values.iter().any(|&v| !v));
    }

    #[test]
    fn vec_counts_up_along_loop() {
        let mut r = rng();
        let mut client =
            SpinGenerator::new(SpinRole::Client, SpinPolicy::Participate, true, &mut r);
        let mut server =
            SpinGenerator::new(SpinRole::Server, SpinPolicy::Participate, true, &mut r);
        let mut pn = 0;
        let mut max_vec_seen = 0u8;
        for _ in 0..6 {
            let (cs, cv) = client.next_outgoing(&mut r);
            server.on_receive(pn, cs, cv);
            pn += 1;
            let (ss, sv) = server.next_outgoing(&mut r);
            client.on_receive(pn, ss, sv);
            pn += 1;
            max_vec_seen = max_vec_seen.max(cv).max(sv);
        }
        assert_eq!(max_vec_seen, 3, "VEC saturates over a clean exchange");
    }

    #[test]
    fn vec_disabled_sends_zero() {
        let (mut g, mut r) = gen(SpinRole::Client, SpinPolicy::Participate);
        g.on_receive(0, false, 3);
        assert_eq!(g.next_outgoing(&mut r).1, 0);
    }

    #[test]
    fn non_edge_packets_carry_vec_zero() {
        let mut r = rng();
        let mut g = SpinGenerator::new(SpinRole::Client, SpinPolicy::Participate, true, &mut r);
        g.on_receive(0, false, 2);
        let (s1, v1) = g.next_outgoing(&mut r);
        assert!(s1);
        assert_eq!(v1, 3, "edge packet increments");
        let (s2, v2) = g.next_outgoing(&mut r);
        assert!(s2);
        assert_eq!(v2, 0, "repeat value, no edge");
    }

    #[test]
    fn edges_count_received_flips_only() {
        let (mut g, _) = gen(SpinRole::Server, SpinPolicy::Participate);
        assert_eq!(g.edges(), 0);
        g.on_receive(0, false, 0); // first packet: baseline, not an edge
        g.on_receive(1, false, 0); // same value: no edge
        g.on_receive(2, true, 0); // flip: edge
        g.on_receive(1, false, 0); // stale pn: ignored entirely
        g.on_receive(3, false, 0); // flip back: edge
        assert_eq!(g.edges(), 2);
    }

    #[test]
    fn policy_accessor() {
        let (g, _) = gen(SpinRole::Client, SpinPolicy::FixedOne);
        assert_eq!(g.policy(), SpinPolicy::FixedOne);
    }
}
