//! Minimal stream machinery: ordered byte streams with FIN, enough for an
//! HTTP/3-style request/response exchange (plus retransmission support).

use quicspin_wire::Frame;
use std::collections::BTreeMap;

/// Sending half of one stream.
#[derive(Debug, Clone, Default)]
struct SendStream {
    /// Bytes queued for sending. Consumed via `cursor` instead of
    /// front-drains, which would memmove the unsent remainder on every
    /// packetized frame.
    pending: Vec<u8>,
    /// Bytes of `pending` already packetized.
    cursor: usize,
    /// Stream offset of `pending[cursor]`.
    base_offset: u64,
    /// FIN requested by the application.
    fin_queued: bool,
    /// FIN has been packetized.
    fin_sent: bool,
    /// Lost frames awaiting retransmission: (offset, data, fin). Served
    /// before fresh data.
    retransmit: Vec<(u64, Vec<u8>, bool)>,
}

/// Receiving half of one stream.
#[derive(Debug, Clone, Default)]
struct RecvStream {
    /// Out-of-order segments by offset.
    segments: BTreeMap<u64, Vec<u8>>,
    /// Contiguously assembled prefix not yet delivered to the app.
    assembled: Vec<u8>,
    /// Next offset expected into `assembled`.
    next_offset: u64,
    /// Total stream length once FIN is known.
    fin_at: Option<u64>,
    /// FIN already delivered to the app.
    fin_delivered: bool,
}

/// All streams of a connection.
#[derive(Debug, Clone, Default)]
pub struct StreamSet {
    send: BTreeMap<u64, SendStream>,
    recv: BTreeMap<u64, RecvStream>,
}

impl StreamSet {
    /// Creates an empty set.
    pub fn new() -> Self {
        StreamSet::default()
    }

    /// Queues application data (and optionally FIN) on a stream.
    pub fn write(&mut self, id: u64, data: &[u8], fin: bool) {
        let s = self.send.entry(id).or_default();
        assert!(!s.fin_queued, "write after FIN on stream {id}");
        s.pending.extend_from_slice(data);
        if fin {
            s.fin_queued = true;
        }
    }

    /// Whether any stream has data or FIN waiting to be packetized.
    pub fn has_pending(&self) -> bool {
        self.send.values().any(|s| {
            s.pending.len() > s.cursor || !s.retransmit.is_empty() || (s.fin_queued && !s.fin_sent)
        })
    }

    /// Produces the next STREAM frame, up to `max_len` payload bytes.
    /// Retransmissions are served before fresh data.
    pub fn next_frame(&mut self, max_len: usize) -> Option<Frame> {
        for (&id, s) in self.send.iter_mut() {
            // Retransmissions first: resend the lost frame verbatim
            // (splitting if it exceeds max_len).
            if let Some((offset, mut data, fin)) = s.retransmit.pop() {
                if data.len() > max_len {
                    let rest = data.split_off(max_len);
                    s.retransmit.push((offset + max_len as u64, rest, fin));
                    return Some(Frame::Stream {
                        id,
                        offset,
                        fin: false,
                        data,
                    });
                }
                return Some(Frame::Stream {
                    id,
                    offset,
                    fin,
                    data,
                });
            }
            let unsent = s.pending.len() - s.cursor;
            if unsent == 0 && (!s.fin_queued || s.fin_sent) {
                continue;
            }
            let take = unsent.min(max_len);
            let data = s.pending[s.cursor..s.cursor + take].to_vec();
            s.cursor += take;
            let offset = s.base_offset;
            s.base_offset += take as u64;
            let fin = s.fin_queued && s.cursor == s.pending.len();
            if s.cursor == s.pending.len() {
                s.pending.clear();
                s.cursor = 0;
            }
            if fin {
                s.fin_sent = true;
            }
            return Some(Frame::Stream {
                id,
                offset,
                fin,
                data,
            });
        }
        None
    }

    /// Re-queues a lost STREAM frame for retransmission at its original
    /// offset.
    pub fn requeue(&mut self, id: u64, offset: u64, data: Vec<u8>, fin: bool) {
        let s = self.send.entry(id).or_default();
        if !data.is_empty() || fin {
            s.retransmit.push((offset, data, fin));
        }
    }

    /// Ingests a received STREAM frame. Takes the frame's payload by
    /// value: in-order data lands in the segment map without a copy.
    pub fn on_frame(&mut self, id: u64, offset: u64, data: Vec<u8>, fin: bool) {
        let s = self.recv.entry(id).or_default();
        if fin {
            s.fin_at = Some(offset + data.len() as u64);
        }
        // In-order fast path (the common case by far): adopt the frame's
        // allocation as the assembled buffer — no segment-map node, no
        // byte copy.
        if !data.is_empty()
            && offset == s.next_offset
            && s.assembled.is_empty()
            && s.segments.is_empty()
        {
            s.next_offset += data.len() as u64;
            s.assembled = data;
            return;
        }
        if !data.is_empty() && offset + (data.len() as u64) > s.next_offset {
            s.segments.insert(offset, data);
        }
        // Assemble the contiguous prefix.
        while let Some((&seg_offset, _)) = s.segments.range(..=s.next_offset).next_back() {
            let seg = s.segments.remove(&seg_offset).expect("segment exists");
            let seg_end = seg_offset + seg.len() as u64;
            if seg_end <= s.next_offset {
                continue; // fully duplicate
            }
            let skip = (s.next_offset - seg_offset) as usize;
            s.assembled.extend_from_slice(&seg[skip..]);
            s.next_offset = seg_end;
        }
    }

    /// Reads newly assembled data; returns `(data, fin_reached)`.
    /// Returns `None` when nothing new is available.
    pub fn read(&mut self, id: u64) -> Option<(Vec<u8>, bool)> {
        let s = self.recv.get_mut(&id)?;
        let fin_now = s.fin_at == Some(s.next_offset) && !s.fin_delivered;
        if s.assembled.is_empty() && !fin_now {
            return None;
        }
        let data = std::mem::take(&mut s.assembled);
        if fin_now {
            s.fin_delivered = true;
        }
        Some((data, fin_now))
    }

    /// Stream IDs with data or FIN available to read.
    pub fn readable(&self) -> Vec<u64> {
        self.recv
            .iter()
            .filter(|(_, s)| {
                !s.assembled.is_empty() || (s.fin_at == Some(s.next_offset) && !s.fin_delivered)
            })
            .map(|(&id, _)| id)
            .collect()
    }

    /// Total bytes received in order on a stream.
    pub fn bytes_received(&self, id: u64) -> u64 {
        self.recv.get(&id).map_or(0, |s| s.next_offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn write_then_packetize() {
        let mut s = StreamSet::new();
        s.write(0, b"hello world", true);
        assert!(s.has_pending());
        let f = s.next_frame(5).unwrap();
        assert_eq!(
            f,
            Frame::Stream {
                id: 0,
                offset: 0,
                fin: false,
                data: b"hello".to_vec()
            }
        );
        let f = s.next_frame(100).unwrap();
        assert_eq!(
            f,
            Frame::Stream {
                id: 0,
                offset: 5,
                fin: true,
                data: b" world".to_vec()
            }
        );
        assert!(!s.has_pending());
        assert!(s.next_frame(100).is_none());
    }

    #[test]
    fn fin_only_frame() {
        let mut s = StreamSet::new();
        s.write(4, b"", true);
        let f = s.next_frame(100).unwrap();
        assert_eq!(
            f,
            Frame::Stream {
                id: 4,
                offset: 0,
                fin: true,
                data: vec![]
            }
        );
    }

    #[test]
    fn in_order_receive_and_read() {
        let mut s = StreamSet::new();
        s.on_frame(0, 0, b"abc".to_vec(), false);
        s.on_frame(0, 3, b"def".to_vec(), true);
        assert_eq!(s.readable(), vec![0]);
        let (data, fin) = s.read(0).unwrap();
        assert_eq!(data, b"abcdef");
        assert!(fin);
        assert!(s.read(0).is_none());
        assert_eq!(s.bytes_received(0), 6);
    }

    #[test]
    fn out_of_order_reassembly() {
        let mut s = StreamSet::new();
        s.on_frame(0, 3, b"def".to_vec(), true);
        assert!(s.read(0).is_none(), "gap: nothing readable yet");
        s.on_frame(0, 0, b"abc".to_vec(), false);
        let (data, fin) = s.read(0).unwrap();
        assert_eq!(data, b"abcdef");
        assert!(fin);
    }

    #[test]
    fn duplicate_and_overlapping_segments() {
        let mut s = StreamSet::new();
        s.on_frame(0, 0, b"abcd".to_vec(), false);
        s.on_frame(0, 0, b"abcd".to_vec(), false); // full duplicate
        s.on_frame(0, 2, b"cdef".to_vec(), true); // overlap
        let (data, fin) = s.read(0).unwrap();
        assert_eq!(data, b"abcdef");
        assert!(fin);
    }

    #[test]
    fn fin_without_data_read() {
        let mut s = StreamSet::new();
        s.on_frame(2, 0, b"".to_vec(), true);
        let (data, fin) = s.read(2).unwrap();
        assert!(data.is_empty());
        assert!(fin);
        assert!(s.read(2).is_none(), "fin delivered once");
    }

    #[test]
    fn requeue_retransmits_lost_frame() {
        let mut s = StreamSet::new();
        s.write(0, b"abcdef", true);
        let f1 = s.next_frame(3).unwrap(); // "abc"
        let _f2 = s.next_frame(3).unwrap(); // "def" + fin
                                            // f1 is lost → requeue.
        if let Frame::Stream {
            id,
            offset,
            fin,
            data,
        } = f1
        {
            s.requeue(id, offset, data, fin);
        }
        let f = s.next_frame(100).unwrap();
        assert_eq!(
            f,
            Frame::Stream {
                id: 0,
                offset: 0,
                fin: false,
                data: b"abc".to_vec()
            }
        );
    }

    #[test]
    fn requeue_fin_restores_fin() {
        let mut s = StreamSet::new();
        s.write(0, b"xy", true);
        let f = s.next_frame(100).unwrap();
        if let Frame::Stream {
            id,
            offset,
            fin,
            data,
        } = f
        {
            assert!(fin);
            s.requeue(id, offset, data, fin);
        }
        let f2 = s.next_frame(100).unwrap();
        assert_eq!(
            f2,
            Frame::Stream {
                id: 0,
                offset: 0,
                fin: true,
                data: b"xy".to_vec()
            }
        );
    }

    #[test]
    fn multiple_streams_round_robin_by_id() {
        let mut s = StreamSet::new();
        s.write(4, b"b", false);
        s.write(0, b"a", false);
        let f = s.next_frame(100).unwrap();
        match f {
            Frame::Stream { id, .. } => assert_eq!(id, 0, "lowest id first"),
            _ => unreachable!(),
        }
    }

    #[test]
    #[should_panic(expected = "write after FIN")]
    fn write_after_fin_panics() {
        let mut s = StreamSet::new();
        s.write(0, b"a", true);
        s.write(0, b"b", false);
    }

    proptest::proptest! {
        #[test]
        fn prop_reassembly_any_order(chunks in proptest::collection::vec(
            proptest::collection::vec(proptest::prelude::any::<u8>(), 1..20), 1..10
        ), perm_seed: u64) {
            // Build the reference byte stream and its (offset, data) chunks.
            let mut offset = 0u64;
            let mut pieces = Vec::new();
            let mut reference = Vec::new();
            for c in &chunks {
                pieces.push((offset, c.clone()));
                reference.extend_from_slice(c);
                offset += c.len() as u64;
            }
            let last = pieces.len() - 1;
            // Shuffle deterministically.
            let mut state = perm_seed.wrapping_add(1);
            for i in (1..pieces.len()).rev() {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                let j = (state >> 33) as usize % (i + 1);
                pieces.swap(i, j);
            }
            let mut s = StreamSet::new();
            let total = reference.len() as u64;
            for (i, (off, data)) in pieces.iter().enumerate() {
                let is_last_piece = *off + data.len() as u64 == total;
                s.on_frame(0, *off, data.clone(), is_last_piece);
                let _ = (i, last);
            }
            let (data, fin) = s.read(0).unwrap();
            proptest::prop_assert_eq!(data, reference);
            proptest::prop_assert!(fin);
        }
    }
}
