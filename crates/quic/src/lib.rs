//! # quicspin-quic — a simplified QUIC v1 endpoint
//!
//! The paper's scans ran an adapted quic-go; this crate is the from-scratch
//! Rust equivalent scoped to what the study exercises:
//!
//! * connection establishment over an opaque-blob handshake that carries
//!   version and transport parameters (TLS itself is irrelevant to the
//!   study — only transport behaviour is measured);
//! * packet-number spaces, ACK generation with delayed ACKs and reported
//!   ACK delay, RFC 9002 RTT estimation (`latest` / `smoothed` / `rttvar`
//!   / `min`), packet-threshold loss detection, and PTO retransmission;
//! * streams sufficient for an HTTP/3-style request/response exchange;
//! * **the spin bit** (RFC 9000 §17.4): client inverts, server reflects,
//!   keyed to the largest received packet number — plus every disabling
//!   strategy the paper investigates (fixed zero/one, per-packet and
//!   per-connection greasing) and the optional Valid Edge Counter;
//! * qlog event emission for every packet, mirroring the paper's
//!   instrumentation.
//!
//! [`ConnectionLab`] wires a client and a server connection through a
//! `quicspin-netsim` path and drives the event loop — the unit of work the
//! scanner performs once per target.

pub mod ack;
pub mod config;
pub mod conn;
pub mod endpoint;
pub mod lab;
pub mod recovery;
pub mod rtt;
pub mod spin;
pub mod streams;

pub use config::{SpinPolicy, TransportConfig};
pub use conn::{AppEvent, ConnCounters, Connection, ConnectionError, Role};
pub use endpoint::{ConnectionHandle, Endpoint};
pub use lab::{ConnectionLab, LabConfig, LabOutcome, LabScratch, LabStats, ServerProfile};
pub use rtt::RttEstimator;
pub use spin::SpinGenerator;
