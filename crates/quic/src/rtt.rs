//! RFC 9002 §5 round-trip-time estimation.
//!
//! This is the "QUIC stack estimate" the paper uses as ground truth: it
//! "measures the time until a specific packet is acknowledged and
//! additionally factors in processing delays as reported by the other
//! host" (§3.3) — i.e. the peer's ACK delay is subtracted before the
//! sample enters the smoothed estimate.

use quicspin_netsim::SimDuration;

/// RFC 9002-style RTT estimator.
#[derive(Debug, Clone)]
pub struct RttEstimator {
    latest: SimDuration,
    smoothed: Option<SimDuration>,
    rttvar: SimDuration,
    min: SimDuration,
    initial: SimDuration,
    /// Every adjusted sample, in µs — the paper compares against the mean
    /// of these.
    samples_us: Vec<u64>,
}

impl RttEstimator {
    /// Creates an estimator with the configured initial RTT.
    pub fn new(initial: SimDuration) -> Self {
        RttEstimator {
            latest: initial,
            smoothed: None,
            rttvar: initial / 2,
            min: initial,
            initial,
            samples_us: Vec::new(),
        }
    }

    /// Feeds one sample (RFC 9002 §5.3).
    ///
    /// `rtt` is the raw time from send to ACK receipt; `ack_delay` is the
    /// delay the peer reported having held the ACK; `handshake_confirmed`
    /// gates whether `ack_delay` may be trusted/limited by max_ack_delay
    /// (simplified: we always subtract when it keeps the sample above the
    /// minimum, per §5.3's rule).
    pub fn update(&mut self, rtt: SimDuration, ack_delay: SimDuration) {
        self.latest = rtt;
        if self.smoothed.is_none() || rtt < self.min {
            self.min = rtt;
        }

        // Subtract ack_delay unless it would push the sample below min_rtt.
        let adjusted = if rtt.saturating_sub(ack_delay) >= self.min {
            rtt - ack_delay
        } else {
            rtt
        };

        self.samples_us.push(adjusted.as_micros());

        match self.smoothed {
            None => {
                self.smoothed = Some(adjusted);
                self.rttvar = adjusted / 2;
            }
            Some(smoothed) => {
                let var_sample = if smoothed > adjusted {
                    smoothed - adjusted
                } else {
                    adjusted - smoothed
                };
                // rttvar = 3/4 * rttvar + 1/4 * |smoothed - adjusted|
                self.rttvar = SimDuration::from_nanos(
                    (self.rttvar.as_nanos() * 3 + var_sample.as_nanos()) / 4,
                );
                // smoothed = 7/8 * smoothed + 1/8 * adjusted
                self.smoothed = Some(SimDuration::from_nanos(
                    (smoothed.as_nanos() * 7 + adjusted.as_nanos()) / 8,
                ));
            }
        }
    }

    /// Latest raw sample.
    pub fn latest(&self) -> SimDuration {
        self.latest
    }

    /// Smoothed RTT (initial value before any sample).
    pub fn smoothed(&self) -> SimDuration {
        self.smoothed.unwrap_or(self.initial)
    }

    /// Minimum RTT seen.
    pub fn min(&self) -> SimDuration {
        self.min
    }

    /// RTT variance estimate.
    pub fn rttvar(&self) -> SimDuration {
        self.rttvar
    }

    /// Whether at least one sample was taken.
    pub fn has_samples(&self) -> bool {
        !self.samples_us.is_empty()
    }

    /// All adjusted samples in µs.
    pub fn samples_us(&self) -> &[u64] {
        &self.samples_us
    }

    /// Mean of the adjusted samples in µs (`None` before any sample).
    pub fn mean_us(&self) -> Option<u64> {
        if self.samples_us.is_empty() {
            None
        } else {
            Some(self.samples_us.iter().sum::<u64>() / self.samples_us.len() as u64)
        }
    }

    /// Probe timeout (RFC 9002 §6.2): `smoothed + max(4·rttvar, 1ms) +
    /// max_ack_delay`.
    pub fn pto(&self, max_ack_delay: SimDuration) -> SimDuration {
        let granularity = SimDuration::from_millis(1);
        let var = self.rttvar * 4;
        let var = if var > granularity { var } else { granularity };
        self.smoothed() + var + max_ack_delay
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }

    #[test]
    fn first_sample_initializes() {
        let mut e = RttEstimator::new(ms(333));
        assert!(!e.has_samples());
        assert_eq!(e.smoothed(), ms(333));
        e.update(ms(40), SimDuration::ZERO);
        assert!(e.has_samples());
        assert_eq!(e.latest(), ms(40));
        assert_eq!(e.smoothed(), ms(40));
        assert_eq!(e.min(), ms(40));
        assert_eq!(e.rttvar(), ms(20));
    }

    #[test]
    fn smoothing_follows_rfc9002_weights() {
        let mut e = RttEstimator::new(ms(333));
        e.update(ms(40), SimDuration::ZERO);
        e.update(ms(80), SimDuration::ZERO);
        // smoothed = 7/8·40 + 1/8·80 = 45 ms
        assert_eq!(e.smoothed(), ms(45));
        // rttvar = 3/4·20 + 1/4·40 = 25 ms
        assert_eq!(e.rttvar(), ms(25));
        assert_eq!(e.min(), ms(40));
    }

    #[test]
    fn ack_delay_is_subtracted() {
        let mut e = RttEstimator::new(ms(333));
        e.update(ms(40), SimDuration::ZERO);
        // 65 ms raw with 25 ms reported ack delay → 40 ms sample.
        e.update(ms(65), ms(25));
        assert_eq!(e.samples_us(), &[40_000, 40_000]);
        assert_eq!(e.smoothed(), ms(40));
    }

    #[test]
    fn ack_delay_not_subtracted_below_min() {
        let mut e = RttEstimator::new(ms(333));
        e.update(ms(40), SimDuration::ZERO);
        // 45 ms raw with 25 ms claimed delay would give 20 < min → keep raw.
        e.update(ms(45), ms(25));
        assert_eq!(e.samples_us(), &[40_000, 45_000]);
    }

    #[test]
    fn min_tracks_smallest_raw() {
        let mut e = RttEstimator::new(ms(333));
        e.update(ms(50), SimDuration::ZERO);
        e.update(ms(30), SimDuration::ZERO);
        e.update(ms(70), SimDuration::ZERO);
        assert_eq!(e.min(), ms(30));
    }

    #[test]
    fn mean_of_samples() {
        let mut e = RttEstimator::new(ms(333));
        assert_eq!(e.mean_us(), None);
        e.update(ms(40), SimDuration::ZERO);
        e.update(ms(60), SimDuration::ZERO);
        assert_eq!(e.mean_us(), Some(50_000));
    }

    #[test]
    fn pto_composition() {
        let mut e = RttEstimator::new(ms(333));
        e.update(ms(40), SimDuration::ZERO);
        // pto = 40 + 4·20 + 25 = 145 ms
        assert_eq!(e.pto(ms(25)), ms(145));
    }

    #[test]
    fn pto_floors_variance_at_granularity() {
        let mut e = RttEstimator::new(ms(333));
        // Feed identical samples until rttvar decays below 0.25 ms.
        for _ in 0..40 {
            e.update(ms(40), SimDuration::ZERO);
        }
        assert!(e.rttvar() * 4 < ms(1));
        assert_eq!(e.pto(ms(25)), ms(40) + ms(1) + ms(25));
    }

    proptest::proptest! {
        #[test]
        fn prop_min_is_lower_bound(samples in proptest::collection::vec(1u64..1000, 1..50)) {
            let mut e = RttEstimator::new(ms(333));
            for &s in &samples {
                e.update(ms(s), SimDuration::ZERO);
            }
            let true_min = *samples.iter().min().unwrap();
            proptest::prop_assert_eq!(e.min(), ms(true_min));
            proptest::prop_assert!(e.smoothed() >= e.min());
        }
    }
}
