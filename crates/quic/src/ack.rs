//! Received-packet tracking and ACK generation (RFC 9000 §13.2).

use quicspin_netsim::{SimDuration, SimTime};
use quicspin_wire::{AckRange, Frame};

/// Tracks received packet numbers in one packet-number space and decides
/// when to send ACKs.
#[derive(Debug, Clone)]
pub struct RecvTracker {
    /// Received pn ranges, ascending, disjoint, merged.
    ranges: Vec<(u64, u64)>,
    largest: Option<u64>,
    largest_recv_time: SimTime,
    /// Ack-eliciting packets received since the last ACK we sent.
    eliciting_since_ack: u32,
    /// Deadline for a delayed ACK, if armed.
    ack_timer: Option<SimTime>,
    /// An ACK should be sent as soon as possible.
    ack_now: bool,
}

impl Default for RecvTracker {
    fn default() -> Self {
        Self::new()
    }
}

impl RecvTracker {
    /// Creates an empty tracker.
    pub fn new() -> Self {
        RecvTracker {
            ranges: Vec::new(),
            largest: None,
            largest_recv_time: SimTime::ZERO,
            eliciting_since_ack: 0,
            ack_timer: None,
            ack_now: false,
        }
    }

    /// Whether `pn` was already received (duplicate detection).
    pub fn contains(&self, pn: u64) -> bool {
        self.ranges
            .iter()
            .any(|&(start, end)| pn >= start && pn <= end)
    }

    /// Records a received packet. Returns `false` for duplicates.
    ///
    /// `immediate_ack_threshold` is the number of ack-eliciting packets
    /// after which an ACK goes out immediately (RFC 9000 recommends every
    /// second packet); `max_ack_delay` bounds how long a solitary
    /// ack-eliciting packet may wait. Handshake-space callers pass a zero
    /// threshold to ACK everything immediately.
    pub fn on_packet(
        &mut self,
        pn: u64,
        ack_eliciting: bool,
        now: SimTime,
        immediate_ack_threshold: u32,
        max_ack_delay: SimDuration,
    ) -> bool {
        if self.contains(pn) {
            return false;
        }
        let out_of_order = self.largest.is_some_and(|l| pn < l);
        self.insert(pn);
        if self.largest.is_none_or(|l| pn >= l) {
            self.largest = Some(pn);
            self.largest_recv_time = now;
        }
        if ack_eliciting {
            self.eliciting_since_ack += 1;
            // RFC 9000 §13.2.1: ACK immediately when the threshold is hit
            // or when the packet is out of order (reordering signal).
            if self.eliciting_since_ack >= immediate_ack_threshold.max(1) || out_of_order {
                self.ack_now = true;
                self.ack_timer = None;
            } else if self.ack_timer.is_none() {
                self.ack_timer = Some(now + max_ack_delay);
            }
        }
        true
    }

    fn insert(&mut self, pn: u64) {
        let pos = self.ranges.partition_point(|&(start, _)| start <= pn);
        self.ranges.insert(pos, (pn, pn));
        // Merge adjacent/overlapping ranges.
        let mut merged: Vec<(u64, u64)> = Vec::with_capacity(self.ranges.len());
        for &(start, end) in self.ranges.iter() {
            match merged.last_mut() {
                Some(last) if start <= last.1.saturating_add(1) => {
                    last.1 = last.1.max(end);
                }
                _ => merged.push((start, end)),
            }
        }
        self.ranges = merged;
    }

    /// Fires the delayed-ACK timer if expired.
    pub fn on_timeout(&mut self, now: SimTime) {
        if let Some(deadline) = self.ack_timer {
            if now >= deadline {
                self.ack_now = true;
                self.ack_timer = None;
            }
        }
    }

    /// Earliest pending deadline for this tracker.
    pub fn next_timeout(&self) -> Option<SimTime> {
        self.ack_timer
    }

    /// Whether an ACK should be bundled into the next packet right now.
    pub fn wants_ack(&self) -> bool {
        self.ack_now
    }

    /// Whether anything was ever received (an ACK frame can be built).
    pub fn has_received(&self) -> bool {
        self.largest.is_some()
    }

    /// Largest received packet number.
    pub fn largest(&self) -> Option<u64> {
        self.largest
    }

    /// Builds an ACK frame covering everything received, resetting the
    /// delayed-ACK machinery. Returns `None` if nothing was received.
    pub fn make_ack(&mut self, now: SimTime) -> Option<Frame> {
        let largest = self.largest?;
        let delay = now.saturating_since(self.largest_recv_time);
        // Descending ranges, first contains `largest`.
        let ranges: Vec<AckRange> = self
            .ranges
            .iter()
            .rev()
            .map(|&(start, end)| AckRange::new(start, end))
            .collect();
        self.ack_now = false;
        self.ack_timer = None;
        self.eliciting_since_ack = 0;
        Some(Frame::Ack {
            largest,
            delay_us: delay.as_micros(),
            ranges,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(v: u64) -> SimDuration {
        SimDuration::from_millis(v)
    }
    fn at(v: u64) -> SimTime {
        SimTime::ZERO + ms(v)
    }

    #[test]
    fn duplicate_detection() {
        let mut t = RecvTracker::new();
        assert!(t.on_packet(5, true, at(0), 2, ms(25)));
        assert!(!t.on_packet(5, true, at(1), 2, ms(25)));
        assert!(t.contains(5));
        assert!(!t.contains(4));
    }

    #[test]
    fn single_eliciting_packet_arms_delayed_ack() {
        let mut t = RecvTracker::new();
        t.on_packet(0, true, at(0), 2, ms(25));
        assert!(!t.wants_ack());
        assert_eq!(t.next_timeout(), Some(at(25)));
        t.on_timeout(at(25));
        assert!(t.wants_ack());
    }

    #[test]
    fn second_eliciting_packet_acks_immediately() {
        let mut t = RecvTracker::new();
        t.on_packet(0, true, at(0), 2, ms(25));
        t.on_packet(1, true, at(1), 2, ms(25));
        assert!(t.wants_ack());
        assert_eq!(t.next_timeout(), None);
    }

    #[test]
    fn non_eliciting_packets_never_force_acks() {
        let mut t = RecvTracker::new();
        t.on_packet(0, false, at(0), 2, ms(25));
        t.on_packet(1, false, at(1), 2, ms(25));
        assert!(!t.wants_ack());
        assert_eq!(t.next_timeout(), None);
    }

    #[test]
    fn out_of_order_triggers_immediate_ack() {
        let mut t = RecvTracker::new();
        t.on_packet(3, true, at(0), 10, ms(25));
        assert!(!t.wants_ack());
        t.on_packet(1, true, at(1), 10, ms(25));
        assert!(t.wants_ack(), "reordered arrival must ACK immediately");
    }

    #[test]
    fn threshold_zero_acts_as_one() {
        let mut t = RecvTracker::new();
        t.on_packet(0, true, at(0), 0, ms(25));
        assert!(t.wants_ack(), "handshake spaces ack everything at once");
    }

    #[test]
    fn ack_frame_covers_ranges_with_gaps() {
        let mut t = RecvTracker::new();
        for pn in [0u64, 1, 2, 5, 6, 9] {
            t.on_packet(pn, true, at(pn), 2, ms(25));
        }
        let ack = t.make_ack(at(10)).unwrap();
        match ack {
            Frame::Ack {
                largest, ranges, ..
            } => {
                assert_eq!(largest, 9);
                assert_eq!(
                    ranges,
                    vec![
                        AckRange::new(9, 9),
                        AckRange::new(5, 6),
                        AckRange::new(0, 2)
                    ]
                );
            }
            other => panic!("expected ACK, got {other:?}"),
        }
    }

    #[test]
    fn ack_delay_reports_hold_time() {
        let mut t = RecvTracker::new();
        t.on_packet(0, true, at(100), 2, ms(25));
        let ack = t.make_ack(at(120)).unwrap();
        match ack {
            Frame::Ack { delay_us, .. } => assert_eq!(delay_us, 20_000),
            _ => unreachable!(),
        }
    }

    #[test]
    fn make_ack_resets_state() {
        let mut t = RecvTracker::new();
        t.on_packet(0, true, at(0), 2, ms(25));
        t.on_packet(1, true, at(1), 2, ms(25));
        assert!(t.wants_ack());
        t.make_ack(at(2)).unwrap();
        assert!(!t.wants_ack());
        assert_eq!(t.next_timeout(), None);
    }

    #[test]
    fn make_ack_none_when_empty() {
        let mut t = RecvTracker::new();
        assert!(t.make_ack(at(0)).is_none());
        assert!(!t.has_received());
        assert_eq!(t.largest(), None);
    }

    #[test]
    fn adjacent_ranges_merge() {
        let mut t = RecvTracker::new();
        for pn in [2u64, 0, 1] {
            t.on_packet(pn, true, at(pn), 10, ms(25));
        }
        let ack = t.make_ack(at(5)).unwrap();
        match ack {
            Frame::Ack { ranges, .. } => assert_eq!(ranges, vec![AckRange::new(0, 2)]),
            _ => unreachable!(),
        }
    }

    proptest::proptest! {
        #[test]
        fn prop_ranges_cover_exactly_received(pns in proptest::collection::btree_set(0u64..200, 1..60)) {
            let mut t = RecvTracker::new();
            for (i, &pn) in pns.iter().enumerate() {
                t.on_packet(pn, true, at(i as u64), 2, ms(25));
            }
            for pn in 0..200u64 {
                proptest::prop_assert_eq!(t.contains(pn), pns.contains(&pn));
            }
            let ack = t.make_ack(at(1000)).unwrap();
            if let Frame::Ack { largest, ranges, .. } = ack {
                proptest::prop_assert_eq!(largest, *pns.iter().max().unwrap());
                let covered: u64 = ranges.iter().map(AckRange::len).sum();
                proptest::prop_assert_eq!(covered, pns.len() as u64);
                // Ranges must be descending and disjoint.
                for w in ranges.windows(2) {
                    proptest::prop_assert!(w[1].end + 1 < w[0].start);
                }
            } else {
                unreachable!();
            }
        }
    }
}
