//! Sent-packet ledger, ACK processing, and loss detection (RFC 9002).

use quicspin_netsim::{SimDuration, SimTime};
use quicspin_wire::{AckRange, Frame};
use std::collections::BTreeMap;

/// Book-keeping for one sent packet.
#[derive(Debug, Clone)]
struct SentPacket {
    time: SimTime,
    ack_eliciting: bool,
    /// Frames worth retransmitting if this packet is lost (ACK and PADDING
    /// frames are not).
    retransmittable: Vec<Frame>,
}

/// Result of processing one ACK frame.
#[derive(Debug, Clone, Default)]
pub struct AckOutcome {
    /// RTT sample: (send time of the largest newly acked packet, was it
    /// ack-eliciting). Only the largest newly acked, ack-eliciting packet
    /// produces a sample (RFC 9002 §5.1).
    pub rtt_sample_from: Option<SimTime>,
    /// Frames from packets declared lost, to be retransmitted.
    pub lost_frames: Vec<Frame>,
    /// Packet numbers declared lost (for qlog).
    pub lost_pns: Vec<u64>,
    /// Packet numbers newly acknowledged.
    pub newly_acked: Vec<u64>,
}

/// Sent-packet ledger for one packet-number space.
#[derive(Debug, Clone, Default)]
pub struct SentLedger {
    unacked: BTreeMap<u64, SentPacket>,
    largest_acked: Option<u64>,
    /// Ack-eliciting packets in flight, maintained incrementally so the
    /// per-poll congestion and PTO queries never scan the ledger.
    eliciting: u64,
}

impl SentLedger {
    /// Creates an empty ledger.
    pub fn new() -> Self {
        SentLedger::default()
    }

    /// Records a sent packet.
    pub fn on_sent(&mut self, pn: u64, time: SimTime, ack_eliciting: bool, frames: Vec<Frame>) {
        // Retain in place: keeps the packet's frame allocation instead of
        // collecting into a fresh vector on every sent packet.
        let mut retransmittable = frames;
        retransmittable.retain(|f| {
            !matches!(
                f,
                Frame::Ack { .. } | Frame::Padding { .. } | Frame::ConnectionClose { .. }
            )
        });
        if ack_eliciting {
            self.eliciting += 1;
        }
        self.unacked.insert(
            pn,
            SentPacket {
                time,
                ack_eliciting,
                retransmittable,
            },
        );
    }

    /// Removes a tracked packet, keeping the eliciting counter in sync.
    fn remove(&mut self, pn: u64) -> SentPacket {
        let sent = self.unacked.remove(&pn).expect("pn collected above");
        if sent.ack_eliciting {
            self.eliciting -= 1;
        }
        sent
    }

    /// Processes an ACK frame's ranges; detects loss by packet threshold.
    pub fn on_ack(&mut self, ranges: &[AckRange], packet_threshold: u64) -> AckOutcome {
        let mut outcome = AckOutcome::default();
        let mut largest_newly: Option<(u64, SimTime, bool)> = None;

        for range in ranges {
            // Pop the acked pns inside this range that we still track.
            while let Some((&pn, _)) = self.unacked.range(range.start..=range.end).next() {
                let sent = self.remove(pn);
                if largest_newly.is_none_or(|(l, _, _)| pn > l) {
                    largest_newly = Some((pn, sent.time, sent.ack_eliciting));
                }
                outcome.newly_acked.push(pn);
            }
            if self.largest_acked.is_none_or(|l| range.end > l) {
                self.largest_acked = Some(range.end);
            }
        }

        if let Some((_, time, eliciting)) = largest_newly {
            if eliciting {
                outcome.rtt_sample_from = Some(time);
            }
        }

        // Packet-threshold loss detection (RFC 9002 §6.1.1): anything more
        // than `packet_threshold` below the largest acked is lost.
        if let Some(largest) = self.largest_acked {
            let cutoff = largest.saturating_sub(packet_threshold);
            while let Some((&pn, _)) = self.unacked.range(..cutoff).next() {
                let sent = self.remove(pn);
                outcome.lost_pns.push(pn);
                outcome.lost_frames.extend(sent.retransmittable);
            }
        }

        outcome
    }

    /// Time-threshold loss detection (RFC 9002 §6.1.2): packets sent
    /// before `now - loss_delay` with a packet number below the largest
    /// acknowledged are declared lost. Returns the affected packet
    /// numbers and their retransmittable frames.
    pub fn detect_time_lost(&mut self, now: SimTime, loss_delay: SimDuration) -> AckOutcome {
        let mut outcome = AckOutcome::default();
        let Some(largest) = self.largest_acked else {
            return outcome;
        };
        let lost: Vec<u64> = self
            .unacked
            .range(..largest)
            .filter(|(_, p)| now.saturating_since(p.time) >= loss_delay)
            .map(|(&pn, _)| pn)
            .collect();
        for pn in lost {
            let sent = self.remove(pn);
            outcome.lost_pns.push(pn);
            outcome.lost_frames.extend(sent.retransmittable);
        }
        outcome
    }

    /// Whether any ack-eliciting packet is still in flight.
    pub fn has_eliciting_in_flight(&self) -> bool {
        self.eliciting > 0
    }

    /// Number of ack-eliciting packets in flight (congestion accounting).
    pub fn eliciting_in_flight(&self) -> u64 {
        self.eliciting
    }

    /// Send time of the oldest ack-eliciting packet in flight. Packet
    /// numbers and send times grow together within a space, so the first
    /// eliciting entry in pn order is the oldest — no full scan needed.
    pub fn oldest_eliciting_time(&self) -> Option<SimTime> {
        if self.eliciting == 0 {
            return None;
        }
        self.unacked
            .values()
            .find(|p| p.ack_eliciting)
            .map(|p| p.time)
    }

    /// PTO deadline given the estimator's interval.
    pub fn pto_deadline(&self, pto: SimDuration) -> Option<SimTime> {
        self.oldest_eliciting_time().map(|t| t + pto)
    }

    /// Drains the retransmittable frames of every in-flight ack-eliciting
    /// packet (PTO recovery: retransmit everything outstanding).
    pub fn drain_for_retransmit(&mut self) -> Vec<Frame> {
        let mut frames = Vec::new();
        let pns: Vec<u64> = self
            .unacked
            .iter()
            .filter(|(_, p)| p.ack_eliciting)
            .map(|(&pn, _)| pn)
            .collect();
        for pn in pns {
            let sent = self.remove(pn);
            frames.extend(sent.retransmittable);
        }
        frames
    }

    /// Number of packets still unacknowledged.
    pub fn in_flight(&self) -> usize {
        self.unacked.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn at(v: u64) -> SimTime {
        SimTime::ZERO + SimDuration::from_millis(v)
    }

    fn ping_at(ledger: &mut SentLedger, pn: u64, t: u64) {
        ledger.on_sent(pn, at(t), true, vec![Frame::Ping]);
    }

    #[test]
    fn ack_produces_rtt_sample_from_largest_eliciting() {
        let mut l = SentLedger::new();
        ping_at(&mut l, 0, 0);
        ping_at(&mut l, 1, 10);
        let out = l.on_ack(&[AckRange::new(0, 1)], 3);
        assert_eq!(out.rtt_sample_from, Some(at(10)));
        assert_eq!(out.newly_acked, vec![0, 1]);
        assert_eq!(l.in_flight(), 0);
    }

    #[test]
    fn non_eliciting_ack_gives_no_sample() {
        let mut l = SentLedger::new();
        l.on_sent(0, at(0), false, vec![Frame::Padding { len: 1 }]);
        let out = l.on_ack(&[AckRange::new(0, 0)], 3);
        assert_eq!(out.rtt_sample_from, None);
        assert_eq!(out.newly_acked, vec![0]);
    }

    #[test]
    fn duplicate_ack_is_harmless() {
        let mut l = SentLedger::new();
        ping_at(&mut l, 0, 0);
        l.on_ack(&[AckRange::new(0, 0)], 3);
        let out = l.on_ack(&[AckRange::new(0, 0)], 3);
        assert_eq!(out.rtt_sample_from, None);
        assert!(out.newly_acked.is_empty());
    }

    #[test]
    fn packet_threshold_declares_loss() {
        let mut l = SentLedger::new();
        for pn in 0..6 {
            ping_at(&mut l, pn, pn);
        }
        // ACK only pn 5: cutoff = 5 - 3 = 2 → pns 0 and 1 lost.
        let out = l.on_ack(&[AckRange::new(5, 5)], 3);
        assert_eq!(out.lost_pns, vec![0, 1]);
        assert_eq!(out.lost_frames, vec![Frame::Ping, Frame::Ping]);
        // pns 2, 3, 4 still in flight.
        assert_eq!(l.in_flight(), 3);
    }

    #[test]
    fn ack_and_padding_frames_not_retransmitted() {
        let mut l = SentLedger::new();
        l.on_sent(
            0,
            at(0),
            true,
            vec![
                Frame::Ping,
                Frame::Padding { len: 10 },
                Frame::Ack {
                    largest: 0,
                    delay_us: 0,
                    ranges: vec![AckRange::new(0, 0)],
                },
            ],
        );
        ping_at(&mut l, 5, 1);
        let out = l.on_ack(&[AckRange::new(5, 5)], 3);
        assert_eq!(out.lost_pns, vec![0]);
        assert_eq!(out.lost_frames, vec![Frame::Ping], "only PING survives");
    }

    #[test]
    fn pto_deadline_tracks_oldest_eliciting() {
        let mut l = SentLedger::new();
        assert_eq!(l.pto_deadline(SimDuration::from_millis(100)), None);
        ping_at(&mut l, 0, 50);
        ping_at(&mut l, 1, 80);
        assert_eq!(l.pto_deadline(SimDuration::from_millis(100)), Some(at(150)));
        l.on_ack(&[AckRange::new(0, 0)], 3);
        assert_eq!(l.pto_deadline(SimDuration::from_millis(100)), Some(at(180)));
    }

    #[test]
    fn drain_for_retransmit_empties_eliciting() {
        let mut l = SentLedger::new();
        ping_at(&mut l, 0, 0);
        l.on_sent(1, at(1), false, vec![Frame::Padding { len: 1 }]);
        let frames = l.drain_for_retransmit();
        assert_eq!(frames, vec![Frame::Ping]);
        assert!(!l.has_eliciting_in_flight());
        assert_eq!(l.in_flight(), 1, "non-eliciting stays");
    }

    #[test]
    fn partial_ack_ranges() {
        let mut l = SentLedger::new();
        for pn in 0..10 {
            ping_at(&mut l, pn, pn);
        }
        let out = l.on_ack(
            &[AckRange::new(8, 9), AckRange::new(3, 4)],
            100, // large threshold: no loss
        );
        assert_eq!(out.newly_acked, vec![8, 9, 3, 4]);
        assert_eq!(out.rtt_sample_from, Some(at(9)));
        assert!(out.lost_pns.is_empty());
        assert_eq!(l.in_flight(), 6);
    }

    #[test]
    fn time_threshold_declares_old_unacked_lost() {
        let mut l = SentLedger::new();
        ping_at(&mut l, 0, 0);
        ping_at(&mut l, 1, 5);
        ping_at(&mut l, 2, 10);
        // ACK pn 2 only; threshold 3 keeps 0 and 1 alive (gap < 3).
        let out = l.on_ack(&[AckRange::new(2, 2)], 3);
        assert!(out.lost_pns.is_empty());
        // 50 ms later with a 40 ms loss delay, pn 0 and 1 time out.
        let out = l.detect_time_lost(at(50), SimDuration::from_millis(40));
        assert_eq!(out.lost_pns, vec![0, 1]);
        assert_eq!(out.lost_frames.len(), 2);
        assert_eq!(l.in_flight(), 0);
    }

    #[test]
    fn time_threshold_spares_recent_and_above_largest() {
        let mut l = SentLedger::new();
        ping_at(&mut l, 0, 0);
        ping_at(&mut l, 5, 48); // above largest acked
        l.on_ack(&[AckRange::new(3, 3)], 100);
        let out = l.detect_time_lost(at(50), SimDuration::from_millis(40));
        assert_eq!(out.lost_pns, vec![0], "pn 5 > largest acked survives");
        assert_eq!(l.in_flight(), 1);
    }

    #[test]
    fn time_threshold_noop_without_acks() {
        let mut l = SentLedger::new();
        ping_at(&mut l, 0, 0);
        let out = l.detect_time_lost(at(1_000), SimDuration::from_millis(1));
        assert!(out.lost_pns.is_empty(), "no largest_acked yet");
    }

    proptest::proptest! {
        #[test]
        fn prop_every_packet_acked_or_lost_or_inflight(
            sent in proptest::collection::btree_set(0u64..100, 1..40),
            acked in proptest::collection::btree_set(0u64..100, 1..40),
        ) {
            let mut l = SentLedger::new();
            for &pn in &sent {
                ping_at(&mut l, pn, pn);
            }
            let ranges: Vec<AckRange> = acked.iter().rev().map(|&p| AckRange::new(p, p)).collect();
            let out = l.on_ack(&ranges, 3);
            let n_acked = out.newly_acked.len();
            let n_lost = out.lost_pns.len();
            proptest::prop_assert_eq!(n_acked + n_lost + l.in_flight(), sent.len());
            for pn in &out.newly_acked {
                proptest::prop_assert!(acked.contains(pn) && sent.contains(pn));
            }
        }
    }
}
