//! Endpoint configuration: transport parameters and the spin policy.

use quicspin_netsim::{Rng, SimDuration};
use quicspin_wire::Version;

/// How an endpoint sets the spin bit — the behaviours §4.3 of the paper
/// looks for in the wild.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SpinPolicy {
    /// Implement RFC 9000 §17.4 faithfully (client inverts, server
    /// reflects).
    Participate,
    /// Disable by sending a constant 0 (the dominant choice in the wild
    /// per Table 3).
    FixedZero,
    /// Disable by sending a constant 1 (rare).
    FixedOne,
    /// Disable by greasing per packet: an independent random value on
    /// every packet (RFC 9312's recommendation).
    GreasePerPacket,
    /// Disable by greasing per connection: one random value chosen at
    /// connection start and kept (indistinguishable from FixedZero /
    /// FixedOne on a single connection).
    GreasePerConnection,
}

impl SpinPolicy {
    /// Applies the RFC 9000 "MUST disable on at least one in every N
    /// connections" rule: with probability `1/n`, a participating endpoint
    /// greases this connection instead. RFC 9000 says one in 16;
    /// RFC 9312 one in eight.
    pub fn with_mandatory_disable(self, n: u32, rng: &mut Rng) -> SpinPolicy {
        if self == SpinPolicy::Participate && n > 0 && rng.chance(1.0 / f64::from(n)) {
            SpinPolicy::GreasePerConnection
        } else {
            self
        }
    }

    /// Whether this policy ever flips the bit within one connection.
    pub fn can_flip_within_connection(self) -> bool {
        matches!(self, SpinPolicy::Participate | SpinPolicy::GreasePerPacket)
    }
}

/// Transport configuration for one endpoint.
#[derive(Debug, Clone)]
pub struct TransportConfig {
    /// QUIC version to offer/accept.
    pub version: Version,
    /// Spin-bit policy.
    pub spin_policy: SpinPolicy,
    /// Whether to carry the Valid Edge Counter in the reserved bits.
    pub vec_enabled: bool,
    /// Maximum delay before a delayed ACK is sent (RFC 9000 default 25 ms).
    pub max_ack_delay: SimDuration,
    /// Send an immediate ACK after this many ack-eliciting packets.
    pub ack_eliciting_threshold: u32,
    /// Packet reordering threshold for loss detection (RFC 9002: 3).
    pub packet_threshold: u64,
    /// Initial RTT estimate before any sample (RFC 9002: 333 ms).
    pub initial_rtt: SimDuration,
    /// Connection ID length used by this endpoint.
    pub cid_len: usize,
    /// Idle timeout.
    pub idle_timeout: SimDuration,
    /// Maximum stream payload bytes per packet.
    pub max_payload: usize,
    /// Initial congestion window in packets (RFC 9002: 10).
    pub initial_cwnd_packets: u64,
    /// Processing latency of *data-bearing* packets: time between the
    /// triggering event and the packet leaving the host, dominated by
    /// application write scheduling. Inflates every spin period (the
    /// spin-edge reply is a data packet) — the §6 end-host-delay
    /// mechanism.
    pub processing_latency: SimDuration,
    /// Processing latency of pure-ACK packets (fast transport path).
    /// This is what the peer's RTT estimator sees, so the gap between the
    /// two latencies is the systematic spin-vs-stack margin.
    pub ack_processing_latency: SimDuration,
}

impl Default for TransportConfig {
    fn default() -> Self {
        TransportConfig {
            version: Version::V1,
            spin_policy: SpinPolicy::Participate,
            vec_enabled: false,
            max_ack_delay: SimDuration::from_millis(25),
            ack_eliciting_threshold: 2,
            packet_threshold: 3,
            initial_rtt: SimDuration::from_millis(333),
            cid_len: 8,
            idle_timeout: SimDuration::from_secs(30),
            max_payload: 1200,
            initial_cwnd_packets: 10,
            processing_latency: SimDuration::ZERO,
            ack_processing_latency: SimDuration::ZERO,
        }
    }
}

impl TransportConfig {
    /// Builder-style: set the spin policy.
    pub fn with_spin_policy(mut self, policy: SpinPolicy) -> Self {
        self.spin_policy = policy;
        self
    }

    /// Builder-style: set the version.
    pub fn with_version(mut self, version: Version) -> Self {
        self.version = version;
        self
    }

    /// Builder-style: enable the VEC extension.
    pub fn with_vec(mut self) -> Self {
        self.vec_enabled = true;
        self
    }

    /// Builder-style: set the endpoint processing latencies (data path,
    /// pure-ACK fast path).
    pub fn with_processing_latency(mut self, data: SimDuration, ack: SimDuration) -> Self {
        self.processing_latency = data;
        self.ack_processing_latency = ack;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_rfc_values() {
        let c = TransportConfig::default();
        assert_eq!(c.max_ack_delay, SimDuration::from_millis(25));
        assert_eq!(c.packet_threshold, 3);
        assert_eq!(c.initial_rtt, SimDuration::from_millis(333));
        assert_eq!(c.version, Version::V1);
        assert_eq!(c.spin_policy, SpinPolicy::Participate);
        assert!(!c.vec_enabled);
    }

    #[test]
    fn builders() {
        let c = TransportConfig::default()
            .with_spin_policy(SpinPolicy::FixedZero)
            .with_version(Version::Draft29)
            .with_vec();
        assert_eq!(c.spin_policy, SpinPolicy::FixedZero);
        assert_eq!(c.version, Version::Draft29);
        assert!(c.vec_enabled);
    }

    #[test]
    fn mandatory_disable_rate_is_about_one_in_n() {
        let mut rng = Rng::new(1);
        let n = 16;
        let disabled = (0..100_000)
            .filter(|_| {
                SpinPolicy::Participate.with_mandatory_disable(n, &mut rng)
                    != SpinPolicy::Participate
            })
            .count();
        let rate = disabled as f64 / 100_000.0;
        assert!((rate - 1.0 / 16.0).abs() < 0.005, "rate {rate}");
    }

    #[test]
    fn mandatory_disable_leaves_non_participating_policies_alone() {
        let mut rng = Rng::new(2);
        for _ in 0..100 {
            assert_eq!(
                SpinPolicy::FixedZero.with_mandatory_disable(16, &mut rng),
                SpinPolicy::FixedZero
            );
        }
    }

    #[test]
    fn mandatory_disable_n_zero_is_noop() {
        let mut rng = Rng::new(3);
        for _ in 0..100 {
            assert_eq!(
                SpinPolicy::Participate.with_mandatory_disable(0, &mut rng),
                SpinPolicy::Participate
            );
        }
    }

    #[test]
    fn flip_capability() {
        assert!(SpinPolicy::Participate.can_flip_within_connection());
        assert!(SpinPolicy::GreasePerPacket.can_flip_within_connection());
        assert!(!SpinPolicy::FixedZero.can_flip_within_connection());
        assert!(!SpinPolicy::FixedOne.can_flip_within_connection());
        assert!(!SpinPolicy::GreasePerConnection.can_flip_within_connection());
    }
}
