//! The campaign-wide metric registry and its per-worker shards.
//!
//! Concurrency model:
//!
//! * The [`Registry`] owns one atomic [`Counter`] per [`Metric`], one
//!   [`Gauge`] per [`GaugeId`], and one [`LatencyHistogram`] per
//!   [`Stage`]. It is shared behind an `Arc` and safe to read at any time
//!   (progress monitoring reads slightly-stale relaxed values).
//! * Each worker thread owns a private [`WorkerShard`] — plain integers,
//!   zero atomics — and records per-packet counters and stage timings
//!   there. The engine calls [`Registry::absorb`] once per worker (or per
//!   batch) to fold the shard into the shared registry, then
//!   [`WorkerShard::reset`] so the scratch can be reused.
//! * Coarse per-domain counters (probes started/completed/errored) go
//!   straight to the registry's atomics so a monitor thread can report
//!   live progress; at a handful of relaxed adds per multi-microsecond
//!   probe this is far below measurement noise.
//!
//! A registry built with [`Registry::disabled`] hands out disabled shards
//! whose timers never touch the clock, and ignores direct recording —
//! instrumented code paths cost a predictable branch and nothing else.

use crate::histogram::{HistogramShard, LatencyHistogram};
use crate::manifest::{ConfigEntry, CounterSnapshot, RunManifest, MANIFEST_SCHEMA_VERSION};
use crate::metrics::{Counter, Gauge, GaugeId, Metric, Stage};
use crate::span::{saturating_elapsed_ns, Span};
use crate::ProgressSnapshot;
use std::time::Instant;

/// The shared, campaign-wide metric store.
pub struct Registry {
    enabled: bool,
    counters: [Counter; Metric::COUNT],
    gauges: [Gauge; GaugeId::COUNT],
    stages: [LatencyHistogram; Stage::COUNT],
}

impl Default for Registry {
    fn default() -> Self {
        Registry::new()
    }
}

impl std::fmt::Debug for Registry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Registry")
            .field("enabled", &self.enabled)
            .field("probes_completed", &self.counter(Metric::ProbesCompleted))
            .finish_non_exhaustive()
    }
}

impl Registry {
    fn with_enabled(enabled: bool) -> Self {
        Registry {
            enabled,
            counters: std::array::from_fn(|_| Counter::new()),
            gauges: std::array::from_fn(|_| Gauge::new()),
            stages: std::array::from_fn(|_| LatencyHistogram::default()),
        }
    }

    /// A live registry that records everything.
    pub fn new() -> Self {
        Registry::with_enabled(true)
    }

    /// A no-op registry: recording is ignored, shards are disabled, spans
    /// never read the clock. Used as the default for campaigns that don't
    /// ask for telemetry, and as the bench baseline.
    pub fn disabled() -> Self {
        Registry::with_enabled(false)
    }

    /// Whether this registry records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Adds `n` to a counter (no-op when disabled).
    #[inline]
    pub fn add(&self, metric: Metric, n: u64) {
        if self.enabled {
            self.counters[metric as usize].add(n);
        }
    }

    /// Adds one to a counter (no-op when disabled).
    #[inline]
    pub fn incr(&self, metric: Metric) {
        self.add(metric, 1);
    }

    /// Current counter value.
    #[inline]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize].get()
    }

    /// Sets a gauge (no-op when disabled).
    #[inline]
    pub fn gauge_set(&self, gauge: GaugeId, v: u64) {
        if self.enabled {
            self.gauges[gauge as usize].set(v);
        }
    }

    /// Raises a gauge to `v` if larger (no-op when disabled).
    #[inline]
    pub fn gauge_max(&self, gauge: GaugeId, v: u64) {
        if self.enabled {
            self.gauges[gauge as usize].record_max(v);
        }
    }

    /// Current gauge value.
    #[inline]
    pub fn gauge(&self, gauge: GaugeId) -> u64 {
        self.gauges[gauge as usize].get()
    }

    /// The shared histogram for one stage.
    pub fn stage_histogram(&self, stage: Stage) -> &LatencyHistogram {
        &self.stages[stage as usize]
    }

    /// Starts an RAII span for `stage`; a no-op span when disabled.
    #[inline]
    pub fn span(&self, stage: Stage) -> Span<'_> {
        if self.enabled {
            Span::start(&self.stages[stage as usize])
        } else {
            Span::noop()
        }
    }

    /// Records a duration into a stage histogram directly.
    #[inline]
    pub fn record_stage_ns(&self, stage: Stage, ns: u64) {
        if self.enabled {
            self.stages[stage as usize].record(ns);
        }
    }

    /// Creates a worker shard matching this registry's enabled state.
    pub fn shard(&self) -> WorkerShard {
        WorkerShard::with_enabled(self.enabled)
    }

    /// Folds one worker shard into the shared store. Cheap when the shard
    /// recorded nothing; callers may absorb per batch or per worker.
    pub fn absorb(&self, shard: &WorkerShard) {
        if !self.enabled {
            return;
        }
        for m in Metric::ALL {
            let v = shard.counters[*m as usize];
            if v != 0 {
                self.counters[*m as usize].add(v);
            }
        }
        for g in GaugeId::ALL {
            let v = shard.gauges[*g as usize];
            if v != 0 {
                self.gauges[*g as usize].record_max(v);
            }
        }
        for s in Stage::ALL {
            self.stages[*s as usize].merge_shard(&shard.stages[*s as usize]);
        }
    }

    /// Live progress view: completed/errored counters against `total`.
    pub fn progress(&self, total: u64, elapsed_ns: u64) -> ProgressSnapshot {
        ProgressSnapshot {
            completed: self.counter(Metric::ProbesCompleted),
            total,
            errored: self.counter(Metric::ProbesErrored),
            elapsed_ns,
        }
    }

    /// Exports everything into a serializable [`RunManifest`].
    pub fn manifest(&self, config: Vec<ConfigEntry>, wall_time_ns: u64) -> RunManifest {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            config,
            wall_time_ns,
            counters: Metric::ALL
                .iter()
                .map(|m| CounterSnapshot {
                    name: m.name().to_string(),
                    value: self.counter(*m),
                })
                .collect(),
            gauges: GaugeId::ALL
                .iter()
                .map(|g| CounterSnapshot {
                    name: g.name().to_string(),
                    value: self.gauge(*g),
                })
                .collect(),
            stages: Stage::ALL
                .iter()
                .map(|s| self.stages[*s as usize].snapshot(s.name()))
                .collect(),
        }
    }
}

/// One worker's private, unsynchronized metric buffer.
///
/// Counter/gauge updates are plain integer ops and stay un-gated — they
/// cost nothing measurable either way. Timing helpers are gated on the
/// enabled flag so disabled pipelines never read the monotonic clock.
#[derive(Debug, Clone)]
pub struct WorkerShard {
    enabled: bool,
    counters: [u64; Metric::COUNT],
    gauges: [u64; GaugeId::COUNT],
    stages: [HistogramShard; Stage::COUNT],
}

impl Default for WorkerShard {
    /// A disabled shard; the engine re-enables it to match the campaign
    /// registry via [`WorkerShard::set_enabled`].
    fn default() -> Self {
        WorkerShard::with_enabled(false)
    }
}

impl WorkerShard {
    fn with_enabled(enabled: bool) -> Self {
        WorkerShard {
            enabled,
            counters: [0; Metric::COUNT],
            gauges: [0; GaugeId::COUNT],
            stages: std::array::from_fn(|_| HistogramShard::default()),
        }
    }

    /// Whether timing helpers are live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Flips the enabled flag (used when a reusable scratch joins a
    /// campaign whose registry differs from the scratch's last run).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Adds `n` to a counter.
    #[inline]
    pub fn add(&mut self, metric: Metric, n: u64) {
        self.counters[metric as usize] += n;
    }

    /// Adds one to a counter.
    #[inline]
    pub fn incr(&mut self, metric: Metric) {
        self.counters[metric as usize] += 1;
    }

    /// Current counter value.
    #[inline]
    pub fn counter(&self, metric: Metric) -> u64 {
        self.counters[metric as usize]
    }

    /// Raises a gauge to `v` if larger.
    #[inline]
    pub fn gauge_max(&mut self, gauge: GaugeId, v: u64) {
        let slot = &mut self.gauges[gauge as usize];
        *slot = (*slot).max(v);
    }

    /// Current gauge value.
    #[inline]
    pub fn gauge(&self, gauge: GaugeId) -> u64 {
        self.gauges[gauge as usize]
    }

    /// Records a duration into a stage histogram.
    #[inline]
    pub fn record_ns(&mut self, stage: Stage, ns: u64) {
        self.stages[stage as usize].record(ns);
    }

    /// The shard-local histogram for one stage.
    pub fn stage_histogram(&self, stage: Stage) -> &HistogramShard {
        &self.stages[stage as usize]
    }

    /// Samples the clock if enabled. Pair with [`WorkerShard::record_since`].
    #[inline]
    pub fn timer(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Records the time since `start` (from [`WorkerShard::timer`]) into a
    /// stage histogram; no-op if the timer was disabled.
    #[inline]
    pub fn record_since(&mut self, stage: Stage, start: Option<Instant>) {
        if let Some(start) = start {
            self.record_ns(stage, saturating_elapsed_ns(start));
        }
    }

    /// Records the time since `start` into `stage` and returns a fresh
    /// timestamp for the next back-to-back stage, reading the clock once
    /// instead of twice at each stage boundary.
    #[inline]
    pub fn record_lap(&mut self, stage: Stage, start: Option<Instant>) -> Option<Instant> {
        let start = start?;
        let now = Instant::now();
        self.record_ns(
            stage,
            now.saturating_duration_since(start).as_nanos() as u64,
        );
        Some(now)
    }

    /// True when nothing has been recorded since the last reset.
    pub fn is_empty(&self) -> bool {
        self.counters.iter().all(|&c| c == 0)
            && self.gauges.iter().all(|&g| g == 0)
            && self.stages.iter().all(|s| s.count() == 0)
    }

    /// Clears all recorded data (keeps the enabled flag). Call after the
    /// registry absorbed the shard so a reused scratch doesn't double-count.
    pub fn reset(&mut self) {
        self.counters = [0; Metric::COUNT];
        self.gauges = [0; GaugeId::COUNT];
        for s in &mut self.stages {
            *s = HistogramShard::default();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn absorb_matches_direct_recording() {
        // Shard-and-merge must be lossless vs. recording straight into the
        // registry.
        let direct = Registry::new();
        let sharded = Registry::new();
        let mut shards: Vec<WorkerShard> = (0..4).map(|_| sharded.shard()).collect();
        for i in 0..1_000u64 {
            let w = (i % 4) as usize;
            direct.incr(Metric::PacketsSent);
            shards[w].incr(Metric::PacketsSent);
            direct.record_stage_ns(Stage::Handshake, i * 37);
            shards[w].record_ns(Stage::Handshake, i * 37);
            direct.gauge_max(GaugeId::NetsimQueueHighWater, i);
            shards[w].gauge_max(GaugeId::NetsimQueueHighWater, i);
        }
        for shard in &shards {
            sharded.absorb(shard);
        }
        assert_eq!(
            sharded.counter(Metric::PacketsSent),
            direct.counter(Metric::PacketsSent)
        );
        assert_eq!(
            sharded.gauge(GaugeId::NetsimQueueHighWater),
            direct.gauge(GaugeId::NetsimQueueHighWater)
        );
        assert_eq!(
            sharded.stage_histogram(Stage::Handshake).to_shard(),
            direct.stage_histogram(Stage::Handshake).to_shard()
        );
    }

    #[test]
    fn disabled_registry_ignores_everything() {
        let reg = Registry::disabled();
        reg.incr(Metric::ProbesCompleted);
        reg.gauge_set(GaugeId::CampaignSize, 42);
        reg.record_stage_ns(Stage::Probe, 1_000);
        let span = reg.span(Stage::Classify);
        assert!(!span.is_recording());
        drop(span);
        let mut shard = reg.shard();
        assert!(!shard.is_enabled());
        assert!(shard.timer().is_none());
        shard.incr(Metric::PacketsSent);
        reg.absorb(&shard);
        assert_eq!(reg.counter(Metric::ProbesCompleted), 0);
        assert_eq!(reg.counter(Metric::PacketsSent), 0);
        assert_eq!(reg.gauge(GaugeId::CampaignSize), 0);
        assert_eq!(reg.stage_histogram(Stage::Probe).count(), 0);
    }

    #[test]
    fn shard_reset_clears_and_keeps_enabled() {
        let reg = Registry::new();
        let mut shard = reg.shard();
        assert!(shard.is_enabled());
        assert!(shard.is_empty());
        shard.incr(Metric::NetsimDrops);
        shard.gauge_max(GaugeId::NetsimQueueHighWater, 9);
        shard.record_ns(Stage::Transfer, 123);
        assert!(!shard.is_empty());
        shard.reset();
        assert!(shard.is_empty());
        assert!(shard.is_enabled());
        assert_eq!(shard.counter(Metric::NetsimDrops), 0);
        assert_eq!(shard.stage_histogram(Stage::Transfer).count(), 0);
    }

    #[test]
    fn shard_timer_records_elapsed() {
        let reg = Registry::new();
        let mut shard = reg.shard();
        let t = shard.timer();
        assert!(t.is_some());
        shard.record_since(Stage::SpinExtraction, t);
        shard.record_since(Stage::SpinExtraction, None);
        assert_eq!(shard.stage_histogram(Stage::SpinExtraction).count(), 1);
    }

    #[test]
    fn record_lap_chains_stage_boundaries() {
        let reg = Registry::new();
        let mut shard = reg.shard();
        let t = shard.timer();
        let t = shard.record_lap(Stage::SpinExtraction, t);
        assert!(t.is_some());
        let t = shard.record_lap(Stage::Classify, t);
        assert!(shard.record_lap(Stage::QlogEncode, t).is_some());
        assert!(shard.record_lap(Stage::QlogEncode, None).is_none());
        assert_eq!(shard.stage_histogram(Stage::SpinExtraction).count(), 1);
        assert_eq!(shard.stage_histogram(Stage::Classify).count(), 1);
        assert_eq!(shard.stage_histogram(Stage::QlogEncode).count(), 1);

        // A disabled shard's laps stay None and record nothing.
        let mut off = WorkerShard::default();
        assert!(off.record_lap(Stage::Classify, off.timer()).is_none());
        assert!(off.is_empty());
    }

    #[test]
    fn registry_span_records_into_stage() {
        let reg = Registry::new();
        reg.span(Stage::QlogEncode).finish();
        assert_eq!(reg.stage_histogram(Stage::QlogEncode).count(), 1);
    }

    #[test]
    fn manifest_exports_all_namespaces_in_order() {
        let reg = Registry::new();
        reg.add(Metric::ProbesCompleted, 7);
        reg.gauge_set(GaugeId::WorkerThreads, 3);
        reg.record_stage_ns(Stage::Handshake, 50_000);
        let m = reg.manifest(
            vec![ConfigEntry {
                key: "week".into(),
                value: "1".into(),
            }],
            123,
        );
        assert_eq!(m.schema_version, MANIFEST_SCHEMA_VERSION);
        assert_eq!(m.counters.len(), Metric::COUNT);
        assert_eq!(m.gauges.len(), GaugeId::COUNT);
        assert_eq!(m.stages.len(), Stage::COUNT);
        assert_eq!(m.counter("probes_completed"), 7);
        assert_eq!(m.counter("worker_threads"), 3);
        assert_eq!(m.stage("handshake").unwrap().count, 1);
        // Declaration order is the export order.
        assert_eq!(m.counters[0].name, Metric::ALL[0].name());
        assert_eq!(m.stages[0].stage, Stage::ALL[0].name());
    }

    #[test]
    fn progress_reads_live_counters() {
        let reg = Registry::new();
        reg.add(Metric::ProbesCompleted, 50);
        reg.add(Metric::ProbesErrored, 2);
        let p = reg.progress(100, 1_000_000_000);
        assert_eq!(p.completed, 50);
        assert_eq!(p.errored, 2);
        assert_eq!(p.total, 100);
    }
}
