//! Fixed-bucket log-scale latency histograms.
//!
//! The bucket layout is HDR-style: values below 8 get one bucket each,
//! larger values share an octave (power of two) split into 8 linear
//! sub-buckets, i.e. ~6% relative resolution at any magnitude. With 256
//! buckets the range covers 0 ns up to ~16 s before the final bucket
//! saturates — comfortably wider than any per-probe pipeline stage.
//!
//! Two representations share the layout:
//!
//! * [`HistogramShard`] — plain `u64` buckets, owned by exactly one worker
//!   thread. Recording is a handful of arithmetic ops and one array store;
//!   no atomics, no sharing, no contention.
//! * [`LatencyHistogram`] — `AtomicU64` buckets, owned by the registry.
//!   Shards merge into it once per worker (relaxed adds), so the hot path
//!   never touches shared cachelines.

use crate::manifest::StageSnapshot;
use std::sync::atomic::{AtomicU64, Ordering};

/// Number of buckets in every histogram.
pub const BUCKET_COUNT: usize = 256;

/// Values below this get one bucket each (exact resolution).
const LINEAR_LIMIT: u64 = 8;
/// Sub-bucket bits per octave above the linear region.
const SUB_BITS: u64 = 3;

/// Maps a value (nanoseconds by convention) to its bucket index.
#[inline]
pub fn bucket_index(value: u64) -> usize {
    if value < LINEAR_LIMIT {
        value as usize
    } else {
        let exp = 63 - u64::from(value.leading_zeros());
        let sub = (value >> (exp - SUB_BITS)) & ((1 << SUB_BITS) - 1);
        let idx = LINEAR_LIMIT + (exp - SUB_BITS) * (1 << SUB_BITS) + sub;
        idx.min(BUCKET_COUNT as u64 - 1) as usize
    }
}

/// The half-open value range `[lo, hi)` a bucket covers. The final bucket
/// is unbounded above (`hi = u64::MAX`).
pub fn bucket_bounds(index: usize) -> (u64, u64) {
    assert!(index < BUCKET_COUNT, "bucket index {index} out of range");
    let index = index as u64;
    if index < LINEAR_LIMIT {
        return (index, index + 1);
    }
    let octave = index - LINEAR_LIMIT;
    let exp = octave / (1 << SUB_BITS) + SUB_BITS;
    let sub = octave % (1 << SUB_BITS);
    let lo = (LINEAR_LIMIT + sub) << (exp - SUB_BITS);
    if index == BUCKET_COUNT as u64 - 1 {
        return (lo, u64::MAX);
    }
    (lo, lo + (1 << (exp - SUB_BITS)))
}

/// One worker's private histogram: plain integers, no synchronization.
#[derive(Clone, PartialEq, Eq)]
pub struct HistogramShard {
    buckets: [u64; BUCKET_COUNT],
    count: u64,
    sum: u64,
    min: u64,
    max: u64,
}

impl Default for HistogramShard {
    fn default() -> Self {
        HistogramShard {
            buckets: [0; BUCKET_COUNT],
            count: 0,
            sum: 0,
            min: u64::MAX,
            max: 0,
        }
    }
}

impl std::fmt::Debug for HistogramShard {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HistogramShard")
            .field("count", &self.count)
            .field("min", &self.min)
            .field("max", &self.max)
            .finish_non_exhaustive()
    }
}

impl HistogramShard {
    /// Records one value.
    #[inline]
    pub fn record(&mut self, value: u64) {
        self.buckets[bucket_index(value)] += 1;
        self.count += 1;
        self.sum = self.sum.saturating_add(value);
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sum of recorded values (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    /// Smallest recorded value, or 0 when empty.
    pub fn min(&self) -> u64 {
        if self.count == 0 {
            0
        } else {
            self.min
        }
    }

    /// Largest recorded value.
    pub fn max(&self) -> u64 {
        self.max
    }

    /// Mean of recorded values, or 0 when empty.
    pub fn mean(&self) -> u64 {
        self.sum.checked_div(self.count).unwrap_or(0)
    }

    /// Adds every bucket of `other` into `self`.
    pub fn merge(&mut self, other: &HistogramShard) {
        for (mine, theirs) in self.buckets.iter_mut().zip(&other.buckets) {
            *mine += theirs;
        }
        self.count += other.count;
        self.sum = self.sum.saturating_add(other.sum);
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    /// Quantile estimate: the inclusive upper bound of the bucket holding
    /// the `q`-quantile sample, clamped to the exactly-tracked min/max.
    /// `q` is clamped into `[0, 1]`; an empty histogram reports 0.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (idx, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                let (_, hi) = bucket_bounds(idx);
                return hi.saturating_sub(1).clamp(self.min, self.max);
            }
        }
        self.max
    }

    /// Number of buckets holding at least one sample. A distribution
    /// concentrated in a single bucket has no usable shape: its quantiles
    /// all collapse to one value, so thresholds derived from it (e.g.
    /// outlier calibration) are degenerate.
    pub fn occupied_buckets(&self) -> usize {
        self.buckets.iter().filter(|&&n| n != 0).count()
    }

    /// An outlier threshold derived from the recorded distribution: the
    /// `q`-quantile scaled by `multiplier` (e.g. `outlier_threshold(0.99,
    /// 3.0)` flags values past 3× the p99). An empty histogram returns
    /// `u64::MAX` — with no baseline, nothing can be called an outlier.
    pub fn outlier_threshold(&self, q: f64, multiplier: f64) -> u64 {
        if self.count == 0 {
            return u64::MAX;
        }
        let scaled = self.quantile(q) as f64 * multiplier.max(0.0);
        if scaled >= u64::MAX as f64 {
            u64::MAX
        } else {
            scaled as u64
        }
    }

    /// Point-in-time export of the summary statistics.
    pub fn snapshot(&self, name: &str) -> StageSnapshot {
        StageSnapshot {
            stage: name.to_string(),
            count: self.count(),
            sum_ns: self.sum(),
            min_ns: self.min(),
            max_ns: self.max(),
            mean_ns: self.mean(),
            p50_ns: self.quantile(0.50),
            p90_ns: self.quantile(0.90),
            p99_ns: self.quantile(0.99),
        }
    }
}

/// The registry-side histogram: identical layout, atomic buckets.
///
/// All operations use relaxed ordering — per-bucket totals are exact
/// because every shard merge happens-before the owning worker joins, and
/// readers only run after the sweep (or accept slightly-stale progress).
pub struct LatencyHistogram {
    buckets: [AtomicU64; BUCKET_COUNT],
    count: AtomicU64,
    sum: AtomicU64,
    min: AtomicU64,
    max: AtomicU64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            min: AtomicU64::new(u64::MAX),
            max: AtomicU64::new(0),
        }
    }
}

impl std::fmt::Debug for LatencyHistogram {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("LatencyHistogram")
            .field("count", &self.count.load(Ordering::Relaxed))
            .field("max", &self.max.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

impl LatencyHistogram {
    /// Records a single value directly (registry-side slow path; workers
    /// should record into a [`HistogramShard`] and merge instead).
    pub fn record(&self, value: u64) {
        self.buckets[bucket_index(value)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.min.fetch_min(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Merges one worker shard in (called once per worker per sweep; only
    /// occupied buckets touch shared memory).
    pub fn merge_shard(&self, shard: &HistogramShard) {
        if shard.count == 0 {
            return;
        }
        for (idx, &n) in shard.buckets.iter().enumerate() {
            if n != 0 {
                self.buckets[idx].fetch_add(n, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(shard.count, Ordering::Relaxed);
        self.sum.fetch_add(shard.sum, Ordering::Relaxed);
        self.min.fetch_min(shard.min, Ordering::Relaxed);
        self.max.fetch_max(shard.max, Ordering::Relaxed);
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Copies the current state into a plain shard (for quantiles etc.).
    pub fn to_shard(&self) -> HistogramShard {
        let mut shard = HistogramShard {
            buckets: std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed)),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            min: self.min.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        };
        // A racing merge can make the tracked count lag the bucket sum (or
        // vice versa); renormalize so quantile ranks stay in range.
        let bucket_total: u64 = shard.buckets.iter().sum();
        shard.count = bucket_total;
        // The same race can surface occupied buckets while min/max still
        // hold the empty-state inverted pair (u64::MAX, 0) — `clamp` in
        // `quantile` panics on an inverted range. Rebuild a consistent
        // envelope from the occupied buckets.
        if shard.min > shard.max {
            match (
                shard.buckets.iter().position(|&n| n > 0),
                shard.buckets.iter().rposition(|&n| n > 0),
            ) {
                (Some(lo), Some(hi)) => {
                    shard.min = bucket_bounds(lo).0;
                    shard.max = bucket_bounds(hi).1.saturating_sub(1);
                }
                _ => {
                    shard.min = 0;
                    shard.max = 0;
                }
            }
        }
        shard
    }

    /// Point-in-time export of the summary statistics.
    pub fn snapshot(&self, name: &str) -> StageSnapshot {
        self.to_shard().snapshot(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_region_is_exact() {
        for v in 0..LINEAR_LIMIT {
            assert_eq!(bucket_index(v), v as usize);
            assert_eq!(bucket_bounds(v as usize), (v, v + 1));
        }
    }

    #[test]
    fn bucket_bounds_are_contiguous_and_cover_u64() {
        let (lo0, _) = bucket_bounds(0);
        assert_eq!(lo0, 0);
        for idx in 0..BUCKET_COUNT - 1 {
            let (_, hi) = bucket_bounds(idx);
            let (next_lo, _) = bucket_bounds(idx + 1);
            assert_eq!(hi, next_lo, "gap between buckets {idx} and {}", idx + 1);
        }
        let (_, last_hi) = bucket_bounds(BUCKET_COUNT - 1);
        assert_eq!(last_hi, u64::MAX);
    }

    #[test]
    fn every_value_lands_inside_its_bucket_bounds() {
        let probes = [
            0,
            1,
            7,
            8,
            9,
            15,
            16,
            17,
            100,
            1_000,
            4_095,
            4_096,
            65_535,
            1_000_000,
            123_456_789,
            u64::MAX / 2,
            u64::MAX,
        ];
        for &v in &probes {
            let idx = bucket_index(v);
            let (lo, hi) = bucket_bounds(idx);
            assert!(
                lo <= v && (v < hi || idx == BUCKET_COUNT - 1),
                "value {v} outside bucket {idx} = [{lo}, {hi})"
            );
        }
    }

    #[test]
    fn bucket_boundaries_split_exactly_at_power_of_two_edges() {
        // 2^k must start a fresh bucket for every octave in range.
        for exp in 3..30u32 {
            let v = 1u64 << exp;
            let (lo, _) = bucket_bounds(bucket_index(v));
            assert_eq!(lo, v, "2^{exp} must be a bucket lower bound");
            assert_ne!(bucket_index(v), bucket_index(v - 1), "edge at 2^{exp}");
        }
    }

    #[test]
    fn relative_resolution_is_bounded() {
        // Sub-bucketing keeps bucket width <= 1/8 of the value's octave.
        for &v in &[100u64, 1_000, 10_000, 1_000_000, 50_000_000] {
            let (lo, hi) = bucket_bounds(bucket_index(v));
            let width = (hi - lo) as f64;
            assert!(width / lo as f64 <= 0.125 + 1e-9, "width {width} at {v}");
        }
    }

    #[test]
    fn shard_tracks_count_sum_min_max() {
        let mut h = HistogramShard::default();
        assert_eq!((h.count(), h.min(), h.max(), h.mean()), (0, 0, 0, 0));
        for v in [5u64, 10, 100, 1_000] {
            h.record(v);
        }
        assert_eq!(h.count(), 4);
        assert_eq!(h.sum(), 1_115);
        assert_eq!(h.min(), 5);
        assert_eq!(h.max(), 1_000);
        assert_eq!(h.mean(), 278);
    }

    #[test]
    fn quantiles_are_monotone_and_clamped() {
        let mut h = HistogramShard::default();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let p50 = h.quantile(0.50);
        let p90 = h.quantile(0.90);
        let p99 = h.quantile(0.99);
        assert!(p50 <= p90 && p90 <= p99 && p99 <= h.max());
        // ~6% bucket resolution around the true rank values.
        assert!((450..=560).contains(&p50), "p50 = {p50}");
        assert!((850..=1000).contains(&p90), "p90 = {p90}");
        assert_eq!(h.quantile(0.0), h.min());
        assert_eq!(h.quantile(1.0), h.max());
    }

    #[test]
    fn merge_of_n_shards_equals_single_shard() {
        // The tentpole guarantee: per-worker sharding must be lossless.
        let values: Vec<u64> = (0..5_000u64)
            .map(|i| (i * 2_654_435_761) % 300_000)
            .collect();
        let mut single = HistogramShard::default();
        for &v in &values {
            single.record(v);
        }
        let n = 7;
        let mut shards: Vec<HistogramShard> = (0..n).map(|_| HistogramShard::default()).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % n].record(v);
        }
        let mut merged = HistogramShard::default();
        for shard in &shards {
            merged.merge(shard);
        }
        assert_eq!(merged, single);
        for q in [0.0, 0.25, 0.5, 0.9, 0.99, 1.0] {
            assert_eq!(merged.quantile(q), single.quantile(q));
        }
    }

    #[test]
    fn quantile_on_empty_shard_is_zero() {
        let h = HistogramShard::default();
        for q in [-1.0, 0.0, 0.5, 1.0, 2.0, f64::NAN] {
            assert_eq!(h.quantile(q), 0, "empty shard, q = {q}");
        }
    }

    #[test]
    fn quantile_extremes_hit_exact_min_and_max() {
        let mut h = HistogramShard::default();
        for v in [17u64, 4_242, 99_999, 3] {
            h.record(v);
        }
        // q = 0.0 and 1.0 must return the exactly-tracked bounds, not
        // bucket approximations; out-of-range q clamps to the same.
        assert_eq!(h.quantile(0.0), 3);
        assert_eq!(h.quantile(1.0), 99_999);
        assert_eq!(h.quantile(-0.5), 3);
        assert_eq!(h.quantile(1.5), 99_999);
        // Single-value shard: every quantile is that value.
        let mut one = HistogramShard::default();
        one.record(777);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(one.quantile(q), 777);
        }
    }

    /// Bucket width at `v` — the tolerance of any quantile estimate.
    fn bucket_width(v: u64) -> u64 {
        let (lo, hi) = bucket_bounds(bucket_index(v));
        hi - lo
    }

    #[test]
    fn merged_quantiles_match_sorted_vector_oracle() {
        // Property check: split a value stream across shards, merge, and
        // compare every quantile against the true rank statistic from a
        // sorted vector. The estimate may only exceed the true value by
        // less than one bucket width (~6% relative resolution).
        let values: Vec<u64> = (0..4_000u64)
            .map(|i| {
                i.wrapping_mul(6_364_136_223_846_793_005)
                    .wrapping_add(i * i)
                    % 5_000_000
            })
            .collect();
        let n = 5;
        let mut shards: Vec<HistogramShard> = (0..n).map(|_| HistogramShard::default()).collect();
        for (i, &v) in values.iter().enumerate() {
            shards[i % n].record(v);
        }
        let mut merged = HistogramShard::default();
        for shard in &shards {
            merged.merge(shard);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        for q in [0.0, 0.01, 0.1, 0.25, 0.5, 0.75, 0.9, 0.99, 0.999, 1.0] {
            let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
            let truth = sorted[rank - 1];
            let est = merged.quantile(q);
            assert!(
                truth <= est && est - truth < bucket_width(truth).max(1),
                "q = {q}: oracle {truth}, estimate {est}"
            );
        }
    }

    #[test]
    fn outlier_threshold_scales_quantile() {
        let empty = HistogramShard::default();
        assert_eq!(empty.outlier_threshold(0.99, 3.0), u64::MAX);
        let mut h = HistogramShard::default();
        for v in 1..=1_000u64 {
            h.record(v);
        }
        let p99 = h.quantile(0.99);
        assert_eq!(h.outlier_threshold(0.99, 3.0), p99 * 3);
        assert_eq!(h.outlier_threshold(0.99, 0.0), 0);
        // Negative multipliers clamp to zero, huge ones saturate.
        assert_eq!(h.outlier_threshold(0.99, -5.0), 0);
        assert_eq!(h.outlier_threshold(1.0, f64::MAX), u64::MAX);
    }

    #[test]
    fn occupied_buckets_counts_distinct_buckets() {
        let mut h = HistogramShard::default();
        assert_eq!(h.occupied_buckets(), 0);
        h.record(0);
        h.record(0);
        h.record(0);
        // All mass in one bucket: the quantile "band" collapses to a point.
        assert_eq!(h.occupied_buckets(), 1);
        assert_eq!(h.quantile(0.5), h.quantile(0.99));
        h.record(5);
        h.record(1_000_000);
        assert_eq!(h.occupied_buckets(), 3);
    }

    #[test]
    fn single_bucket_distribution_yields_degenerate_outlier_threshold() {
        // Regression guard for `calibrate_outliers` consumers: a histogram
        // whose every sample landed in bucket 0 reports quantile 0, so the
        // scaled threshold is 0 and would flag *everything* as an outlier.
        // Callers must check `occupied_buckets() >= 2` (and a nonzero
        // threshold) before trusting the derived band.
        let mut zeros = HistogramShard::default();
        for _ in 0..50 {
            zeros.record(0);
        }
        assert_eq!(zeros.occupied_buckets(), 1);
        assert_eq!(zeros.outlier_threshold(0.99, 4.0), 0);

        // A single-bucket histogram at a nonzero value is equally shapeless:
        // p50 == p99, so the "p99 band" carries no spread information.
        let mut spike = HistogramShard::default();
        for _ in 0..50 {
            spike.record(4_100);
        }
        assert_eq!(spike.occupied_buckets(), 1);
        assert_eq!(spike.quantile(0.5), spike.quantile(0.99));
    }

    #[test]
    fn atomic_histogram_matches_shard_semantics() {
        let atomic = LatencyHistogram::default();
        let mut shard = HistogramShard::default();
        for v in [3u64, 9, 81, 6_561, 43_046_721] {
            atomic.record(v);
            shard.record(v);
        }
        assert_eq!(atomic.to_shard(), shard);
        assert_eq!(atomic.snapshot("s"), shard.snapshot("s"));
    }

    #[test]
    fn percentiles_on_empty_shard_are_all_zero() {
        let shard = HistogramShard::default();
        for q in [0.50, 0.90, 0.99] {
            assert_eq!(shard.quantile(q), 0, "p{q} of an empty shard");
        }
        let atomic = LatencyHistogram::default();
        for q in [0.50, 0.90, 0.99] {
            assert_eq!(atomic.to_shard().quantile(q), 0);
        }
        let snap = atomic.snapshot("empty");
        assert_eq!((snap.p50_ns, snap.p90_ns, snap.p99_ns), (0, 0, 0));
    }

    #[test]
    fn percentiles_of_a_single_sample_are_the_sample() {
        // With one sample every rank clamps to 1, and the bucket's upper
        // bound clamps to the exactly-tracked min == max == the sample.
        for value in [0u64, 1, 777, 1_000_000, u64::MAX] {
            let mut shard = HistogramShard::default();
            shard.record(value);
            for q in [0.0, 0.50, 0.90, 0.99, 1.0] {
                assert_eq!(shard.quantile(q), value, "p{q} of single {value}");
            }
            let atomic = LatencyHistogram::default();
            atomic.record(value);
            let snap = atomic.snapshot("one");
            assert_eq!(
                (snap.p50_ns, snap.p90_ns, snap.p99_ns),
                (value, value, value)
            );
        }
    }

    #[test]
    fn percentiles_with_all_samples_in_one_bucket_clamp_to_the_range() {
        // 1000 and 1020 share a log-scale bucket (~6% resolution). Every
        // quantile must land inside the true [min, max] — the bucket's
        // nominal upper bound would overshoot without the clamp.
        let (lo, hi) = (1_000u64, 1_020u64);
        assert_eq!(bucket_index(lo), bucket_index(hi), "one bucket");
        let mut shard = HistogramShard::default();
        let atomic = LatencyHistogram::default();
        for i in 0..100u64 {
            let v = lo + (i % 2) * (hi - lo);
            shard.record(v);
            atomic.record(v);
        }
        assert_eq!(shard.occupied_buckets(), 1);
        for q in [0.50, 0.90, 0.99] {
            let est = shard.quantile(q);
            assert!(
                (lo..=hi).contains(&est),
                "p{q} = {est} escapes [{lo}, {hi}]"
            );
            assert_eq!(atomic.to_shard().quantile(q), est);
        }
        // All quantiles collapse to one value: the degenerate-shape
        // signal occupied_buckets() exists to flag.
        assert_eq!(shard.quantile(0.50), shard.quantile(0.99));
    }

    #[test]
    fn atomic_merge_shard_accumulates() {
        let atomic = LatencyHistogram::default();
        let mut a = HistogramShard::default();
        let mut b = HistogramShard::default();
        for v in 0..100u64 {
            a.record(v * 11);
            b.record(v * 17);
        }
        atomic.merge_shard(&a);
        atomic.merge_shard(&b);
        atomic.merge_shard(&HistogramShard::default()); // empty: no-op
        let mut expect = a.clone();
        expect.merge(&b);
        assert_eq!(atomic.to_shard(), expect);
    }

    #[test]
    fn torn_snapshot_with_stale_min_max_yields_sane_quantiles() {
        // A progress monitor's to_shard() can race a record(): the bucket
        // increment lands but min/max still hold the empty-state inverted
        // pair (u64::MAX, 0). The snapshot must repair the envelope from
        // the occupied buckets instead of panicking in quantile's clamp.
        let atomic = LatencyHistogram::default();
        atomic.buckets[bucket_index(5_000)].fetch_add(1, Ordering::Relaxed);
        let shard = atomic.to_shard();
        assert_eq!(shard.count(), 1);
        assert!(shard.min() <= shard.max());
        let (lo, hi) = bucket_bounds(bucket_index(5_000));
        let p50 = shard.quantile(0.50);
        assert!((lo..hi).contains(&p50), "p50 = {p50} outside [{lo}, {hi})");
    }
}
