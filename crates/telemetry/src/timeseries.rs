//! Bounded, deterministically downsampled campaign time series.
//!
//! A [`TimeSeries`] is a fixed-capacity ring of [`TimePoint`]s. Points are
//! admitted at a power-of-two *stride* over their arrival index: the stride
//! starts at 1 (keep everything) and doubles whenever the buffer would
//! overflow, at which point every second retained point is dropped. The
//! surviving set is therefore a pure function of the arrival sequence — no
//! clocks, no randomness — which is what lets a campaign persist its series
//! as a byte-identical `timeseries.json` for any worker-thread count.
//!
//! The same container serves two producers:
//!
//! * the **deterministic builder** in the scanner walks the merged record
//!   stream after a campaign and samples cumulative virtual-clock state one
//!   point per probed domain (this is what gets persisted), and
//! * the **monitor thread** in `run_campaign_with_progress` pushes one
//!   wall-clock point per progress tick for live trend display (never
//!   persisted — wall time is not reproducible).
//!
//! [`TimeSeriesDoc`] is the versioned serde envelope written next to
//! `metrics.json`; its `clock` field records which of the two producers
//! filled it.

use serde::{Deserialize, Serialize};

use crate::manifest::CounterSnapshot;

/// Version stamp for the time-series schema; bump on breaking field changes.
pub const TIMESERIES_SCHEMA_VERSION: u32 = 1;

/// Default point capacity used by campaign runs.
pub const DEFAULT_TIMESERIES_CAPACITY: usize = 512;

/// One sampled point of campaign state. All fields are integers so a
/// persisted series round-trips through JSON bit-exactly.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimePoint {
    /// Arrival index of this sample (probe ordinal or monitor tick).
    pub seq: u64,
    /// Domains finished so far.
    pub probes: u64,
    /// Connection records produced so far (redirect hops included).
    pub records: u64,
    /// Probes that erred so far.
    pub errors: u64,
    /// Redirect hops followed so far.
    pub redirects: u64,
    /// Elapsed time at this sample, microseconds. Virtual-clock µs for the
    /// persisted builder series; wall-clock µs for the live monitor series.
    pub elapsed_us: u64,
    /// Deepest netsim queue observed so far.
    pub queue_high_water: u64,
    /// Handshake-stage median at this sample, microseconds.
    pub handshake_p50_us: u64,
    /// Handshake-stage 99th percentile at this sample, microseconds.
    pub handshake_p99_us: u64,
    /// Whole-probe median at this sample, microseconds.
    pub total_p50_us: u64,
    /// Whole-probe 99th percentile at this sample, microseconds.
    pub total_p99_us: u64,
    /// Classification mix so far, in stable declaration order.
    #[serde(default, skip_serializing_if = "Vec::is_empty")]
    pub mix: Vec<CounterSnapshot>,
}

impl TimePoint {
    /// Completed probes per second of elapsed time at this sample.
    pub fn probes_per_sec(&self) -> f64 {
        if self.elapsed_us == 0 {
            return 0.0;
        }
        self.probes as f64 / (self.elapsed_us as f64 / 1e6)
    }

    /// Fraction of completed probes that erred, in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        if self.probes == 0 {
            return 0.0;
        }
        self.errors as f64 / self.probes as f64
    }

    /// Share of `name` within the classification mix, in `[0, 1]`.
    pub fn mix_share(&self, name: &str) -> f64 {
        let total: u64 = self.mix.iter().map(|c| c.value).sum();
        if total == 0 {
            return 0.0;
        }
        let hit = self
            .mix
            .iter()
            .find(|c| c.name == name)
            .map_or(0, |c| c.value);
        hit as f64 / total as f64
    }
}

/// Bounded ring of [`TimePoint`]s with deterministic stride downsampling.
#[derive(Debug, Clone)]
pub struct TimeSeries {
    capacity: usize,
    stride: u64,
    seen: u64,
    points: Vec<TimePoint>,
}

impl TimeSeries {
    /// Creates an empty series holding at most `capacity` points
    /// (clamped to a minimum of 2).
    pub fn new(capacity: usize) -> Self {
        Self {
            capacity: capacity.max(2),
            stride: 1,
            seen: 0,
            points: Vec::new(),
        }
    }

    /// Offers one point. Its `seq` is overwritten with the arrival index;
    /// the point is retained only if that index lands on the current
    /// stride. Returns whether the point was kept.
    pub fn push(&mut self, point: TimePoint) -> bool {
        self.push_with(|| point)
    }

    /// Like [`push`](TimeSeries::push), but builds the point only when
    /// the arrival index survives the stride filter — the fast path for
    /// callers whose samples are expensive to materialize (quantile
    /// computation per offer, say). Admission depends only on the
    /// arrival index, so `push_with` and `push` retain identical series.
    pub fn push_with(&mut self, make: impl FnOnce() -> TimePoint) -> bool {
        let idx = self.seen;
        self.seen += 1;
        if !idx.is_multiple_of(self.stride) {
            return false;
        }
        if self.points.len() == self.capacity {
            self.decimate();
            if !idx.is_multiple_of(self.stride) {
                return false;
            }
        }
        let mut point = make();
        point.seq = idx;
        self.points.push(point);
        true
    }

    /// Offers one point that bypasses the stride filter — used for the
    /// final cumulative sample so the series always ends on complete state.
    pub fn push_final(&mut self, mut point: TimePoint) {
        let idx = self.seen;
        self.seen += 1;
        if self.points.len() == self.capacity {
            self.decimate();
        }
        point.seq = idx;
        self.points.push(point);
    }

    /// Drops every second retained point and doubles the stride.
    fn decimate(&mut self) {
        let next = self.stride * 2;
        self.points.retain(|p| p.seq % next == 0);
        self.stride = next;
    }

    /// Retained points, in arrival order.
    pub fn points(&self) -> &[TimePoint] {
        &self.points
    }

    /// Current admission stride (a power of two).
    pub fn stride(&self) -> u64 {
        self.stride
    }

    /// Total points offered so far, retained or not.
    pub fn offered(&self) -> u64 {
        self.seen
    }

    /// Number of retained points.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether no points have been retained.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Wraps the series into its versioned serde envelope.
    pub fn into_doc(self, campaign_id: impl Into<String>, clock: SeriesClock) -> TimeSeriesDoc {
        TimeSeriesDoc {
            schema_version: TIMESERIES_SCHEMA_VERSION,
            campaign_id: campaign_id.into(),
            clock: clock.name().to_string(),
            capacity: self.capacity as u32,
            stride: self.stride,
            offered: self.seen,
            points: self.points,
        }
    }
}

/// Which clock filled a series: the deterministic virtual clock or wall time.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SeriesClock {
    /// Simulated microseconds; reproducible for any thread count.
    Virtual,
    /// Wall-clock microseconds; live display only.
    Wall,
}

impl SeriesClock {
    /// Stable name stored in the `clock` field of a [`TimeSeriesDoc`].
    pub fn name(self) -> &'static str {
        match self {
            SeriesClock::Virtual => "virtual-us",
            SeriesClock::Wall => "wall-us",
        }
    }
}

/// The versioned, serializable envelope persisted as `timeseries.json`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimeSeriesDoc {
    /// Schema version ([`TIMESERIES_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Campaign identity (week, IP version, seed — thread count excluded).
    pub campaign_id: String,
    /// Clock that filled the series (see [`SeriesClock::name`]).
    pub clock: String,
    /// Configured point capacity.
    pub capacity: u32,
    /// Final admission stride.
    pub stride: u64,
    /// Total points offered across the run.
    pub offered: u64,
    /// Retained points, in arrival order.
    pub points: Vec<TimePoint>,
}

impl TimeSeriesDoc {
    /// The last (most complete) sample, if any.
    pub fn last_point(&self) -> Option<&TimePoint> {
        self.points.last()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn point(n: u64) -> TimePoint {
        TimePoint {
            seq: 0,
            probes: n,
            records: n,
            errors: 0,
            redirects: 0,
            elapsed_us: n * 1_000,
            queue_high_water: 3,
            handshake_p50_us: 40_000,
            handshake_p99_us: 90_000,
            total_p50_us: 100_000,
            total_p99_us: 200_000,
            mix: Vec::new(),
        }
    }

    #[test]
    fn keeps_everything_under_capacity() {
        let mut ts = TimeSeries::new(16);
        for i in 0..10 {
            assert!(ts.push(point(i)));
        }
        assert_eq!(ts.len(), 10);
        assert_eq!(ts.stride(), 1);
        let seqs: Vec<u64> = ts.points().iter().map(|p| p.seq).collect();
        assert_eq!(seqs, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn stride_doubles_on_overflow_and_stays_bounded() {
        let mut ts = TimeSeries::new(8);
        for i in 0..1_000 {
            ts.push(point(i));
        }
        assert!(ts.len() <= 8, "len {} exceeds capacity", ts.len());
        assert_eq!(ts.offered(), 1_000);
        // Stride is a power of two and every retained seq lands on it.
        assert!(ts.stride().is_power_of_two());
        assert!(ts.stride() > 1);
        for p in ts.points() {
            assert_eq!(p.seq % ts.stride(), 0);
        }
        // Retained seqs ascend.
        let seqs: Vec<u64> = ts.points().iter().map(|p| p.seq).collect();
        let mut sorted = seqs.clone();
        sorted.sort_unstable();
        assert_eq!(seqs, sorted);
    }

    #[test]
    fn downsampling_is_a_pure_function_of_arrival_count() {
        let runs: Vec<Vec<u64>> = [100usize, 100, 100]
            .iter()
            .map(|&n| {
                let mut ts = TimeSeries::new(8);
                for i in 0..n as u64 {
                    ts.push(point(i));
                }
                ts.points().iter().map(|p| p.seq).collect()
            })
            .collect();
        assert_eq!(runs[0], runs[1]);
        assert_eq!(runs[1], runs[2]);
    }

    #[test]
    fn push_final_always_lands() {
        let mut ts = TimeSeries::new(4);
        for i in 0..99 {
            ts.push(point(i));
        }
        ts.push_final(point(99));
        let last = ts.points().last().unwrap();
        assert_eq!(last.seq, 99);
        assert!(ts.len() <= 4);
    }

    #[test]
    fn capacity_clamps_to_two() {
        let mut ts = TimeSeries::new(0);
        for i in 0..50 {
            ts.push(point(i));
        }
        assert!(ts.len() <= 2);
        assert!(!ts.is_empty());
    }

    #[test]
    fn doc_roundtrips_through_json() {
        let mut ts = TimeSeries::new(8);
        for i in 0..20 {
            ts.push(point(i));
        }
        let mut doc = ts.into_doc("week0-V1-seed0000000000000017", SeriesClock::Virtual);
        doc.points[0].mix = vec![CounterSnapshot {
            name: "spinning".into(),
            value: 7,
        }];
        let json = serde_json::to_string_pretty(&doc).unwrap();
        let back: TimeSeriesDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
        assert_eq!(back.clock, "virtual-us");
        assert_eq!(back.schema_version, TIMESERIES_SCHEMA_VERSION);
    }

    #[test]
    fn point_rates_and_mix_share() {
        let mut p = point(10);
        p.errors = 2;
        p.elapsed_us = 2_000_000;
        assert!((p.probes_per_sec() - 5.0).abs() < 1e-9);
        assert!((p.error_rate() - 0.2).abs() < 1e-12);
        p.mix = vec![
            CounterSnapshot {
                name: "spinning".into(),
                value: 3,
            },
            CounterSnapshot {
                name: "all-zero".into(),
                value: 1,
            },
        ];
        assert!((p.mix_share("spinning") - 0.75).abs() < 1e-12);
        assert_eq!(p.mix_share("greased"), 0.0);

        let zero = point(0);
        assert_eq!(zero.probes_per_sec(), 0.0);
        assert_eq!(zero.error_rate(), 0.0);
        assert_eq!(zero.mix_share("spinning"), 0.0);
    }
}
