//! Per-probe hierarchical cost profiler.
//!
//! The ROADMAP's 1:1-scale blocker is probe cost: ~50 µs today against a
//! <20 µs target. The coarse [`Stage`](crate::Stage) laps say *that* a
//! probe is slow, not *where* — this module attributes cost to a static
//! tree of [`ScopeId`]s threaded through the hot path, so the ranked
//! "where does the next 2× live" list falls out of any profiled sweep.
//!
//! Design constraints, in order:
//!
//! 1. **Determinism.** Campaign artifacts are byte-identical across
//!    worker counts; the profile artifact must be too. Wall-clock time
//!    can never be, so the profile splits in two: `profile.json` carries
//!    only costs that are pure functions of the record stream (enter
//!    counts, allocation deltas, event-queue-op deltas), while wall-time
//!    weights ride exclusively in the collapsed-stack export
//!    (`profile.folded`) meant for flamegraph tooling. Scopes that only
//!    exist on some execution shapes (the streamed path's batch mailbox
//!    has no counterpart at `--threads 1`) are marked non-deterministic
//!    and excluded from `profile.json` entirely.
//! 2. **Hot-path overhead under the CI-gated 3% budget.** Only the
//!    coarse per-probe scopes read the clock (~8 reads per multi-
//!    microsecond probe, chained lap-style so each boundary costs one
//!    read); the inner netsim/quic scopes are fed *post hoc* from the
//!    plain counters those crates already export, costing integer adds.
//!    [`MAX_SCOPE_DEPTH`] bounds the tree so per-scope work stays O(1).
//! 3. **Shard-and-merge like [`Registry`](crate::Registry).** Workers
//!    accumulate into a private [`ProfilerShard`] (plain integers, no
//!    atomics) and the engine folds shards into the shared
//!    [`ProfilerRegistry`] (relaxed atomics, commutative adds — merge
//!    order cannot matter).
//!
//! The scope *paths* are interned statically: every [`ScopeId`] carries
//! its full slash-joined path as a `&'static str`, so nothing on the hot
//! path ever formats a string.

use crate::metrics::Counter;
use serde::{Deserialize, Serialize};
use std::time::Instant;

/// Schema version stamped into [`ProfileDoc`] (`profile.json`).
pub const PROFILE_SCHEMA_VERSION: u32 = 1;

/// Upper bound on scope nesting. The static table keeps well under it
/// (current maximum depth is 3); the bound exists so the snapshot walk
/// and any future dynamic nesting stay O(1) per scope.
pub const MAX_SCOPE_DEPTH: usize = 8;

/// One node in the static profiler scope tree.
///
/// Declaration order is index order, export order, and (for the tree)
/// topological order: a parent always precedes its children.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(usize)]
pub enum ScopeId {
    /// Whole probe: plan to record.
    Probe,
    /// Probe plan derivation (population lookup, RNG seeding).
    Plan,
    /// The connection lab: both endpoints plus the simulated path.
    Lab,
    /// Lab wall time until the handshake completed.
    LabHandshake,
    /// Lab wall time from handshake to close.
    LabTransfer,
    /// Netsim timing-wheel pushes (count-only; fed from `PathStats`).
    WheelPush,
    /// Netsim timing-wheel pops (count-only; fed from `PathStats`).
    WheelPop,
    /// Datagrams the simulated link delivered (count-only).
    LinkDelivery,
    /// QUIC packets encoded and sent (count-only; both endpoints).
    PacketEncode,
    /// QUIC datagrams decoded or rejected (count-only; both endpoints).
    PacketDecode,
    /// Crypto/stream frames folded into reassembly buffers (count-only).
    Reassembly,
    /// Datagram pool lookups; allocation delta = pool misses.
    DatagramPool,
    /// §3.3 qlog extraction into packet observations.
    SpinExtraction,
    /// Observer-report construction and flow classification.
    Classify,
    /// On-path observer fold over the probe's tap capture.
    ObserverFold,
    /// Tap packets the observer ingested (count-only).
    ObserverSamples,
    /// Qlog trace retention/encoding on `keep_qlogs` campaigns.
    QlogEncode,
    /// Folding finished domain records into the shared accumulators.
    RecordIntern,
    /// Streamed-path producer blocking on the bounded batch mailbox.
    /// Wall-only and shape-dependent (`--threads 1` has no mailbox), so
    /// non-deterministic and excluded from `profile.json`.
    BatchMailbox,
}

/// Static metadata for one scope: leaf name, interned full path,
/// parent link, and whether its counts are deterministic (pure
/// functions of the record stream, independent of worker count).
#[derive(Debug)]
pub struct ScopeInfo {
    /// Leaf name (last path segment).
    pub name: &'static str,
    /// Full slash-joined path from the root.
    pub path: &'static str,
    /// Enclosing scope; `None` for tree roots.
    pub parent: Option<ScopeId>,
    /// Whether the scope's counts belong in `profile.json`.
    pub deterministic: bool,
}

const fn scope(
    name: &'static str,
    path: &'static str,
    parent: Option<ScopeId>,
    deterministic: bool,
) -> ScopeInfo {
    ScopeInfo {
        name,
        path,
        parent,
        deterministic,
    }
}

/// The static scope table, indexed by `ScopeId as usize`.
const SCOPES: [ScopeInfo; ScopeId::COUNT] = [
    scope("probe", "probe", None, true),
    scope("plan", "probe/plan", Some(ScopeId::Probe), true),
    scope("lab", "probe/lab", Some(ScopeId::Probe), true),
    scope("handshake", "probe/lab/handshake", Some(ScopeId::Lab), true),
    scope("transfer", "probe/lab/transfer", Some(ScopeId::Lab), true),
    scope(
        "wheel_push",
        "probe/lab/wheel_push",
        Some(ScopeId::Lab),
        true,
    ),
    scope("wheel_pop", "probe/lab/wheel_pop", Some(ScopeId::Lab), true),
    scope(
        "link_delivery",
        "probe/lab/link_delivery",
        Some(ScopeId::Lab),
        true,
    ),
    scope(
        "packet_encode",
        "probe/lab/packet_encode",
        Some(ScopeId::Lab),
        true,
    ),
    scope(
        "packet_decode",
        "probe/lab/packet_decode",
        Some(ScopeId::Lab),
        true,
    ),
    scope(
        "reassembly",
        "probe/lab/reassembly",
        Some(ScopeId::Lab),
        true,
    ),
    scope(
        "datagram_pool",
        "probe/lab/datagram_pool",
        Some(ScopeId::Lab),
        true,
    ),
    scope(
        "spin_extraction",
        "probe/spin_extraction",
        Some(ScopeId::Probe),
        true,
    ),
    scope("classify", "probe/classify", Some(ScopeId::Probe), true),
    scope(
        "observer_fold",
        "probe/observer_fold",
        Some(ScopeId::Probe),
        true,
    ),
    scope(
        "samples",
        "probe/observer_fold/samples",
        Some(ScopeId::ObserverFold),
        true,
    ),
    scope(
        "qlog_encode",
        "probe/qlog_encode",
        Some(ScopeId::Probe),
        true,
    ),
    scope("record_intern", "record_intern", None, true),
    scope("batch_mailbox", "batch_mailbox", None, false),
];

impl ScopeId {
    /// Every scope, in declaration (and index) order.
    pub const ALL: &'static [ScopeId] = &[
        ScopeId::Probe,
        ScopeId::Plan,
        ScopeId::Lab,
        ScopeId::LabHandshake,
        ScopeId::LabTransfer,
        ScopeId::WheelPush,
        ScopeId::WheelPop,
        ScopeId::LinkDelivery,
        ScopeId::PacketEncode,
        ScopeId::PacketDecode,
        ScopeId::Reassembly,
        ScopeId::DatagramPool,
        ScopeId::SpinExtraction,
        ScopeId::Classify,
        ScopeId::ObserverFold,
        ScopeId::ObserverSamples,
        ScopeId::QlogEncode,
        ScopeId::RecordIntern,
        ScopeId::BatchMailbox,
    ];

    /// Number of scopes.
    pub const COUNT: usize = ScopeId::ALL.len();

    /// Static metadata for this scope.
    #[inline]
    pub fn info(self) -> &'static ScopeInfo {
        &SCOPES[self as usize]
    }

    /// Leaf name (last path segment).
    pub fn name(self) -> &'static str {
        self.info().name
    }

    /// Interned full path (`probe/lab/handshake`).
    pub fn path(self) -> &'static str {
        self.info().path
    }

    /// Enclosing scope, if any.
    pub fn parent(self) -> Option<ScopeId> {
        self.info().parent
    }

    /// Whether this scope's counts are worker-count invariant.
    pub fn deterministic(self) -> bool {
        self.info().deterministic
    }

    /// Nesting depth (roots are 0).
    pub fn depth(self) -> usize {
        let mut d = 0;
        let mut cur = self;
        while let Some(p) = cur.parent() {
            d += 1;
            cur = p;
        }
        d
    }

    /// Direct children, in declaration order.
    pub fn children(self) -> impl Iterator<Item = ScopeId> {
        ScopeId::ALL
            .iter()
            .copied()
            .filter(move |s| s.parent() == Some(self))
    }

    /// Looks a scope up by its full path.
    pub fn from_path(path: &str) -> Option<ScopeId> {
        ScopeId::ALL.iter().copied().find(|s| s.path() == path)
    }
}

/// One worker's private profiler buffer: plain integers, no atomics.
///
/// Mirrors [`WorkerShard`](crate::WorkerShard): count mutators are
/// un-gated plain adds, while the clock-reading helpers ([`begin`]
/// [`lap`] [`end`]) are gated on the enabled flag so disabled pipelines
/// never touch the monotonic clock.
///
/// [`begin`]: ProfilerShard::begin
/// [`lap`]: ProfilerShard::lap
/// [`end`]: ProfilerShard::end
#[derive(Debug, Clone)]
pub struct ProfilerShard {
    enabled: bool,
    enters: [u64; ScopeId::COUNT],
    wall_ns: [u64; ScopeId::COUNT],
    allocs: [u64; ScopeId::COUNT],
    queue_ops: [u64; ScopeId::COUNT],
}

impl Default for ProfilerShard {
    /// A disabled shard; the engine re-enables it to match the campaign
    /// profiler via [`ProfilerShard::set_enabled`].
    fn default() -> Self {
        ProfilerShard {
            enabled: false,
            enters: [0; ScopeId::COUNT],
            wall_ns: [0; ScopeId::COUNT],
            allocs: [0; ScopeId::COUNT],
            queue_ops: [0; ScopeId::COUNT],
        }
    }
}

impl ProfilerShard {
    /// Whether the clock-reading helpers are live.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Flips the enabled flag (used when a reusable scratch joins a
    /// campaign whose profiler differs from the scratch's last run).
    pub fn set_enabled(&mut self, enabled: bool) {
        self.enabled = enabled;
    }

    /// Counts one scope entry.
    #[inline]
    pub fn enter(&mut self, scope: ScopeId) {
        self.enters[scope as usize] += 1;
    }

    /// Counts `n` scope entries (post-hoc mapping of per-lab counters).
    #[inline]
    pub fn enter_n(&mut self, scope: ScopeId, n: u64) {
        self.enters[scope as usize] += n;
    }

    /// Adds cumulative wall time to a scope directly (for walls measured
    /// elsewhere, e.g. the lab's own handshake/transfer stopwatches).
    #[inline]
    pub fn add_wall_ns(&mut self, scope: ScopeId, ns: u64) {
        self.wall_ns[scope as usize] += ns;
    }

    /// Attributes `n` heap allocations to a scope.
    #[inline]
    pub fn add_allocs(&mut self, scope: ScopeId, n: u64) {
        self.allocs[scope as usize] += n;
    }

    /// Attributes `n` event-queue operations to a scope.
    #[inline]
    pub fn add_queue_ops(&mut self, scope: ScopeId, n: u64) {
        self.queue_ops[scope as usize] += n;
    }

    /// Samples the clock if enabled. Pair with [`ProfilerShard::lap`] or
    /// [`ProfilerShard::end`].
    #[inline]
    pub fn begin(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a scope at a stage boundary: records the elapsed wall and
    /// one enter into `scope`, and returns a fresh timestamp so chained
    /// boundaries cost one clock read each.
    #[inline]
    pub fn lap(&mut self, scope: ScopeId, start: Option<Instant>) -> Option<Instant> {
        let start = start?;
        let now = Instant::now();
        self.enters[scope as usize] += 1;
        self.wall_ns[scope as usize] += now.saturating_duration_since(start).as_nanos() as u64;
        Some(now)
    }

    /// Closes a scope without chaining: records elapsed wall plus one
    /// enter. Use for outermost scopes whose end is the last boundary.
    #[inline]
    pub fn end(&mut self, scope: ScopeId, start: Option<Instant>) {
        if let Some(start) = start {
            self.enters[scope as usize] += 1;
            self.wall_ns[scope as usize] += start.elapsed().as_nanos() as u64;
        }
    }

    /// Recorded enter count for one scope.
    pub fn enters(&self, scope: ScopeId) -> u64 {
        self.enters[scope as usize]
    }

    /// Recorded cumulative wall nanoseconds for one scope.
    pub fn wall_ns(&self, scope: ScopeId) -> u64 {
        self.wall_ns[scope as usize]
    }

    /// Adds every cell of `other` into `self` (shard-level merge).
    pub fn merge(&mut self, other: &ProfilerShard) {
        for i in 0..ScopeId::COUNT {
            self.enters[i] += other.enters[i];
            self.wall_ns[i] += other.wall_ns[i];
            self.allocs[i] += other.allocs[i];
            self.queue_ops[i] += other.queue_ops[i];
        }
    }

    /// True when nothing has been recorded since the last reset.
    pub fn is_empty(&self) -> bool {
        self.enters.iter().all(|&v| v == 0)
            && self.wall_ns.iter().all(|&v| v == 0)
            && self.allocs.iter().all(|&v| v == 0)
            && self.queue_ops.iter().all(|&v| v == 0)
    }

    /// Clears all recorded data (keeps the enabled flag).
    pub fn reset(&mut self) {
        self.enters = [0; ScopeId::COUNT];
        self.wall_ns = [0; ScopeId::COUNT];
        self.allocs = [0; ScopeId::COUNT];
        self.queue_ops = [0; ScopeId::COUNT];
    }
}

/// The shared, campaign-wide profiler store (relaxed atomics).
///
/// Absorbing a shard is a sequence of commutative `fetch_add`s, so the
/// merged totals are independent of worker count and absorb order —
/// the property that makes `profile.json` byte-identical across
/// `--threads 1` and `--threads 4`.
pub struct ProfilerRegistry {
    enabled: bool,
    enters: [Counter; ScopeId::COUNT],
    wall_ns: [Counter; ScopeId::COUNT],
    allocs: [Counter; ScopeId::COUNT],
    queue_ops: [Counter; ScopeId::COUNT],
}

impl Default for ProfilerRegistry {
    fn default() -> Self {
        ProfilerRegistry::disabled()
    }
}

impl std::fmt::Debug for ProfilerRegistry {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ProfilerRegistry")
            .field("enabled", &self.enabled)
            .field("probe_enters", &self.enters(ScopeId::Probe))
            .finish_non_exhaustive()
    }
}

impl ProfilerRegistry {
    fn with_enabled(enabled: bool) -> Self {
        ProfilerRegistry {
            enabled,
            enters: std::array::from_fn(|_| Counter::new()),
            wall_ns: std::array::from_fn(|_| Counter::new()),
            allocs: std::array::from_fn(|_| Counter::new()),
            queue_ops: std::array::from_fn(|_| Counter::new()),
        }
    }

    /// A live profiler that records everything.
    pub fn new() -> Self {
        ProfilerRegistry::with_enabled(true)
    }

    /// A no-op profiler: shards stay disabled, absorbs are ignored.
    /// The default for campaigns that don't ask for profiling.
    pub fn disabled() -> Self {
        ProfilerRegistry::with_enabled(false)
    }

    /// Whether this profiler records anything.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Creates a worker shard matching this profiler's enabled state.
    pub fn shard(&self) -> ProfilerShard {
        ProfilerShard {
            enabled: self.enabled,
            ..ProfilerShard::default()
        }
    }

    /// Folds one worker shard into the shared store (no-op when
    /// disabled; only nonzero cells touch shared cachelines).
    pub fn absorb(&self, shard: &ProfilerShard) {
        if !self.enabled {
            return;
        }
        for i in 0..ScopeId::COUNT {
            if shard.enters[i] != 0 {
                self.enters[i].add(shard.enters[i]);
            }
            if shard.wall_ns[i] != 0 {
                self.wall_ns[i].add(shard.wall_ns[i]);
            }
            if shard.allocs[i] != 0 {
                self.allocs[i].add(shard.allocs[i]);
            }
            if shard.queue_ops[i] != 0 {
                self.queue_ops[i].add(shard.queue_ops[i]);
            }
        }
    }

    /// Current enter count for one scope.
    pub fn enters(&self, scope: ScopeId) -> u64 {
        self.enters[scope as usize].get()
    }

    /// Current cumulative wall nanoseconds for one scope.
    pub fn wall_ns(&self, scope: ScopeId) -> u64 {
        self.wall_ns[scope as usize].get()
    }

    /// Point-in-time export: every scope with cumulative wall and
    /// derived self time.
    pub fn snapshot(&self) -> ProfileSnapshot {
        let wall: Vec<u64> = ScopeId::ALL.iter().map(|&s| self.wall_ns(s)).collect();
        let scopes = ScopeId::ALL
            .iter()
            .map(|&s| {
                let child_wall: u64 = s.children().map(|c| wall[c as usize]).sum();
                ScopeCost {
                    scope: s,
                    enters: self.enters(s),
                    wall_ns: wall[s as usize],
                    self_ns: wall[s as usize].saturating_sub(child_wall),
                    allocs: self.allocs[s as usize].get(),
                    queue_ops: self.queue_ops[s as usize].get(),
                }
            })
            .collect();
        ProfileSnapshot { scopes }
    }
}

/// One scope's merged costs inside a [`ProfileSnapshot`].
#[derive(Debug, Clone, Copy)]
pub struct ScopeCost {
    /// Which scope.
    pub scope: ScopeId,
    /// Times the scope was entered.
    pub enters: u64,
    /// Cumulative wall nanoseconds (scope plus its children).
    pub wall_ns: u64,
    /// Self wall nanoseconds: cumulative minus the children's cumulative
    /// (saturating — clock jitter can make children sum past the parent).
    pub self_ns: u64,
    /// Heap allocations attributed to the scope.
    pub allocs: u64,
    /// Event-queue operations attributed to the scope.
    pub queue_ops: u64,
}

/// A merged view of every scope, in declaration order.
#[derive(Debug, Clone)]
pub struct ProfileSnapshot {
    /// One entry per [`ScopeId`], declaration order.
    pub scopes: Vec<ScopeCost>,
}

impl ProfileSnapshot {
    /// The cost row for one scope.
    pub fn cost(&self, scope: ScopeId) -> &ScopeCost {
        &self.scopes[scope as usize]
    }

    /// The deterministic half, ready to write as `profile.json`.
    pub fn doc(&self) -> ProfileDoc {
        ProfileDoc {
            schema_version: PROFILE_SCHEMA_VERSION,
            scopes: self
                .scopes
                .iter()
                .filter(|c| c.scope.deterministic())
                .map(|c| ProfileScopeRow {
                    path: c.scope.path().to_string(),
                    enters: c.enters,
                    allocs: c.allocs,
                    queue_ops: c.queue_ops,
                })
                .collect(),
        }
    }

    /// Collapsed-stack weights: `(full path, self wall ns)` for every
    /// scope that accumulated self time, declaration order. The caller
    /// renders these as `frame;frame;frame weight` lines.
    pub fn collapsed(&self) -> Vec<(&'static str, u64)> {
        self.scopes
            .iter()
            .filter(|c| c.self_ns > 0)
            .map(|c| (c.scope.path(), c.self_ns))
            .collect()
    }
}

/// The deterministic profile artifact (`profile.json`): per-scope enter
/// counts and allocation / event-queue-op deltas. Wall time is
/// deliberately absent — it can never be byte-identical across runs, so
/// it rides only in the collapsed-stack export.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileDoc {
    /// Schema version (currently [`PROFILE_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// One row per deterministic scope, declaration order. Always the
    /// full set, so the layout is stable across runs and diffs line up.
    pub scopes: Vec<ProfileScopeRow>,
}

/// One deterministic scope's costs inside a [`ProfileDoc`].
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProfileScopeRow {
    /// Full slash-joined scope path.
    pub path: String,
    /// Times the scope was entered.
    pub enters: u64,
    /// Heap allocations attributed to the scope.
    pub allocs: u64,
    /// Event-queue operations attributed to the scope.
    pub queue_ops: u64,
}

impl ProfileDoc {
    /// The row for one scope path.
    pub fn row(&self, path: &str) -> Option<&ProfileScopeRow> {
        self.scopes.iter().find(|r| r.path == path)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scope_table_is_a_well_formed_bounded_forest() {
        use std::collections::HashSet;
        let names: HashSet<&str> = ScopeId::ALL.iter().map(|s| s.path()).collect();
        assert_eq!(names.len(), ScopeId::COUNT, "scope paths must be unique");
        for (i, &s) in ScopeId::ALL.iter().enumerate() {
            assert_eq!(s as usize, i);
            assert!(s.depth() <= MAX_SCOPE_DEPTH, "{} too deep", s.path());
            match s.parent() {
                None => assert_eq!(s.path(), s.name(), "root path is its name"),
                Some(p) => {
                    assert!(
                        (p as usize) < i,
                        "parent {} must precede child {}",
                        p.path(),
                        s.path()
                    );
                    assert_eq!(
                        s.path(),
                        format!("{}/{}", p.path(), s.name()),
                        "interned path must be parent path + leaf name"
                    );
                }
            }
            assert_eq!(ScopeId::from_path(s.path()), Some(s));
        }
        // The deliberate exception: the batch mailbox only exists on the
        // threaded streamed path, so it must stay out of profile.json.
        assert!(!ScopeId::BatchMailbox.deterministic());
        assert_eq!(
            ScopeId::ALL.iter().filter(|s| !s.deterministic()).count(),
            1
        );
    }

    #[test]
    fn disabled_profiler_costs_a_branch_and_records_nothing() {
        let reg = ProfilerRegistry::disabled();
        let mut shard = reg.shard();
        assert!(!shard.is_enabled());
        assert!(shard.begin().is_none());
        assert!(shard.lap(ScopeId::Plan, None).is_none());
        shard.end(ScopeId::Probe, None);
        shard.enter(ScopeId::Probe);
        reg.absorb(&shard);
        assert_eq!(reg.enters(ScopeId::Probe), 0);
        assert!(reg.snapshot().scopes.iter().all(|c| c.enters == 0));
    }

    #[test]
    fn lap_chain_counts_enters_and_accumulates_wall() {
        let reg = ProfilerRegistry::new();
        let mut shard = reg.shard();
        let t0 = shard.begin();
        assert!(t0.is_some());
        let t = shard.lap(ScopeId::Plan, t0);
        let t = shard.lap(ScopeId::Lab, t);
        assert!(t.is_some());
        shard.end(ScopeId::Probe, t0);
        assert_eq!(shard.enters(ScopeId::Plan), 1);
        assert_eq!(shard.enters(ScopeId::Lab), 1);
        assert_eq!(shard.enters(ScopeId::Probe), 1);
        // The probe scope spans the whole chain, so its wall dominates.
        assert!(
            shard.wall_ns(ScopeId::Probe)
                >= shard.wall_ns(ScopeId::Plan) + shard.wall_ns(ScopeId::Lab)
        );
    }

    #[test]
    fn snapshot_derives_self_time_from_the_children() {
        let reg = ProfilerRegistry::new();
        let mut shard = reg.shard();
        shard.add_wall_ns(ScopeId::Probe, 100);
        shard.add_wall_ns(ScopeId::Lab, 60);
        shard.add_wall_ns(ScopeId::Plan, 10);
        shard.add_wall_ns(ScopeId::LabHandshake, 25);
        shard.add_wall_ns(ScopeId::LabTransfer, 30);
        reg.absorb(&shard);
        let snap = reg.snapshot();
        // probe self = 100 - (plan 10 + lab 60); count-only children of
        // probe contribute no wall.
        assert_eq!(snap.cost(ScopeId::Probe).self_ns, 30);
        assert_eq!(snap.cost(ScopeId::Lab).self_ns, 5);
        assert_eq!(snap.cost(ScopeId::LabHandshake).self_ns, 25);
        // A child summing past its parent saturates instead of wrapping.
        let over = ProfilerRegistry::new();
        let mut s = over.shard();
        s.add_wall_ns(ScopeId::ObserverFold, 10);
        s.add_wall_ns(ScopeId::ObserverSamples, 25);
        over.absorb(&s);
        assert_eq!(over.snapshot().cost(ScopeId::ObserverFold).self_ns, 0);
    }

    #[test]
    fn absorb_order_cannot_change_the_merged_totals() {
        // Satellite guarantee: scope-tree determinism under shard merge.
        // Build k distinct shards and fold them in different orders (and
        // groupings, via shard-level pre-merge); every variant must agree.
        let shards: Vec<ProfilerShard> = (0..5u64)
            .map(|k| {
                let mut s = ProfilerShard {
                    enabled: true,
                    ..ProfilerShard::default()
                };
                for (i, &scope) in ScopeId::ALL.iter().enumerate() {
                    s.enter_n(scope, k * 7 + i as u64);
                    s.add_wall_ns(scope, k * 1_000 + i as u64 * 13);
                    s.add_allocs(scope, k + i as u64);
                    s.add_queue_ops(scope, (k * i as u64) % 9);
                }
                s
            })
            .collect();
        let totals = |reg: &ProfilerRegistry| {
            let snap = reg.snapshot();
            snap.scopes
                .iter()
                .map(|c| (c.enters, c.wall_ns, c.self_ns, c.allocs, c.queue_ops))
                .collect::<Vec<_>>()
        };
        let forward = ProfilerRegistry::new();
        for s in &shards {
            forward.absorb(s);
        }
        let reverse = ProfilerRegistry::new();
        for s in shards.iter().rev() {
            reverse.absorb(s);
        }
        let grouped = ProfilerRegistry::new();
        let mut pre = shards[0].clone();
        for s in &shards[1..3] {
            pre.merge(s);
        }
        grouped.absorb(&pre);
        let mut rest = shards[3].clone();
        rest.merge(&shards[4]);
        grouped.absorb(&rest);
        assert_eq!(totals(&forward), totals(&reverse));
        assert_eq!(totals(&forward), totals(&grouped));
        assert_eq!(
            serde_json::to_string(&forward.snapshot().doc()).unwrap(),
            serde_json::to_string(&grouped.snapshot().doc()).unwrap(),
            "the serialized deterministic doc must match byte for byte"
        );
    }

    #[test]
    fn doc_covers_exactly_the_deterministic_scopes_without_wall_time() {
        let reg = ProfilerRegistry::new();
        let mut shard = reg.shard();
        shard.enter_n(ScopeId::WheelPush, 42);
        shard.add_queue_ops(ScopeId::WheelPush, 42);
        shard.enter(ScopeId::BatchMailbox);
        shard.add_wall_ns(ScopeId::BatchMailbox, 9_999);
        reg.absorb(&shard);
        let doc = reg.snapshot().doc();
        assert_eq!(doc.schema_version, PROFILE_SCHEMA_VERSION);
        assert_eq!(
            doc.scopes.len(),
            ScopeId::ALL.iter().filter(|s| s.deterministic()).count()
        );
        assert!(doc.row("batch_mailbox").is_none());
        let row = doc.row("probe/lab/wheel_push").unwrap();
        assert_eq!((row.enters, row.queue_ops), (42, 42));
        // Zero rows still export: a stable layout keeps diffs aligned.
        assert_eq!(doc.scopes[0].path, "probe");
        let json = serde_json::to_string(&doc).unwrap();
        assert!(
            !json.contains("wall"),
            "profile.json must not carry wall time"
        );
        let back: ProfileDoc = serde_json::from_str(&json).unwrap();
        assert_eq!(back, doc);
    }

    #[test]
    fn collapsed_weights_cover_only_scopes_with_self_time() {
        let reg = ProfilerRegistry::new();
        let mut shard = reg.shard();
        shard.add_wall_ns(ScopeId::Probe, 100);
        shard.add_wall_ns(ScopeId::Lab, 100);
        shard.add_wall_ns(ScopeId::LabHandshake, 40);
        reg.absorb(&shard);
        let lines = reg.snapshot().collapsed();
        // probe self = 0 (lab swallows it) — only lab and its handshake
        // carry weight.
        assert_eq!(lines, vec![("probe/lab", 60), ("probe/lab/handshake", 40)]);
    }

    #[test]
    fn shard_reset_clears_and_keeps_enabled() {
        let reg = ProfilerRegistry::new();
        let mut shard = reg.shard();
        assert!(shard.is_empty());
        shard.enter(ScopeId::Classify);
        shard.add_wall_ns(ScopeId::Classify, 5);
        assert!(!shard.is_empty());
        shard.reset();
        assert!(shard.is_empty());
        assert!(shard.is_enabled());
    }
}
