//! # quicspin-telemetry
//!
//! Lock-free campaign telemetry: the observability substrate for the
//! quicspin measurement pipeline.
//!
//! The paper's campaigns ran weekly over hundreds of millions of domains;
//! results at that scale are only trustworthy when the pipeline itself is
//! continuously inspectable. This crate makes every run emit its own
//! operational record without slowing the hot path down:
//!
//! * [`Counter`] / [`Gauge`] — relaxed-atomic scalars.
//! * [`LatencyHistogram`] — fixed-bucket log-scale histogram (~6% relative
//!   resolution) with mergeable plain-integer [`HistogramShard`]s so
//!   workers never contend.
//! * [`Span`] — RAII stage timer; [`Stage`] names the pipeline phases
//!   (handshake, transfer, spin-extraction, classify, qlog-encode).
//! * [`Registry`] — the shared store workers shard into
//!   ([`Registry::shard`]) and merge back out of ([`Registry::absorb`]).
//!   [`Registry::disabled`] is a no-op mode whose cost is a branch.
//! * [`ProfilerRegistry`] / [`ProfilerShard`] — hierarchical per-probe
//!   cost profiler over a static [`ScopeId`] tree: deterministic counts
//!   export as `profile.json` ([`ProfileDoc`]), wall self-time as
//!   collapsed flamegraph stacks.
//! * [`RunManifest`] — serde-serializable export (config echo, wall time,
//!   counters, per-stage histograms) written as `metrics.json`, plus
//!   [`ProgressSnapshot`] for periodic `probes/sec | eta | errors` lines.
//! * [`TimeSeries`] — bounded ring of [`TimePoint`]s with deterministic
//!   stride-doubling downsampling, persisted as a versioned
//!   `timeseries.json` ([`TimeSeriesDoc`]) next to the manifest.
//!
//! The transport (`quicspin-quic`) and path-simulation (`quicspin-netsim`)
//! crates do not depend on this crate: they expose plain stat structs that
//! the scanner maps into a [`WorkerShard`], keeping the dependency graph a
//! straight line.

pub mod histogram;
pub mod manifest;
pub mod metrics;
pub mod profiler;
pub mod registry;
pub mod span;
pub mod timeseries;

pub use histogram::{bucket_bounds, bucket_index, HistogramShard, LatencyHistogram, BUCKET_COUNT};
pub use manifest::{
    format_duration_ns, ConfigEntry, CounterSnapshot, ProgressSnapshot, RunManifest, StageSnapshot,
    MANIFEST_SCHEMA_VERSION,
};
pub use metrics::{Counter, Gauge, GaugeId, Metric, Stage};
pub use profiler::{
    ProfileDoc, ProfileScopeRow, ProfileSnapshot, ProfilerRegistry, ProfilerShard, ScopeCost,
    ScopeId, ScopeInfo, MAX_SCOPE_DEPTH, PROFILE_SCHEMA_VERSION,
};
pub use registry::{Registry, WorkerShard};
pub use span::Span;
pub use timeseries::{
    SeriesClock, TimePoint, TimeSeries, TimeSeriesDoc, DEFAULT_TIMESERIES_CAPACITY,
    TIMESERIES_SCHEMA_VERSION,
};
