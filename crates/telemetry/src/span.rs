//! RAII stage timers.
//!
//! A [`Span`] samples the monotonic clock on creation and records the
//! elapsed nanoseconds into a [`LatencyHistogram`] when dropped (or when
//! [`Span::finish`] is called explicitly). A disabled span is a no-op that
//! never touches the clock, so `Registry::disabled()` pipelines pay only a
//! branch.
//!
//! Spans target the *registry-side* atomic histograms and suit code that
//! holds a shared registry reference. Hot-path worker code should prefer
//! [`WorkerShard::timer`](crate::WorkerShard::timer) /
//! [`WorkerShard::record_since`](crate::WorkerShard::record_since), which
//! batch into the private shard instead.

use crate::histogram::LatencyHistogram;
use std::time::Instant;

/// An RAII guard timing one pipeline stage.
#[derive(Debug)]
pub struct Span<'a> {
    target: Option<(&'a LatencyHistogram, Instant)>,
}

impl<'a> Span<'a> {
    /// Starts timing into `hist`.
    #[inline]
    pub fn start(hist: &'a LatencyHistogram) -> Span<'a> {
        Span {
            target: Some((hist, Instant::now())),
        }
    }

    /// A span that records nothing and never reads the clock.
    #[inline]
    pub fn noop() -> Span<'static> {
        Span { target: None }
    }

    /// Whether this span will record on drop.
    pub fn is_recording(&self) -> bool {
        self.target.is_some()
    }

    /// Stops the timer now and records; returns the elapsed nanoseconds
    /// (0 for a no-op span).
    pub fn finish(mut self) -> u64 {
        match self.target.take() {
            Some((hist, start)) => {
                let ns = saturating_elapsed_ns(start);
                hist.record(ns);
                ns
            }
            None => 0,
        }
    }
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        if let Some((hist, start)) = self.target.take() {
            hist.record(saturating_elapsed_ns(start));
        }
    }
}

/// Nanoseconds since `start`, saturated to `u64::MAX`.
#[inline]
pub(crate) fn saturating_elapsed_ns(start: Instant) -> u64 {
    u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn span_records_on_drop() {
        let hist = LatencyHistogram::default();
        {
            let _span = Span::start(&hist);
        }
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn finish_records_once_and_returns_elapsed() {
        let hist = LatencyHistogram::default();
        let span = Span::start(&hist);
        std::thread::sleep(std::time::Duration::from_millis(1));
        let ns = span.finish();
        assert!(ns >= 1_000_000, "elapsed {ns}ns < 1ms");
        assert_eq!(hist.count(), 1, "finish must not double-record via drop");
    }

    #[test]
    fn noop_span_records_nothing() {
        let span = Span::noop();
        assert!(!span.is_recording());
        assert_eq!(span.finish(), 0);
    }

    #[test]
    fn nested_spans_drop_inner_first_and_outer_covers_inner() {
        // Lexical nesting drops in reverse creation order: the inner span
        // records first, and the outer span's elapsed time must cover the
        // inner's, since the outer was started earlier and dropped later.
        let outer_hist = LatencyHistogram::default();
        let inner_hist = LatencyHistogram::default();
        {
            let _outer = Span::start(&outer_hist);
            {
                let _inner = Span::start(&inner_hist);
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            assert_eq!(inner_hist.count(), 1, "inner records at its own brace");
            assert_eq!(outer_hist.count(), 0, "outer still running");
        }
        assert_eq!(outer_hist.count(), 1);
        assert!(
            outer_hist.to_shard().max() >= inner_hist.to_shard().max(),
            "outer {} < inner {}",
            outer_hist.to_shard().max(),
            inner_hist.to_shard().max(),
        );
    }

    #[test]
    fn overlapping_spans_on_one_histogram_record_independently() {
        // Two live spans over the same histogram do not interfere: each
        // carries its own start instant, finishing one leaves the other
        // recording, and explicit finish order can invert drop order.
        let hist = LatencyHistogram::default();
        let first = Span::start(&hist);
        let second = Span::start(&hist);
        assert!(first.is_recording() && second.is_recording());
        let first_ns = first.finish();
        assert_eq!(hist.count(), 1, "second span must still be live");
        std::thread::sleep(std::time::Duration::from_millis(1));
        let second_ns = second.finish();
        assert_eq!(hist.count(), 2);
        assert!(
            second_ns >= first_ns,
            "second span ran longer: {second_ns} < {first_ns}"
        );
        assert_eq!(hist.to_shard().max(), hist.to_shard().quantile(1.0));
    }

    #[test]
    fn overlapping_drop_and_finish_never_double_record() {
        // A span consumed by finish() must not record again when its
        // scope unwinds, even with another span dropping around it.
        let hist = LatencyHistogram::default();
        {
            let _dropped = Span::start(&hist);
            let finished = Span::start(&hist);
            assert!(finished.finish() < u64::MAX);
            assert_eq!(hist.count(), 1);
        }
        assert_eq!(hist.count(), 2);
    }
}
