//! Lock-free scalar metrics and the fixed metric namespace.
//!
//! Metrics are enumerated, not string-keyed: a [`Metric`] indexes straight
//! into a flat array, so recording is one relaxed `fetch_add` (registry
//! side) or one plain add (worker-shard side) — no hashing, no interning,
//! no locks anywhere.

use std::sync::atomic::{AtomicU64, Ordering};

/// A monotonically increasing counter (relaxed `AtomicU64`).
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// Creates a counter starting at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Adds one.
    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A last-writer-wins / high-water-mark scalar (relaxed `AtomicU64`).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// Creates a gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Sets the value.
    #[inline]
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Raises the value to `v` if `v` is larger (high-water mark).
    #[inline]
    pub fn record_max(&self, v: u64) {
        self.0.fetch_max(v, Ordering::Relaxed);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

macro_rules! metric_enum {
    ($(#[$doc:meta])* $name:ident { $($(#[$vdoc:meta])* $variant:ident => $str:literal,)+ }) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        #[repr(usize)]
        pub enum $name {
            $($(#[$vdoc])* $variant,)+
        }

        impl $name {
            /// Every variant, in declaration (and index) order.
            pub const ALL: &'static [$name] = &[$($name::$variant,)+];

            /// Number of variants.
            pub const COUNT: usize = $name::ALL.len();

            /// Stable snake_case name used in manifests and summaries.
            pub fn name(self) -> &'static str {
                match self {
                    $($name::$variant => $str,)+
                }
            }
        }
    };
}

metric_enum! {
    /// Every counter the pipeline maintains.
    ///
    /// Scanner-level counters (probes/records/batches) are incremented
    /// directly on the registry — once per domain, cheap enough to stay
    /// live for progress reporting. Per-packet transport and netsim
    /// counters ride worker shards and merge on worker completion.
    Metric {
        /// Domains the scanner began probing.
        ProbesStarted => "probes_started",
        /// Domains the scanner finished (any outcome).
        ProbesCompleted => "probes_completed",
        /// Probes that erred (handshake failure or unreachable host).
        ProbesErrored => "probes_errored",
        /// Connection records produced (redirect hops add extra).
        RecordsProduced => "records_produced",
        /// Redirect hops followed beyond the initial request.
        RedirectsFollowed => "redirects_followed",
        /// Work batches claimed off the shared cursor ("stolen" work).
        BatchesClaimed => "batches_claimed",
        /// Worker threads that ran to completion.
        WorkersFinished => "workers_finished",
        /// Probes that ran with a warm (reused) per-worker scratch.
        ScratchReuseHits => "scratch_reuse_hits",
        /// QUIC handshakes that completed.
        HandshakesCompleted => "handshakes_completed",
        /// QUIC handshakes that failed.
        HandshakesFailed => "handshakes_failed",
        /// QUIC packets sent (both endpoints).
        PacketsSent => "packets_sent",
        /// QUIC packets received and decoded (both endpoints).
        PacketsReceived => "packets_received",
        /// Datagrams dropped as undecodable (was a silent drop).
        PacketsUndecodable => "packets_undecodable",
        /// Duplicate packets ignored by the receive path.
        PacketsDuplicate => "packets_duplicate",
        /// Packets declared lost by loss detection.
        PacketsLost => "packets_lost",
        /// Frames re-queued for retransmission (loss or PTO).
        FramesRetransmitted => "frames_retransmitted",
        /// Probe timeouts fired.
        PtosFired => "ptos_fired",
        /// Spin-bit edges observed by the scanning client.
        SpinTransitionsObserved => "spin_transitions_observed",
        /// Datagrams dropped by the simulated path.
        NetsimDrops => "netsim_drops",
        /// Datagrams held back for reordering by the simulated path.
        NetsimReorders => "netsim_reorders",
        /// Datagrams duplicated by the simulated path.
        NetsimDuplicates => "netsim_duplicates",
        /// Outgoing datagrams built into a recycled pool buffer.
        DatagramPoolHits => "datagram_pool_hits",
        /// Outgoing datagrams that needed a fresh allocation.
        DatagramPoolMisses => "datagram_pool_misses",
        /// Delivered payload buffers reclaimed for reuse (sole handle).
        PayloadReclaimed => "payload_reclaimed",
        /// Delivered payloads still shared (e.g. a tap kept a handle).
        PayloadShared => "payload_shared",
        /// Qlog traces retained on records (`keep_qlogs` campaigns).
        QlogTracesRetained => "qlog_traces_retained",
        /// Bytes produced by compact binary qlog encoding.
        QlogBytesEncoded => "qlog_bytes_encoded",
        /// Qlog traces captured solely for flight-recorder inspection.
        FlightTracesInspected => "flight_traces_inspected",
        /// Anomalies flagged by the campaign flight recorder.
        AnomaliesFlagged => "anomalies_flagged",
        /// Flagged traces retained under the flight retention budget.
        FlightTracesRetained => "flight_traces_retained",
        /// Flagged traces evicted to honour the retention budget.
        FlightTracesEvicted => "flight_traces_evicted",
        /// Bytes of binary-encoded flagged traces retained at fold time.
        FlightTraceBytesRetained => "flight_trace_bytes_retained",
        /// Short-header packets the on-path observer parsed at the tap.
        ObserverPacketsObserved => "observer_packets_observed",
        /// Tap datagrams the observer's privacy boundary refused
        /// (long-header handshake packets and undecodable bytes).
        ObserverUnobservable => "observer_unobservable",
        /// Raw spin edges the observer saw (both directions).
        ObserverEdgesObserved => "observer_edges_observed",
        /// Observer RTT samples accepted by the validity heuristics.
        ObserverSamplesAccepted => "observer_samples_accepted",
        /// Observer samples rejected (reordering or loss-gap heuristics).
        ObserverSamplesRejected => "observer_samples_rejected",
        /// Observed flows that yielded at least one RTT sample.
        ObserverFlowsMeasurable => "observer_flows_measurable",
        /// Observed flows the tap could not measure.
        ObserverFlowsUnmeasurable => "observer_flows_unmeasurable",
    }
}

metric_enum! {
    /// Every gauge the pipeline maintains (merged by maximum).
    GaugeId {
        /// High-water mark of the netsim event-queue depth.
        NetsimQueueHighWater => "netsim_queue_high_water",
        /// Domains in the sweep (set once at campaign start).
        CampaignSize => "campaign_size",
        /// Worker threads the campaign ran with.
        WorkerThreads => "worker_threads",
        /// High-water mark of resident columnar record bytes on the
        /// streamed campaign path (finished batches awaiting merge plus
        /// the batch being folded).
        PeakRecordBytes => "peak_record_bytes",
        /// High-water count of finished record batches queued between the
        /// workers and the in-order merge on the streamed campaign path.
        EventQueueDepth => "event_queue_depth",
        /// Configured high-water byte budget of the streamed campaign
        /// path (0 = unbounded).
        RecordBudgetBytes => "record_budget_bytes",
        /// Tap position of the on-path observer in millionths of the
        /// path (set once at campaign start when a tap is attached).
        ObserverVantageMillionths => "observer_vantage_millionths",
    }
}

metric_enum! {
    /// Named pipeline stages timed by spans (wall clock, nanoseconds).
    Stage {
        /// Whole probe: everything from plan to record.
        Probe => "probe",
        /// QUIC connection establishment (lab wall time until established).
        Handshake => "handshake",
        /// Request/response transfer after the handshake.
        Transfer => "transfer",
        /// §3.3 qlog extraction into packet observations.
        SpinExtraction => "spin_extraction",
        /// Observer-report construction and flow classification.
        Classify => "classify",
        /// Qlog trace retention/encoding on `keep_qlogs` campaigns.
        QlogEncode => "qlog_encode",
        /// On-path observer fold over the probe's tap capture.
        ObserverFold => "observer_fold",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_adds_relaxed() {
        let c = Counter::new();
        c.incr();
        c.add(41);
        assert_eq!(c.get(), 42);
    }

    #[test]
    fn gauge_set_and_high_water() {
        let g = Gauge::new();
        g.set(10);
        g.record_max(5);
        assert_eq!(g.get(), 10);
        g.record_max(99);
        assert_eq!(g.get(), 99);
    }

    #[test]
    fn metric_names_are_unique_and_indexed() {
        use std::collections::HashSet;
        let names: HashSet<&str> = Metric::ALL.iter().map(|m| m.name()).collect();
        assert_eq!(names.len(), Metric::COUNT);
        for (i, m) in Metric::ALL.iter().enumerate() {
            assert_eq!(*m as usize, i);
        }
        assert_eq!(Stage::ALL.len(), Stage::COUNT);
        assert_eq!(GaugeId::ALL.len(), GaugeId::COUNT);
    }

    #[test]
    fn counters_are_safe_across_threads() {
        let c = Counter::new();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..10_000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 40_000);
    }
}
