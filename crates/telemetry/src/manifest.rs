//! Exportable run manifests and progress snapshots.
//!
//! A [`RunManifest`] is the serializable record of one campaign run: a
//! config echo, the wall time, every counter and gauge, and a per-stage
//! latency summary. It is written as `metrics.json` next to the other
//! campaign artifacts and rendered as a human-readable summary table.
//!
//! All fields are integers (nanoseconds, not float seconds) so a manifest
//! round-trips through JSON bit-exactly.

use serde::{Deserialize, Serialize};

/// Version stamp for the manifest schema; bump on breaking field changes.
pub const MANIFEST_SCHEMA_VERSION: u32 = 1;

/// Summary statistics of one stage histogram (all durations nanoseconds).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageSnapshot {
    /// Stage name (see [`crate::Stage`]).
    pub stage: String,
    /// Number of recorded spans.
    pub count: u64,
    /// Total time across all spans.
    pub sum_ns: u64,
    /// Fastest span.
    pub min_ns: u64,
    /// Slowest span.
    pub max_ns: u64,
    /// Arithmetic mean.
    pub mean_ns: u64,
    /// Median (bucket upper bound, ~6% resolution).
    pub p50_ns: u64,
    /// 90th percentile.
    pub p90_ns: u64,
    /// 99th percentile.
    pub p99_ns: u64,
}

/// One named counter value.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct CounterSnapshot {
    /// Stable snake_case metric name.
    pub name: String,
    /// Final value.
    pub value: u64,
}

/// One key/value pair echoing the campaign configuration.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ConfigEntry {
    /// Config field name.
    pub key: String,
    /// Rendered value.
    pub value: String,
}

/// The complete, serializable record of one campaign run.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RunManifest {
    /// Schema version ([`MANIFEST_SCHEMA_VERSION`]).
    pub schema_version: u32,
    /// Echo of the campaign configuration the run used.
    pub config: Vec<ConfigEntry>,
    /// Total wall time of the sweep.
    pub wall_time_ns: u64,
    /// Every counter, in [`crate::Metric`] declaration order.
    pub counters: Vec<CounterSnapshot>,
    /// Every gauge, in [`crate::GaugeId`] declaration order.
    pub gauges: Vec<CounterSnapshot>,
    /// Per-stage latency summaries, in [`crate::Stage`] declaration order.
    pub stages: Vec<StageSnapshot>,
}

impl RunManifest {
    /// Looks up a counter by name; 0 when absent.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .chain(&self.gauges)
            .find(|c| c.name == name)
            .map_or(0, |c| c.value)
    }

    /// Looks up a stage summary by name.
    pub fn stage(&self, name: &str) -> Option<&StageSnapshot> {
        self.stages.iter().find(|s| s.stage == name)
    }

    /// The manifest restricted to entries that are a pure function of
    /// (population, campaign config, id range) — the projection two runs
    /// of the same sweep must agree on byte-for-byte, regardless of
    /// worker count, scheduling, or machine speed.
    ///
    /// Dropped: wall time and every stage summary (wall clock), the
    /// `threads` config echo, and the counters/gauges that reflect
    /// execution shape rather than results (`scratch_reuse_hits` and
    /// `workers_finished` depend on which workers win the claim race;
    /// `worker_threads`, `peak_record_bytes`, `event_queue_depth` and
    /// `record_budget_bytes` describe the machine-side memory envelope).
    /// The byte-identity tests for the streamed campaign path compare
    /// this view, mirroring how the flight-recorder index drops its
    /// `threads` entry.
    pub fn deterministic_view(&self) -> RunManifest {
        const TIMING_COUNTERS: &[&str] = &["scratch_reuse_hits", "workers_finished"];
        const MACHINE_GAUGES: &[&str] = &[
            "worker_threads",
            "peak_record_bytes",
            "event_queue_depth",
            "record_budget_bytes",
        ];
        RunManifest {
            schema_version: self.schema_version,
            config: self
                .config
                .iter()
                .filter(|e| e.key != "threads")
                .cloned()
                .collect(),
            wall_time_ns: 0,
            counters: self
                .counters
                .iter()
                .filter(|c| !TIMING_COUNTERS.contains(&c.name.as_str()))
                .cloned()
                .collect(),
            gauges: self
                .gauges
                .iter()
                .filter(|g| !MACHINE_GAUGES.contains(&g.name.as_str()))
                .cloned()
                .collect(),
            stages: Vec::new(),
        }
    }

    /// Renders the manifest as a fixed-width summary table.
    pub fn summary_table(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "== campaign run manifest (schema v{}) ==\n",
            self.schema_version
        ));
        out.push_str(&format!(
            "wall time: {}\n\n",
            format_duration_ns(self.wall_time_ns)
        ));

        out.push_str("-- stages --\n");
        out.push_str(&format!(
            "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
            "stage", "count", "mean", "p50", "p90", "p99", "max"
        ));
        for s in &self.stages {
            if s.count == 0 {
                continue;
            }
            out.push_str(&format!(
                "{:<16} {:>10} {:>10} {:>10} {:>10} {:>10} {:>10}\n",
                s.stage,
                s.count,
                format_duration_ns(s.mean_ns),
                format_duration_ns(s.p50_ns),
                format_duration_ns(s.p90_ns),
                format_duration_ns(s.p99_ns),
                format_duration_ns(s.max_ns),
            ));
        }

        out.push_str("\n-- counters --\n");
        for c in self.counters.iter().chain(&self.gauges) {
            if c.value == 0 {
                continue;
            }
            out.push_str(&format!("{:<28} {:>14}\n", c.name, c.value));
        }

        if !self.config.is_empty() {
            out.push_str("\n-- config --\n");
            for e in &self.config {
                out.push_str(&format!("{:<28} {}\n", e.key, e.value));
            }
        }
        out
    }
}

/// A point-in-time view of campaign progress, for periodic status lines.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProgressSnapshot {
    /// Domains finished so far.
    pub completed: u64,
    /// Total domains in the sweep.
    pub total: u64,
    /// Probes that erred so far.
    pub errored: u64,
    /// Wall time elapsed since the sweep started, nanoseconds.
    pub elapsed_ns: u64,
}

impl ProgressSnapshot {
    /// Completed probes per second of elapsed wall time.
    pub fn probes_per_sec(&self) -> f64 {
        if self.elapsed_ns == 0 {
            return 0.0;
        }
        self.completed as f64 / (self.elapsed_ns as f64 / 1e9)
    }

    /// Estimated seconds until completion at the current rate.
    pub fn eta_secs(&self) -> f64 {
        let rate = self.probes_per_sec();
        if rate <= 0.0 {
            return f64::INFINITY;
        }
        self.total.saturating_sub(self.completed) as f64 / rate
    }

    /// Fraction of completed probes that erred, in `[0, 1]`.
    pub fn error_rate(&self) -> f64 {
        if self.completed == 0 {
            return 0.0;
        }
        self.errored as f64 / self.completed as f64
    }

    /// Renders one status line, e.g.
    /// `progress 1500/10000 (15.0%) | 3214.7 probes/s | eta 2.6s | errors 1.2%`.
    pub fn render(&self) -> String {
        let pct = if self.total == 0 {
            100.0
        } else {
            100.0 * self.completed as f64 / self.total as f64
        };
        let eta = self.eta_secs();
        let eta = if eta.is_finite() {
            format!("{eta:.1}s")
        } else {
            "?".to_string()
        };
        format!(
            "progress {}/{} ({:.1}%) | {:.1} probes/s | eta {} | errors {:.1}%",
            self.completed,
            self.total,
            pct,
            self.probes_per_sec(),
            eta,
            100.0 * self.error_rate(),
        )
    }
}

/// Formats a nanosecond duration with an adaptive unit (`ns`/`µs`/`ms`/`s`).
pub fn format_duration_ns(ns: u64) -> String {
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.1}µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.1}ms", ns as f64 / 1e6)
    } else {
        format!("{:.2}s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_manifest() -> RunManifest {
        RunManifest {
            schema_version: MANIFEST_SCHEMA_VERSION,
            config: vec![ConfigEntry {
                key: "threads".into(),
                value: "4".into(),
            }],
            wall_time_ns: 2_500_000_000,
            counters: vec![
                CounterSnapshot {
                    name: "probes_completed".into(),
                    value: 100,
                },
                CounterSnapshot {
                    name: "probes_errored".into(),
                    value: 3,
                },
            ],
            gauges: vec![CounterSnapshot {
                name: "worker_threads".into(),
                value: 4,
            }],
            stages: vec![StageSnapshot {
                stage: "handshake".into(),
                count: 100,
                sum_ns: 5_000_000,
                min_ns: 20_000,
                max_ns: 90_000,
                mean_ns: 50_000,
                p50_ns: 48_000,
                p90_ns: 80_000,
                p99_ns: 89_000,
            }],
        }
    }

    #[test]
    fn manifest_roundtrips_through_json() {
        let m = sample_manifest();
        let json = serde_json::to_string(&m).unwrap();
        let back: RunManifest = serde_json::from_str(&json).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn counter_and_stage_lookup() {
        let m = sample_manifest();
        assert_eq!(m.counter("probes_completed"), 100);
        assert_eq!(m.counter("worker_threads"), 4);
        assert_eq!(m.counter("nope"), 0);
        assert_eq!(m.stage("handshake").unwrap().count, 100);
        assert!(m.stage("nope").is_none());
    }

    #[test]
    fn summary_table_contains_key_rows() {
        let table = sample_manifest().summary_table();
        assert!(table.contains("handshake"));
        assert!(table.contains("probes_completed"));
        assert!(table.contains("threads"));
        assert!(table.contains("2.50s"));
    }

    #[test]
    fn deterministic_view_drops_wall_clock_and_machine_shape() {
        let mut m = sample_manifest();
        m.counters.push(CounterSnapshot {
            name: "scratch_reuse_hits".into(),
            value: 96,
        });
        m.gauges.push(CounterSnapshot {
            name: "peak_record_bytes".into(),
            value: 1 << 20,
        });
        m.gauges.push(CounterSnapshot {
            name: "netsim_queue_high_water".into(),
            value: 12,
        });
        let view = m.deterministic_view();
        assert_eq!(view.wall_time_ns, 0);
        assert!(view.stages.is_empty());
        assert!(view.config.iter().all(|e| e.key != "threads"));
        assert_eq!(view.counter("probes_completed"), 100);
        assert_eq!(view.counter("scratch_reuse_hits"), 0);
        assert_eq!(view.counter("worker_threads"), 0);
        assert_eq!(view.counter("peak_record_bytes"), 0);
        // Virtual-clock gauges are results, not machine shape: kept.
        assert_eq!(view.counter("netsim_queue_high_water"), 12);
        // The view is itself a valid manifest and stable under repetition.
        assert_eq!(
            serde_json::to_string(&view).unwrap(),
            serde_json::to_string(&m.deterministic_view()).unwrap()
        );
    }

    #[test]
    fn progress_rates_and_render() {
        let p = ProgressSnapshot {
            completed: 500,
            total: 1_000,
            errored: 5,
            elapsed_ns: 1_000_000_000,
        };
        assert!((p.probes_per_sec() - 500.0).abs() < 1e-9);
        assert!((p.eta_secs() - 1.0).abs() < 1e-9);
        assert!((p.error_rate() - 0.01).abs() < 1e-12);
        let line = p.render();
        assert!(line.contains("500/1000"));
        assert!(line.contains("50.0%"));
        assert!(line.contains("eta 1.0s"));

        let empty = ProgressSnapshot {
            completed: 0,
            total: 10,
            errored: 0,
            elapsed_ns: 0,
        };
        assert_eq!(empty.probes_per_sec(), 0.0);
        assert!(empty.eta_secs().is_infinite());
        assert!(empty.render().contains("eta ?"));
    }

    #[test]
    fn eta_with_zero_completed_probes_is_infinite_not_nan() {
        // Time has passed but nothing finished: the rate is exactly 0, and
        // the ETA must degrade to "unknown" (infinity), never NaN or a
        // division panic.
        let stalled = ProgressSnapshot {
            completed: 0,
            total: 1_000,
            errored: 0,
            elapsed_ns: 5_000_000_000,
        };
        assert_eq!(stalled.probes_per_sec(), 0.0);
        assert!(stalled.eta_secs().is_infinite());
        assert!(!stalled.eta_secs().is_nan());
        assert_eq!(stalled.error_rate(), 0.0);
        let line = stalled.render();
        assert!(line.contains("eta ?"), "line: {line}");
        assert!(line.contains("0/1000"));
    }

    #[test]
    fn all_errored_batch_reports_full_error_rate_and_finite_eta() {
        // Every completed probe erred: errors still count as completions,
        // so the rate (and therefore the ETA) stays finite while the error
        // rate pegs at exactly 100%.
        let p = ProgressSnapshot {
            completed: 250,
            total: 500,
            errored: 250,
            elapsed_ns: 1_000_000_000,
        };
        assert!((p.error_rate() - 1.0).abs() < 1e-12);
        assert!((p.probes_per_sec() - 250.0).abs() < 1e-9);
        assert!((p.eta_secs() - 1.0).abs() < 1e-9);
        assert!(p.render().contains("errors 100.0%"));
    }

    #[test]
    fn eta_shrinks_monotonically_as_completions_advance() {
        // At a fixed rate, later snapshots (more completed, proportional
        // elapsed) must never report a larger ETA — the invariant the
        // monitor thread's tick ordering relies on.
        let mut last_eta = f64::INFINITY;
        for ticks in 1..=10u64 {
            let snap = ProgressSnapshot {
                completed: ticks * 100,
                total: 1_000,
                errored: ticks,
                elapsed_ns: ticks * 500_000_000,
            };
            let eta = snap.eta_secs();
            assert!(
                eta <= last_eta + 1e-9,
                "eta regressed at tick {ticks}: {eta} > {last_eta}"
            );
            last_eta = eta;
        }
        assert!((last_eta - 0.0).abs() < 1e-9, "final eta {last_eta}");
    }

    #[test]
    fn completed_overshoot_saturates_instead_of_negative_eta() {
        // Redirect hops can make completed exceed total transiently; the
        // ETA must clamp at zero rather than go negative.
        let p = ProgressSnapshot {
            completed: 1_200,
            total: 1_000,
            errored: 0,
            elapsed_ns: 1_000_000_000,
        };
        assert_eq!(p.eta_secs(), 0.0);
    }

    #[test]
    fn duration_formatting_picks_units() {
        assert_eq!(format_duration_ns(17), "17ns");
        assert_eq!(format_duration_ns(1_500), "1.5µs");
        assert_eq!(format_duration_ns(2_500_000), "2.5ms");
        assert_eq!(format_duration_ns(3_210_000_000), "3.21s");
    }
}
