//! Tables 1 and 4: deployment overview per target list.

use crate::dataset::{CampaignSummary, DomainClass};
use quicspin_scanner::Campaign;
use quicspin_webpop::ListKind;
use serde::{Deserialize, Serialize};

/// One row group (Toplists / CZDS / com-net-org) of Table 1 or 4.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverviewRow {
    /// Total domains targeted.
    pub total_domains: u64,
    /// Domains that resolved.
    pub resolved_domains: u64,
    /// Domains with ≥ 1 established QUIC connection.
    pub quic_domains: u64,
    /// QUIC domains with spin activity.
    pub spin_domains: u64,
    /// Distinct hosts (IPs) serving QUIC domains.
    pub quic_ips: u64,
    /// Hosts with spin activity on ≥ 1 connection.
    pub spin_ips: u64,
}

impl OverviewRow {
    /// Spin share among QUIC domains (the paper's "Spin" percentage).
    pub fn spin_domain_pct(&self) -> f64 {
        percentage(self.spin_domains, self.quic_domains)
    }

    /// Spin share among QUIC hosts.
    pub fn spin_ip_pct(&self) -> f64 {
        percentage(self.spin_ips, self.quic_ips)
    }

    /// QUIC share among resolved domains.
    pub fn quic_pct_of_resolved(&self) -> f64 {
        percentage(self.quic_domains, self.resolved_domains)
    }

    /// Resolution rate.
    pub fn resolved_pct(&self) -> f64 {
        percentage(self.resolved_domains, self.total_domains)
    }

    /// Average domains per IP (the pooling ratio discussed in §4.1).
    pub fn domains_per_ip(&self) -> f64 {
        if self.quic_ips == 0 {
            0.0
        } else {
            self.quic_domains as f64 / self.quic_ips as f64
        }
    }
}

fn percentage(part: u64, whole: u64) -> f64 {
    if whole == 0 {
        0.0
    } else {
        part as f64 / whole as f64 * 100.0
    }
}

/// Table 1 (IPv4) / Table 4 (IPv6), depending on the campaign fed in.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OverviewTable {
    /// Toplist row.
    pub toplists: OverviewRow,
    /// All-CZDS row.
    pub czds: OverviewRow,
    /// com/net/org row.
    pub com_net_org: OverviewRow,
}

impl OverviewTable {
    /// Computes the table from one campaign.
    pub fn from_campaign(campaign: &Campaign) -> Self {
        Self::from_summary(&CampaignSummary::build(campaign))
    }

    /// Computes the table from a prebuilt (possibly shard-merged)
    /// summary.
    pub fn from_summary(summary: &CampaignSummary) -> Self {
        OverviewTable {
            toplists: Self::row(summary, |l| l == ListKind::Toplist),
            czds: Self::row(summary, ListKind::is_czds),
            com_net_org: Self::row(summary, |l| l == ListKind::ZoneComNetOrg),
        }
    }

    fn row(summary: &CampaignSummary, filter: impl Fn(ListKind) -> bool + Copy) -> OverviewRow {
        let mut row = OverviewRow {
            total_domains: 0,
            resolved_domains: 0,
            quic_domains: 0,
            spin_domains: 0,
            quic_ips: 0,
            spin_ips: 0,
        };
        for d in summary.domains_in(filter) {
            row.total_domains += 1;
            if d.resolved {
                row.resolved_domains += 1;
            }
            if d.quic {
                row.quic_domains += 1;
            }
            if d.class == DomainClass::Spin {
                row.spin_domains += 1;
            }
        }
        let hosts = summary.hosts_in(filter);
        row.quic_ips = hosts.len() as u64;
        row.spin_ips = hosts.values().filter(|&&spin| spin).count() as u64;
        row
    }

    /// The row for a named selection.
    pub fn rows(&self) -> [(&'static str, &OverviewRow); 3] {
        [
            ("Toplists", &self.toplists),
            ("CZDS", &self.czds),
            ("com/net/org", &self.com_net_org),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_scanner::{CampaignConfig, NetworkConditions, Scanner};
    use quicspin_webpop::{Population, PopulationConfig};

    fn scan(seed: u64, toplist: u32, zone: u32) -> OverviewTable {
        let pop = Population::generate(PopulationConfig {
            seed,
            toplist_domains: toplist,
            zone_domains: zone,
        });
        let campaign = Scanner::new(&pop).run_campaign(&CampaignConfig {
            conditions: NetworkConditions::clean(),
            ..CampaignConfig::default()
        });
        OverviewTable::from_campaign(&campaign)
    }

    #[test]
    fn totals_match_population() {
        let table = scan(3, 300, 2_000);
        assert_eq!(table.toplists.total_domains, 300);
        assert_eq!(
            table.czds.total_domains, 2_000,
            "CZDS row covers all zone domains"
        );
        assert!(table.com_net_org.total_domains < table.czds.total_domains);
        assert!(table.com_net_org.total_domains > 1_000, "~84.5% of zones");
    }

    #[test]
    fn monotone_funnel() {
        let table = scan(4, 500, 3_000);
        for (_, row) in table.rows() {
            assert!(row.resolved_domains <= row.total_domains);
            assert!(row.quic_domains <= row.resolved_domains);
            assert!(row.spin_domains <= row.quic_domains);
            assert!(row.spin_ips <= row.quic_ips);
        }
    }

    #[test]
    fn percentages_bounded() {
        let table = scan(5, 300, 2_000);
        for (_, row) in table.rows() {
            for pct in [
                row.spin_domain_pct(),
                row.spin_ip_pct(),
                row.quic_pct_of_resolved(),
                row.resolved_pct(),
            ] {
                assert!((0.0..=100.0).contains(&pct), "{pct}");
            }
        }
    }

    #[test]
    fn empty_row_percentages_are_zero() {
        let row = OverviewRow {
            total_domains: 0,
            resolved_domains: 0,
            quic_domains: 0,
            spin_domains: 0,
            quic_ips: 0,
            spin_ips: 0,
        };
        assert_eq!(row.spin_domain_pct(), 0.0);
        assert_eq!(row.domains_per_ip(), 0.0);
    }

    #[test]
    fn zone_domains_pool_more_than_toplists() {
        let table = scan(6, 2_000, 30_000);
        let zone_pool = table.czds.domains_per_ip();
        let top_pool = table.toplists.domains_per_ip();
        assert!(
            zone_pool > top_pool,
            "zones pool harder: zone {zone_pool:.1} vs toplist {top_pool:.1}"
        );
    }

    #[test]
    fn spin_ip_share_exceeds_spin_domain_share_for_zones() {
        // The paper's key §4.1 observation: ~10 % of CZDS domains spin but
        // ~50 % of the IPs serving them do.
        let table = scan(7, 0, 60_000);
        assert!(
            table.czds.spin_ip_pct() > 2.0 * table.czds.spin_domain_pct(),
            "IP spin share {:.1}% must far exceed domain share {:.1}%",
            table.czds.spin_ip_pct(),
            table.czds.spin_domain_pct()
        );
    }
}
