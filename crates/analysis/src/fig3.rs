//! Fig. 3: histogram of the absolute difference between the per-connection
//! means of the spin-bit and QUIC-stack RTT estimates.

use crate::histogram::Histogram;
use quicspin_core::FlowClassification;
use quicspin_scanner::ConnectionRecord;
use serde::{Deserialize, Serialize};

/// The paper's Fig. 3 bin edges in milliseconds.
pub fn fig3_edges() -> Vec<f64> {
    vec![-200.0, -100.0, -50.0, -25.0, 0.0, 25.0, 50.0, 100.0, 200.0]
}

/// One series of Fig. 3 (e.g. Spin in received order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AccuracySeries {
    /// The histogram of mean differences (ms).
    pub histogram: Histogram,
    /// Number of connections contributing.
    pub connections: u64,
    /// Share of connections overestimating (diff > 0).
    pub overestimate_share: f64,
    /// Share with |diff| ≤ 25 ms.
    pub within_25ms_share: f64,
    /// Share overestimating by more than 200 ms.
    pub over_200ms_share: f64,
}

impl AccuracySeries {
    /// Builds a series from per-connection mean differences (ms). The
    /// diff order must match the record order for byte-identical results
    /// across serial and sharded builds.
    pub fn from_diffs(diffs: &[f64]) -> Self {
        let mut histogram = Histogram::new(fig3_edges());
        let mut over = 0u64;
        let mut within = 0u64;
        let mut big = 0u64;
        for &d in diffs {
            histogram.add(d);
            if d > 0.0 {
                over += 1;
            }
            if d.abs() <= 25.0 {
                within += 1;
            }
            if d > 200.0 {
                big += 1;
            }
        }
        let n = diffs.len().max(1) as f64;
        AccuracySeries {
            histogram,
            connections: diffs.len() as u64,
            overestimate_share: over as f64 / n,
            within_25ms_share: within as f64 / n,
            over_200ms_share: big as f64 / n,
        }
    }
}

/// Fig. 3: all four series (Spin/Grease × received/sorted order).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AbsoluteAccuracyFigure {
    /// Spinning connections, received order (R).
    pub spin_received: AccuracySeries,
    /// Spinning connections, sorted by packet number (S).
    pub spin_sorted: AccuracySeries,
    /// Grease-filtered connections, received order.
    pub grease_received: AccuracySeries,
    /// Grease-filtered connections, sorted order.
    pub grease_sorted: AccuracySeries,
}

/// Extracts `(received_diff_ms, sorted_diff_ms)` per qualifying record.
pub fn diffs_for<'a>(
    records: impl Iterator<Item = &'a ConnectionRecord>,
    class: FlowClassification,
) -> (Vec<f64>, Vec<f64>) {
    let mut received = Vec::new();
    let mut sorted = Vec::new();
    for r in records {
        let Some(report) = &r.report else { continue };
        if report.classification != class {
            continue;
        }
        if let Some(acc) = report.accuracy_received() {
            received.push(acc.abs_diff_ms());
        }
        if let Some(acc) = report.accuracy_sorted() {
            sorted.push(acc.abs_diff_ms());
        }
    }
    (received, sorted)
}

impl AbsoluteAccuracyFigure {
    /// Computes Fig. 3 from established connection records.
    pub fn from_records<'a>(records: impl Iterator<Item = &'a ConnectionRecord> + Clone) -> Self {
        let (spin_r, spin_s) = diffs_for(records.clone(), FlowClassification::Spinning);
        let (grease_r, grease_s) = diffs_for(records, FlowClassification::Greased);
        AbsoluteAccuracyFigure {
            spin_received: AccuracySeries::from_diffs(&spin_r),
            spin_sorted: AccuracySeries::from_diffs(&spin_s),
            grease_received: AccuracySeries::from_diffs(&grease_r),
            grease_sorted: AccuracySeries::from_diffs(&grease_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_core::ObserverReport;
    use quicspin_scanner::ScanOutcome;
    use quicspin_webpop::{IpVersion, ListKind, Org};

    fn record(class: FlowClassification, spin_us: u64, stack_us: u64) -> ConnectionRecord {
        let mut r = ConnectionRecord::failed(
            0,
            ListKind::ZoneComNetOrg,
            Org::Hostinger,
            0,
            IpVersion::V4,
            ScanOutcome::Ok,
        );
        r.report = Some(ObserverReport {
            classification: class,
            packets: 10,
            spin_samples_received_us: vec![spin_us],
            spin_samples_sorted_us: vec![spin_us],
            stack_samples_us: vec![stack_us],
        });
        r
    }

    #[test]
    fn spin_series_counts_diffs() {
        let records = [
            record(FlowClassification::Spinning, 50_000, 40_000), // +10 ms
            record(FlowClassification::Spinning, 300_000, 40_000), // +260 ms
            record(FlowClassification::Spinning, 30_000, 40_000), // -10 ms
            record(FlowClassification::Greased, 1_000, 40_000),   // grease
            record(FlowClassification::AllZero, 0, 40_000),       // excluded
        ];
        let fig = AbsoluteAccuracyFigure::from_records(records.iter());
        assert_eq!(fig.spin_received.connections, 3);
        assert_eq!(fig.grease_received.connections, 1);
        assert!((fig.spin_received.overestimate_share - 2.0 / 3.0).abs() < 1e-12);
        assert!((fig.spin_received.within_25ms_share - 2.0 / 3.0).abs() < 1e-12);
        assert!((fig.spin_received.over_200ms_share - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn all_zero_records_do_not_contribute() {
        let records = [record(FlowClassification::AllZero, 0, 40_000)];
        let fig = AbsoluteAccuracyFigure::from_records(records.iter());
        assert_eq!(fig.spin_received.connections, 0);
        assert_eq!(fig.grease_received.connections, 0);
    }

    #[test]
    fn histogram_covers_all_contributions() {
        let records: Vec<_> = (0..20)
            .map(|i| record(FlowClassification::Spinning, 40_000 + i * 20_000, 40_000))
            .collect();
        let fig = AbsoluteAccuracyFigure::from_records(records.iter());
        assert_eq!(fig.spin_received.histogram.total(), 20);
        let shares: f64 = fig.spin_received.histogram.shares().iter().sum();
        assert!((shares - 1.0).abs() < 1e-12);
    }

    #[test]
    fn edges_match_paper_bins() {
        let edges = fig3_edges();
        assert!(edges.contains(&25.0) && edges.contains(&-25.0));
        assert!(edges.contains(&200.0));
        assert!(edges.windows(2).all(|w| w[0] < w[1]));
    }
}
