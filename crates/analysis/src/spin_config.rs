//! Table 3: how QUIC domains set the spin bit (all-zero / all-one /
//! spinning / greased).

use crate::dataset::{CampaignSummary, DomainClass};
use quicspin_scanner::Campaign;
use quicspin_webpop::ListKind;
use serde::{Deserialize, Serialize};

/// One Table 3 row.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpinConfigRow {
    /// QUIC domains observed.
    pub quic_domains: u64,
    /// Domains whose packets were all zero.
    pub all_zero: u64,
    /// Domains whose packets were all one.
    pub all_one: u64,
    /// Domains with genuine spin activity (post grease filter).
    pub spin: u64,
    /// Domains caught by the grease filter.
    pub grease: u64,
}

impl SpinConfigRow {
    fn pct(&self, part: u64) -> f64 {
        if self.quic_domains == 0 {
            0.0
        } else {
            part as f64 / self.quic_domains as f64 * 100.0
        }
    }

    /// Share of QUIC domains sending all-zero.
    pub fn all_zero_pct(&self) -> f64 {
        self.pct(self.all_zero)
    }

    /// Share sending all-one.
    pub fn all_one_pct(&self) -> f64 {
        self.pct(self.all_one)
    }

    /// Share spinning.
    pub fn spin_pct(&self) -> f64 {
        self.pct(self.spin)
    }

    /// Share filtered as greased.
    pub fn grease_pct(&self) -> f64 {
        self.pct(self.grease)
    }
}

/// Table 3.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SpinConfigTable {
    /// Toplists row.
    pub toplists: SpinConfigRow,
    /// CZDS row.
    pub czds: SpinConfigRow,
    /// com/net/org row.
    pub com_net_org: SpinConfigRow,
}

impl SpinConfigTable {
    /// Computes the table from one campaign.
    pub fn from_campaign(campaign: &Campaign) -> Self {
        Self::from_summary(&CampaignSummary::build(campaign))
    }

    /// Computes the table from a prebuilt (possibly shard-merged)
    /// summary.
    pub fn from_summary(summary: &CampaignSummary) -> Self {
        SpinConfigTable {
            toplists: Self::row(summary, |l| l == ListKind::Toplist),
            czds: Self::row(summary, ListKind::is_czds),
            com_net_org: Self::row(summary, |l| l == ListKind::ZoneComNetOrg),
        }
    }

    fn row(summary: &CampaignSummary, filter: impl Fn(ListKind) -> bool + Copy) -> SpinConfigRow {
        let mut row = SpinConfigRow {
            quic_domains: 0,
            all_zero: 0,
            all_one: 0,
            spin: 0,
            grease: 0,
        };
        for d in summary.domains_in(filter) {
            match d.class {
                DomainClass::NoQuic => {}
                DomainClass::AllZero => {
                    row.quic_domains += 1;
                    row.all_zero += 1;
                }
                DomainClass::AllOne => {
                    row.quic_domains += 1;
                    row.all_one += 1;
                }
                DomainClass::Spin => {
                    row.quic_domains += 1;
                    row.spin += 1;
                }
                DomainClass::Grease => {
                    row.quic_domains += 1;
                    row.grease += 1;
                }
            }
        }
        row
    }

    /// Named rows.
    pub fn rows(&self) -> [(&'static str, &SpinConfigRow); 3] {
        [
            ("Toplists", &self.toplists),
            ("CZDS", &self.czds),
            ("com/net/org", &self.com_net_org),
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_scanner::{CampaignConfig, NetworkConditions, Scanner};
    use quicspin_webpop::{Population, PopulationConfig};

    fn table(zone_domains: u32, seed: u64) -> SpinConfigTable {
        let pop = Population::generate(PopulationConfig {
            seed,
            toplist_domains: 500,
            zone_domains,
        });
        let campaign = Scanner::new(&pop).run_campaign(&CampaignConfig {
            conditions: NetworkConditions::clean(),
            ..CampaignConfig::default()
        });
        SpinConfigTable::from_campaign(&campaign)
    }

    #[test]
    fn categories_partition_quic_domains() {
        let t = table(20_000, 1);
        for (_, row) in t.rows() {
            assert_eq!(
                row.all_zero + row.all_one + row.spin + row.grease,
                row.quic_domains,
                "categories must partition"
            );
        }
    }

    #[test]
    fn all_zero_dominates_disabled_domains() {
        // Paper: "most domains that do not use the spin bit use a value of
        // zero while only few exclusively send a value of one".
        let t = table(60_000, 2);
        let row = &t.czds;
        assert!(
            row.all_zero > 20 * row.all_one.max(1),
            "all-zero {} ≫ all-one {}",
            row.all_zero,
            row.all_one
        );
    }

    #[test]
    fn grease_filter_catches_few() {
        let t = table(60_000, 3);
        let row = &t.czds;
        assert!(
            row.grease_pct() < 2.0,
            "grease share small: {:.2}%",
            row.grease_pct()
        );
    }

    #[test]
    fn zone_spin_share_near_paper() {
        let t = table(60_000, 4);
        let pct = t.czds.spin_pct();
        assert!(
            (5.0..=18.0).contains(&pct),
            "CZDS spin share ≈10%: {pct:.1}%"
        );
    }

    #[test]
    fn percentages_consistent() {
        let t = table(20_000, 5);
        let row = &t.com_net_org;
        let sum = row.all_zero_pct() + row.all_one_pct() + row.spin_pct() + row.grease_pct();
        if row.quic_domains > 0 {
            assert!((sum - 100.0).abs() < 1e-9, "{sum}");
        }
    }
}
