//! §4.2's web-server attribution: which server software carries the spin
//! bit support (the paper: LiteSpeed > 80 %, imunify360-webshield ~7 %).

use quicspin_scanner::{Campaign, ConnectionRecord, ScanOutcome};
use quicspin_webpop::WebServer;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Connection shares per web-server software.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WebServerShares {
    /// All established connections per software.
    pub all: BTreeMap<String, u64>,
    /// Spinning connections per software.
    pub spinning: BTreeMap<String, u64>,
}

impl WebServerShares {
    /// Computes the shares from one campaign.
    pub fn from_campaign(campaign: &Campaign) -> Self {
        let mut all: BTreeMap<String, u64> = BTreeMap::new();
        let mut spinning: BTreeMap<String, u64> = BTreeMap::new();
        Self::count_into(&campaign.records, &mut all, &mut spinning);
        WebServerShares { all, spinning }
    }

    /// Accumulates per-server counts over a record slice. Counts from
    /// disjoint shards merge by per-key addition.
    pub fn count_into(
        records: &[ConnectionRecord],
        all: &mut BTreeMap<String, u64>,
        spinning: &mut BTreeMap<String, u64>,
    ) {
        for r in records {
            if r.outcome != ScanOutcome::Ok {
                continue;
            }
            let Some(ws) = r.webserver else { continue };
            let name = label(ws).to_string();
            *all.entry(name.clone()).or_default() += 1;
            if r.has_spin_activity() {
                *spinning.entry(name).or_default() += 1;
            }
        }
    }

    /// Share of spinning connections served by `server`.
    pub fn spin_share(&self, server: WebServer) -> f64 {
        let total: u64 = self.spinning.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.spinning.get(label(server)).unwrap_or(&0) as f64 / total as f64
    }

    /// Share of all established connections served by `server`.
    pub fn overall_share(&self, server: WebServer) -> f64 {
        let total: u64 = self.all.values().sum();
        if total == 0 {
            return 0.0;
        }
        *self.all.get(label(server)).unwrap_or(&0) as f64 / total as f64
    }
}

fn label(ws: WebServer) -> &'static str {
    match ws {
        WebServer::LiteSpeed => "LiteSpeed",
        WebServer::Imunify360 => "imunify360-webshield",
        WebServer::CloudflareFrontend => "cloudflare",
        WebServer::GoogleFrontend => "gws",
        WebServer::NginxQuic => "nginx",
        WebServer::Caddy => "Caddy",
        WebServer::OtherServer => "other",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_scanner::{CampaignConfig, NetworkConditions, Scanner};
    use quicspin_webpop::{IpVersion, Population, PopulationConfig};

    fn shares(zone_domains: u32, seed: u64) -> WebServerShares {
        let pop = Population::generate(PopulationConfig {
            seed,
            toplist_domains: 0,
            zone_domains,
        });
        let campaign = Scanner::new(&pop).run_campaign(&CampaignConfig {
            conditions: NetworkConditions::clean(),
            ..CampaignConfig::default()
        });
        WebServerShares::from_campaign(&campaign)
    }

    #[test]
    fn litespeed_dominates_spinning_connections() {
        let s = shares(60_000, 1);
        let litespeed = s.spin_share(WebServer::LiteSpeed);
        assert!(
            litespeed > 0.5,
            "LiteSpeed carries the bulk of spin support: {litespeed:.2}"
        );
        let imunify = s.spin_share(WebServer::Imunify360);
        assert!(imunify > 0.0, "imunify360 present: {imunify:.3}");
        assert!(litespeed > imunify);
    }

    #[test]
    fn frontends_never_spin() {
        let s = shares(60_000, 2);
        assert_eq!(s.spin_share(WebServer::CloudflareFrontend), 0.0);
        assert_eq!(s.spin_share(WebServer::GoogleFrontend), 0.0);
    }

    #[test]
    fn overall_shares_sum_to_one() {
        let s = shares(20_000, 3);
        let servers = [
            WebServer::LiteSpeed,
            WebServer::Imunify360,
            WebServer::CloudflareFrontend,
            WebServer::GoogleFrontend,
            WebServer::NginxQuic,
            WebServer::Caddy,
            WebServer::OtherServer,
        ];
        let total: f64 = servers.iter().map(|&w| s.overall_share(w)).sum();
        assert!((total - 1.0).abs() < 1e-9, "{total}");
    }

    #[test]
    fn empty_campaign_yields_zero_shares() {
        let campaign = quicspin_scanner::Campaign {
            week: 0,
            version: IpVersion::V4,
            records: vec![],
        };
        let s = WebServerShares::from_campaign(&campaign);
        assert_eq!(s.spin_share(WebServer::LiteSpeed), 0.0);
        assert_eq!(s.overall_share(WebServer::LiteSpeed), 0.0);
    }
}
