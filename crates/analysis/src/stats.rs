//! Descriptive statistics used across the analysis modules: means,
//! medians, percentiles, standard deviation — computed once, tested once.

use serde::{Deserialize, Serialize};

/// Summary statistics of a sample set.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// Population standard deviation.
    pub std_dev: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// 5th percentile.
    pub p05: f64,
    /// 95th percentile.
    pub p95: f64,
}

/// Percentile by linear interpolation between closest ranks; `q` in 0..=1.
pub fn percentile(sorted: &[f64], q: f64) -> f64 {
    assert!(!sorted.is_empty(), "percentile of empty sample");
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1]");
    if sorted.len() == 1 {
        return sorted[0];
    }
    let rank = q * (sorted.len() - 1) as f64;
    let low = rank.floor() as usize;
    let high = rank.ceil() as usize;
    let frac = rank - low as f64;
    sorted[low] * (1.0 - frac) + sorted[high] * frac
}

impl Summary {
    /// Computes the summary; returns `None` for empty input.
    pub fn of(samples: &[f64]) -> Option<Summary> {
        if samples.is_empty() {
            return None;
        }
        let mut sorted: Vec<f64> = samples.to_vec();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN in samples"));
        let count = sorted.len();
        let mean = sorted.iter().sum::<f64>() / count as f64;
        let variance = sorted.iter().map(|v| (v - mean).powi(2)).sum::<f64>() / count as f64;
        Some(Summary {
            count,
            mean,
            median: percentile(&sorted, 0.5),
            std_dev: variance.sqrt(),
            min: sorted[0],
            max: sorted[count - 1],
            p05: percentile(&sorted, 0.05),
            p95: percentile(&sorted, 0.95),
        })
    }

    /// Summary of microsecond samples, reported in milliseconds.
    pub fn of_us_as_ms(samples_us: &[u64]) -> Option<Summary> {
        let ms: Vec<f64> = samples_us.iter().map(|&v| v as f64 / 1000.0).collect();
        Summary::of(&ms)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn summary_of_known_sample() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(s.count, 5);
        assert_eq!(s.mean, 3.0);
        assert_eq!(s.median, 3.0);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 5.0);
        assert!((s.std_dev - 2.0f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn summary_is_order_independent() {
        let a = Summary::of(&[5.0, 1.0, 3.0, 2.0, 4.0]).unwrap();
        let b = Summary::of(&[1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        assert_eq!(a, b);
    }

    #[test]
    fn empty_yields_none() {
        assert!(Summary::of(&[]).is_none());
        assert!(Summary::of_us_as_ms(&[]).is_none());
    }

    #[test]
    fn single_sample() {
        let s = Summary::of(&[7.0]).unwrap();
        assert_eq!(s.median, 7.0);
        assert_eq!(s.p05, 7.0);
        assert_eq!(s.p95, 7.0);
        assert_eq!(s.std_dev, 0.0);
    }

    #[test]
    fn percentile_interpolates() {
        let sorted = [0.0, 10.0];
        assert_eq!(percentile(&sorted, 0.0), 0.0);
        assert_eq!(percentile(&sorted, 0.5), 5.0);
        assert_eq!(percentile(&sorted, 1.0), 10.0);
        assert_eq!(percentile(&sorted, 0.25), 2.5);
    }

    #[test]
    fn even_count_median_averages() {
        let s = Summary::of(&[1.0, 2.0, 3.0, 4.0]).unwrap();
        assert_eq!(s.median, 2.5);
    }

    #[test]
    fn microseconds_to_milliseconds() {
        let s = Summary::of_us_as_ms(&[40_000, 60_000]).unwrap();
        assert_eq!(s.mean, 50.0);
        assert_eq!(s.min, 40.0);
        assert_eq!(s.max, 60.0);
    }

    #[test]
    #[should_panic(expected = "quantile")]
    fn percentile_rejects_out_of_range() {
        percentile(&[1.0], 1.5);
    }

    proptest::proptest! {
        #[test]
        fn prop_invariants(samples in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
            let s = Summary::of(&samples).unwrap();
            proptest::prop_assert!(s.min <= s.p05);
            proptest::prop_assert!(s.p05 <= s.median);
            proptest::prop_assert!(s.median <= s.p95);
            proptest::prop_assert!(s.p95 <= s.max);
            proptest::prop_assert!(s.min <= s.mean && s.mean <= s.max);
            proptest::prop_assert!(s.std_dev >= 0.0);
        }
    }
}
