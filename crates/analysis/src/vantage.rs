//! The on-path observatory figure: observer RTT vs client spin RTT vs
//! stack ground-truth RTT as a function of where the tap sits on the
//! path and how hostile the path is (loss, reordering).
//!
//! Each [`VantageCell`] aggregates one `(vantage, loss, reorder)`
//! condition over every observed flow; [`VantageFigure`] holds the full
//! grid in canonical key order. Cells fold plain sums and counts, so
//! accumulation is order-independent and shard merges are exact —
//! the same contract the rest of the analysis crate keeps for its
//! thread-count-invariant artifacts.

use quicspin_scanner::{
    Campaign, CampaignConfig, ConnectionRecord, NetworkConditions, ScanOutcome, Scanner,
};
use quicspin_webpop::Population;
use serde::{Deserialize, Serialize};

/// Converts a path fraction to its canonical millionths encoding.
fn millionths(fraction: f64) -> u32 {
    (fraction.clamp(0.0, 1.0) * 1_000_000.0).round() as u32
}

/// One grid cell: every observed flow at one tap position under one path
/// condition.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct VantageCell {
    /// Tap position in millionths of the path.
    pub vantage_millionths: u32,
    /// Path loss rate in millionths.
    pub loss_millionths: u32,
    /// Path reordering rate in millionths.
    pub reorder_millionths: u32,
    /// Flows the tap saw (established connections).
    pub flows: u64,
    /// Flows with at least one accepted observer RTT sample.
    pub measurable: u64,
    /// Accepted observer RTT samples.
    pub samples: u64,
    /// Edges rejected as reordering artifacts.
    pub rejected_reorder: u64,
    /// Samples rejected as loss gaps.
    pub rejected_gap: u64,
    /// Sum of per-flow observer mean RTTs (µs) over `observer_flows`.
    pub observer_mean_sum_us: u64,
    /// Flows contributing to `observer_mean_sum_us`.
    pub observer_flows: u64,
    /// Sum of per-flow client spin mean RTTs (µs) over `client_flows`.
    pub client_mean_sum_us: u64,
    /// Flows contributing to `client_mean_sum_us`.
    pub client_flows: u64,
    /// Sum of per-flow stack ground-truth mean RTTs (µs) over
    /// `stack_flows`.
    pub stack_mean_sum_us: u64,
    /// Flows contributing to `stack_mean_sum_us`.
    pub stack_flows: u64,
    /// Sum of per-flow observer mean RTTs (µs) over the *paired* flows —
    /// those where both the observer and the client produced a mean, so
    /// the two columns compare the same flow set.
    pub paired_observer_sum_us: u64,
    /// Sum of per-flow client spin mean RTTs (µs) over the paired flows.
    pub paired_client_sum_us: u64,
    /// Flows contributing to the paired sums.
    pub paired_flows: u64,
}

impl VantageCell {
    /// An empty cell for one grid condition.
    pub fn new(vantage: f64, loss: f64, reorder: f64) -> Self {
        VantageCell {
            vantage_millionths: millionths(vantage),
            loss_millionths: millionths(loss),
            reorder_millionths: millionths(reorder),
            ..VantageCell::default()
        }
    }

    /// The cell's grid key, the canonical sort order of the figure.
    pub fn key(&self) -> (u32, u32, u32) {
        (
            self.vantage_millionths,
            self.loss_millionths,
            self.reorder_millionths,
        )
    }

    /// Folds one record into the cell (no-op unless the record carries an
    /// observer view on an established connection).
    pub fn note_record(&mut self, record: &ConnectionRecord) {
        if record.outcome != ScanOutcome::Ok {
            return;
        }
        let Some(view) = &record.observer else {
            return;
        };
        self.flows += 1;
        self.samples += view.stats.samples;
        self.rejected_reorder += view.stats.rejected_reorder;
        self.rejected_gap += view.stats.rejected_gap;
        if view.stats.measurable {
            self.measurable += 1;
        }
        if let Some(m) = view.stats.mean_us {
            self.observer_mean_sum_us += m;
            self.observer_flows += 1;
        }
        if let Some(m) = view.client_spin_mean_us {
            self.client_mean_sum_us += m;
            self.client_flows += 1;
        }
        if let Some(m) = view.stack_mean_us {
            self.stack_mean_sum_us += m;
            self.stack_flows += 1;
        }
        if let (Some(o), Some(c)) = (view.stats.mean_us, view.client_spin_mean_us) {
            self.paired_observer_sum_us += o;
            self.paired_client_sum_us += c;
            self.paired_flows += 1;
        }
    }

    /// Absorbs a disjoint shard of the same condition (all fields are
    /// sums/counts, so the merge is order-independent).
    pub fn merge(&mut self, other: &VantageCell) {
        debug_assert_eq!(self.key(), other.key());
        self.flows += other.flows;
        self.measurable += other.measurable;
        self.samples += other.samples;
        self.rejected_reorder += other.rejected_reorder;
        self.rejected_gap += other.rejected_gap;
        self.observer_mean_sum_us += other.observer_mean_sum_us;
        self.observer_flows += other.observer_flows;
        self.client_mean_sum_us += other.client_mean_sum_us;
        self.client_flows += other.client_flows;
        self.stack_mean_sum_us += other.stack_mean_sum_us;
        self.stack_flows += other.stack_flows;
        self.paired_observer_sum_us += other.paired_observer_sum_us;
        self.paired_client_sum_us += other.paired_client_sum_us;
        self.paired_flows += other.paired_flows;
    }

    /// Mean of per-flow observer RTT means (ms).
    pub fn observer_mean_ms(&self) -> Option<f64> {
        ratio_ms(self.observer_mean_sum_us, self.observer_flows)
    }

    /// Mean of per-flow client spin RTT means (ms).
    pub fn client_mean_ms(&self) -> Option<f64> {
        ratio_ms(self.client_mean_sum_us, self.client_flows)
    }

    /// Mean of per-flow stack ground-truth RTT means (ms).
    pub fn stack_mean_ms(&self) -> Option<f64> {
        ratio_ms(self.stack_mean_sum_us, self.stack_flows)
    }

    /// Mean observer RTT (ms) over the paired flow set (both the
    /// observer and the client produced a mean) — the apples-to-apples
    /// column for observer-vs-client comparisons.
    pub fn paired_observer_mean_ms(&self) -> Option<f64> {
        ratio_ms(self.paired_observer_sum_us, self.paired_flows)
    }

    /// Mean client spin RTT (ms) over the paired flow set.
    pub fn paired_client_mean_ms(&self) -> Option<f64> {
        ratio_ms(self.paired_client_sum_us, self.paired_flows)
    }

    /// Observer-minus-client difference of the paired means (ms).
    pub fn paired_delta_ms(&self) -> Option<f64> {
        Some(self.paired_observer_mean_ms()? - self.paired_client_mean_ms()?)
    }

    /// Share of observed flows that were measurable.
    pub fn measurable_share(&self) -> f64 {
        if self.flows == 0 {
            0.0
        } else {
            self.measurable as f64 / self.flows as f64
        }
    }

    /// Relative observer-vs-stack error, when both means exist.
    pub fn observer_error(&self) -> Option<f64> {
        let observer = self.observer_mean_ms()?;
        let stack = self.stack_mean_ms()?;
        if stack == 0.0 {
            return None;
        }
        Some((observer - stack).abs() / stack)
    }
}

fn ratio_ms(sum_us: u64, n: u64) -> Option<f64> {
    if n == 0 {
        None
    } else {
        Some(sum_us as f64 / n as f64 / 1_000.0)
    }
}

/// The full vantage-accuracy grid, cells in canonical
/// `(vantage, loss, reorder)` order.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct VantageFigure {
    /// Grid cells, sorted by [`VantageCell::key`].
    pub cells: Vec<VantageCell>,
}

impl VantageFigure {
    /// Builds a figure from finished cells (sorts them canonically).
    pub fn from_cells(mut cells: Vec<VantageCell>) -> Self {
        cells.sort_by_key(|c| c.key());
        VantageFigure { cells }
    }

    /// Sweeps a `vantages × losses` grid over `ids`, running one tapped
    /// campaign per condition (reordering follows `base.conditions`).
    /// Campaign results are thread-count invariant, and the grid is
    /// walked in a fixed order, so the figure is fully deterministic.
    pub fn sweep(
        population: &Population,
        base: &CampaignConfig,
        ids: std::ops::Range<u32>,
        vantages: &[f64],
        losses: &[f64],
    ) -> Self {
        Self::sweep_where(population, base, ids, vantages, losses, |_| true)
    }

    /// Like [`sweep`](Self::sweep), but folds only the records `filter`
    /// accepts — e.g. restrict the grid to spinning flows so greasing
    /// traffic (random spin flips on both sides of the tap) does not
    /// pollute the aggregate means.
    pub fn sweep_where(
        population: &Population,
        base: &CampaignConfig,
        ids: std::ops::Range<u32>,
        vantages: &[f64],
        losses: &[f64],
        filter: impl Fn(&ConnectionRecord) -> bool,
    ) -> Self {
        let scanner = Scanner::new(population);
        let mut cells = Vec::with_capacity(vantages.len() * losses.len());
        for &vantage in vantages {
            for &loss in losses {
                let mut config = base.clone();
                config.tap = Some(vantage);
                config.conditions = NetworkConditions {
                    loss,
                    ..base.conditions
                };
                let campaign = scanner.run_campaign_over(&config, ids.clone());
                let mut cell = VantageCell::new(vantage, loss, config.conditions.reorder);
                for record in campaign.records.iter().filter(|r| filter(r)) {
                    cell.note_record(record);
                }
                cells.push(cell);
            }
        }
        VantageFigure::from_cells(cells)
    }

    /// Folds one tapped campaign into the figure as a single cell.
    pub fn note_campaign(&mut self, campaign: &Campaign, config: &CampaignConfig) {
        let Some(vantage) = config.tap else { return };
        let mut cell = VantageCell::new(vantage, config.conditions.loss, config.conditions.reorder);
        for record in &campaign.records {
            cell.note_record(record);
        }
        self.cells.push(cell);
        self.cells.sort_by_key(|c| c.key());
    }

    /// Distinct vantage positions in the grid, ascending.
    pub fn vantages(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.cells.iter().map(|c| c.vantage_millionths).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// Distinct loss rates in the grid, ascending.
    pub fn losses(&self) -> Vec<u32> {
        let mut v: Vec<u32> = self.cells.iter().map(|c| c.loss_millionths).collect();
        v.sort_unstable();
        v.dedup();
        v
    }

    /// The cell for one condition, if present.
    pub fn cell(&self, vantage: f64, loss: f64, reorder: f64) -> Option<&VantageCell> {
        let key = (millionths(vantage), millionths(loss), millionths(reorder));
        self.cells.iter().find(|c| c.key() == key)
    }

    /// Renders the grid as an ASCII table: one row per cell, the three
    /// RTT means side by side, plus the observer-vs-client delta over
    /// the paired flow set (the apples-to-apples comparison).
    pub fn render(&self) -> String {
        let mut out = String::from(
            "vantage  loss     reorder  flows  measur.  observer_ms  client_ms  stack_ms  pair_delta_ms\n",
        );
        for c in &self.cells {
            let fmt_mean = |m: Option<f64>| match m {
                Some(v) => format!("{v:.3}"),
                None => "-".to_string(),
            };
            let fmt_delta = |m: Option<f64>| match m {
                Some(v) => format!("{v:+.3}"),
                None => "-".to_string(),
            };
            out.push_str(&format!(
                "{:<8.2} {:<8.4} {:<8.4} {:<6} {:<8} {:<12} {:<10} {:<9} {}\n",
                f64::from(c.vantage_millionths) / 1_000_000.0,
                f64::from(c.loss_millionths) / 1_000_000.0,
                f64::from(c.reorder_millionths) / 1_000_000.0,
                c.flows,
                c.measurable,
                fmt_mean(c.observer_mean_ms()),
                fmt_mean(c.client_mean_ms()),
                fmt_mean(c.stack_mean_ms()),
                fmt_delta(c.paired_delta_ms()),
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_webpop::PopulationConfig;

    fn small_pop() -> Population {
        Population::generate(PopulationConfig {
            seed: 11,
            toplist_domains: 40,
            zone_domains: 160,
        })
    }

    fn base_config() -> CampaignConfig {
        CampaignConfig {
            conditions: NetworkConditions::clean(),
            threads: 2,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn sweep_builds_the_full_grid() {
        let pop = small_pop();
        let vantages = [0.1, 0.5, 0.9];
        let losses = [0.0, 0.01, 0.05];
        let figure = VantageFigure::sweep(&pop, &base_config(), 0..80, &vantages, &losses);
        assert_eq!(figure.cells.len(), 9);
        assert_eq!(figure.vantages().len(), 3);
        assert_eq!(figure.losses().len(), 3);

        // Clean-path cells agree with the client to well under the
        // sample resolution (exact per-flow parity on spinning flows is
        // asserted in quicspin-observer's lab tests; cells also fold
        // greasing flows, where the heuristics may drop random-flip
        // samples the client kept).
        for &v in &vantages {
            let cell = figure.cell(v, 0.0, 0.0).expect("clean cell");
            assert!(cell.flows > 0, "vantage {v} saw no flows");
            assert!(cell.measurable > 0);
            let observer = cell.observer_mean_ms().unwrap();
            let client = cell.client_mean_ms().unwrap();
            assert!(
                (observer - client).abs() < 0.01,
                "vantage {v}: observer {observer} vs client {client}"
            );
            let paired = cell.paired_delta_ms().expect("paired flows exist");
            assert!(
                paired.abs() < 0.01,
                "vantage {v}: paired observer-client delta {paired}"
            );
            assert_eq!(cell.rejected_gap, 0);
        }

        // Lossy cells still track the client's own spin estimate (stack
        // comparisons only make sense per spinning flow — the cell also
        // folds greasing flows, whose spin-derived means are noise on
        // both sides of the tap).
        let lossy = figure.cell(0.5, 0.05, 0.0).expect("lossy cell");
        assert!(lossy.flows > 0);
        let observer = lossy.observer_mean_ms().unwrap();
        let client = lossy.client_mean_ms().unwrap();
        assert!(
            (observer - client).abs() / client < 0.5,
            "lossy cell: observer {observer} vs client {client}"
        );

        // Rendering covers every cell.
        let table = figure.render();
        assert_eq!(table.lines().count(), 10);
        assert!(table.contains("observer_ms"));
    }

    #[test]
    fn sweep_where_filters_records() {
        let pop = small_pop();
        let none =
            VantageFigure::sweep_where(&pop, &base_config(), 0..40, &[0.5], &[0.0], |_| false);
        assert_eq!(none.cells.len(), 1);
        assert_eq!(none.cells[0].flows, 0);

        let spinning =
            VantageFigure::sweep_where(&pop, &base_config(), 0..80, &[0.5], &[0.0], |r| {
                r.report.as_ref().is_some_and(|rep| {
                    rep.classification == quicspin_core::FlowClassification::Spinning
                })
            });
        let all = VantageFigure::sweep(&pop, &base_config(), 0..80, &[0.5], &[0.0]);
        let cell = &spinning.cells[0];
        assert!(cell.flows > 0);
        assert!(
            cell.flows < all.cells[0].flows,
            "filter must drop non-spinning flows"
        );
    }

    #[test]
    fn cells_merge_order_independently() {
        let pop = small_pop();
        let mut config = base_config();
        config.tap = Some(0.5);
        let campaign = Scanner::new(&pop).run_campaign_over(&config, 0..120);

        let mut whole = VantageCell::new(0.5, 0.0, 0.0);
        for r in &campaign.records {
            whole.note_record(r);
        }
        let mut left = VantageCell::new(0.5, 0.0, 0.0);
        let mut right = VantageCell::new(0.5, 0.0, 0.0);
        for (i, r) in campaign.records.iter().enumerate() {
            if i % 2 == 0 {
                left.note_record(r);
            } else {
                right.note_record(r);
            }
        }
        left.merge(&right);
        assert_eq!(left, whole);
        assert!(whole.flows > 0);
    }

    #[test]
    fn figure_serde_roundtrip() {
        let pop = small_pop();
        let figure = VantageFigure::sweep(&pop, &base_config(), 0..40, &[0.0, 1.0], &[0.0]);
        let json = serde_json::to_string(&figure).unwrap();
        let back: VantageFigure = serde_json::from_str(&json).unwrap();
        assert_eq!(back, figure);
    }

    #[test]
    fn untapped_campaign_contributes_nothing() {
        let pop = small_pop();
        let config = base_config();
        let campaign = Scanner::new(&pop).run_campaign_over(&config, 0..40);
        let mut figure = VantageFigure::default();
        figure.note_campaign(&campaign, &config);
        assert!(figure.cells.is_empty());
    }
}
