//! Rendering: ASCII tables and bar charts matching the paper's layout,
//! plus CSV export for downstream plotting.

use crate::fig2::LongitudinalFigure;
use crate::fig3::AbsoluteAccuracyFigure;
use crate::fig4::RatioAccuracyFigure;
use crate::histogram::Histogram;
use crate::orgs::OrgTable;
use crate::overview::OverviewTable;
use crate::spin_config::SpinConfigTable;

fn fmt_count(v: u64) -> String {
    // Thousands separators for readability (paper prints big numbers).
    let s = v.to_string();
    let mut out = String::new();
    for (i, c) in s.chars().enumerate() {
        if i > 0 && (s.len() - i).is_multiple_of(3) {
            out.push(',');
        }
        out.push(c);
    }
    out
}

/// Renders Table 1 / Table 4 (the caller labels which).
pub fn render_overview(title: &str, table: &OverviewTable) -> String {
    let mut out = format!("{title}\n");
    out.push_str(&format!(
        "{:<14} {:>12} {:>12} {:>12} {:>12} {:>8}\n",
        "", "Total", "Resolved", "QUIC", "Spin", "Spin%"
    ));
    for (name, row) in table.rows() {
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>7.1}%\n",
            format!("{name} dom"),
            fmt_count(row.total_domains),
            fmt_count(row.resolved_domains),
            fmt_count(row.quic_domains),
            fmt_count(row.spin_domains),
            row.spin_domain_pct()
        ));
        out.push_str(&format!(
            "{:<14} {:>12} {:>12} {:>12} {:>12} {:>7.1}%\n",
            format!("{name} IPs"),
            "",
            "",
            fmt_count(row.quic_ips),
            fmt_count(row.spin_ips),
            row.spin_ip_pct()
        ));
    }
    out
}

/// Renders Table 2.
pub fn render_orgs(table: &OrgTable) -> String {
    let mut out = String::from("Table 2: QUIC connections and spin activity per AS organization\n");
    out.push_str(&format!(
        "{:>3} {:>12} {:<16} {:>12} {:>8} {:>6}\n",
        "#", "Total", "Organization", "Spin#", "Spin%", "Spin#rank"
    ));
    for row in &table.rows {
        out.push_str(&format!(
            "{:>3} {:>12} {:<16} {:>12} {:>7.1}% {:>6}\n",
            row.total_rank.map_or("-".to_string(), |r| r.to_string()),
            fmt_count(row.total_connections),
            row.org.name(),
            fmt_count(row.spin_connections),
            row.spin_pct(),
            row.spin_rank.map_or("-".to_string(), |r| r.to_string())
        ));
    }
    out
}

/// Renders Table 3.
pub fn render_spin_config(table: &SpinConfigTable) -> String {
    let mut out = String::from("Table 3: spin behavior of all QUIC domains\n");
    out.push_str(&format!(
        "{:<14} {:>14} {:>12} {:>12} {:>10}\n",
        "", "All Zero", "All One", "Spin", "Grease"
    ));
    for (name, row) in table.rows() {
        out.push_str(&format!(
            "{:<14} {:>9} ({:4.1}%) {:>7} ({:4.2}%) {:>12} {:>5} ({:4.2}%)\n",
            name,
            fmt_count(row.all_zero),
            row.all_zero_pct(),
            fmt_count(row.all_one),
            row.all_one_pct(),
            fmt_count(row.spin),
            fmt_count(row.grease),
            row.grease_pct()
        ));
    }
    out
}

fn render_histogram_bars(h: &Histogram, width: usize) -> String {
    let shares = h.shares();
    let mut out = String::new();
    for (i, share) in shares.iter().enumerate() {
        let bar_len = (share * width as f64).round() as usize;
        out.push_str(&format!(
            "  {:<14} {:>6.1}% |{}\n",
            h.bin_label(i),
            share * 100.0,
            "#".repeat(bar_len)
        ));
    }
    out
}

/// Renders Fig. 2.
pub fn render_fig2(fig: &LongitudinalFigure) -> String {
    let mut out = format!(
        "Figure 2: weeks with spin activity (n = {}, {} ever-spun, {} always reachable)\n",
        fig.n_weeks, fig.ever_spun, fig.always_reachable
    );
    out.push_str(&format!(
        "{:>6} {:>10} {:>10} {:>10}\n",
        "weeks", "observed", "RFC9000", "RFC9312"
    ));
    for k in 0..fig.n_weeks as usize {
        out.push_str(&format!(
            "{:>6} {:>9.1}% {:>9.1}% {:>9.1}%\n",
            k + 1,
            fig.observed[k] * 100.0,
            fig.rfc9000[k] * 100.0,
            fig.rfc9312[k] * 100.0
        ));
    }
    out
}

/// Renders Fig. 3.
pub fn render_fig3(fig: &AbsoluteAccuracyFigure) -> String {
    let mut out =
        String::from("Figure 3: abs. difference spin - QUIC of per-connection means (ms)\n");
    for (name, series) in [
        ("Spin (R)", &fig.spin_received),
        ("Spin (S)", &fig.spin_sorted),
        ("Grease (R)", &fig.grease_received),
        ("Grease (S)", &fig.grease_sorted),
    ] {
        out.push_str(&format!(
            "{name}: n={} overestimate={:.1}% within±25ms={:.1}% >200ms={:.1}%\n",
            fmt_count(series.connections),
            series.overestimate_share * 100.0,
            series.within_25ms_share * 100.0,
            series.over_200ms_share * 100.0
        ));
        out.push_str(&render_histogram_bars(&series.histogram, 50));
    }
    out
}

/// Renders Fig. 4.
pub fn render_fig4(fig: &RatioAccuracyFigure) -> String {
    let mut out = String::from("Figure 4: mapped ratio of per-connection means (spin vs QUIC)\n");
    for (name, series) in [
        ("Spin (R)", &fig.spin_received),
        ("Spin (S)", &fig.spin_sorted),
        ("Grease (R)", &fig.grease_received),
        ("Grease (S)", &fig.grease_sorted),
    ] {
        out.push_str(&format!(
            "{name}: n={} within25%={:.1}% within2x={:.1}% >3x={:.1}% under={:.1}%\n",
            fmt_count(series.connections),
            series.within_25pct_share * 100.0,
            series.within_factor2_share * 100.0,
            series.over_3x_share * 100.0,
            series.underestimate_share * 100.0
        ));
        out.push_str(&render_histogram_bars(&series.histogram, 50));
    }
    out
}

/// Exports a histogram as CSV (`bin,count,share`).
pub fn histogram_to_csv(h: &Histogram) -> String {
    let mut out = String::from("bin,count,share\n");
    let shares = h.shares();
    for (i, (&count, share)) in h.counts.iter().zip(&shares).enumerate() {
        out.push_str(&format!("\"{}\",{},{:.6}\n", h.bin_label(i), count, share));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fmt_count_inserts_separators() {
        assert_eq!(fmt_count(0), "0");
        assert_eq!(fmt_count(999), "999");
        assert_eq!(fmt_count(1_000), "1,000");
        assert_eq!(fmt_count(216_520_521), "216,520,521");
    }

    #[test]
    fn histogram_csv_roundtrips_counts() {
        let mut h = Histogram::new(vec![0.0, 10.0]);
        h.add(-1.0);
        h.add(5.0);
        h.add(5.0);
        let csv = histogram_to_csv(&h);
        assert!(csv.contains("\"< 0\",1,"));
        assert!(csv.contains("\"[0, 10)\",2,"));
        assert_eq!(csv.lines().count(), 4);
    }

    #[test]
    fn render_fig2_includes_theory_columns() {
        let fig = LongitudinalFigure {
            n_weeks: 3,
            ever_spun: 10,
            always_reachable: 8,
            observed: vec![0.25, 0.25, 0.5],
            rfc9000: crate::fig2::rfc_theory(3, 15.0 / 16.0),
            rfc9312: crate::fig2::rfc_theory(3, 7.0 / 8.0),
        };
        let text = render_fig2(&fig);
        assert!(text.contains("RFC9000"));
        assert!(text.contains("RFC9312"));
        assert!(text.lines().count() >= 5);
    }

    #[test]
    fn render_histogram_bars_scale() {
        let mut h = Histogram::new(vec![0.0]);
        for _ in 0..10 {
            h.add(1.0);
        }
        let text = render_histogram_bars(&h, 20);
        assert!(text.contains(&"#".repeat(20)), "{text}");
    }
}
