//! §5.2's reordering impact statistics: how often does processing packets
//! in received order (R) versus packet-number order (S) change the
//! outcome, and by how much?

use quicspin_scanner::ConnectionRecord;
use serde::{Deserialize, Serialize};

/// Aggregate reordering-impact statistics over a set of connections.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct ReorderingImpact {
    /// Connections with spin activity considered.
    pub connections: u64,
    /// Connections where the R and S sample lists differ (paper: 0.28 %).
    pub differing: u64,
    /// Among differing: mean |Δ| < 1 ms (paper: 98.7 %).
    pub small_delta: u64,
    /// Among differing: sorting moved the mean closer to the stack mean
    /// (paper: 93.1 % improved).
    pub improved: u64,
}

impl ReorderingImpact {
    /// Computes the statistics from established records with spin
    /// activity (Spin + Grease classes, as both have samples).
    pub fn from_records<'a>(records: impl Iterator<Item = &'a ConnectionRecord>) -> Self {
        let mut out = ReorderingImpact {
            connections: 0,
            differing: 0,
            small_delta: 0,
            improved: 0,
        };
        for r in records {
            let Some(report) = &r.report else { continue };
            if !report.classification.has_activity() {
                continue;
            }
            out.connections += 1;
            if !report.reordering_changed_result() {
                continue;
            }
            out.differing += 1;
            let (Some(mean_r), Some(mean_s)) =
                (report.spin_rtt_mean_ms(), report.spin_rtt_mean_sorted_ms())
            else {
                continue;
            };
            if (mean_r - mean_s).abs() < 1.0 {
                out.small_delta += 1;
            }
            if let Some(stack) = report.stack_rtt_mean_ms() {
                if (mean_s - stack).abs() < (mean_r - stack).abs() {
                    out.improved += 1;
                }
            }
        }
        out
    }

    /// Merges counters accumulated over a disjoint record set. All
    /// fields are plain counts, so the merge is order-independent.
    pub fn merge(&mut self, other: ReorderingImpact) {
        self.connections += other.connections;
        self.differing += other.differing;
        self.small_delta += other.small_delta;
        self.improved += other.improved;
    }

    /// Share of connections where R and S differ.
    pub fn differing_share(&self) -> f64 {
        if self.connections == 0 {
            0.0
        } else {
            self.differing as f64 / self.connections as f64
        }
    }

    /// Among differing connections, the share with |Δmean| < 1 ms.
    pub fn small_delta_share(&self) -> f64 {
        if self.differing == 0 {
            0.0
        } else {
            self.small_delta as f64 / self.differing as f64
        }
    }

    /// Among differing connections, the share where sorting improved the
    /// estimate.
    pub fn improved_share(&self) -> f64 {
        if self.differing == 0 {
            0.0
        } else {
            self.improved as f64 / self.differing as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_core::{FlowClassification, ObserverReport};
    use quicspin_scanner::ScanOutcome;
    use quicspin_webpop::{IpVersion, ListKind, Org};

    fn record(received_us: Vec<u64>, sorted_us: Vec<u64>) -> ConnectionRecord {
        let mut r = ConnectionRecord::failed(
            0,
            ListKind::ZoneComNetOrg,
            Org::Hostinger,
            0,
            IpVersion::V4,
            ScanOutcome::Ok,
        );
        r.report = Some(ObserverReport {
            classification: FlowClassification::Spinning,
            packets: 10,
            spin_samples_received_us: received_us,
            spin_samples_sorted_us: sorted_us,
            stack_samples_us: vec![40_000],
        });
        r
    }

    #[test]
    fn identical_orders_do_not_differ() {
        let records = [record(vec![40_000], vec![40_000])];
        let impact = ReorderingImpact::from_records(records.iter());
        assert_eq!(impact.connections, 1);
        assert_eq!(impact.differing, 0);
        assert_eq!(impact.differing_share(), 0.0);
        assert_eq!(impact.small_delta_share(), 0.0);
    }

    #[test]
    fn differing_orders_counted_and_improvement_detected() {
        // R has a reordering artefact (1 ms bogus sample) → mean 20.5 ms;
        // S is the clean 41 ms, much closer to the 40 ms stack mean.
        let records = [
            record(vec![1_000, 40_000], vec![41_000]),
            record(vec![40_000], vec![40_000]),
        ];
        let impact = ReorderingImpact::from_records(records.iter());
        assert_eq!(impact.connections, 2);
        assert_eq!(impact.differing, 1);
        assert!((impact.differing_share() - 0.5).abs() < 1e-12);
        assert_eq!(impact.improved, 1);
        assert_eq!(impact.improved_share(), 1.0);
        // Mean delta is 20.5 ms, not small.
        assert_eq!(impact.small_delta, 0);
    }

    #[test]
    fn small_delta_detected() {
        // Means differ by 0.5 ms.
        let records = [record(vec![40_000, 41_000], vec![40_000, 42_000])];
        let impact = ReorderingImpact::from_records(records.iter());
        assert_eq!(impact.differing, 1);
        assert_eq!(impact.small_delta, 1);
        assert_eq!(impact.small_delta_share(), 1.0);
    }

    #[test]
    fn non_active_flows_excluded() {
        let mut r = record(vec![], vec![]);
        r.report.as_mut().unwrap().classification = FlowClassification::AllZero;
        let impact = ReorderingImpact::from_records(std::iter::once(&r));
        assert_eq!(impact.connections, 0);
    }
}
