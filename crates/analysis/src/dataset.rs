//! Domain- and host-level rollups of campaign records.

use quicspin_core::FlowClassification;
use quicspin_scanner::{Campaign, ConnectionRecord, ScanOutcome};
use quicspin_webpop::{HostAddr, ListKind};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Domain-level spin behaviour (Table 3 taxonomy at domain granularity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub enum DomainClass {
    /// No QUIC connection established.
    NoQuic,
    /// All observed packets zero on every connection.
    AllZero,
    /// All observed packets one on some connection, none spinning.
    AllOne,
    /// At least one genuinely spinning connection.
    Spin,
    /// At least one connection caught by the grease filter (and none
    /// spinning).
    Grease,
}

/// Rollup of one domain's connections in one campaign.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DomainRollup {
    /// Domain id.
    pub domain_id: u32,
    /// List membership.
    pub list: ListKind,
    /// Whether DNS resolved.
    pub resolved: bool,
    /// Whether at least one connection was established.
    pub quic: bool,
    /// Spin behaviour.
    pub class: DomainClass,
    /// Host of the domain (if any connection reached one).
    pub host: Option<HostAddr>,
}

/// Per-campaign summary: the material for Tables 1/3/4.
#[derive(Debug, Clone, Default)]
pub struct CampaignSummary {
    /// One rollup per scanned domain.
    pub domains: Vec<DomainRollup>,
    /// Per-host rollup: does the host show spin activity on ≥ 1 conn?
    pub hosts: BTreeMap<HostAddr, bool>,
}

fn classify_domain(records: &[&ConnectionRecord]) -> DomainClass {
    let mut any_quic = false;
    let mut any_spin = false;
    let mut any_grease = false;
    let mut any_one = false;
    for r in records {
        if r.outcome != ScanOutcome::Ok {
            continue;
        }
        any_quic = true;
        if let Some(report) = &r.report {
            match report.classification {
                FlowClassification::Spinning => any_spin = true,
                FlowClassification::Greased => any_grease = true,
                FlowClassification::AllOne => any_one = true,
                FlowClassification::AllZero | FlowClassification::NoShortPackets => {}
            }
        }
    }
    if !any_quic {
        DomainClass::NoQuic
    } else if any_spin {
        DomainClass::Spin
    } else if any_grease {
        DomainClass::Grease
    } else if any_one {
        DomainClass::AllOne
    } else {
        DomainClass::AllZero
    }
}

impl CampaignSummary {
    /// Builds the summary from a campaign.
    pub fn build(campaign: &Campaign) -> Self {
        Self::from_records(&campaign.records)
    }

    /// Builds the summary from a record slice — the shard-level entry
    /// point of [`Dataset::build_parallel`](crate::parallel::Dataset).
    pub fn from_records(records: &[ConnectionRecord]) -> Self {
        let mut per_domain: BTreeMap<u32, Vec<&ConnectionRecord>> = BTreeMap::new();
        for r in records {
            per_domain.entry(r.domain_id).or_default().push(r);
        }
        let mut domains = Vec::with_capacity(per_domain.len());
        let mut hosts: BTreeMap<HostAddr, bool> = BTreeMap::new();
        for (domain_id, records) in per_domain {
            let first = records[0];
            let resolved = first.outcome != ScanOutcome::NotResolved;
            let class = classify_domain(&records);
            let quic = class != DomainClass::NoQuic;
            let host = records.iter().find_map(|r| r.host);
            if quic {
                if let Some(host) = host {
                    let spin_here = matches!(class, DomainClass::Spin)
                        || records.iter().any(|r| r.has_spin_activity());
                    let entry = hosts.entry(host).or_insert(false);
                    *entry |= spin_here;
                }
            }
            domains.push(DomainRollup {
                domain_id,
                list: first.list,
                resolved,
                quic,
                class,
                host,
            });
        }
        CampaignSummary { domains, hosts }
    }

    /// Merges a summary built over a later, disjoint stretch of the
    /// record stream. Shards must be split on domain boundaries and
    /// merged in stream order for `domains` to stay sorted by id.
    pub fn merge(&mut self, other: CampaignSummary) {
        self.domains.extend(other.domains);
        for (host, spin) in other.hosts {
            let entry = self.hosts.entry(host).or_insert(false);
            *entry |= spin;
        }
    }

    /// Domains of one list selection.
    pub fn domains_in<'a>(
        &'a self,
        filter: impl Fn(ListKind) -> bool + 'a,
    ) -> impl Iterator<Item = &'a DomainRollup> {
        self.domains.iter().filter(move |d| filter(d.list))
    }

    /// Hosts serving at least one QUIC domain of the list selection,
    /// with their spin flag.
    pub fn hosts_in(&self, filter: impl Fn(ListKind) -> bool) -> BTreeMap<HostAddr, bool> {
        let mut out: BTreeMap<HostAddr, bool> = BTreeMap::new();
        for d in self.domains.iter().filter(|d| d.quic && filter(d.list)) {
            if let Some(host) = d.host {
                let spin = matches!(d.class, DomainClass::Spin);
                let entry = out.entry(host).or_insert(false);
                *entry |= spin;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_core::ObserverReport;
    use quicspin_webpop::{IpVersion, Org};

    fn record(
        domain_id: u32,
        outcome: ScanOutcome,
        class: Option<FlowClassification>,
    ) -> ConnectionRecord {
        let mut r = ConnectionRecord::failed(
            domain_id,
            ListKind::ZoneComNetOrg,
            Org::Hostinger,
            0,
            IpVersion::V4,
            outcome,
        );
        if outcome == ScanOutcome::Ok {
            r.host = Some(HostAddr {
                version: IpVersion::V4,
                org: Org::Hostinger,
                host_index: u64::from(domain_id % 2),
            });
            r.report = class.map(|c| ObserverReport {
                classification: c,
                packets: 5,
                spin_samples_received_us: vec![],
                spin_samples_sorted_us: vec![],
                stack_samples_us: vec![40_000],
            });
        }
        r
    }

    fn campaign(records: Vec<ConnectionRecord>) -> Campaign {
        Campaign {
            week: 0,
            version: IpVersion::V4,
            records,
        }
    }

    #[test]
    fn domain_classification_priorities() {
        // Spin wins over grease; grease over all-one; all-one over all-zero.
        let c = campaign(vec![
            record(1, ScanOutcome::Ok, Some(FlowClassification::AllZero)),
            record(1, ScanOutcome::Ok, Some(FlowClassification::Spinning)),
            record(2, ScanOutcome::Ok, Some(FlowClassification::Greased)),
            record(2, ScanOutcome::Ok, Some(FlowClassification::AllOne)),
            record(3, ScanOutcome::Ok, Some(FlowClassification::AllOne)),
            record(4, ScanOutcome::Ok, Some(FlowClassification::AllZero)),
            record(5, ScanOutcome::NoQuic, None),
            record(6, ScanOutcome::NotResolved, None),
        ]);
        let s = CampaignSummary::build(&c);
        let class_of = |id: u32| s.domains.iter().find(|d| d.domain_id == id).unwrap().class;
        assert_eq!(class_of(1), DomainClass::Spin);
        assert_eq!(class_of(2), DomainClass::Grease);
        assert_eq!(class_of(3), DomainClass::AllOne);
        assert_eq!(class_of(4), DomainClass::AllZero);
        assert_eq!(class_of(5), DomainClass::NoQuic);
        assert_eq!(class_of(6), DomainClass::NoQuic);
        let d6 = s.domains.iter().find(|d| d.domain_id == 6).unwrap();
        assert!(!d6.resolved);
    }

    #[test]
    fn host_rollup_aggregates_spin_over_domains() {
        // Domains 1 (spin) and 3 (all-zero) share host 1; domain 2 on host 0.
        let c = campaign(vec![
            record(1, ScanOutcome::Ok, Some(FlowClassification::Spinning)),
            record(3, ScanOutcome::Ok, Some(FlowClassification::AllZero)),
            record(2, ScanOutcome::Ok, Some(FlowClassification::AllZero)),
        ]);
        let s = CampaignSummary::build(&c);
        assert_eq!(s.hosts.len(), 2);
        let spin_hosts = s.hosts.values().filter(|&&v| v).count();
        assert_eq!(spin_hosts, 1, "host with domain 1 spins");
    }

    #[test]
    fn list_filters() {
        let mut r1 = record(1, ScanOutcome::Ok, Some(FlowClassification::AllZero));
        r1.list = ListKind::Toplist;
        let r2 = record(2, ScanOutcome::Ok, Some(FlowClassification::Spinning));
        let c = campaign(vec![r1, r2]);
        let s = CampaignSummary::build(&c);
        assert_eq!(s.domains_in(|l| l == ListKind::Toplist).count(), 1);
        assert_eq!(s.domains_in(ListKind::is_czds).count(), 1);
        let czds_hosts = s.hosts_in(ListKind::is_czds);
        assert_eq!(czds_hosts.len(), 1);
        assert!(czds_hosts.values().all(|&v| v));
    }
}
