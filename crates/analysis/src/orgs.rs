//! Table 2: attribution of connections and spin activity to AS
//! organizations (the paper maps IP → ASN via RIPE RIS, then ASN → org
//! via CAIDA as2org; the population model carries the mapping directly).

use quicspin_scanner::{Campaign, ConnectionRecord, ScanOutcome};
use quicspin_webpop::{ListKind, Org, ALL_ORGS};
use serde::{Deserialize, Serialize};

/// One organization's row.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrgRow {
    /// Organization.
    pub org: Org,
    /// Established connections attributed to it.
    pub total_connections: u64,
    /// Connections with spin activity.
    pub spin_connections: u64,
    /// Rank by total connections (1 = most; `None` for the unranked
    /// `<other>` remainder row, as in the paper's Table 2).
    pub total_rank: Option<usize>,
    /// Rank by spin connections (1 = most; `None` if zero or unranked).
    pub spin_rank: Option<usize>,
}

impl OrgRow {
    /// Spin share of this org's connections.
    pub fn spin_pct(&self) -> f64 {
        if self.total_connections == 0 {
            0.0
        } else {
            self.spin_connections as f64 / self.total_connections as f64 * 100.0
        }
    }
}

/// Table 2.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct OrgTable {
    /// All organizations, ordered by total connections (descending).
    pub rows: Vec<OrgRow>,
}

impl OrgTable {
    /// Computes the table from a campaign, restricted to com/net/org
    /// connections as in the paper.
    pub fn from_campaign(campaign: &Campaign) -> Self {
        Self::from_campaign_filtered(campaign, |l| l == ListKind::ZoneComNetOrg)
    }

    /// Computes the table over an arbitrary list selection.
    pub fn from_campaign_filtered(campaign: &Campaign, filter: impl Fn(ListKind) -> bool) -> Self {
        let mut totals = [0u64; 9];
        let mut spins = [0u64; 9];
        Self::count_into(&campaign.records, filter, &mut totals, &mut spins);
        Self::from_counts(totals, spins)
    }

    /// Accumulates per-org connection/spin counts over a record slice —
    /// the shard-level half of the table build. Counts are plain sums,
    /// so shard partials merge by element-wise addition.
    pub fn count_into(
        records: &[ConnectionRecord],
        filter: impl Fn(ListKind) -> bool,
        totals: &mut [u64; 9],
        spins: &mut [u64; 9],
    ) {
        for r in records {
            if r.outcome != ScanOutcome::Ok || !filter(r.list) {
                continue;
            }
            let idx = r.org.index();
            totals[idx] += 1;
            if r.has_spin_activity() {
                spins[idx] += 1;
            }
        }
    }

    /// Assembles the ranked table from (possibly shard-merged) counts.
    pub fn from_counts(totals: [u64; 9], spins: [u64; 9]) -> Self {
        let mut rows: Vec<OrgRow> = ALL_ORGS
            .iter()
            .map(|&org| OrgRow {
                org,
                total_connections: totals[org.index()],
                spin_connections: spins[org.index()],
                total_rank: None,
                spin_rank: None,
            })
            .collect();
        rows.sort_by_key(|r| std::cmp::Reverse(r.total_connections));
        // The `<other>` aggregate is a remainder row and stays unranked,
        // exactly as in the paper's Table 2.
        let mut rank = 0;
        for row in rows.iter_mut() {
            if row.org != Org::Other {
                rank += 1;
                row.total_rank = Some(rank);
            }
        }
        let mut by_spin: Vec<(Org, u64)> = rows
            .iter()
            .filter(|r| r.org != Org::Other)
            .map(|r| (r.org, r.spin_connections))
            .collect();
        by_spin.sort_by_key(|&(_, spin)| std::cmp::Reverse(spin));
        for (i, (org, spin)) in by_spin.iter().enumerate() {
            if *spin > 0 {
                if let Some(row) = rows.iter_mut().find(|r| r.org == *org) {
                    row.spin_rank = Some(i + 1);
                }
            }
        }
        OrgTable { rows }
    }

    /// The row of one organization.
    pub fn row(&self, org: Org) -> &OrgRow {
        self.rows
            .iter()
            .find(|r| r.org == org)
            .expect("all orgs present")
    }

    /// Total established connections across organizations.
    pub fn total_connections(&self) -> u64 {
        self.rows.iter().map(|r| r.total_connections).sum()
    }

    /// Total spinning connections.
    pub fn total_spin_connections(&self) -> u64 {
        self.rows.iter().map(|r| r.spin_connections).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_scanner::{CampaignConfig, NetworkConditions, Scanner};
    use quicspin_webpop::{Population, PopulationConfig};

    fn table(zone_domains: u32, seed: u64) -> OrgTable {
        let pop = Population::generate(PopulationConfig {
            seed,
            toplist_domains: 0,
            zone_domains,
        });
        let campaign = Scanner::new(&pop).run_campaign(&CampaignConfig {
            conditions: NetworkConditions::clean(),
            ..CampaignConfig::default()
        });
        OrgTable::from_campaign(&campaign)
    }

    #[test]
    fn all_orgs_present_and_ranked() {
        let t = table(20_000, 1);
        assert_eq!(t.rows.len(), 9);
        let ranked: Vec<usize> = t.rows.iter().filter_map(|r| r.total_rank).collect();
        assert_eq!(ranked.len(), 8, "all but <other> ranked");
        let mut sorted = ranked.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (1..=8).collect::<Vec<_>>());
        assert!(t.row(Org::Other).total_rank.is_none());
        assert!(t.row(Org::Other).spin_rank.is_none());
        // Descending totals.
        for w in t.rows.windows(2) {
            assert!(w[0].total_connections >= w[1].total_connections);
        }
    }

    #[test]
    fn cloudflare_leads_connections_without_spin() {
        let t = table(60_000, 2);
        let cf = t.row(Org::Cloudflare);
        assert_eq!(cf.total_rank, Some(1), "Cloudflare is #1 by connections");
        assert_eq!(cf.spin_connections, 0, "Cloudflare never spins");
        assert_eq!(cf.spin_rank, None);
    }

    #[test]
    fn hostinger_is_top_spin_driver() {
        let t = table(60_000, 3);
        let hostinger = t.row(Org::Hostinger);
        assert_eq!(
            hostinger.spin_rank,
            Some(1),
            "Hostinger leads spin support (spin={}, table={:?})",
            hostinger.spin_connections,
            t.rows
                .iter()
                .map(|r| (r.org, r.spin_connections))
                .collect::<Vec<_>>()
        );
        assert!(
            hostinger.spin_pct() > 35.0 && hostinger.spin_pct() < 65.0,
            "Hostinger spin share ≈ half: {:.1}%",
            hostinger.spin_pct()
        );
    }

    #[test]
    fn broad_other_base_spins() {
        let t = table(60_000, 4);
        let other = t.row(Org::Other);
        assert!(
            other.spin_pct() > 30.0,
            "<other> spin share {:.1}%",
            other.spin_pct()
        );
        assert!(other.spin_connections > 0);
    }

    #[test]
    fn totals_are_consistent() {
        let t = table(20_000, 5);
        assert_eq!(
            t.total_connections(),
            t.rows.iter().map(|r| r.total_connections).sum::<u64>()
        );
        assert!(t.total_spin_connections() <= t.total_connections());
    }

    #[test]
    fn filter_restricts_to_list() {
        let pop = Population::generate(PopulationConfig {
            seed: 6,
            toplist_domains: 1_000,
            zone_domains: 1_000,
        });
        let campaign = Scanner::new(&pop).run_campaign(&CampaignConfig {
            conditions: NetworkConditions::clean(),
            ..CampaignConfig::default()
        });
        let top_only = OrgTable::from_campaign_filtered(&campaign, |l| l == ListKind::Toplist);
        let all = OrgTable::from_campaign_filtered(&campaign, |_| true);
        assert!(top_only.total_connections() < all.total_connections());
    }
}
