//! Fig. 2: longitudinal RFC-compliance histogram plus binomial theory.
//!
//! The paper selects n = 12 measurement weeks, keeps the domains that
//! spun at least once and were reachable in every week, and plots the
//! share of domains per number-of-spinning-weeks. It compares against
//! "RFC values computed using probability theory": if a domain always has
//! the spin bit deployed and only the per-connection 1-in-N disable rule
//! applies, the number of spinning weeks is Binomial(n, p) with
//! p = 15/16 (RFC 9000) or p = 7/8 (RFC 9312), conditioned on ≥ 1
//! spinning week (the selection criterion).

use quicspin_scanner::LongitudinalResult;
use serde::{Deserialize, Serialize};

/// Binomial coefficient (exact for the small n used here).
fn binomial_coeff(n: u64, k: u64) -> f64 {
    if k > n {
        return 0.0;
    }
    let k = k.min(n - k);
    let mut result = 1.0f64;
    for i in 0..k {
        result = result * (n - i) as f64 / (i + 1) as f64;
    }
    result
}

/// P(X = k) for X ~ Binomial(n, p); zero for k > n.
pub fn binomial_pmf(n: u32, k: u32, p: f64) -> f64 {
    if k > n {
        return 0.0;
    }
    binomial_coeff(u64::from(n), u64::from(k)) * p.powi(k as i32) * (1.0 - p).powi((n - k) as i32)
}

/// Binomial distribution over k = 1..=n, conditioned on k ≥ 1.
pub fn rfc_theory(n: u32, p: f64) -> Vec<f64> {
    let p_zero = binomial_pmf(n, 0, p);
    let denom = 1.0 - p_zero;
    (1..=n).map(|k| binomial_pmf(n, k, p) / denom).collect()
}

/// The complete Fig. 2 artefact.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LongitudinalFigure {
    /// Number of selected weeks (n).
    pub n_weeks: u32,
    /// Number of domains that ever spun.
    pub ever_spun: u64,
    /// Number of those reachable every week (the histogram denominator).
    pub always_reachable: u64,
    /// Observed share per k = 1..=n spinning weeks.
    pub observed: Vec<f64>,
    /// RFC 9000 theory (p = 15/16).
    pub rfc9000: Vec<f64>,
    /// RFC 9312 theory (p = 7/8).
    pub rfc9312: Vec<f64>,
}

impl LongitudinalFigure {
    /// Builds the figure from the longitudinal scan result.
    pub fn from_result(result: &LongitudinalResult) -> Self {
        let n = result.n_weeks;
        LongitudinalFigure {
            n_weeks: n,
            ever_spun: result.ever_spun.len() as u64,
            always_reachable: result.always_reachable().count() as u64,
            observed: result.histogram(),
            rfc9000: rfc_theory(n, 15.0 / 16.0),
            rfc9312: rfc_theory(n, 7.0 / 8.0),
        }
    }

    /// Share of domains spinning in all n weeks.
    pub fn observed_all_weeks(&self) -> f64 {
        *self.observed.last().unwrap_or(&0.0)
    }

    /// Whether the observed population spins less than a theory predicts
    /// (the paper's compliance conclusion): the all-weeks bucket falls
    /// below the theoretical one.
    pub fn spins_less_than(&self, theory: &[f64]) -> bool {
        self.observed_all_weeks() < *theory.last().unwrap_or(&0.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_scanner::DomainWeeks;

    #[test]
    fn binomial_pmf_basics() {
        assert!((binomial_pmf(1, 0, 0.5) - 0.5).abs() < 1e-12);
        assert!((binomial_pmf(1, 1, 0.5) - 0.5).abs() < 1e-12);
        assert!((binomial_pmf(2, 1, 0.5) - 0.5).abs() < 1e-12);
        assert!((binomial_pmf(12, 12, 1.0) - 1.0).abs() < 1e-12);
        assert_eq!(binomial_pmf(3, 4, 0.5), 0.0);
    }

    #[test]
    fn binomial_pmf_sums_to_one() {
        for &p in &[0.1, 0.5, 15.0 / 16.0] {
            let total: f64 = (0..=12).map(|k| binomial_pmf(12, k, p)).sum();
            assert!((total - 1.0).abs() < 1e-9, "p={p}: {total}");
        }
    }

    #[test]
    fn rfc_theory_is_normalized_and_top_heavy() {
        let theory = rfc_theory(12, 15.0 / 16.0);
        assert_eq!(theory.len(), 12);
        let total: f64 = theory.iter().sum();
        assert!((total - 1.0).abs() < 1e-9);
        // With p = 15/16, the k = 12 bucket dominates (~46 %).
        assert!(theory[11] > 0.4, "k=12 share {}", theory[11]);
        assert!(theory[11] > theory[10]);
        // RFC 9312 (p = 7/8) is less top-heavy.
        let theory9312 = rfc_theory(12, 7.0 / 8.0);
        assert!(theory9312[11] < theory[11]);
    }

    fn synthetic_result() -> LongitudinalResult {
        // 10 domains always reachable with varied spin weeks; 2 domains
        // with patchy reachability (excluded from the histogram).
        let mut ever_spun = Vec::new();
        for (i, spin_weeks) in [12u32, 12, 6, 6, 6, 3, 3, 1, 1, 1].iter().enumerate() {
            ever_spun.push(DomainWeeks {
                domain_id: i as u32,
                reachable_weeks: 12,
                spin_weeks: *spin_weeks,
            });
        }
        ever_spun.push(DomainWeeks {
            domain_id: 100,
            reachable_weeks: 7,
            spin_weeks: 5,
        });
        ever_spun.push(DomainWeeks {
            domain_id: 101,
            reachable_weeks: 11,
            spin_weeks: 11,
        });
        LongitudinalResult {
            n_weeks: 12,
            ever_spun,
        }
    }

    #[test]
    fn figure_from_result() {
        let fig = LongitudinalFigure::from_result(&synthetic_result());
        assert_eq!(fig.n_weeks, 12);
        assert_eq!(fig.ever_spun, 12);
        assert_eq!(fig.always_reachable, 10);
        assert_eq!(fig.observed.len(), 12);
        assert!((fig.observed_all_weeks() - 0.2).abs() < 1e-12);
        assert!((fig.observed[5] - 0.3).abs() < 1e-12, "k=6 bucket");
        let total: f64 = fig.observed.iter().sum();
        assert!((total - 1.0).abs() < 1e-12);
    }

    #[test]
    fn synthetic_population_spins_less_than_rfc_theory() {
        let fig = LongitudinalFigure::from_result(&synthetic_result());
        assert!(fig.spins_less_than(&fig.rfc9000));
        assert!(fig.spins_less_than(&fig.rfc9312));
    }
}
