//! Generic binned histogram used by the figure modules.

use serde::{Deserialize, Serialize};

/// A histogram over explicit bin edges.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bin edges: bin `i` covers `[edges[i], edges[i+1])`; the first bin
    /// is open below and the last open above.
    pub edges: Vec<f64>,
    /// Counts per bin (`edges.len() + 1` entries, including the two open
    /// end bins).
    pub counts: Vec<u64>,
}

impl Histogram {
    /// Creates an empty histogram over `edges` (must be strictly
    /// increasing, non-empty).
    pub fn new(edges: Vec<f64>) -> Self {
        assert!(!edges.is_empty(), "need at least one edge");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1]),
            "edges must be strictly increasing"
        );
        let n = edges.len() + 1;
        Histogram {
            edges,
            counts: vec![0; n],
        }
    }

    /// Adds one value.
    pub fn add(&mut self, value: f64) {
        let idx = self.edges.partition_point(|&e| e <= value);
        self.counts[idx] += 1;
    }

    /// Total number of values.
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Relative frequencies per bin.
    pub fn shares(&self) -> Vec<f64> {
        let total = self.total().max(1) as f64;
        self.counts.iter().map(|&c| c as f64 / total).collect()
    }

    /// Share of values strictly below `threshold` (must be an edge).
    pub fn share_below(&self, threshold: f64) -> f64 {
        let idx = self
            .edges
            .iter()
            .position(|&e| e == threshold)
            .expect("threshold must be an edge");
        let below: u64 = self.counts[..=idx].iter().sum();
        below as f64 / self.total().max(1) as f64
    }

    /// Share of values at or above `threshold` (must be an edge).
    pub fn share_at_or_above(&self, threshold: f64) -> f64 {
        1.0 - self.share_below(threshold)
    }

    /// Human-readable bin label.
    pub fn bin_label(&self, idx: usize) -> String {
        if idx == 0 {
            format!("< {}", self.edges[0])
        } else if idx == self.edges.len() {
            format!(">= {}", self.edges[idx - 1])
        } else {
            format!("[{}, {})", self.edges[idx - 1], self.edges[idx])
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn values_land_in_expected_bins() {
        let mut h = Histogram::new(vec![0.0, 10.0, 20.0]);
        h.add(-5.0); // bin 0 (< 0)
        h.add(0.0); // bin 1 [0,10)
        h.add(9.9); // bin 1
        h.add(10.0); // bin 2 [10,20)
        h.add(25.0); // bin 3 (>= 20)
        assert_eq!(h.counts, vec![1, 2, 1, 1]);
        assert_eq!(h.total(), 5);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut h = Histogram::new(vec![0.0, 1.0]);
        for i in 0..10 {
            h.add(i as f64 / 5.0 - 1.0);
        }
        let sum: f64 = h.shares().iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn share_below_and_above() {
        let mut h = Histogram::new(vec![0.0, 25.0, 200.0]);
        for v in [-10.0, 5.0, 10.0, 30.0, 250.0] {
            h.add(v);
        }
        assert!((h.share_below(25.0) - 3.0 / 5.0).abs() < 1e-12);
        assert!((h.share_at_or_above(200.0) - 1.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn bin_labels() {
        let h = Histogram::new(vec![0.0, 25.0]);
        assert_eq!(h.bin_label(0), "< 0");
        assert_eq!(h.bin_label(1), "[0, 25)");
        assert_eq!(h.bin_label(2), ">= 25");
    }

    #[test]
    #[should_panic(expected = "strictly increasing")]
    fn unsorted_edges_rejected() {
        Histogram::new(vec![1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "must be an edge")]
    fn share_below_requires_edge() {
        Histogram::new(vec![0.0, 1.0]).share_below(0.5);
    }

    #[test]
    fn empty_histogram_shares_are_zero() {
        let h = Histogram::new(vec![0.0]);
        assert_eq!(h.total(), 0);
        assert_eq!(h.shares(), vec![0.0, 0.0]);
    }

    proptest::proptest! {
        #[test]
        fn prop_every_value_lands_somewhere(values in proptest::collection::vec(-1e6f64..1e6, 0..100)) {
            let mut h = Histogram::new(vec![-100.0, 0.0, 100.0]);
            for &v in &values {
                h.add(v);
            }
            proptest::prop_assert_eq!(h.total(), values.len() as u64);
        }
    }
}
