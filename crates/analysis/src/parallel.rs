//! Sharded, parallel construction of the paper's full table/figure set.
//!
//! Rendering every artefact serially walks the record vector six times
//! (two `CampaignSummary` builds, org counts, two accuracy extractions,
//! web-server counts) and single-threads over millions of records at
//! zone scale. [`Dataset`] bundles all of it behind one entry point and
//! [`Dataset::build_parallel`] splits the record stream into shards on
//! domain-group boundaries, computes per-shard partials on scoped
//! threads, and merges them **in shard order** — so every float is
//! accumulated in exactly the record order the serial build uses and
//! `build` / `build_parallel` produce identical (serde-byte-identical)
//! artefacts for any shard count.
//!
//! Sharding relies on the campaign engine's output contract: each
//! domain's records (all redirect hops) are contiguous, and domains
//! appear in ascending-id order regardless of worker-thread count.

use crate::dataset::CampaignSummary;
use crate::fig2::LongitudinalFigure;
use crate::fig3::{diffs_for, AbsoluteAccuracyFigure, AccuracySeries};
use crate::fig4::{ratios_for, RatioAccuracyFigure, RatioSeries};
use crate::orgs::OrgTable;
use crate::overview::OverviewTable;
use crate::reordering::ReorderingImpact;
use crate::spin_config::SpinConfigTable;
use crate::webserver::WebServerShares;
use quicspin_core::FlowClassification;
use quicspin_scanner::{Campaign, ConnectionRecord, LongitudinalResult};
use quicspin_webpop::ListKind;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use std::ops::Range;

/// Every per-campaign artefact of the paper in one bundle: Tables 1–4
/// (Table 1/4 depending on the campaign's IP version), Figs. 3–4, the
/// §5.2 reordering statistics and the §4.2 web-server attribution.
/// Fig. 2 is longitudinal (it needs a multi-week scan, not a single
/// campaign) and is attached separately via
/// [`with_longitudinal`](Dataset::with_longitudinal).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Dataset {
    /// Table 1 (IPv4) / Table 4 (IPv6) deployment overview.
    pub overview: OverviewTable,
    /// Table 2 — AS-organization attribution (com/net/org selection).
    pub orgs: OrgTable,
    /// Table 3 — spin-bit configuration taxonomy.
    pub spin_config: SpinConfigTable,
    /// Fig. 2 — longitudinal compliance, if a longitudinal result was
    /// attached.
    pub fig2: Option<LongitudinalFigure>,
    /// Fig. 3 — absolute accuracy histogram.
    pub fig3: AbsoluteAccuracyFigure,
    /// Fig. 4 — mapped-ratio accuracy histogram.
    pub fig4: RatioAccuracyFigure,
    /// §5.2 reordering impact.
    pub reordering: ReorderingImpact,
    /// §4.2 web-server shares.
    pub webserver: WebServerShares,
}

impl Dataset {
    /// Builds every artefact serially, via the canonical per-module
    /// builders.
    pub fn build(campaign: &Campaign) -> Self {
        let summary = CampaignSummary::build(campaign);
        Dataset {
            overview: OverviewTable::from_summary(&summary),
            orgs: OrgTable::from_campaign(campaign),
            spin_config: SpinConfigTable::from_summary(&summary),
            fig2: None,
            fig3: AbsoluteAccuracyFigure::from_records(campaign.records.iter()),
            fig4: RatioAccuracyFigure::from_records(campaign.records.iter()),
            reordering: ReorderingImpact::from_records(campaign.records.iter()),
            webserver: WebServerShares::from_campaign(campaign),
        }
    }

    /// Builds every artefact by splitting the record stream into at most
    /// `shards` domain-aligned shards, computing per-shard partials on
    /// scoped threads and merging them in shard order. Produces exactly
    /// the artefacts of [`build`](Dataset::build) — byte-identical under
    /// serde — for any shard count.
    pub fn build_parallel(campaign: &Campaign, shards: usize) -> Self {
        let records = &campaign.records;
        let ranges = shard_ranges(records, shards);
        if ranges.len() <= 1 {
            return Self::build(campaign);
        }
        let partials: Vec<ShardPartial> = std::thread::scope(|scope| {
            let handles: Vec<_> = ranges
                .into_iter()
                .map(|range| scope.spawn(move || ShardPartial::compute(&records[range])))
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("shard worker panicked"))
                .collect()
        });
        let mut merged = ShardPartial::default();
        for partial in partials {
            merged.merge(partial);
        }
        merged.into_dataset()
    }

    /// Attaches the Fig. 2 longitudinal artefact.
    pub fn with_longitudinal(mut self, result: &LongitudinalResult) -> Self {
        self.fig2 = Some(LongitudinalFigure::from_result(result));
        self
    }
}

/// Splits `records` into at most `shards` contiguous ranges, never
/// cutting through a domain's record group: a shard boundary only lands
/// where the domain id changes between neighbouring records.
fn shard_ranges(records: &[ConnectionRecord], shards: usize) -> Vec<Range<usize>> {
    let n = records.len();
    if n == 0 {
        return Vec::new();
    }
    let target = n.div_ceil(shards.max(1));
    let mut ranges = Vec::new();
    let mut start = 0;
    while start < n {
        let mut end = (start + target).min(n);
        while end < n && records[end].domain_id == records[end - 1].domain_id {
            end += 1;
        }
        ranges.push(start..end);
        start = end;
    }
    ranges
}

/// One shard's contribution to every artefact. Tables merge via count
/// addition (and a host-map OR); figure series keep their per-record
/// value vectors so that float accumulation happens once, in record
/// order, after the merge.
#[derive(Default)]
struct ShardPartial {
    summary: CampaignSummary,
    org_totals: [u64; 9],
    org_spins: [u64; 9],
    fig3_spin: (Vec<f64>, Vec<f64>),
    fig3_grease: (Vec<f64>, Vec<f64>),
    fig4_spin: (Vec<f64>, Vec<f64>),
    fig4_grease: (Vec<f64>, Vec<f64>),
    reordering: ReorderingImpact,
    ws_all: BTreeMap<String, u64>,
    ws_spin: BTreeMap<String, u64>,
}

fn extend_pair(into: &mut (Vec<f64>, Vec<f64>), from: (Vec<f64>, Vec<f64>)) {
    into.0.extend(from.0);
    into.1.extend(from.1);
}

impl ShardPartial {
    fn compute(records: &[ConnectionRecord]) -> Self {
        let mut partial = ShardPartial {
            summary: CampaignSummary::from_records(records),
            ..ShardPartial::default()
        };
        OrgTable::count_into(
            records,
            |l| l == ListKind::ZoneComNetOrg,
            &mut partial.org_totals,
            &mut partial.org_spins,
        );
        partial.fig3_spin = diffs_for(records.iter(), FlowClassification::Spinning);
        partial.fig3_grease = diffs_for(records.iter(), FlowClassification::Greased);
        partial.fig4_spin = ratios_for(records.iter(), FlowClassification::Spinning);
        partial.fig4_grease = ratios_for(records.iter(), FlowClassification::Greased);
        partial.reordering = ReorderingImpact::from_records(records.iter());
        WebServerShares::count_into(records, &mut partial.ws_all, &mut partial.ws_spin);
        partial
    }

    fn merge(&mut self, other: ShardPartial) {
        self.summary.merge(other.summary);
        for i in 0..9 {
            self.org_totals[i] += other.org_totals[i];
            self.org_spins[i] += other.org_spins[i];
        }
        extend_pair(&mut self.fig3_spin, other.fig3_spin);
        extend_pair(&mut self.fig3_grease, other.fig3_grease);
        extend_pair(&mut self.fig4_spin, other.fig4_spin);
        extend_pair(&mut self.fig4_grease, other.fig4_grease);
        self.reordering.merge(other.reordering);
        for (name, n) in other.ws_all {
            *self.ws_all.entry(name).or_default() += n;
        }
        for (name, n) in other.ws_spin {
            *self.ws_spin.entry(name).or_default() += n;
        }
    }

    fn into_dataset(self) -> Dataset {
        Dataset {
            overview: OverviewTable::from_summary(&self.summary),
            orgs: OrgTable::from_counts(self.org_totals, self.org_spins),
            spin_config: SpinConfigTable::from_summary(&self.summary),
            fig2: None,
            fig3: AbsoluteAccuracyFigure {
                spin_received: AccuracySeries::from_diffs(&self.fig3_spin.0),
                spin_sorted: AccuracySeries::from_diffs(&self.fig3_spin.1),
                grease_received: AccuracySeries::from_diffs(&self.fig3_grease.0),
                grease_sorted: AccuracySeries::from_diffs(&self.fig3_grease.1),
            },
            fig4: RatioAccuracyFigure {
                spin_received: RatioSeries::from_ratios(&self.fig4_spin.0),
                spin_sorted: RatioSeries::from_ratios(&self.fig4_spin.1),
                grease_received: RatioSeries::from_ratios(&self.fig4_grease.0),
                grease_sorted: RatioSeries::from_ratios(&self.fig4_grease.1),
            },
            reordering: self.reordering,
            webserver: WebServerShares {
                all: self.ws_all,
                spinning: self.ws_spin,
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_scanner::{CampaignConfig, DomainWeeks, NetworkConditions, ScanOutcome, Scanner};
    use quicspin_webpop::{IpVersion, Org, Population, PopulationConfig};

    fn campaign(seed: u64, toplist: u32, zone: u32) -> Campaign {
        let pop = Population::generate(PopulationConfig {
            seed,
            toplist_domains: toplist,
            zone_domains: zone,
        });
        Scanner::new(&pop).run_campaign(&CampaignConfig {
            threads: 2,
            conditions: NetworkConditions::clean(),
            ..CampaignConfig::default()
        })
    }

    #[test]
    fn parallel_build_is_byte_identical_to_serial() {
        let c = campaign(11, 200, 4_000);
        let serial = Dataset::build(&c);
        let serial_json = serde_json::to_string_pretty(&serial).expect("serialize");
        for shards in [2, 3, 8] {
            let par = Dataset::build_parallel(&c, shards);
            assert_eq!(par, serial, "shards={shards}");
            let par_json = serde_json::to_string_pretty(&par).expect("serialize");
            assert_eq!(par_json, serial_json, "shards={shards}");
        }
    }

    #[test]
    fn parallel_components_match_canonical_builders() {
        let c = campaign(12, 100, 3_000);
        let par = Dataset::build_parallel(&c, 4);
        assert_eq!(par.overview, OverviewTable::from_campaign(&c));
        assert_eq!(par.orgs, OrgTable::from_campaign(&c));
        assert_eq!(par.spin_config, SpinConfigTable::from_campaign(&c));
        assert_eq!(par.webserver, WebServerShares::from_campaign(&c));
        assert_eq!(
            par.reordering,
            ReorderingImpact::from_records(c.records.iter())
        );
    }

    #[test]
    fn degenerate_shard_counts_fall_back_to_serial() {
        let c = campaign(13, 50, 500);
        assert_eq!(Dataset::build_parallel(&c, 0), Dataset::build(&c));
        assert_eq!(Dataset::build_parallel(&c, 1), Dataset::build(&c));
        let empty = Campaign {
            week: 0,
            version: IpVersion::V4,
            records: vec![],
        };
        assert_eq!(
            Dataset::build_parallel(&empty, 4),
            Dataset::build(&empty),
            "empty campaign builds all-zero artefacts on both paths"
        );
    }

    #[test]
    fn shard_ranges_respect_domain_groups() {
        // Domain 1 has a 5-record redirect chain straddling the naive
        // cut point; the boundary must slide past it.
        let mut records = Vec::new();
        for id in [0u32, 0, 1, 1, 1, 1, 1, 2, 3] {
            records.push(ConnectionRecord::failed(
                id,
                quicspin_webpop::ListKind::Toplist,
                Org::Other,
                0,
                IpVersion::V4,
                ScanOutcome::NoQuic,
            ));
        }
        let ranges = shard_ranges(&records, 3);
        let mut covered = 0;
        for range in &ranges {
            assert_eq!(range.start, covered, "ranges are contiguous");
            covered = range.end;
            if range.end < records.len() {
                assert_ne!(
                    records[range.end - 1].domain_id,
                    records[range.end].domain_id,
                    "boundary must not split a domain group"
                );
            }
        }
        assert_eq!(covered, records.len());
        assert!(ranges.len() >= 2, "enough records for multiple shards");
    }

    #[test]
    fn with_longitudinal_attaches_fig2() {
        let c = campaign(14, 20, 200);
        let result = LongitudinalResult {
            n_weeks: 12,
            ever_spun: vec![DomainWeeks {
                domain_id: 0,
                reachable_weeks: 12,
                spin_weeks: 12,
            }],
        };
        let ds = Dataset::build(&c).with_longitudinal(&result);
        let fig2 = ds.fig2.expect("fig2 attached");
        assert_eq!(fig2.n_weeks, 12);
        assert_eq!(fig2.ever_spun, 1);
    }
}
