//! # quicspin-analysis — regenerating the paper's tables and figures
//!
//! Takes the scanner's [`Campaign`](quicspin_scanner::Campaign) records
//! and computes every result the paper reports:
//!
//! | Module | Paper artefact |
//! |---|---|
//! | [`overview`] | Table 1 (IPv4) and Table 4 (IPv6) deployment overviews |
//! | [`orgs`] | Table 2 — AS-organization attribution |
//! | [`spin_config`] | Table 3 — how the spin bit is set/disabled |
//! | [`fig2`] | Fig. 2 — longitudinal RFC-compliance histogram + binomial theory |
//! | [`fig3`] | Fig. 3 — absolute accuracy histogram |
//! | [`fig4`] | Fig. 4 — mapped-ratio accuracy histogram |
//! | [`reordering`] | §5.2 — received-order vs. sorted-order impact |
//! | [`vantage`] | on-path observer accuracy across tap positions and path conditions |
//! | [`webserver`] | §4.2 — web-server attribution of spin support |
//! | [`render`] | ASCII tables / bar charts and CSV export |
//! | [`parallel`] | [`Dataset`] — every artefact at once, optionally sharded |

pub mod dataset;
pub mod fig2;
pub mod fig3;
pub mod fig4;
pub mod histogram;
pub mod orgs;
pub mod overview;
pub mod parallel;
pub mod render;
pub mod reordering;
pub mod spin_config;
pub mod stats;
pub mod streaming;
pub mod vantage;
pub mod webserver;

pub use dataset::{CampaignSummary, DomainClass};
pub use fig2::LongitudinalFigure;
pub use fig3::AbsoluteAccuracyFigure;
pub use fig4::RatioAccuracyFigure;
pub use histogram::Histogram;
pub use orgs::OrgTable;
pub use overview::OverviewTable;
pub use parallel::Dataset;
pub use reordering::ReorderingImpact;
pub use spin_config::SpinConfigTable;
pub use stats::Summary;
pub use streaming::{aggregate_campaign, CampaignAggregates};
pub use vantage::{VantageCell, VantageFigure};
pub use webserver::WebServerShares;

/// Bundled accuracy figures (Figs. 3 + 4 + §5.2) from one dataset.
#[derive(Debug, Clone)]
pub struct AccuracyFigures {
    /// Fig. 3.
    pub fig3: AbsoluteAccuracyFigure,
    /// Fig. 4.
    pub fig4: RatioAccuracyFigure,
    /// §5.2 reordering statistics.
    pub reordering: ReorderingImpact,
}

impl AccuracyFigures {
    /// Computes all accuracy artefacts from established records.
    pub fn from_records<'a>(
        records: impl Iterator<Item = &'a quicspin_scanner::ConnectionRecord> + Clone,
    ) -> AccuracyFigures {
        AccuracyFigures {
            fig3: AbsoluteAccuracyFigure::from_records(records.clone()),
            fig4: RatioAccuracyFigure::from_records(records.clone()),
            reordering: ReorderingImpact::from_records(records),
        }
    }
}
