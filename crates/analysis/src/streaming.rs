//! Streaming campaign aggregation: fold scan records into the paper's
//! aggregates as they are produced, without retaining every
//! [`ConnectionRecord`].
//!
//! A full sweep's record vector is the scanner's dominant memory cost
//! (every established record carries an observer report, and optionally a
//! qlog trace). For campaigns that only feed Table-1/4-style overviews
//! and the domain-class taxonomy, [`CampaignAggregates`] folds each
//! domain's records into counters the moment they exist — the engine's
//! [`run_campaign_fold`](quicspin_scanner::Scanner::run_campaign_fold)
//! drives it, so memory stays proportional to the number of distinct
//! (list, host) pairs instead of the number of records.

use crate::dataset::DomainClass;
use crate::overview::{OverviewRow, OverviewTable};
use quicspin_core::FlowClassification;
use quicspin_scanner::{
    CampaignConfig, ConnectionRecord, RecordBatch, RecordRow, ScanOutcome, Scanner,
};
use quicspin_webpop::{HostAddr, ListKind};
use std::collections::BTreeMap;

/// Per-list domain counters (one overview row before host accounting).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct ListCounts {
    total: u64,
    resolved: u64,
    quic: u64,
    spin: u64,
}

/// Incrementally built campaign aggregates.
///
/// Produces exactly the numbers of
/// [`OverviewTable::from_campaign`](crate::overview::OverviewTable::from_campaign)
/// plus domain-class counts, but from a streaming fold. Batch-merge order
/// is handled by the campaign engine; `merge` itself is commutative over
/// disjoint domain sets, so results match the batch pipeline exactly.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct CampaignAggregates {
    /// Scanned domains.
    pub domains: u64,
    /// Total records folded in (redirect hops add extra).
    pub records: u64,
    /// Records with an established connection.
    pub established: u64,
    /// Records whose probe errored (handshake failure or unreachable
    /// host) rather than completing with an expected outcome.
    pub probes_errored: u64,
    /// Domains per spin-behaviour class.
    pub class_counts: BTreeMap<DomainClass, u64>,
    lists: BTreeMap<ListKind, ListCounts>,
    /// (list, host) → did any of that list's domains on the host spin?
    hosts: BTreeMap<(ListKind, HostAddr), bool>,
}

impl CampaignAggregates {
    /// Folds one domain's records (all redirect hops) into the aggregates.
    pub fn fold_domain(&mut self, records: &[ConnectionRecord]) {
        self.fold_rows(records.iter().map(RecordRow::of));
    }

    /// Folds every domain group of a columnar batch, in order — the
    /// streamed campaign path's entry point. Produces exactly the same
    /// aggregates as [`fold_domain`](CampaignAggregates::fold_domain)
    /// over the equivalent record slices.
    pub fn fold_batch(&mut self, batch: &RecordBatch) {
        for group in batch.groups() {
            self.fold_rows(group);
        }
    }

    /// The row-based fold core shared by the record-slice and columnar
    /// paths: a single pass over one domain's rows (all redirect hops).
    pub fn fold_rows(&mut self, rows: impl Iterator<Item = RecordRow>) {
        let mut first: Option<(ListKind, ScanOutcome)> = None;
        let mut count = 0u64;
        let mut established = 0u64;
        let mut errored = 0u64;
        let mut any_spin = false;
        let mut any_grease = false;
        let mut any_one = false;
        let mut host: Option<HostAddr> = None;
        for row in rows {
            if first.is_none() {
                first = Some((row.list, row.outcome));
            }
            count += 1;
            match row.outcome {
                ScanOutcome::Ok => {
                    established += 1;
                    match row.classification {
                        Some(FlowClassification::Spinning) => any_spin = true,
                        Some(FlowClassification::Greased) => any_grease = true,
                        Some(FlowClassification::AllOne) => any_one = true,
                        Some(FlowClassification::AllZero)
                        | Some(FlowClassification::NoShortPackets)
                        | None => {}
                    }
                }
                ScanOutcome::HandshakeFailed | ScanOutcome::Unreachable => errored += 1,
                ScanOutcome::NotResolved | ScanOutcome::NoQuic => {}
            }
            if host.is_none() {
                host = row.host;
            }
        }
        let Some((list, first_outcome)) = first else {
            return;
        };

        self.domains += 1;
        self.records += count;
        self.established += established;
        self.probes_errored += errored;

        // Any established record means the domain answered QUIC; the
        // class precedence mirrors the paper's taxonomy.
        let quic = established > 0;
        let class = if !quic {
            DomainClass::NoQuic
        } else if any_spin {
            DomainClass::Spin
        } else if any_grease {
            DomainClass::Grease
        } else if any_one {
            DomainClass::AllOne
        } else {
            DomainClass::AllZero
        };
        *self.class_counts.entry(class).or_default() += 1;

        let counts = self.lists.entry(list).or_default();
        counts.total += 1;
        if first_outcome != ScanOutcome::NotResolved {
            counts.resolved += 1;
        }
        if quic {
            counts.quic += 1;
        }
        if class == DomainClass::Spin {
            counts.spin += 1;
        }

        if quic {
            if let Some(host) = host {
                let entry = self.hosts.entry((list, host)).or_insert(false);
                *entry |= class == DomainClass::Spin;
            }
        }
    }

    /// Merges another aggregate (over a disjoint domain set) into this one.
    pub fn merge(&mut self, other: CampaignAggregates) {
        self.domains += other.domains;
        self.records += other.records;
        self.established += other.established;
        self.probes_errored += other.probes_errored;
        for (class, n) in other.class_counts {
            *self.class_counts.entry(class).or_default() += n;
        }
        for (list, counts) in other.lists {
            let mine = self.lists.entry(list).or_default();
            mine.total += counts.total;
            mine.resolved += counts.resolved;
            mine.quic += counts.quic;
            mine.spin += counts.spin;
        }
        for (key, spin) in other.hosts {
            let entry = self.hosts.entry(key).or_insert(false);
            *entry |= spin;
        }
    }

    /// The overview row for a list selection (same semantics as
    /// [`OverviewTable`]'s rows: hosts serving domains in several matching
    /// lists count once).
    pub fn row(&self, filter: impl Fn(ListKind) -> bool) -> OverviewRow {
        let mut row = OverviewRow {
            total_domains: 0,
            resolved_domains: 0,
            quic_domains: 0,
            spin_domains: 0,
            quic_ips: 0,
            spin_ips: 0,
        };
        for (_, counts) in self.lists.iter().filter(|&(&list, _)| filter(list)) {
            row.total_domains += counts.total;
            row.resolved_domains += counts.resolved;
            row.quic_domains += counts.quic;
            row.spin_domains += counts.spin;
        }
        let mut hosts: BTreeMap<HostAddr, bool> = BTreeMap::new();
        for (&(list, host), &spin) in &self.hosts {
            if filter(list) {
                let entry = hosts.entry(host).or_insert(false);
                *entry |= spin;
            }
        }
        row.quic_ips = hosts.len() as u64;
        row.spin_ips = hosts.values().filter(|&&spin| spin).count() as u64;
        row
    }

    /// Assembles the full Table 1 / Table 4 from the aggregates.
    pub fn overview_table(&self) -> OverviewTable {
        OverviewTable {
            toplists: self.row(|l| l == ListKind::Toplist),
            czds: self.row(ListKind::is_czds),
            com_net_org: self.row(|l| l == ListKind::ZoneComNetOrg),
        }
    }
}

/// Sweeps `ids` with the campaign engine, folding straight into
/// [`CampaignAggregates`]: no record vector is ever materialized.
pub fn aggregate_campaign(
    scanner: &Scanner,
    config: &CampaignConfig,
    ids: std::ops::Range<u32>,
) -> CampaignAggregates {
    scanner.run_campaign_fold(
        config,
        ids,
        CampaignAggregates::default,
        |acc, records| acc.fold_domain(records),
        CampaignAggregates::merge,
    )
}

/// [`aggregate_campaign`] over the streamed, bounded-memory campaign
/// path: columnar batches fold straight into the aggregates under a
/// resident-byte budget (`0` = unbounded). Same result, flat memory.
pub fn aggregate_campaign_streamed(
    scanner: &Scanner,
    config: &CampaignConfig,
    ids: std::ops::Range<u32>,
    budget_bytes: usize,
) -> CampaignAggregates {
    let mut agg = CampaignAggregates::default();
    scanner.run_campaign_streamed_over(config, ids, budget_bytes, |batch| agg.fold_batch(batch));
    agg
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_scanner::NetworkConditions;
    use quicspin_webpop::{Population, PopulationConfig};

    fn pop() -> Population {
        Population::generate(PopulationConfig {
            seed: 21,
            toplist_domains: 150,
            zone_domains: 1_500,
        })
    }

    fn config(threads: usize) -> CampaignConfig {
        CampaignConfig {
            threads,
            conditions: NetworkConditions::clean(),
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn streaming_matches_batch_overview() {
        let pop = pop();
        let scanner = Scanner::new(&pop);
        let cfg = config(2);
        let campaign = scanner.run_campaign(&cfg);
        let batch = OverviewTable::from_campaign(&campaign);
        let streamed = aggregate_campaign(&scanner, &cfg, 0..pop.len() as u32);
        assert_eq!(streamed.overview_table(), batch);
        assert_eq!(streamed.domains, pop.len() as u64);
        assert_eq!(streamed.records, campaign.len() as u64);
        assert_eq!(streamed.established, campaign.established().count() as u64);
        let errored = campaign
            .records
            .iter()
            .filter(|r| {
                matches!(
                    r.outcome,
                    quicspin_scanner::ScanOutcome::HandshakeFailed
                        | quicspin_scanner::ScanOutcome::Unreachable
                )
            })
            .count() as u64;
        assert_eq!(streamed.probes_errored, errored);
    }

    #[test]
    fn lossy_campaign_surfaces_probe_errors() {
        let pop = pop();
        let scanner = Scanner::new(&pop);
        let cfg = CampaignConfig {
            threads: 2,
            conditions: NetworkConditions {
                loss: 0.25,
                ..NetworkConditions::clean()
            },
            ..CampaignConfig::default()
        };
        let agg = aggregate_campaign(&scanner, &cfg, 0..pop.len() as u32);
        assert!(
            agg.probes_errored > 0,
            "heavy loss must surface as counted probe errors"
        );
    }

    #[test]
    fn streaming_is_thread_count_invariant() {
        let pop = pop();
        let scanner = Scanner::new(&pop);
        let ids = 0..pop.len() as u32;
        let one = aggregate_campaign(&scanner, &config(1), ids.clone());
        let eight = aggregate_campaign(&scanner, &config(8), ids);
        assert_eq!(one, eight);
    }

    #[test]
    fn columnar_stream_matches_record_fold() {
        let pop = pop();
        let scanner = Scanner::new(&pop);
        let cfg = config(4);
        let ids = 0..pop.len() as u32;
        let record_fold = aggregate_campaign(&scanner, &cfg, ids.clone());
        let streamed = aggregate_campaign_streamed(&scanner, &cfg, ids, 16 * 1024);
        assert_eq!(record_fold, streamed);
    }

    #[test]
    fn class_counts_cover_every_domain() {
        let pop = pop();
        let scanner = Scanner::new(&pop);
        let agg = aggregate_campaign(&scanner, &config(4), 0..pop.len() as u32);
        let classified: u64 = agg.class_counts.values().sum();
        assert_eq!(classified, agg.domains);
    }
}
