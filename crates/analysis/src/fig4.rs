//! Fig. 4: histogram of the mapped ratio of spin vs. stack RTT means.
//!
//! The ratio divides the larger mean by the smaller and is negated when
//! the spin bit underestimates, so `+1` is a perfect match, `+3` a 3×
//! overestimation, `-2` a 2× underestimation (§5.1).

use crate::histogram::Histogram;
use quicspin_core::FlowClassification;
use quicspin_scanner::ConnectionRecord;
use serde::{Deserialize, Serialize};

/// The paper's Fig. 4 bin edges (mapped ratio).
pub fn fig4_edges() -> Vec<f64> {
    vec![-3.0, -2.0, -1.25, 0.0, 1.25, 2.0, 3.0]
}

/// One series of Fig. 4.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioSeries {
    /// Histogram of mapped ratios.
    pub histogram: Histogram,
    /// Number of contributing connections.
    pub connections: u64,
    /// Share within ±25 % (ratio in (0, 1.25]) — the paper's accuracy bar.
    pub within_25pct_share: f64,
    /// Share within a factor of two (ratio in (0, 2]).
    pub within_factor2_share: f64,
    /// Share overestimating by more than 3× (ratio > 3).
    pub over_3x_share: f64,
    /// Share underestimating (ratio < 0).
    pub underestimate_share: f64,
    /// Share underestimating by at most a factor 2 (ratio in [-2, 0)),
    /// relevant for the paper's Grease discussion.
    pub under_within_factor2_share: f64,
}

impl RatioSeries {
    /// Builds a series from mapped ratios, in record order.
    pub fn from_ratios(ratios: &[f64]) -> Self {
        let mut histogram = Histogram::new(fig4_edges());
        let mut within25 = 0u64;
        let mut within2 = 0u64;
        let mut over3 = 0u64;
        let mut under = 0u64;
        let mut under2 = 0u64;
        for &r in ratios {
            histogram.add(r);
            if r > 0.0 && r <= 1.25 {
                within25 += 1;
            }
            if r > 0.0 && r <= 2.0 {
                within2 += 1;
            }
            if r > 3.0 {
                over3 += 1;
            }
            if r < 0.0 {
                under += 1;
                if r >= -2.0 {
                    under2 += 1;
                }
            }
        }
        let n = ratios.len().max(1) as f64;
        RatioSeries {
            histogram,
            connections: ratios.len() as u64,
            within_25pct_share: within25 as f64 / n,
            within_factor2_share: within2 as f64 / n,
            over_3x_share: over3 as f64 / n,
            underestimate_share: under as f64 / n,
            under_within_factor2_share: under2 as f64 / n,
        }
    }
}

/// Fig. 4: all four series.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct RatioAccuracyFigure {
    /// Spinning connections, received order.
    pub spin_received: RatioSeries,
    /// Spinning connections, sorted order.
    pub spin_sorted: RatioSeries,
    /// Greased connections, received order.
    pub grease_received: RatioSeries,
    /// Greased connections, sorted order.
    pub grease_sorted: RatioSeries,
}

/// Extracts `(received_ratio, sorted_ratio)` per qualifying record.
pub fn ratios_for<'a>(
    records: impl Iterator<Item = &'a ConnectionRecord>,
    class: FlowClassification,
) -> (Vec<f64>, Vec<f64>) {
    let mut received = Vec::new();
    let mut sorted = Vec::new();
    for r in records {
        let Some(report) = &r.report else { continue };
        if report.classification != class {
            continue;
        }
        if let Some(acc) = report.accuracy_received() {
            let ratio = acc.mapped_ratio();
            if ratio.is_finite() {
                received.push(ratio);
            }
        }
        if let Some(acc) = report.accuracy_sorted() {
            let ratio = acc.mapped_ratio();
            if ratio.is_finite() {
                sorted.push(ratio);
            }
        }
    }
    (received, sorted)
}

impl RatioAccuracyFigure {
    /// Computes Fig. 4 from established connection records.
    pub fn from_records<'a>(records: impl Iterator<Item = &'a ConnectionRecord> + Clone) -> Self {
        let (spin_r, spin_s) = ratios_for(records.clone(), FlowClassification::Spinning);
        let (grease_r, grease_s) = ratios_for(records, FlowClassification::Greased);
        RatioAccuracyFigure {
            spin_received: RatioSeries::from_ratios(&spin_r),
            spin_sorted: RatioSeries::from_ratios(&spin_s),
            grease_received: RatioSeries::from_ratios(&grease_r),
            grease_sorted: RatioSeries::from_ratios(&grease_s),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use quicspin_core::ObserverReport;
    use quicspin_scanner::ScanOutcome;
    use quicspin_webpop::{IpVersion, ListKind, Org};

    fn record(class: FlowClassification, spin_us: u64, stack_us: u64) -> ConnectionRecord {
        let mut r = ConnectionRecord::failed(
            0,
            ListKind::ZoneComNetOrg,
            Org::Hostinger,
            0,
            IpVersion::V4,
            ScanOutcome::Ok,
        );
        r.report = Some(ObserverReport {
            classification: class,
            packets: 10,
            spin_samples_received_us: vec![spin_us],
            spin_samples_sorted_us: vec![spin_us],
            stack_samples_us: vec![stack_us],
        });
        r
    }

    #[test]
    fn shares_computed_from_ratios() {
        let records = [
            record(FlowClassification::Spinning, 44_000, 40_000), // 1.1 (within 25%)
            record(FlowClassification::Spinning, 70_000, 40_000), // 1.75 (within 2x)
            record(FlowClassification::Spinning, 200_000, 40_000), // 5.0 (>3x)
            record(FlowClassification::Spinning, 20_000, 40_000), // -2.0 (under)
        ];
        let fig = RatioAccuracyFigure::from_records(records.iter());
        let s = &fig.spin_received;
        assert_eq!(s.connections, 4);
        assert!((s.within_25pct_share - 0.25).abs() < 1e-12);
        assert!((s.within_factor2_share - 0.5).abs() < 1e-12);
        assert!((s.over_3x_share - 0.25).abs() < 1e-12);
        assert!((s.underestimate_share - 0.25).abs() < 1e-12);
        assert!((s.under_within_factor2_share - 0.25).abs() < 1e-12);
    }

    #[test]
    fn ratio_magnitudes_never_fall_in_open_unit_gap() {
        // Mapped ratios have |r| >= 1, so the (0, 1.25] bin only collects
        // [1, 1.25] and the (-1.25, 0) bin only (-1.25, -1].
        let records = [
            record(FlowClassification::Spinning, 40_000, 40_000), // exactly 1.0
        ];
        let fig = RatioAccuracyFigure::from_records(records.iter());
        assert_eq!(fig.spin_received.within_25pct_share, 1.0);
    }

    #[test]
    fn grease_series_separate() {
        let records = [
            record(FlowClassification::Greased, 10_000, 40_000),
            record(FlowClassification::Spinning, 45_000, 40_000),
        ];
        let fig = RatioAccuracyFigure::from_records(records.iter());
        assert_eq!(fig.grease_received.connections, 1);
        assert_eq!(fig.spin_received.connections, 1);
        assert!(fig.grease_received.underestimate_share > 0.99);
    }

    #[test]
    fn edges_are_symmetric_about_zero() {
        let edges = fig4_edges();
        assert!(edges.contains(&1.25) && edges.contains(&-1.25));
        assert!(edges.contains(&3.0) && edges.contains(&-3.0));
    }
}
