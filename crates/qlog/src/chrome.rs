//! Chrome trace-event export.
//!
//! Renders a connection trace into the Chrome trace-event JSON format
//! (the array-of-events form), loadable in Perfetto or `chrome://tracing`.
//! Stage spans (handshake, transfer) become complete (`ph: "X"`) events,
//! spin edges and loss become instant (`ph: "i"`) marks, and RTT estimator
//! updates become counter (`ph: "C"`) samples, so the per-connection
//! timeline the paper's §3.3 diagnosis works from can be inspected in a
//! standard trace viewer. Timestamps are virtual microseconds — the
//! trace-event `ts` unit — so the export is deterministic.
//!
//! The scanner extends this per-connection export with flight-recorder
//! anomaly marks and writes the merged array as `trace.json` next to the
//! other campaign artifacts.

use crate::render::timeline;
use crate::trace::TraceLog;
use serde::{Deserialize, Serialize};

/// Typed `args` payload of a [`ChromeEvent`] (the vendored serde_json has
/// no dynamic value type, so the keys are a fixed union).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChromeArgs {
    /// Packet number, for packet marks.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub packet_number: Option<u64>,
    /// Spin bit on the wire, for spin-edge marks.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub spin: Option<bool>,
    /// Latest RTT sample, for `rtt_us` counter events.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub rtt_us: Option<u64>,
    /// Anomaly severity, for flight-recorder marks.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub severity: Option<u64>,
    /// Free-form detail line.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub detail: Option<String>,
}

impl ChromeArgs {
    fn is_empty(args: &Option<ChromeArgs>) -> bool {
        args.is_none()
    }
}

/// One Chrome trace event. Serializes to the standard field names
/// (`name`, `ph`, `ts`, `dur`, `pid`, `tid`, `cat`, `s`, `args`).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Event name shown in the viewer.
    pub name: String,
    /// Phase: `"X"` complete span, `"i"` instant, `"C"` counter.
    pub ph: String,
    /// Timestamp, microseconds (virtual time).
    pub ts: u64,
    /// Span duration, microseconds (`X` events only).
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub dur: Option<u64>,
    /// Process row — the scanner maps domain ids here.
    pub pid: u32,
    /// Thread row — the scanner maps redirect hops here.
    pub tid: u32,
    /// Event category (filterable in the viewer).
    pub cat: String,
    /// Instant-event scope (`"t"` = thread), required by the viewer.
    #[serde(default, skip_serializing_if = "Option::is_none")]
    pub s: Option<String>,
    /// Typed argument payload.
    #[serde(default, skip_serializing_if = "ChromeArgs::is_empty")]
    pub args: Option<ChromeArgs>,
}

impl ChromeEvent {
    /// A complete (`ph: "X"`) span.
    pub fn span(name: &str, ts: u64, dur: u64, pid: u32, tid: u32, cat: &str) -> Self {
        ChromeEvent {
            name: name.to_string(),
            ph: "X".to_string(),
            ts,
            dur: Some(dur),
            pid,
            tid,
            cat: cat.to_string(),
            s: None,
            args: None,
        }
    }

    /// A thread-scoped instant (`ph: "i"`) mark.
    pub fn instant(name: &str, ts: u64, pid: u32, tid: u32, cat: &str) -> Self {
        ChromeEvent {
            name: name.to_string(),
            ph: "i".to_string(),
            ts,
            dur: None,
            pid,
            tid,
            cat: cat.to_string(),
            s: Some("t".to_string()),
            args: None,
        }
    }

    /// A counter (`ph: "C"`) sample.
    pub fn counter(name: &str, ts: u64, pid: u32, tid: u32, cat: &str, args: ChromeArgs) -> Self {
        ChromeEvent {
            name: name.to_string(),
            ph: "C".to_string(),
            ts,
            dur: None,
            pid,
            tid,
            cat: cat.to_string(),
            s: None,
            args: Some(args),
        }
    }

    /// Attaches an argument payload.
    pub fn with_args(mut self, args: ChromeArgs) -> Self {
        self.args = Some(args);
        self
    }
}

/// Renders one connection trace as Chrome trace events on the given
/// process/thread rows: handshake and transfer stage spans, spin-edge and
/// packet-loss instants, and an `rtt_us` counter series.
pub fn chrome_trace_events(trace: &TraceLog, pid: u32, tid: u32) -> Vec<ChromeEvent> {
    let mut events = Vec::new();
    let total_us = trace.duration_us();
    match trace.handshake_time_us() {
        Some(hs) => {
            events.push(ChromeEvent::span("handshake", 0, hs, pid, tid, "stage"));
            if total_us > hs {
                events.push(ChromeEvent::span(
                    "transfer",
                    hs,
                    total_us - hs,
                    pid,
                    tid,
                    "stage",
                ));
            }
        }
        None => {
            // Handshake never completed: the whole lifetime is one span so
            // the failure still shows up on the timeline.
            events.push(ChromeEvent::span(
                "handshake-failed",
                0,
                total_us,
                pid,
                tid,
                "stage",
            ));
        }
    }
    for row in timeline(trace) {
        if row.edge {
            events.push(
                ChromeEvent::instant("spin-edge", row.time_us, pid, tid, "spin").with_args(
                    ChromeArgs {
                        packet_number: row.packet_number,
                        spin: row.spin,
                        ..ChromeArgs::default()
                    },
                ),
            );
        } else if row.kind == "LOST" {
            events.push(
                ChromeEvent::instant("packet-lost", row.time_us, pid, tid, "loss").with_args(
                    ChromeArgs {
                        packet_number: row.packet_number,
                        ..ChromeArgs::default()
                    },
                ),
            );
        }
    }
    for e in &trace.events {
        if let crate::events::EventData::RttUpdated { latest_us, .. } = e.data {
            events.push(ChromeEvent::counter(
                "rtt_us",
                e.time_us,
                pid,
                tid,
                "rtt",
                ChromeArgs {
                    rtt_us: Some(latest_us),
                    ..ChromeArgs::default()
                },
            ));
        }
    }
    events
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::{EventData, PacketSpace};

    fn sample_trace() -> TraceLog {
        let mut t = TraceLog::new("client");
        t.title = "www.example.com".into();
        t.push(
            0,
            EventData::PacketSent {
                space: PacketSpace::Initial,
                packet_number: 0,
                spin: None,
                size: 1200,
                ack_eliciting: true,
            },
        );
        t.push(40_000, EventData::HandshakeCompleted);
        t.push(
            41_000,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 1,
                spin: Some(false),
                size: 64,
            },
        );
        t.push(
            81_000,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 2,
                spin: Some(true),
                size: 64,
            },
        );
        t.push(
            81_500,
            EventData::RttUpdated {
                latest_us: 40_000,
                smoothed_us: 40_100,
                min_us: 40_000,
                ack_delay_us: 25,
            },
        );
        t.push(
            90_000,
            EventData::PacketLost {
                space: PacketSpace::Application,
                packet_number: 3,
            },
        );
        t.push(
            100_000,
            EventData::ConnectionClosed {
                reason: "done".into(),
            },
        );
        t
    }

    #[test]
    fn export_contains_stage_spans_and_marks() {
        let events = chrome_trace_events(&sample_trace(), 7, 0);
        let by_name = |n: &str| events.iter().filter(|e| e.name == n).count();
        assert_eq!(by_name("handshake"), 1);
        assert_eq!(by_name("transfer"), 1);
        assert_eq!(by_name("spin-edge"), 1);
        assert_eq!(by_name("packet-lost"), 1);
        assert_eq!(by_name("rtt_us"), 1);

        let hs = events.iter().find(|e| e.name == "handshake").unwrap();
        assert_eq!((hs.ph.as_str(), hs.ts, hs.dur), ("X", 0, Some(40_000)));
        let tx = events.iter().find(|e| e.name == "transfer").unwrap();
        assert_eq!((tx.ts, tx.dur), (40_000, Some(60_000)));
        let edge = events.iter().find(|e| e.name == "spin-edge").unwrap();
        assert_eq!(edge.ph, "i");
        assert_eq!(edge.s.as_deref(), Some("t"));
        let args = edge.args.as_ref().unwrap();
        assert_eq!(args.packet_number, Some(2));
        assert_eq!(args.spin, Some(true));
        assert!(events.iter().all(|e| e.pid == 7 && e.tid == 0));
    }

    #[test]
    fn failed_handshake_exports_single_failure_span() {
        let mut t = TraceLog::new("client");
        t.push(
            0,
            EventData::PacketSent {
                space: PacketSpace::Initial,
                packet_number: 0,
                spin: None,
                size: 1200,
                ack_eliciting: true,
            },
        );
        t.push(
            300_000,
            EventData::ConnectionClosed {
                reason: "timeout".into(),
            },
        );
        let events = chrome_trace_events(&t, 1, 0);
        let fail = events
            .iter()
            .find(|e| e.name == "handshake-failed")
            .unwrap();
        assert_eq!((fail.ts, fail.dur), (0, Some(300_000)));
        assert!(!events.iter().any(|e| e.name == "transfer"));
    }

    #[test]
    fn events_round_trip_as_json_array() {
        let events = chrome_trace_events(&sample_trace(), 3, 1);
        let json = serde_json::to_string(&events).unwrap();
        // Array-of-events form: the whole document is one JSON array.
        assert!(json.starts_with('['));
        assert!(json.ends_with(']'));
        let back: Vec<ChromeEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
        // Empty args are omitted entirely, not serialized as null.
        assert!(!json.contains("\"args\":null"));
    }
}
