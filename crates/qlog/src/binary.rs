//! Compact binary serialization of trace logs.
//!
//! The paper stores millions of qlog files; JSON at that volume is
//! painful (their artifact release notes stripping fields to limit file
//! size). This module provides a compact, versioned binary encoding of
//! [`TraceLog`]s — roughly 10× smaller than the JSON form — with a
//! strict, fuzz-tested reader.
//!
//! Layout (all integers little-endian, varint = LEB128):
//!
//! ```text
//! magic "QSPN" | u8 version | varint vantage_len | vantage bytes
//! varint title_len | title bytes | varint event_count | events...
//! event: varint time_us | u8 tag | tag-specific fields
//! ```

use crate::events::{EventData, LoggedEvent, PacketSpace};
use crate::trace::TraceLog;

const MAGIC: &[u8; 4] = b"QSPN";
const VERSION: u8 = 1;

/// Errors produced by the binary reader.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BinaryError {
    /// Missing or wrong magic/version.
    BadHeader,
    /// Input ended early.
    Truncated,
    /// An unknown event tag.
    UnknownTag(u8),
    /// A varint ran past 10 bytes.
    BadVarint,
    /// A string was not UTF-8.
    BadString,
}

impl core::fmt::Display for BinaryError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            BinaryError::BadHeader => f.write_str("bad magic or version"),
            BinaryError::Truncated => f.write_str("truncated input"),
            BinaryError::UnknownTag(t) => write!(f, "unknown event tag {t}"),
            BinaryError::BadVarint => f.write_str("malformed varint"),
            BinaryError::BadString => f.write_str("invalid UTF-8 string"),
        }
    }
}

impl std::error::Error for BinaryError {}

fn push_varint(out: &mut Vec<u8>, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            out.push(byte);
            return;
        }
        out.push(byte | 0x80);
    }
}

fn read_varint(buf: &[u8], at: &mut usize) -> Result<u64, BinaryError> {
    let mut value = 0u64;
    for shift in 0..10 {
        let byte = *buf.get(*at).ok_or(BinaryError::Truncated)?;
        *at += 1;
        value |= u64::from(byte & 0x7f) << (7 * shift);
        if byte & 0x80 == 0 {
            return Ok(value);
        }
    }
    Err(BinaryError::BadVarint)
}

fn push_string(out: &mut Vec<u8>, s: &str) {
    push_varint(out, s.len() as u64);
    out.extend_from_slice(s.as_bytes());
}

fn read_string(buf: &[u8], at: &mut usize) -> Result<String, BinaryError> {
    let len = read_varint(buf, at)? as usize;
    let bytes = buf.get(*at..*at + len).ok_or(BinaryError::Truncated)?;
    *at += len;
    String::from_utf8(bytes.to_vec()).map_err(|_| BinaryError::BadString)
}

fn space_tag(space: PacketSpace) -> u8 {
    match space {
        PacketSpace::Initial => 0,
        PacketSpace::Handshake => 1,
        PacketSpace::Application => 2,
    }
}

fn space_from_tag(tag: u8) -> Result<PacketSpace, BinaryError> {
    match tag {
        0 => Ok(PacketSpace::Initial),
        1 => Ok(PacketSpace::Handshake),
        2 => Ok(PacketSpace::Application),
        other => Err(BinaryError::UnknownTag(other)),
    }
}

/// `spin: Option<bool>` packed into one byte.
fn spin_tag(spin: Option<bool>) -> u8 {
    match spin {
        None => 0,
        Some(false) => 1,
        Some(true) => 2,
    }
}

fn spin_from_tag(tag: u8) -> Result<Option<bool>, BinaryError> {
    match tag {
        0 => Ok(None),
        1 => Ok(Some(false)),
        2 => Ok(Some(true)),
        other => Err(BinaryError::UnknownTag(other)),
    }
}

/// Serializes a trace into the compact binary format.
pub fn encode_trace(trace: &TraceLog) -> Vec<u8> {
    let mut out = Vec::with_capacity(16 + trace.events.len() * 8);
    out.extend_from_slice(MAGIC);
    out.push(VERSION);
    push_string(&mut out, &trace.vantage_point);
    push_string(&mut out, &trace.title);
    push_varint(&mut out, trace.events.len() as u64);
    for event in &trace.events {
        push_varint(&mut out, event.time_us);
        match &event.data {
            EventData::PacketSent {
                space,
                packet_number,
                spin,
                size,
                ack_eliciting,
            } => {
                out.push(0);
                out.push(space_tag(*space));
                push_varint(&mut out, *packet_number);
                out.push(spin_tag(*spin));
                push_varint(&mut out, *size as u64);
                out.push(u8::from(*ack_eliciting));
            }
            EventData::PacketReceived {
                space,
                packet_number,
                spin,
                size,
            } => {
                out.push(1);
                out.push(space_tag(*space));
                push_varint(&mut out, *packet_number);
                out.push(spin_tag(*spin));
                push_varint(&mut out, *size as u64);
            }
            EventData::RttUpdated {
                latest_us,
                smoothed_us,
                min_us,
                ack_delay_us,
            } => {
                out.push(2);
                push_varint(&mut out, *latest_us);
                push_varint(&mut out, *smoothed_us);
                push_varint(&mut out, *min_us);
                push_varint(&mut out, *ack_delay_us);
            }
            EventData::HandshakeCompleted => out.push(3),
            EventData::ConnectionClosed { reason } => {
                out.push(4);
                push_string(&mut out, reason);
            }
            EventData::PacketLost {
                space,
                packet_number,
            } => {
                out.push(5);
                out.push(space_tag(*space));
                push_varint(&mut out, *packet_number);
            }
        }
    }
    out
}

fn read_u8(buf: &[u8], at: &mut usize) -> Result<u8, BinaryError> {
    let byte = *buf.get(*at).ok_or(BinaryError::Truncated)?;
    *at += 1;
    Ok(byte)
}

/// Parses a compact binary trace.
pub fn decode_trace(bytes: &[u8]) -> Result<TraceLog, BinaryError> {
    if bytes.len() < 5 || &bytes[..4] != MAGIC || bytes[4] != VERSION {
        return Err(BinaryError::BadHeader);
    }
    let mut at = 5;
    let vantage_point = read_string(bytes, &mut at)?;
    let title = read_string(bytes, &mut at)?;
    let count = read_varint(bytes, &mut at)? as usize;
    let mut events = Vec::with_capacity(count.min(1 << 20));
    for _ in 0..count {
        let time_us = read_varint(bytes, &mut at)?;
        let tag = read_u8(bytes, &mut at)?;
        let data = match tag {
            0 => EventData::PacketSent {
                space: space_from_tag(read_u8(bytes, &mut at)?)?,
                packet_number: read_varint(bytes, &mut at)?,
                spin: spin_from_tag(read_u8(bytes, &mut at)?)?,
                size: read_varint(bytes, &mut at)? as usize,
                ack_eliciting: read_u8(bytes, &mut at)? != 0,
            },
            1 => EventData::PacketReceived {
                space: space_from_tag(read_u8(bytes, &mut at)?)?,
                packet_number: read_varint(bytes, &mut at)?,
                spin: spin_from_tag(read_u8(bytes, &mut at)?)?,
                size: read_varint(bytes, &mut at)? as usize,
            },
            2 => EventData::RttUpdated {
                latest_us: read_varint(bytes, &mut at)?,
                smoothed_us: read_varint(bytes, &mut at)?,
                min_us: read_varint(bytes, &mut at)?,
                ack_delay_us: read_varint(bytes, &mut at)?,
            },
            3 => EventData::HandshakeCompleted,
            4 => EventData::ConnectionClosed {
                reason: read_string(bytes, &mut at)?,
            },
            5 => EventData::PacketLost {
                space: space_from_tag(read_u8(bytes, &mut at)?)?,
                packet_number: read_varint(bytes, &mut at)?,
            },
            other => return Err(BinaryError::UnknownTag(other)),
        };
        events.push(LoggedEvent { time_us, data });
    }
    Ok(TraceLog {
        vantage_point,
        title,
        events,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> TraceLog {
        let mut trace = TraceLog::new("client");
        trace.title = "www.domain-7.com".into();
        trace.push(
            0,
            EventData::PacketSent {
                space: PacketSpace::Initial,
                packet_number: 0,
                spin: None,
                size: 1200,
                ack_eliciting: true,
            },
        );
        trace.push(
            40_123,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 3,
                spin: Some(true),
                size: 1221,
            },
        );
        trace.push(
            40_124,
            EventData::RttUpdated {
                latest_us: 40_000,
                smoothed_us: 40_500,
                min_us: 39_900,
                ack_delay_us: 60,
            },
        );
        trace.push(40_125, EventData::HandshakeCompleted);
        trace.push(
            99_000,
            EventData::PacketLost {
                space: PacketSpace::Handshake,
                packet_number: 1,
            },
        );
        trace.push(
            100_000,
            EventData::ConnectionClosed {
                reason: "request complete".into(),
            },
        );
        trace
    }

    #[test]
    fn roundtrip() {
        let trace = sample_trace();
        let bytes = encode_trace(&trace);
        let back = decode_trace(&bytes).unwrap();
        assert_eq!(back, trace);
    }

    #[test]
    fn binary_is_much_smaller_than_json() {
        let trace = sample_trace();
        let binary = encode_trace(&trace).len();
        let json = serde_json::to_string(&trace).unwrap().len();
        assert!(
            binary * 4 < json,
            "binary {binary} bytes vs JSON {json} bytes"
        );
    }

    #[test]
    fn bad_header_rejected() {
        assert_eq!(decode_trace(b"NOPE"), Err(BinaryError::BadHeader));
        assert_eq!(decode_trace(b"QSPN\x02"), Err(BinaryError::BadHeader));
        assert_eq!(decode_trace(&[]), Err(BinaryError::BadHeader));
    }

    #[test]
    fn truncation_rejected_everywhere() {
        let bytes = encode_trace(&sample_trace());
        for cut in 5..bytes.len() {
            // Every strict prefix must fail cleanly (never panic).
            assert!(
                decode_trace(&bytes[..cut]).is_err(),
                "prefix of {cut} bytes unexpectedly parsed"
            );
        }
    }

    #[test]
    fn unknown_tag_rejected() {
        let fresh = {
            let mut t = TraceLog::new("x");
            t.push(1, EventData::HandshakeCompleted);
            t
        };
        let mut bytes = encode_trace(&fresh);
        let last = bytes.len() - 1;
        bytes[last] = 99; // replace the HandshakeCompleted tag
        assert_eq!(decode_trace(&bytes), Err(BinaryError::UnknownTag(99)));
    }

    #[test]
    fn empty_trace_roundtrips() {
        let trace = TraceLog::new("server");
        assert_eq!(decode_trace(&encode_trace(&trace)).unwrap(), trace);
    }

    proptest::proptest! {
        #[test]
        fn prop_decode_never_panics_on_garbage(
            bytes in proptest::collection::vec(proptest::prelude::any::<u8>(), 0..200)
        ) {
            let _ = decode_trace(&bytes);
        }

        #[test]
        fn prop_roundtrip_random_events(
            times in proptest::collection::vec(0u64..1_000_000, 0..40),
        ) {
            let mut trace = TraceLog::new("client");
            for (i, &t) in times.iter().enumerate() {
                let data = match i % 4 {
                    0 => EventData::PacketReceived {
                        space: PacketSpace::Application,
                        packet_number: i as u64,
                        spin: Some(i % 2 == 0),
                        size: 64 + i,
                    },
                    1 => EventData::HandshakeCompleted,
                    2 => EventData::RttUpdated {
                        latest_us: t,
                        smoothed_us: t,
                        min_us: t,
                        ack_delay_us: 0,
                    },
                    _ => EventData::PacketLost {
                        space: PacketSpace::Initial,
                        packet_number: i as u64,
                    },
                };
                trace.push(t, data);
            }
            let back = decode_trace(&encode_trace(&trace)).unwrap();
            proptest::prop_assert_eq!(back, trace);
        }
    }
}
