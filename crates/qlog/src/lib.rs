//! # quicspin-qlog — qlog-flavoured connection event logging
//!
//! The paper's measurement client stores per-connection qlog traces
//! (Marx et al.), *extended with the spin bit state* of every received
//! packet — that extension is the raw material for the whole analysis.
//! This crate provides the same capability: a compact, serde-serializable
//! event schema covering packet transmission/reception (with spin bit and
//! packet number), RTT estimator updates, and connection lifecycle, plus a
//! JSON envelope writer/reader compatible in spirit with qlog 0.3
//! (`{"qlog_version": ..., "traces": [...]}`).
//!
//! The schema deliberately records **receive timestamps, packet numbers,
//! and spin values** exactly as the paper's §3.3 requires: "we focus on
//! the received packets from the qlog and extract (1) the spin bit state,
//! (2) the QUIC packet number, and (3) the corresponding timestamp".

pub mod binary;
pub mod chrome;
pub mod events;
pub mod folded;
pub mod markdown;
pub mod render;
pub mod trace;

pub use binary::{decode_trace, encode_trace, BinaryError};
pub use chrome::{chrome_trace_events, ChromeArgs, ChromeEvent};
pub use events::{EventData, LoggedEvent, PacketSpace};
pub use folded::{parse_folded, render_folded, FoldedStack};
pub use markdown::{
    heading, millionths_percent, opt_millionths_percent, opt_us_as_ms, us_as_ms, MarkdownTable,
};
pub use render::{render_timeline, timeline, TimelineRow};
pub use trace::{QlogFile, TraceLog};
