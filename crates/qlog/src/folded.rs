//! Collapsed-stack ("folded") flamegraph export.
//!
//! One line per unique stack, frames joined by `;`, a space, and the
//! integer weight for that stack — the interchange format consumed by
//! `flamegraph.pl`, speedscope, and inferno. The profiler writes its
//! wall-clock self-time per scope path here (weights in nanoseconds),
//! next to the Chrome trace export: the same run yields both a timeline
//! and a flamegraph.

/// One collapsed stack: a root-to-leaf frame path and its sample weight.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FoldedStack {
    /// Frames from root to leaf. Frames must not contain `;`, spaces, or
    /// newlines — [`render_folded`] replaces offending bytes with `_` so
    /// the output always parses.
    pub frames: Vec<String>,
    /// Sample weight (for the profiler: self-time in nanoseconds).
    pub weight: u64,
}

/// Renders stacks in collapsed form, one line each, in input order. The
/// output is a pure function of the input (no timestamps, no ordering by
/// weight), so deterministic stacks produce byte-identical files.
pub fn render_folded(stacks: &[FoldedStack]) -> String {
    let mut out = String::new();
    for stack in stacks {
        if stack.frames.is_empty() {
            continue;
        }
        for (i, frame) in stack.frames.iter().enumerate() {
            if i > 0 {
                out.push(';');
            }
            for c in frame.chars() {
                out.push(match c {
                    ';' | ' ' | '\n' | '\r' => '_',
                    other => other,
                });
            }
        }
        out.push(' ');
        out.push_str(&stack.weight.to_string());
        out.push('\n');
    }
    out
}

/// Parses collapsed-stack text back into stacks. Blank lines are skipped;
/// anything else must be `frame[;frame...] <integer>` or the line number
/// and offending content are named in the error.
pub fn parse_folded(text: &str) -> Result<Vec<FoldedStack>, String> {
    let mut stacks = Vec::new();
    for (idx, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let (path, weight) = line
            .rsplit_once(' ')
            .ok_or_else(|| format!("line {}: no weight in {line:?}", idx + 1))?;
        let weight: u64 = weight
            .parse()
            .map_err(|e| format!("line {}: bad weight {weight:?}: {e}", idx + 1))?;
        if path.is_empty() {
            return Err(format!("line {}: empty stack in {line:?}", idx + 1));
        }
        stacks.push(FoldedStack {
            frames: path.split(';').map(str::to_string).collect(),
            weight,
        });
    }
    Ok(stacks)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stack(frames: &[&str], weight: u64) -> FoldedStack {
        FoldedStack {
            frames: frames.iter().map(|f| f.to_string()).collect(),
            weight,
        }
    }

    #[test]
    fn render_emits_one_line_per_stack_in_order() {
        let text = render_folded(&[
            stack(&["probe"], 10),
            stack(&["probe", "lab", "packet_encode"], 7),
        ]);
        assert_eq!(text, "probe 10\nprobe;lab;packet_encode 7\n");
    }

    #[test]
    fn roundtrip_preserves_frames_and_weights() {
        let stacks = vec![
            stack(&["probe"], 1),
            stack(&["probe", "classify"], 0),
            stack(&["record_intern"], u64::MAX),
        ];
        assert_eq!(parse_folded(&render_folded(&stacks)).unwrap(), stacks);
    }

    #[test]
    fn hostile_frame_bytes_are_sanitized_so_output_parses() {
        let text = render_folded(&[stack(&["a;b c\nd"], 3)]);
        assert_eq!(text, "a_b_c_d 3\n");
        assert_eq!(parse_folded(&text).unwrap(), vec![stack(&["a_b_c_d"], 3)]);
    }

    #[test]
    fn empty_stacks_and_blank_lines_are_skipped() {
        assert_eq!(render_folded(&[stack(&[], 9)]), "");
        assert_eq!(parse_folded("\n  \n").unwrap(), Vec::new());
    }

    #[test]
    fn parse_names_the_line_on_malformed_input() {
        let err = parse_folded("probe 1\nnoweight").unwrap_err();
        assert!(err.contains("line 2"), "{err}");
        let err = parse_folded("probe x").unwrap_err();
        assert!(err.contains("bad weight"), "{err}");
        let err = parse_folded(" 5").unwrap_err();
        assert!(err.contains("empty stack"), "{err}");
    }
}
