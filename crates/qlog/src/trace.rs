//! Per-connection trace logs and the qlog file envelope.

use crate::events::{EventData, LoggedEvent};
use serde::{Deserialize, Serialize};

/// One connection's event trace (one qlog "trace").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize, Default)]
pub struct TraceLog {
    /// Which endpoint produced the log (`"client"` / `"server"`).
    pub vantage_point: String,
    /// Free-form identifier (the scanner stores the target domain here).
    #[serde(default)]
    pub title: String,
    /// The events, in emission order.
    pub events: Vec<LoggedEvent>,
}

impl TraceLog {
    /// Creates an empty trace for the given vantage point.
    pub fn new(vantage_point: impl Into<String>) -> Self {
        TraceLog {
            vantage_point: vantage_point.into(),
            title: String::new(),
            events: Vec::new(),
        }
    }

    /// Appends an event.
    pub fn push(&mut self, time_us: u64, data: EventData) {
        self.events.push(LoggedEvent::new(time_us, data));
    }

    /// All `(time_us, packet_number, spin)` observations from received
    /// 1-RTT packets — the §3.3 extraction the analysis runs on.
    pub fn spin_observations(&self) -> Vec<(u64, u64, bool)> {
        self.events
            .iter()
            .filter_map(LoggedEvent::as_spin_observation)
            .collect()
    }

    /// All raw RTT samples (µs) the endpoint's estimator produced.
    pub fn rtt_samples_us(&self) -> Vec<u64> {
        self.events
            .iter()
            .filter_map(LoggedEvent::as_rtt_sample)
            .collect()
    }

    /// Whether the log records a completed handshake.
    pub fn handshake_completed(&self) -> bool {
        self.events
            .iter()
            .any(|e| matches!(e.data, EventData::HandshakeCompleted))
    }

    /// Virtual time (µs since connection start) at which the handshake
    /// completed, if it did.
    pub fn handshake_time_us(&self) -> Option<u64> {
        self.events
            .iter()
            .find(|e| matches!(e.data, EventData::HandshakeCompleted))
            .map(|e| e.time_us)
    }

    /// Virtual duration of the connection: the timestamp of the last
    /// logged event (events are pushed in emission order).
    pub fn duration_us(&self) -> u64 {
        self.events.last().map_or(0, |e| e.time_us)
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }
}

/// The qlog file envelope (`qlog_version` + traces), mirroring the
/// structure of qlog 0.3 serialization.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct QlogFile {
    /// Format version marker.
    pub qlog_version: String,
    /// Tool that produced the file.
    pub tool: String,
    /// The traces.
    pub traces: Vec<TraceLog>,
}

impl QlogFile {
    /// Wraps traces in the standard envelope.
    pub fn new(traces: Vec<TraceLog>) -> Self {
        QlogFile {
            qlog_version: "0.3".into(),
            tool: "quicspin".into(),
            traces,
        }
    }

    /// Serializes to a JSON string.
    pub fn to_json(&self) -> serde_json::Result<String> {
        serde_json::to_string(self)
    }

    /// Serializes to pretty-printed JSON.
    pub fn to_json_pretty(&self) -> serde_json::Result<String> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a JSON string produced by [`QlogFile::to_json`].
    pub fn from_json(s: &str) -> serde_json::Result<Self> {
        serde_json::from_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::events::PacketSpace;

    fn sample_trace() -> TraceLog {
        let mut t = TraceLog::new("client");
        t.title = "www.example.com".into();
        t.push(
            0,
            EventData::PacketSent {
                space: PacketSpace::Initial,
                packet_number: 0,
                spin: None,
                size: 1200,
                ack_eliciting: true,
            },
        );
        t.push(
            40_000,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 1,
                spin: Some(false),
                size: 64,
            },
        );
        t.push(40_001, EventData::HandshakeCompleted);
        t.push(
            80_000,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 2,
                spin: Some(true),
                size: 64,
            },
        );
        t.push(
            80_001,
            EventData::RttUpdated {
                latest_us: 40_000,
                smoothed_us: 40_000,
                min_us: 40_000,
                ack_delay_us: 0,
            },
        );
        t
    }

    #[test]
    fn spin_observations_in_order() {
        let t = sample_trace();
        assert_eq!(
            t.spin_observations(),
            vec![(40_000, 1, false), (80_000, 2, true)]
        );
    }

    #[test]
    fn rtt_samples_extracted() {
        let t = sample_trace();
        assert_eq!(t.rtt_samples_us(), vec![40_000]);
    }

    #[test]
    fn handshake_flag() {
        assert!(sample_trace().handshake_completed());
        assert!(!TraceLog::new("client").handshake_completed());
    }

    #[test]
    fn virtual_times() {
        let t = sample_trace();
        assert_eq!(t.handshake_time_us(), Some(40_001));
        assert_eq!(t.duration_us(), 80_001);
        let empty = TraceLog::new("client");
        assert_eq!(empty.handshake_time_us(), None);
        assert_eq!(empty.duration_us(), 0);
    }

    #[test]
    fn len_and_empty() {
        assert!(TraceLog::new("x").is_empty());
        let t = sample_trace();
        assert_eq!(t.len(), 5);
        assert!(!t.is_empty());
    }

    #[test]
    fn envelope_roundtrip() {
        let file = QlogFile::new(vec![sample_trace(), TraceLog::new("server")]);
        let json = file.to_json().unwrap();
        assert!(json.contains("\"qlog_version\":\"0.3\""));
        let back = QlogFile::from_json(&json).unwrap();
        assert_eq!(back, file);
    }

    #[test]
    fn pretty_json_parses_back() {
        let file = QlogFile::new(vec![sample_trace()]);
        let pretty = file.to_json_pretty().unwrap();
        assert!(pretty.contains('\n'));
        assert_eq!(QlogFile::from_json(&pretty).unwrap(), file);
    }

    #[test]
    fn malformed_json_rejected() {
        assert!(QlogFile::from_json("{not json").is_err());
        assert!(QlogFile::from_json("{}").is_err());
    }
}
