//! The event schema.

use serde::{Deserialize, Serialize};

/// Which packet-number space a packet belongs to.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[serde(rename_all = "snake_case")]
pub enum PacketSpace {
    /// Initial packets (long header).
    Initial,
    /// Handshake packets (long header).
    Handshake,
    /// 1-RTT application packets (short header — these carry the spin bit).
    Application,
}

impl PacketSpace {
    /// Whether packets in this space carry a spin bit.
    pub fn has_spin(self) -> bool {
        matches!(self, PacketSpace::Application)
    }
}

/// The body of a logged event.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
#[serde(tag = "name", rename_all = "snake_case")]
pub enum EventData {
    /// A packet left this endpoint.
    PacketSent {
        /// Packet-number space.
        space: PacketSpace,
        /// Full packet number.
        packet_number: u64,
        /// Spin bit on the wire (`None` for long-header packets).
        #[serde(skip_serializing_if = "Option::is_none", default)]
        spin: Option<bool>,
        /// Encoded datagram size in bytes.
        size: usize,
        /// Whether the packet elicits an ACK.
        ack_eliciting: bool,
    },
    /// A packet arrived at this endpoint. This is the record the paper's
    /// analysis consumes (spin, packet number, timestamp).
    PacketReceived {
        /// Packet-number space.
        space: PacketSpace,
        /// Full packet number.
        packet_number: u64,
        /// Spin bit on the wire (`None` for long-header packets).
        #[serde(skip_serializing_if = "Option::is_none", default)]
        spin: Option<bool>,
        /// Encoded datagram size in bytes.
        size: usize,
    },
    /// The RFC 9002 estimator produced a new sample.
    RttUpdated {
        /// Most recent raw sample (µs).
        latest_us: u64,
        /// Smoothed RTT (µs).
        smoothed_us: u64,
        /// Minimum RTT seen (µs).
        min_us: u64,
        /// Peer-reported ACK delay that was factored out (µs).
        ack_delay_us: u64,
    },
    /// The TLS-equivalent handshake finished.
    HandshakeCompleted,
    /// The connection ended.
    ConnectionClosed {
        /// Human-readable cause.
        reason: String,
    },
    /// A packet was declared lost by loss detection.
    PacketLost {
        /// Packet-number space.
        space: PacketSpace,
        /// Full packet number.
        packet_number: u64,
    },
}

/// An event with its (virtual) timestamp.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LoggedEvent {
    /// Microseconds since connection start.
    pub time_us: u64,
    /// Event body.
    #[serde(flatten)]
    pub data: EventData,
}

impl LoggedEvent {
    /// Convenience constructor.
    pub fn new(time_us: u64, data: EventData) -> Self {
        LoggedEvent { time_us, data }
    }

    /// If this is a received 1-RTT packet, returns
    /// `(time_us, packet_number, spin)` — the paper's §3.3 extraction.
    pub fn as_spin_observation(&self) -> Option<(u64, u64, bool)> {
        match &self.data {
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number,
                spin: Some(spin),
                ..
            } => Some((self.time_us, *packet_number, *spin)),
            _ => None,
        }
    }

    /// If this is an RTT update, returns the latest sample in µs.
    pub fn as_rtt_sample(&self) -> Option<u64> {
        match &self.data {
            EventData::RttUpdated { latest_us, .. } => Some(*latest_us),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spin_observation_extraction() {
        let ev = LoggedEvent::new(
            1000,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 7,
                spin: Some(true),
                size: 100,
            },
        );
        assert_eq!(ev.as_spin_observation(), Some((1000, 7, true)));
    }

    #[test]
    fn long_header_packets_are_not_spin_observations() {
        let ev = LoggedEvent::new(
            5,
            EventData::PacketReceived {
                space: PacketSpace::Initial,
                packet_number: 0,
                spin: None,
                size: 1200,
            },
        );
        assert_eq!(ev.as_spin_observation(), None);
    }

    #[test]
    fn sent_packets_are_not_spin_observations() {
        let ev = LoggedEvent::new(
            5,
            EventData::PacketSent {
                space: PacketSpace::Application,
                packet_number: 0,
                spin: Some(false),
                size: 100,
                ack_eliciting: true,
            },
        );
        assert_eq!(ev.as_spin_observation(), None);
    }

    #[test]
    fn rtt_sample_extraction() {
        let ev = LoggedEvent::new(
            9,
            EventData::RttUpdated {
                latest_us: 40_000,
                smoothed_us: 41_000,
                min_us: 39_000,
                ack_delay_us: 25,
            },
        );
        assert_eq!(ev.as_rtt_sample(), Some(40_000));
        assert_eq!(
            LoggedEvent::new(9, EventData::HandshakeCompleted).as_rtt_sample(),
            None
        );
    }

    #[test]
    fn serde_roundtrip() {
        let events = vec![
            LoggedEvent::new(
                0,
                EventData::PacketSent {
                    space: PacketSpace::Initial,
                    packet_number: 0,
                    spin: None,
                    size: 1200,
                    ack_eliciting: true,
                },
            ),
            LoggedEvent::new(
                100,
                EventData::PacketReceived {
                    space: PacketSpace::Application,
                    packet_number: 3,
                    spin: Some(true),
                    size: 64,
                },
            ),
            LoggedEvent::new(200, EventData::HandshakeCompleted),
            LoggedEvent::new(
                300,
                EventData::ConnectionClosed {
                    reason: "done".into(),
                },
            ),
            LoggedEvent::new(
                400,
                EventData::PacketLost {
                    space: PacketSpace::Handshake,
                    packet_number: 1,
                },
            ),
        ];
        let json = serde_json::to_string(&events).unwrap();
        let back: Vec<LoggedEvent> = serde_json::from_str(&json).unwrap();
        assert_eq!(back, events);
    }

    #[test]
    fn json_uses_snake_case_names() {
        let ev = LoggedEvent::new(1, EventData::HandshakeCompleted);
        let json = serde_json::to_string(&ev).unwrap();
        assert!(json.contains("\"handshake_completed\""), "{json}");
        assert!(json.contains("\"time_us\":1"), "{json}");
    }

    #[test]
    fn spin_field_omitted_when_absent() {
        let ev = LoggedEvent::new(
            1,
            EventData::PacketReceived {
                space: PacketSpace::Initial,
                packet_number: 0,
                spin: None,
                size: 1,
            },
        );
        let json = serde_json::to_string(&ev).unwrap();
        assert!(!json.contains("spin"), "{json}");
    }

    #[test]
    fn only_application_space_has_spin() {
        assert!(PacketSpace::Application.has_spin());
        assert!(!PacketSpace::Initial.has_spin());
        assert!(!PacketSpace::Handshake.has_spin());
    }
}
