//! GitHub-flavoured markdown rendering for cross-scenario reports.
//!
//! The scenario matrix report (`spinctl matrix` / `spinctl report`)
//! folds many campaign cells into one `report.md`; this module owns the
//! low-level rendering so every table in the report aligns, escapes,
//! and formats numbers the same way. Rendering is pure string work over
//! already-deterministic inputs, so the emitted markdown is
//! byte-identical for identical data.

/// A pipe-delimited markdown table accumulated row by row.
///
/// Cells are escaped (`|` → `\|`) and the header row fixes the column
/// count; rows with fewer cells are padded with `-`, the report-wide
/// placeholder for *absent* (e.g. an artifact a cell never produced).
#[derive(Debug, Clone)]
pub struct MarkdownTable {
    columns: usize,
    lines: Vec<String>,
}

impl MarkdownTable {
    /// Starts a table with the given header cells.
    pub fn new(header: &[&str]) -> Self {
        let mut table = MarkdownTable {
            columns: header.len(),
            lines: Vec::new(),
        };
        table.push_cells(header.iter().map(|h| escape_cell(h)).collect());
        table
            .lines
            .push(format!("|{}", " --- |".repeat(table.columns)));
        table
    }

    /// Appends one row; short rows pad with `-`, long rows truncate.
    pub fn row(&mut self, cells: &[String]) {
        let mut cells: Vec<String> = cells.iter().map(|c| escape_cell(c)).collect();
        cells.truncate(self.columns);
        while cells.len() < self.columns {
            cells.push("-".to_string());
        }
        self.push_cells(cells);
    }

    fn push_cells(&mut self, cells: Vec<String>) {
        self.lines.push(format!("| {} |", cells.join(" | ")));
    }

    /// Renders the table followed by a blank line.
    pub fn render(&self) -> String {
        let mut out = self.lines.join("\n");
        out.push_str("\n\n");
        out
    }
}

fn escape_cell(cell: &str) -> String {
    let cell = cell.replace('|', "\\|").replace('\n', " ");
    if cell.is_empty() {
        "-".to_string()
    } else {
        cell
    }
}

/// Renders a millionths-encoded fraction as a fixed-point percentage
/// (`50000` → `5.00%`). Fixed-point keeps the rendering byte-stable —
/// no float formatting is involved.
pub fn millionths_percent(millionths: u64) -> String {
    let hundredths_of_percent = millionths / 100;
    format!(
        "{}.{:02}%",
        hundredths_of_percent / 100,
        hundredths_of_percent % 100
    )
}

/// Renders an optional millionths fraction, `-` when absent.
pub fn opt_millionths_percent(millionths: Option<u64>) -> String {
    millionths.map_or_else(|| "-".to_string(), millionths_percent)
}

/// Renders microseconds as fixed-point milliseconds (`12345` → `12.35ms`
/// — rounded half-up at the hundredth).
pub fn us_as_ms(us: u64) -> String {
    let hundredths = (us * 100 + 500) / 1000; // round to 0.01 ms
    format!("{}.{:02}ms", hundredths / 100, hundredths % 100)
}

/// Renders optional microseconds, `-` when absent.
pub fn opt_us_as_ms(us: Option<u64>) -> String {
    us.map_or_else(|| "-".to_string(), us_as_ms)
}

/// A `#`-prefixed heading followed by a blank line.
pub fn heading(level: usize, text: &str) -> String {
    format!("{} {}\n\n", "#".repeat(level.clamp(1, 6)), text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_aligns_pads_and_escapes() {
        let mut t = MarkdownTable::new(&["cell", "p50", "p99"]);
        t.row(&["a|b".to_string(), "1".to_string(), "2".to_string()]);
        t.row(&["short".to_string()]);
        t.row(&[
            "w".to_string(),
            "x".to_string(),
            "y".to_string(),
            "dropped".to_string(),
        ]);
        assert_eq!(
            t.render(),
            "| cell | p50 | p99 |\n\
             | --- | --- | --- |\n\
             | a\\|b | 1 | 2 |\n\
             | short | - | - |\n\
             | w | x | y |\n\n"
        );
    }

    #[test]
    fn numeric_renderers_are_fixed_point() {
        assert_eq!(millionths_percent(50_000), "5.00%");
        assert_eq!(millionths_percent(1_234_567), "123.45%");
        assert_eq!(millionths_percent(0), "0.00%");
        assert_eq!(opt_millionths_percent(None), "-");
        assert_eq!(us_as_ms(12_345), "12.35ms");
        assert_eq!(us_as_ms(999), "1.00ms");
        assert_eq!(us_as_ms(0), "0.00ms");
        assert_eq!(opt_us_as_ms(None), "-");
        assert_eq!(opt_us_as_ms(Some(1500)), "1.50ms");
    }

    #[test]
    fn headings_clamp_levels() {
        assert_eq!(heading(2, "Cells"), "## Cells\n\n");
        assert_eq!(heading(9, "x"), "###### x\n\n");
    }
}
