//! Human-readable rendering of one connection's trace.
//!
//! `spinctl trace <probe-id>` prints this timeline for a flagged probe:
//! one row per logged event with the packet number, the spin value on the
//! wire, an edge marker whenever the observed spin value flips, and the
//! RTT estimator updates inline — the per-flow, edge-by-edge view the
//! paper's §3.3/§5 diagnosis works from.

use crate::events::{EventData, PacketSpace};
use crate::trace::TraceLog;

/// One line of the rendered timeline.
#[derive(Debug, Clone, PartialEq)]
pub struct TimelineRow {
    /// Event time, µs since connection start (virtual time).
    pub time_us: u64,
    /// Short event tag: `TX`, `RX`, `RTT`, `HS`, `LOST`, or `CLOSE`.
    pub kind: &'static str,
    /// Packet-number space, for packet events.
    pub space: Option<PacketSpace>,
    /// Packet number, for packet events.
    pub packet_number: Option<u64>,
    /// Spin bit on the wire (`None` for long headers and non-packet rows).
    pub spin: Option<bool>,
    /// Whether this received 1-RTT packet flipped the observed spin value.
    pub edge: bool,
    /// Free-form detail column (sizes, RTT values, close reason).
    pub note: String,
}

impl TimelineRow {
    /// If this row is a received 1-RTT packet with a spin value, returns
    /// `(time_us, packet_number, spin)` — the same triple
    /// [`TraceLog::spin_observations`] extracts, so a timeline built from
    /// a decoded trace can be checked against the in-memory original.
    pub fn spin_observation(&self) -> Option<(u64, u64, bool)> {
        if self.kind != "RX" || self.space != Some(PacketSpace::Application) {
            return None;
        }
        match (self.packet_number, self.spin) {
            (Some(pn), Some(spin)) => Some((self.time_us, pn, spin)),
            _ => None,
        }
    }
}

/// Builds the timeline rows for a trace, in emission order. Edge markers
/// are set on received 1-RTT packets whose spin value differs from the
/// previously observed one (the first observation is not an edge).
pub fn timeline(trace: &TraceLog) -> Vec<TimelineRow> {
    let mut last_spin: Option<bool> = None;
    let mut rows = Vec::with_capacity(trace.len());
    for e in &trace.events {
        let row = match &e.data {
            EventData::PacketSent {
                space,
                packet_number,
                spin,
                size,
                ack_eliciting,
            } => TimelineRow {
                time_us: e.time_us,
                kind: "TX",
                space: Some(*space),
                packet_number: Some(*packet_number),
                spin: *spin,
                edge: false,
                note: format!(
                    "{size} B{}",
                    if *ack_eliciting {
                        ""
                    } else {
                        ", not ack-eliciting"
                    }
                ),
            },
            EventData::PacketReceived {
                space,
                packet_number,
                spin,
                size,
            } => {
                let mut edge = false;
                if space.has_spin() {
                    if let Some(s) = spin {
                        edge = last_spin.is_some_and(|prev| prev != *s);
                        last_spin = Some(*s);
                    }
                }
                TimelineRow {
                    time_us: e.time_us,
                    kind: "RX",
                    space: Some(*space),
                    packet_number: Some(*packet_number),
                    spin: *spin,
                    edge,
                    note: format!("{size} B"),
                }
            }
            EventData::RttUpdated {
                latest_us,
                smoothed_us,
                min_us,
                ack_delay_us,
            } => TimelineRow {
                time_us: e.time_us,
                kind: "RTT",
                space: None,
                packet_number: None,
                spin: None,
                edge: false,
                note: format!(
                    "latest {:.1} ms, smoothed {:.1} ms, min {:.1} ms, ack-delay {} µs",
                    *latest_us as f64 / 1000.0,
                    *smoothed_us as f64 / 1000.0,
                    *min_us as f64 / 1000.0,
                    ack_delay_us
                ),
            },
            EventData::HandshakeCompleted => TimelineRow {
                time_us: e.time_us,
                kind: "HS",
                space: None,
                packet_number: None,
                spin: None,
                edge: false,
                note: "handshake completed".to_string(),
            },
            EventData::ConnectionClosed { reason } => TimelineRow {
                time_us: e.time_us,
                kind: "CLOSE",
                space: None,
                packet_number: None,
                spin: None,
                edge: false,
                note: reason.clone(),
            },
            EventData::PacketLost {
                space,
                packet_number,
            } => TimelineRow {
                time_us: e.time_us,
                kind: "LOST",
                space: Some(*space),
                packet_number: Some(*packet_number),
                spin: None,
                edge: false,
                note: "declared lost".to_string(),
            },
        };
        rows.push(row);
    }
    rows
}

fn space_tag(space: Option<PacketSpace>) -> &'static str {
    match space {
        Some(PacketSpace::Initial) => "init",
        Some(PacketSpace::Handshake) => "hs",
        Some(PacketSpace::Application) => "1rtt",
        None => "-",
    }
}

fn spin_tag(spin: Option<bool>) -> &'static str {
    match spin {
        Some(true) => "1",
        Some(false) => "0",
        None => "-",
    }
}

/// Renders the full per-connection timeline as fixed-width text.
pub fn render_timeline(trace: &TraceLog) -> String {
    let rows = timeline(trace);
    let title = if trace.title.is_empty() {
        "<untitled>"
    } else {
        &trace.title
    };
    let mut out = String::new();
    out.push_str(&format!(
        "trace {title} ({}) -- {} events, {} spin observations\n",
        trace.vantage_point,
        trace.len(),
        trace.spin_observations().len()
    ));
    out.push_str(&format!(
        "{:>12}  {:<5} {:<4} {:>8} {:>4}  {}\n",
        "time", "event", "spc", "pn", "spin", "detail"
    ));
    for r in &rows {
        let pn = r
            .packet_number
            .map_or_else(|| "-".to_string(), |pn| pn.to_string());
        out.push_str(&format!(
            "{:>10.3}ms  {:<5} {:<4} {:>8} {:>4}  {}{}\n",
            r.time_us as f64 / 1000.0,
            r.kind,
            space_tag(r.space),
            pn,
            spin_tag(r.spin),
            r.note,
            if r.edge { "   <-- spin edge" } else { "" },
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> TraceLog {
        let mut t = TraceLog::new("client");
        t.title = "www.example.com".into();
        t.push(
            0,
            EventData::PacketSent {
                space: PacketSpace::Initial,
                packet_number: 0,
                spin: None,
                size: 1200,
                ack_eliciting: true,
            },
        );
        t.push(40_000, EventData::HandshakeCompleted);
        t.push(
            41_000,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 1,
                spin: Some(false),
                size: 64,
            },
        );
        t.push(
            81_000,
            EventData::PacketReceived {
                space: PacketSpace::Application,
                packet_number: 2,
                spin: Some(true),
                size: 64,
            },
        );
        t.push(
            81_500,
            EventData::RttUpdated {
                latest_us: 40_000,
                smoothed_us: 40_100,
                min_us: 40_000,
                ack_delay_us: 25,
            },
        );
        t.push(
            90_000,
            EventData::PacketLost {
                space: PacketSpace::Application,
                packet_number: 3,
            },
        );
        t.push(
            100_000,
            EventData::ConnectionClosed {
                reason: "done".into(),
            },
        );
        t
    }

    #[test]
    fn rows_cover_every_event() {
        let t = sample_trace();
        let rows = timeline(&t);
        assert_eq!(rows.len(), t.len());
        assert_eq!(rows[0].kind, "TX");
        assert_eq!(rows[1].kind, "HS");
        assert_eq!(rows[2].kind, "RX");
        assert_eq!(rows[5].kind, "LOST");
        assert_eq!(rows[6].kind, "CLOSE");
    }

    #[test]
    fn edges_marked_on_spin_flips_only() {
        let rows = timeline(&sample_trace());
        // First observation (pn 1) is not an edge; the flip at pn 2 is.
        assert!(!rows[2].edge);
        assert!(rows[3].edge);
        assert!(rows.iter().filter(|r| r.edge).count() == 1);
    }

    #[test]
    fn spin_observations_match_trace_extraction() {
        let t = sample_trace();
        let from_rows: Vec<(u64, u64, bool)> = timeline(&t)
            .iter()
            .filter_map(TimelineRow::spin_observation)
            .collect();
        assert_eq!(from_rows, t.spin_observations());
    }

    #[test]
    fn rendered_text_has_header_and_edge_marker() {
        let text = render_timeline(&sample_trace());
        assert!(text.contains("www.example.com"));
        assert!(text.contains("<-- spin edge"));
        assert!(text.contains("handshake completed"));
        assert!(text.contains("latest 40.0 ms"));
        // One line per event plus the two header lines.
        assert_eq!(text.lines().count(), 2 + sample_trace().len());
    }

    #[test]
    fn untitled_trace_renders() {
        let mut t = TraceLog::new("client");
        t.push(5, EventData::HandshakeCompleted);
        assert!(render_timeline(&t).contains("<untitled>"));
    }
}
